//! # indiss — Interoperable Discovery System for Networked Services
//!
//! A full reproduction, in Rust, of the system described in:
//!
//! > Y.-D. Bromberg and V. Issarny. *INDISS: Interoperable Discovery
//! > System for Networked Services.* ACM/IFIP/USENIX Middleware 2005.
//!
//! INDISS lets applications bound to one Service Discovery Protocol (SDP)
//! discover and be discovered by services speaking another, without any
//! change to the applications: a *monitor component* detects which SDPs
//! are active from IANA multicast group/port activity, and per-SDP
//! *units* — a coupled parser and composer coordinated by a finite state
//! machine — translate whole discovery *processes* (not just messages)
//! through a common semantic event vocabulary.
//!
//! This facade crate re-exports the entire workspace:
//!
//! * [`net`] — deterministic discrete-event network simulator (the
//!   paper's 10 Mb/s LAN testbed);
//! * [`xml`] / [`http`] — document and message substrates;
//! * [`slp`] — Service Location Protocol v2 (the OpenSLP role);
//! * [`ssdp`] / [`upnp`] — the UPnP stack (the Cyberlink role);
//! * [`jini`] — simplified Jini discovery (the third unit of Fig. 5);
//! * [`core`] — INDISS itself: events, FSMs, units, monitor, the
//!   service registry and the runtime.
//!
//! ## The open protocol API
//!
//! The protocol set is open (paper §3): beyond the compiled-in SLP,
//! UPnP and Jini units, a new SDP can be added **from data alone**. An
//! [`core::SdpDescriptor`] declares a line-oriented protocol — scan
//! port, multicast group, parser table and composer templates — and
//! [`core::DescriptorUnit`] bridges it; its [`core::ProtocolId`]
//! participates in the registry, the response/negative caches and the
//! statistics exactly like a built-in protocol. The paper's own textual
//! composition language works verbatim:
//! [`core::IndissConfig::from_system_sdp`] parses
//! `System SDP = { Component Unit SLP(port=427); … }` — including
//! descriptor blocks for protocols INDISS has never heard of (see
//! `examples/custom_sdp.rs` for a four-protocol gateway declared in
//! text). Hand-written units plug in through the object-safe
//! [`core::UnitFactory`] registry and
//! [`core::IndissConfig::builder`].
//!
//! ## The service registry
//!
//! Everything INDISS learns about the network lives in one place: the
//! [`core::ServiceRegistry`] behind each deployed instance. Heard
//! advertisements become canonical [`core::ServiceRecord`]s (indexed by
//! canonical type, origin protocol and endpoint), bridged responses warm
//! a bounded LRU cache that yields the paper's ~0.1 ms §4.3 best case,
//! and both stores enforce configurable capacity and TTL bounds with
//! deterministic virtual-time expiry — so a gateway under heavy service
//! churn holds bounded memory. Inspect it via `indiss.registry()`; tune
//! it via [`core::IndissConfig`]'s `with_registry_capacity`,
//! `with_cache_capacity`, `with_advert_ttl` and `with_cache_ttl`.
//!
//! ## Running live: the network front-end
//!
//! The simulation is the measurement instrument; the same gateway also
//! runs on real sockets. [`core::NetDriver`] serves the decode → parse
//! → classify → deliver warm path over a transport seam
//! ([`net::Transport`]): [`net::SimTransport`] is a deterministic
//! in-memory bus, [`net::UdpTransport`] is real `std::net` UDP with
//! per-channel recv threads, loopback-confined by default. Passive
//! port detection, Fig. 5 lazy unit activation, registry-backed warm
//! hits, bounded backpressure and real HTTP-over-TCP UPnP description
//! fetches all work on the wire; one scripted scenario produces
//! byte-identical composed messages on either transport (pinned by
//! `crates/core/tests/netfront.rs`). Try it:
//! `cargo run --example gateway -- --udp`. The architecture book at
//! `docs/ARCHITECTURE.md` walks every layer.
//!
//! ## Quickstart: the paper's §2.4 scenario
//!
//! An SLP client finds a UPnP clock through a transparently deployed
//! INDISS (see `examples/quickstart.rs` for the full program):
//!
//! ```
//! use indiss::net::World;
//! use indiss::upnp::{ClockDevice, UpnpConfig};
//! use indiss::slp::{SlpConfig, UserAgent};
//! use indiss::core::{Indiss, IndissConfig};
//!
//! let world = World::new(42);
//! let service_node = world.add_node("clock-device");
//! let client_node = world.add_node("slp-client");
//!
//! // A native UPnP clock device, knowing nothing of SLP…
//! let _clock = ClockDevice::start(&service_node, UpnpConfig::default())?;
//! // …an SLP client, knowing nothing of UPnP…
//! let ua = UserAgent::start(&client_node, SlpConfig::default())?;
//! // …and INDISS on the service host, bridging both.
//! let _indiss = Indiss::deploy(&service_node, IndissConfig::slp_upnp())?;
//!
//! let (_first, done) = ua.find_services(&world, "service:clock", "");
//! world.run_for(std::time::Duration::from_secs(2));
//! let outcome = done.take().expect("discovery round finished");
//! assert_eq!(outcome.urls.len(), 1, "the UPnP clock is visible to SLP");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use indiss_core as core;
pub use indiss_http as http;
pub use indiss_jini as jini;
pub use indiss_net as net;
pub use indiss_slp as slp;
pub use indiss_ssdp as ssdp;
pub use indiss_upnp as upnp;
pub use indiss_xml as xml;
