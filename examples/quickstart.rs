//! Quickstart: the paper's §2.4 walkthrough, end to end.
//!
//! An SLP client searches for a clock. The only clock on the network is a
//! UPnP device (the CyberGarage clock of Fig. 4). INDISS, deployed on the
//! service host, translates the whole discovery *process*: SLP SrvRqst →
//! events → UPnP M-SEARCH → search response → recursive description
//! fetch → events → SLP SrvRply.
//!
//! Run with: `cargo run --example quickstart`

use indiss::core::{Indiss, IndissConfig};
use indiss::net::World;
use indiss::slp::{SlpConfig, UserAgent};
use indiss::upnp::{ClockDevice, UpnpConfig};
use std::time::Duration;

fn main() {
    let world = World::new(42);
    let service_host = world.add_node("clock-host");
    let client_host = world.add_node("slp-client");

    // A native UPnP clock device — knows nothing about SLP.
    let clock =
        ClockDevice::start(&service_host, UpnpConfig::default()).expect("clock device starts");
    println!("UPnP clock device up, description at {}", clock.location());

    // INDISS on the service host — applications are unmodified.
    let indiss = Indiss::deploy(&service_host, IndissConfig::slp_upnp()).expect("INDISS deploys");
    println!("INDISS deployed on {} with units {:?}", service_host.name(), indiss.active_units());

    // A native SLP client — knows nothing about UPnP.
    let ua = UserAgent::start(&client_host, SlpConfig::default()).expect("slp client starts");

    println!("\nSLP client multicasts SrvRqst for service:clock …");
    let t0 = world.now();
    let (_first, done) = ua.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(2));

    let outcome = done.take().expect("discovery round finished");
    match outcome.urls.first() {
        Some(entry) => {
            println!("SrvRply received after {:?}:", outcome.response_time().unwrap());
            println!("  URL      : {}", entry.url);
            println!("  lifetime : {}s", entry.lifetime);
            // Fetch the attributes INDISS recorded from the description.
            let attrs = ua.find_attributes(&world, &entry.url);
            world.run_for(Duration::from_secs(1));
            if let Some(attrs) = attrs.take() {
                println!("  attrs    : {attrs}");
            }
        }
        None => println!("no service found (unexpected!)"),
    }
    println!("\nINDISS stats: {:?}", indiss.stats());
    println!("detected SDPs: {:?}", indiss.monitor().detected());
    let _ = t0;
}
