//! A fourth SDP from pure data (paper §3).
//!
//! The paper's point is that an INDISS instance is *composed*, not
//! compiled: `System SDP = { Component Unit SLP(port=427); … }`. This
//! example takes that literally — the whole gateway, including a
//! DNS-SD-flavoured protocol INDISS has no Rust unit for, is declared in
//! the textual config language and deployed from it. The new protocol's
//! clients then discover a UPnP clock, and an SLP client discovers a
//! service that only ever announced itself in the new protocol.
//!
//! Run with: `cargo run --example custom_sdp`

use indiss::core::{DescriptorClient, DescriptorService, Indiss, IndissConfig, SdpDescriptor};
use indiss::net::World;
use indiss::slp::{SlpConfig, UserAgent};
use indiss::upnp::{ClockDevice, UpnpConfig};
use std::time::Duration;

/// The §3 config, extended with one descriptor unit: a brand-new SDP
/// declared entirely in text.
const SYSTEM_SDP: &str = r#"
System SDP = {
  Component Monitor = { ScanPort = { 1900; 4160; 427; 5353 } }
  Component Unit SLP(port=427);
  Component Unit UPnP(port=1900);
  Component Unit JINI(port=4160);
  Component Unit DNS-SD(port=5353) = {
    Group  = 224.0.0.251;
    Ttl    = 120;
    Query  = "DNSSD Q PTR _{type}._tcp.local";
    Answer = "DNSSD A PTR _{type}._tcp.local SRV {url} TTL {ttl}";
    Alive  = "DNSSD ANNOUNCE _{type}._tcp.local SRV {url} TTL {ttl}";
    ByeBye = "DNSSD GOODBYE _{type}._tcp.local SRV {url}";
  };
}
"#;

fn main() {
    let config = IndissConfig::from_system_sdp(SYSTEM_SDP).expect("the text config parses");
    println!("parsed `System SDP` config; units: {:?}\n", config.protocols());

    let world = World::new(17);
    let gateway = world.add_node("gateway");
    let indiss = Indiss::deploy(&gateway, config).expect("deploys");

    // A native UPnP clock, knowing nothing of DNS-SD…
    let clock_host = world.add_node("upnp-clock");
    let _clock = ClockDevice::start(&clock_host, UpnpConfig::default()).expect("clock");
    // …and a native DNS-SD scanner, knowing nothing of SLP/UPnP/Jini.
    // Both native DNS-SD peers are generated from the same descriptor.
    let scanner_host = world.add_node("dnssd-scanner");
    let scanner =
        DescriptorService::start(&scanner_host, SdpDescriptor::dns_sd()).expect("scanner");
    scanner.register("scanner", "scan://10.0.0.7:6566/sane");
    world.run_for(Duration::from_millis(100));

    // 1. A DNS-SD client discovers the UPnP clock through the gateway.
    let dnssd_host = world.add_node("dnssd-client");
    let dnssd = DescriptorClient::start(&dnssd_host, SdpDescriptor::dns_sd()).expect("client");
    let (first, _all) = dnssd.query(&world, "clock");
    world.run_for(Duration::from_secs(2));
    let url = first.take().expect("DNS-SD client must discover the UPnP clock");
    println!("DNS-SD client found the UPnP clock at {url}");

    // 2. An SLP client discovers the DNS-SD scanner the same way.
    let slp_host = world.add_node("slp-client");
    let ua = UserAgent::start(&slp_host, SlpConfig::default()).expect("ua");
    let (_f, done) = ua.find_services(&world, "service:scanner", "");
    world.run_for(Duration::from_secs(2));
    let urls = done.take().expect("SLP discovery round finished").urls;
    assert!(!urls.is_empty(), "SLP client must discover the DNS-SD scanner");
    println!("SLP client found the DNS-SD scanner at {}", urls[0].url);

    println!("\nactive units: {:?}", indiss.active_units());
    println!("stats:        {:?}", indiss.stats());
}
