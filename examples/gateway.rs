//! Dynamic composition and self-adaptation (paper §3 + §4.2).
//!
//! INDISS starts on a gateway with *lazy* units: nothing is instantiated
//! until the monitor detects a protocol (Fig. 5's run-time composition).
//! Devices then join over time, and when the network goes quiet INDISS
//! switches to the active model, re-advertising known services so purely
//! passive listeners still learn about them (Fig. 6).
//!
//! Run with: `cargo run --example gateway`

use indiss::core::{AdaptationPolicy, Indiss, IndissConfig};
use indiss::net::World;
use indiss::slp::{SlpConfig, UserAgent, SLP_MULTICAST_GROUP, SLP_PORT};
use indiss::upnp::{ClockDevice, UpnpConfig};
use std::time::Duration;

fn main() {
    let world = World::new(11);
    let gateway = world.add_node("gateway");
    let indiss = Indiss::deploy(
        &gateway,
        IndissConfig::slp_upnp().with_lazy_units().with_adaptation(AdaptationPolicy {
            threshold_bytes_per_sec: 300.0,
            window: Duration::from_secs(2),
            check_interval: Duration::from_secs(2),
        }),
    )
    .expect("indiss");
    println!("t={} units: {:?} (lazy: nothing yet)", world.now(), indiss.active_units());

    // t=0: a passive SLP listener is present from the start. It never
    // transmits, so INDISS cannot bridge on demand for it.
    let listener_host = world.add_node("passive-slp-listener");
    let listener = listener_host.udp_bind(SLP_PORT).expect("bind");
    listener.join_multicast(SLP_MULTICAST_GROUP).expect("join");
    let heard = indiss::net::Completion::new();
    let heard2 = heard.clone();
    listener.on_receive(move |w, d| {
        if let Ok(msg) = indiss::slp::Message::decode(&d.payload) {
            if let indiss::slp::Body::SaAdvert(sa) = &msg.body {
                heard2.complete((w.now(), sa.attrs.clone()));
            }
        }
    });

    // t=2s: a UPnP clock joins and advertises.
    world.run_for(Duration::from_secs(2));
    let clock_host = world.add_node("upnp-clock");
    let _clock = ClockDevice::start(&clock_host, UpnpConfig::default()).expect("clock");
    world.run_for(Duration::from_millis(100));
    println!(
        "t={} UPnP clock joined; units now: {:?}, detected: {:?}",
        world.now(),
        indiss.active_units(),
        indiss.monitor().detected()
    );

    // t=4s: an SLP client performs one active search, which instantiates
    // the SLP unit too.
    let client_host = world.add_node("slp-client");
    let ua = UserAgent::start(&client_host, SlpConfig::default()).expect("ua");
    let (_f, done) = ua.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(2));
    println!(
        "t={} active SLP search found {} service(s); units now: {:?}",
        world.now(),
        done.take().map(|o| o.urls.len()).unwrap_or(0),
        indiss.active_units()
    );

    // The network then goes quiet; the adaptation loop drops INDISS into
    // the active model and the passive listener finally hears the clock.
    world.run_for(Duration::from_secs(10));
    println!("t={} mode: {:?}", world.now(), indiss.mode());
    match heard.take() {
        Some((at, attrs)) => {
            println!("passive listener heard a translated advert at t={at}:");
            println!("  {attrs}");
        }
        None => println!("passive listener heard nothing (unexpected)"),
    }
    println!("\nmode log: {:?}", indiss.mode_log());
    println!("stats:    {:?}", indiss.stats());
}
