//! Dynamic composition and self-adaptation (paper §3 + §4.2) — and,
//! with `--udp`, the same gateway live on real loopback sockets.
//!
//! **Default (simulated):** INDISS starts on a gateway with *lazy*
//! units: nothing is instantiated until the monitor detects a protocol
//! (Fig. 5's run-time composition). Devices then join over time, and
//! when the network goes quiet INDISS switches to the active model,
//! re-advertising known services so purely passive listeners still
//! learn about them (Fig. 6).
//!
//! **`--udp` (live):** a `NetDriver` gateway on real `std::net` UDP
//! sockets, loopback-confined. A UPnP "device" multicasts a real SSDP
//! `NOTIFY` whose `LOCATION:` points at a real HTTP/TCP description
//! server; the gateway fetches and parses the description (§2.4's
//! socket switch on actual sockets), warms its registry, and a real SLP
//! `SrvRqst` sent from another socket comes back as a composed
//! `SrvRply` on the requester's socket. Run with:
//! `cargo run --example gateway -- --udp`
//!
//! The live mode first tries the real IANA ports (427/1900, needs
//! `CAP_NET_BIND_SERVICE`); if refused it retries with a +20000 port
//! offset, and if loopback sockets are forbidden entirely it prints a
//! skip line and exits cleanly (CI-safe).

use indiss::core::{AdaptationPolicy, Indiss, IndissConfig};
use indiss::net::World;
use indiss::slp::{SlpConfig, UserAgent, SLP_MULTICAST_GROUP, SLP_PORT};
use indiss::upnp::{ClockDevice, UpnpConfig};
use std::time::Duration;

fn main() {
    if std::env::args().any(|a| a == "--udp") {
        live_udp_gateway();
        return;
    }
    simulated_gateway();
}

/// The live loopback gateway: real sockets end to end.
fn live_udp_gateway() {
    use indiss::core::{NetDriver, SdpProtocol};
    use indiss::net::TransportKind;
    use indiss::ssdp::{Notify, NotifySubType, SearchTarget};
    use indiss::upnp::{DeviceDescription, ServiceDescription};
    use std::io::{Read, Write};
    use std::sync::{mpsc, Arc};

    // Try the real IANA ports first, then an unprivileged offset.
    let mut driver = None;
    for offset in [0u16, 20_000] {
        let config =
            IndissConfig::slp_upnp().with_transport(TransportKind::Udp).with_port_offset(offset);
        match NetDriver::start(config) {
            Ok(d) => {
                println!(
                    "gateway up on loopback UDP (port offset {offset}): SLP on {:?}, UPnP on {:?}",
                    d.channel_addr(SdpProtocol::Slp),
                    d.channel_addr(SdpProtocol::Upnp),
                );
                driver = Some(d);
                break;
            }
            Err(e) => println!("bind with offset {offset} failed ({e}); trying next"),
        }
    }
    let Some(driver) = driver else {
        println!("SKIPPED: this environment forbids loopback UDP sockets entirely");
        return;
    };

    // A real HTTP/TCP server for the clock's description document —
    // the thing a UPnP LOCATION: header points at.
    let description = DeviceDescription {
        device_type: "urn:schemas-upnp-org:device:clock:1".into(),
        friendly_name: "CyberGarage Clock Device".into(),
        manufacturer: "CyberGarage".into(),
        manufacturer_url: "http://www.cybergarage.org".into(),
        model_description: "CyberUPnP Clock Device".into(),
        model_name: "Clock".into(),
        model_number: "1.0".into(),
        model_url: "http://www.cybergarage.org".into(),
        udn: "uuid:ClockDevice".into(),
        services: vec![ServiceDescription::conventional("timer", 1)],
    };
    let xml = description.to_xml();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("tcp bind");
    let http_addr = listener.local_addr().expect("tcp addr");
    let served_xml = xml.clone();
    std::thread::spawn(move || {
        // Serve description GETs until the process exits.
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf); // the GET line + headers
            let response = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/xml\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{}",
                served_xml.len(),
                served_xml
            );
            let _ = stream.write_all(response.as_bytes());
        }
    });
    println!("clock description served over real TCP at http://{http_addr}/description.xml");

    // The "device" announces itself with a real SSDP NOTIFY.
    let transport = driver.transport();
    let (reply_tx, reply_rx) = mpsc::channel();
    let client = transport
        .bind_client(Arc::new(move |d: indiss::net::Datagram| {
            let _ = reply_tx.send(d);
        }))
        .expect("client socket");
    let notify = Notify {
        nt: SearchTarget::device_urn("clock", 1),
        nts: NotifySubType::Alive,
        usn: "uuid:ClockDevice::urn:schemas-upnp-org:device:clock:1".into(),
        location: Some(format!("http://{http_addr}/description.xml")),
        server: "example/1.0".into(),
        max_age: 1800,
    };
    let upnp_addr = driver.channel_addr(SdpProtocol::Upnp).expect("upnp channel");
    client.send_to(&notify.to_bytes(), upnp_addr).expect("send NOTIFY");

    // Wait until the gateway has fetched the description and warmed up.
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while !driver.registry().contains_type("clock", driver.now()) {
        if std::time::Instant::now() > deadline {
            println!("gateway never recorded the clock (description fetch failed?)");
            driver.shutdown();
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    println!(
        "NOTIFY heard, description fetched over TCP, registry warm \
         (detected: {:?}, descriptions fetched: {})",
        driver.detected(),
        driver.front_stats().descriptions_fetched
    );

    // An "SLP client" asks for a clock — a real SrvRqst datagram.
    let request = indiss::slp::Message::new(
        indiss::slp::Header::new(indiss::slp::FunctionId::SrvRqst, 0x1234, "en"),
        indiss::slp::Body::SrvRqst(indiss::slp::SrvRqst {
            prlist: String::new(),
            service_type: "service:clock".into(),
            scopes: "DEFAULT".into(),
            predicate: String::new(),
            spi: String::new(),
        }),
    );
    let slp_addr = driver.channel_addr(SdpProtocol::Slp).expect("slp channel");
    client.send_to(&request.encode().expect("encodable"), slp_addr).expect("send SrvRqst");

    match reply_rx.recv_timeout(Duration::from_secs(3)) {
        Ok(reply) => {
            let msg = indiss::slp::Message::decode(&reply.payload).expect("valid SLP reply");
            match msg.body {
                indiss::slp::Body::SrvRply(rply) => println!(
                    "SLP client received a composed SrvRply on its socket: {}",
                    rply.urls[0].url
                ),
                other => println!("unexpected SLP reply: {other:?}"),
            }
        }
        Err(_) => println!("no reply arrived (unexpected)"),
    }
    driver.join(); // let the worker finish its post-send accounting
    println!("\nbridge stats: {:?}", driver.stats());
    println!("wire stats:   {:?}", driver.front_stats());
    driver.shutdown();
}

/// The original deterministic simulation demo.
fn simulated_gateway() {
    let world = World::new(11);
    let gateway = world.add_node("gateway");
    let indiss = Indiss::deploy(
        &gateway,
        IndissConfig::slp_upnp().with_lazy_units().with_adaptation(AdaptationPolicy {
            threshold_bytes_per_sec: 300.0,
            window: Duration::from_secs(2),
            check_interval: Duration::from_secs(2),
        }),
    )
    .expect("indiss");
    println!("t={} units: {:?} (lazy: nothing yet)", world.now(), indiss.active_units());

    // t=0: a passive SLP listener is present from the start. It never
    // transmits, so INDISS cannot bridge on demand for it.
    let listener_host = world.add_node("passive-slp-listener");
    let listener = listener_host.udp_bind(SLP_PORT).expect("bind");
    listener.join_multicast(SLP_MULTICAST_GROUP).expect("join");
    let heard = indiss::net::Completion::new();
    let heard2 = heard.clone();
    listener.on_receive(move |w, d| {
        if let Ok(msg) = indiss::slp::Message::decode(&d.payload) {
            if let indiss::slp::Body::SaAdvert(sa) = &msg.body {
                heard2.complete((w.now(), sa.attrs.clone()));
            }
        }
    });

    // t=2s: a UPnP clock joins and advertises.
    world.run_for(Duration::from_secs(2));
    let clock_host = world.add_node("upnp-clock");
    let _clock = ClockDevice::start(&clock_host, UpnpConfig::default()).expect("clock");
    world.run_for(Duration::from_millis(100));
    println!(
        "t={} UPnP clock joined; units now: {:?}, detected: {:?}",
        world.now(),
        indiss.active_units(),
        indiss.monitor().detected()
    );

    // t=4s: an SLP client performs one active search, which instantiates
    // the SLP unit too.
    let client_host = world.add_node("slp-client");
    let ua = UserAgent::start(&client_host, SlpConfig::default()).expect("ua");
    let (_f, done) = ua.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(2));
    println!(
        "t={} active SLP search found {} service(s); units now: {:?}",
        world.now(),
        done.take().map(|o| o.urls.len()).unwrap_or(0),
        indiss.active_units()
    );

    // The network then goes quiet; the adaptation loop drops INDISS into
    // the active model and the passive listener finally hears the clock.
    world.run_for(Duration::from_secs(10));
    println!("t={} mode: {:?}", world.now(), indiss.mode());
    match heard.take() {
        Some((at, attrs)) => {
            println!("passive listener heard a translated advert at t={at}:");
            println!("  {attrs}");
        }
        None => println!("passive listener heard nothing (unexpected)"),
    }
    println!("\nmode log: {:?}", indiss.mode_log());
    println!("stats:    {:?}", indiss.stats());
}
