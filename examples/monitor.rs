//! SDP detection demo (paper §2.1, Fig. 1).
//!
//! The monitor component joins every known SDP's multicast group and
//! watches its IANA port. Protocols are identified purely from *data
//! arrival* — no parsing, no content inspection. This example prints the
//! detection log as different kinds of traffic appear.
//!
//! Run with: `cargo run --example monitor`

use indiss::core::{Monitor, SdpProtocol};
use indiss::jini::{JiniAgent, JiniConfig, LookupService};
use indiss::net::World;
use indiss::slp::{SlpConfig, UserAgent};
use indiss::upnp::{ClockDevice, UpnpConfig};
use std::time::Duration;

fn main() {
    let world = World::new(3);
    let observer = world.add_node("observer");
    let monitor =
        Monitor::start(&observer, &[SdpProtocol::Slp, SdpProtocol::Upnp, SdpProtocol::Jini])
            .expect("monitor");
    monitor.on_detect(|w, protocol| {
        println!("t={:<12} detected {protocol} (port {})", w.now().to_string(), protocol.port());
    });

    println!("monitor passively scanning ports 427 (SLP), 1900 (SSDP), 4160 (Jini)\n");

    // t=0: an *active-model* SLP client multicasts a request (Fig. 1's
    // SDP1): detection from a client, not a service.
    let client = world.add_node("slp-client");
    let ua = UserAgent::start(&client, SlpConfig::default()).expect("ua");
    ua.find_services(&world, "service:anything", "");
    world.run_for(Duration::from_secs(1));

    // t=1s: a *passive-model* UPnP device advertises itself (Fig. 1's
    // SDP2): detection from a service's announcements.
    let device = world.add_node("upnp-device");
    let _clock = ClockDevice::start(&device, UpnpConfig::default()).expect("clock");
    world.run_for(Duration::from_secs(1));

    // t=2s: a Jini lookup service announces.
    let reggie = world.add_node("jini-lookup");
    let _ls = LookupService::start(&reggie, JiniConfig::default()).expect("reggie");
    let agent_host = world.add_node("jini-agent");
    let agent = JiniAgent::start(&agent_host, JiniConfig::default()).expect("agent");
    agent.discover_registrar();
    world.run_for(Duration::from_secs(1));

    println!("\nfinal detection records:");
    for protocol in [SdpProtocol::Slp, SdpProtocol::Upnp, SdpProtocol::Jini] {
        match monitor.detection(protocol) {
            Some(record) => println!(
                "  {protocol:<5} first={:<12} last={:<12} messages={}",
                record.first_seen.to_string(),
                record.last_seen.to_string(),
                record.message_count
            ),
            None => println!("  {protocol:<5} never seen"),
        }
    }
}
