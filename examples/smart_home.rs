//! The networked home the paper's introduction motivates: devices from
//! three middleware families, none aware of the others, all mutually
//! discoverable through one INDISS gateway.
//!
//! * a UPnP clock (consumer electronics),
//! * an SLP printer (office equipment),
//! * a Jini thermometer behind a Jini lookup service (home automation).
//!
//! Run with: `cargo run --example smart_home`

use indiss::core::{Indiss, IndissConfig};
use indiss::jini::{JiniAgent, JiniConfig, LookupService, ServiceItem};
use indiss::net::World;
use indiss::slp::{AttributeList, Registration, ServiceAgent, SlpConfig, UserAgent};
use indiss::ssdp::SearchTarget;
use indiss::upnp::{ClockDevice, ControlPoint, ControlPointConfig, UpnpConfig};
use std::time::Duration;

fn main() {
    let world = World::new(7);

    // --- the home's devices --------------------------------------------
    let clock_host = world.add_node("upnp-clock");
    let _clock = ClockDevice::start(&clock_host, UpnpConfig::default()).expect("clock");

    let printer_host = world.add_node("slp-printer");
    let printer = ServiceAgent::start(&printer_host, SlpConfig::default()).expect("printer");
    printer.register(
        Registration::new(
            "service:printer:lpr://10.0.0.2:515/queue",
            AttributeList::parse("(friendlyName=Hallway Printer),(ppm=12),(color)").unwrap(),
        )
        .expect("printer registration"),
    );

    let reggie_host = world.add_node("jini-lookup");
    let _reggie = LookupService::start(&reggie_host, JiniConfig::default()).expect("reggie");
    let sensor_host = world.add_node("jini-thermometer");
    let sensor = JiniAgent::start(&sensor_host, JiniConfig::default()).expect("sensor");
    sensor.register(ServiceItem {
        service_id: 0xC0FFEE,
        service_type: "thermometer".into(),
        endpoint: format!("{}:9100", sensor_host.addr()),
        attributes: vec![("friendlyName".into(), "Living Room Thermometer".into())],
    });

    // --- the bridge ------------------------------------------------------
    let gateway = world.add_node("gateway");
    let indiss = Indiss::deploy(&gateway, IndissConfig::all_protocols()).expect("indiss");
    world.run_for(Duration::from_secs(1)); // announcements settle

    // --- an SLP-only laptop finds the UPnP clock -------------------------
    let laptop = world.add_node("slp-laptop");
    let ua = UserAgent::start(&laptop, SlpConfig::default()).expect("laptop ua");
    let (_f, clocks) = ua.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(2));
    let clocks = clocks.take().expect("round done");
    println!("SLP laptop sees clocks     : {:?}", urls(&clocks.urls));

    // --- a UPnP-only tablet finds the SLP printer ------------------------
    let tablet = world.add_node("upnp-tablet");
    let cp = ControlPoint::start(&tablet, ControlPointConfig::default()).expect("tablet cp");
    let (_f, printers) = cp.search(&world, SearchTarget::device_urn("printer", 1));
    world.run_for(Duration::from_secs(2));
    let printers = printers.take().expect("search done");
    println!(
        "UPnP tablet sees printers  : {:?}",
        printers.iter().map(|d| d.location.as_str()).collect::<Vec<_>>()
    );

    // --- an SLP thermostat finds the Jini thermometer --------------------
    let (_f, thermometers) = ua.find_services(&world, "service:thermometer", "");
    world.run_for(Duration::from_secs(2));
    let thermometers = thermometers.take().expect("round done");
    println!("SLP laptop sees sensors    : {:?}", urls(&thermometers.urls));

    println!("\ngateway stats: {:?}", indiss.stats());
    println!("detected SDPs: {:?}", indiss.monitor().detected());
}

fn urls(entries: &[indiss::slp::UrlEntry]) -> Vec<&str> {
    entries.iter().map(|e| e.url.as_str()).collect()
}
