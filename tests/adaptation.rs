//! Integration tests for §4.2 / Fig. 6: the passive/passive deadlock and
//! its traffic-threshold resolution.

use indiss::core::{AdaptationPolicy, DiscoveryMode, Indiss, IndissConfig};
use indiss::net::{Completion, SimTime, World};
use indiss::slp::{Body, Message, SLP_MULTICAST_GROUP, SLP_PORT};
use indiss::upnp::{ClockDevice, UpnpConfig};
use std::net::SocketAddrV4;
use std::time::Duration;

fn policy() -> AdaptationPolicy {
    AdaptationPolicy {
        threshold_bytes_per_sec: 400.0,
        window: Duration::from_secs(2),
        check_interval: Duration::from_secs(2),
    }
}

/// A passive SLP listener and a passive (announce-only) UPnP service:
/// without adaptation the listener hears nothing, ever.
#[test]
fn passive_passive_is_deadlocked_without_adaptation() {
    let world = World::new(31);
    let service_host = world.add_node("upnp-device");
    let client_host = world.add_node("listener");
    let _clock = ClockDevice::start(&service_host, UpnpConfig::default()).unwrap();
    let _indiss = Indiss::deploy(&service_host, IndissConfig::slp_upnp()).unwrap();

    let listener = client_host.udp_bind(SLP_PORT).unwrap();
    listener.join_multicast(SLP_MULTICAST_GROUP).unwrap();
    let heard: Completion<()> = Completion::new();
    let heard2 = heard.clone();
    listener.on_receive(move |_, _| heard2.complete(()));
    world.run_for(Duration::from_secs(30));
    assert!(!heard.is_complete(), "no adaptation → the Fig. 6 blocked situation");
}

/// With the traffic threshold, INDISS on a quiet network becomes active
/// and the listener hears a translated SAAdvert carrying the clock.
#[test]
fn quiet_network_unblocks_via_active_mode() {
    let world = World::new(31);
    let service_host = world.add_node("upnp-device");
    let client_host = world.add_node("listener");
    let _clock = ClockDevice::start(&service_host, UpnpConfig::default()).unwrap();
    let indiss =
        Indiss::deploy(&service_host, IndissConfig::slp_upnp().with_adaptation(policy())).unwrap();

    let listener = client_host.udp_bind(SLP_PORT).unwrap();
    listener.join_multicast(SLP_MULTICAST_GROUP).unwrap();
    let heard = indiss::net::Collector::new();
    let heard2 = heard.clone();
    listener.on_receive(move |w, d| {
        if let Ok(msg) = Message::decode(&d.payload) {
            if let Body::SaAdvert(sa) = msg.body {
                heard2.push((w.now(), sa.attrs));
            }
        }
    });
    world.run_for(Duration::from_secs(30));
    let adverts = heard.snapshot();
    assert!(!adverts.is_empty(), "translated adverts heard");
    // The device advertises its device type (clock) and its service type
    // (timer); both are translated. The clock one must be among them.
    let (at, attrs) = adverts
        .iter()
        .find(|(_, a)| a.contains("service:clock:soap://"))
        .expect("clock advert among the sweeps");
    assert!(*at >= SimTime::from_secs(2), "after the first adaptation tick");
    assert!(attrs.contains("CyberGarage Clock Device"), "{attrs}");
    assert!(indiss.stats().adverts_translated >= 1);
}

/// On a busy network INDISS must stay passive (bandwidth preservation —
/// the paper's "interoperability degradation may occur").
#[test]
fn busy_network_stays_passive() {
    let world = World::new(31);
    let service_host = world.add_node("upnp-device");
    let _clock = ClockDevice::start(&service_host, UpnpConfig::default()).unwrap();
    let indiss =
        Indiss::deploy(&service_host, IndissConfig::slp_upnp().with_adaptation(policy())).unwrap();

    // Background chatter well above 400 B/s.
    let a = world.add_node("chatter-a");
    let b = world.add_node("chatter-b");
    let tx = a.udp_bind_ephemeral().unwrap();
    let _rx = b.udp_bind(9000).unwrap();
    let dst = SocketAddrV4::new(b.addr(), 9000);
    fn chatter(world: &World, tx: indiss::net::UdpSocket, dst: SocketAddrV4) {
        let _ = tx.send_to(&[0u8; 300], dst);
        world.schedule_in(Duration::from_millis(100), move |w| chatter(w, tx, dst));
    }
    chatter(&world, tx, dst);

    world.run_for(Duration::from_secs(20));
    assert_eq!(indiss.mode(), DiscoveryMode::Passive);
    assert_eq!(indiss.stats().adverts_translated, 0);
    indiss.with_mode_log(|log| {
        assert!(log.iter().all(|(_, m)| *m == DiscoveryMode::Passive), "never flapped: {log:?}");
    });
}

/// The active sweep repeats while the network stays quiet, and byebye
/// retractions propagate: a departed device stops being advertised.
#[test]
fn byebye_removes_service_from_active_sweeps() {
    let world = World::new(33);
    let service_host = world.add_node("upnp-device");
    let client_host = world.add_node("listener");
    let clock = ClockDevice::start(&service_host, UpnpConfig::default()).unwrap();
    let indiss =
        Indiss::deploy(&service_host, IndissConfig::slp_upnp().with_adaptation(policy())).unwrap();

    let listener = client_host.udp_bind(SLP_PORT).unwrap();
    listener.join_multicast(SLP_MULTICAST_GROUP).unwrap();
    let count = indiss::net::Collector::new();
    let count2 = count.clone();
    listener.on_receive(move |w, d| {
        if let Ok(msg) = Message::decode(&d.payload) {
            if matches!(msg.body, Body::SaAdvert(_)) {
                count2.push(w.now());
            }
        }
    });

    world.run_for(Duration::from_secs(10));
    let before_shutdown = count.len();
    assert!(before_shutdown >= 1, "sweeps happened while quiet");

    clock.shutdown();
    world.run_for(Duration::from_millis(100));
    let at_shutdown = count.len();
    world.run_for(Duration::from_secs(12));
    let after = count.len();
    assert_eq!(
        after,
        at_shutdown,
        "no further SAAdverts after byebye (stats: {:?})",
        indiss.stats()
    );
}
