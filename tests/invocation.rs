//! Beyond discovery: the endpoint INDISS hands to a foreign client must
//! actually work. An SLP client discovers the UPnP clock through INDISS,
//! then POSTs a SOAP `GetTime` to the `service:clock:soap://…` URL it was
//! given — talking straight to the native device, no INDISS in the data
//! path (exactly the paper's model: INDISS bridges *discovery*, not
//! interaction).

use indiss::core::{Indiss, IndissConfig};
use indiss::http::{Method, Request};
use indiss::net::World;
use indiss::slp::{ServiceUrl, SlpConfig, UserAgent};
use indiss::upnp::{
    http_request, ClockDevice, SoapAction, SoapResponse, UpnpConfig, TIMER_SERVICE,
};
use std::net::SocketAddrV4;
use std::time::Duration;

#[test]
fn bridged_soap_url_is_invocable() {
    let world = World::new(81);
    let service_host = world.add_node("clock-host");
    let client_host = world.add_node("slp-client");
    let _clock = ClockDevice::start(&service_host, UpnpConfig::default()).unwrap();
    let _indiss = Indiss::deploy(&service_host, IndissConfig::slp_upnp()).unwrap();
    let ua = UserAgent::start(&client_host, SlpConfig::default()).unwrap();

    // Discover through INDISS.
    let (_f, done) = ua.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(2));
    let urls = done.take().unwrap().urls;
    assert_eq!(urls.len(), 1);

    // Parse the SLP service URL the client received…
    let parsed = ServiceUrl::parse(&urls[0].url).unwrap();
    assert_eq!(parsed.service_type.concrete.as_deref(), Some("soap"));
    let host: std::net::Ipv4Addr = parsed.host.parse().unwrap();
    let addr = SocketAddrV4::new(host, parsed.port.unwrap());

    // …and invoke GetTime directly against the native device.
    let call = SoapAction::new("GetTime", TIMER_SERVICE);
    let mut req = Request::new(Method::Post, parsed.path.clone());
    req.headers.insert("HOST", addr.to_string());
    req.headers.insert("Content-Type", "text/xml; charset=\"utf-8\"");
    req.headers.insert("SOAPACTION", call.soapaction_header());
    req.body = call.to_xml().into_bytes();

    let resp = http_request(&client_host, addr, req);
    world.run_for(Duration::from_secs(2));
    let resp = resp.take().unwrap().expect("SOAP endpoint reachable");
    assert!(resp.is_success());
    let soap = SoapResponse::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    let time = soap.arg("CurrentTime").expect("clock told the time");
    assert_eq!(time.len(), 8, "HH:MM:SS, got {time}");
}

/// The synthetic description INDISS serves to UPnP clients names the real
/// SLP endpoint as its control URL — the reverse direction of the same
/// guarantee.
#[test]
fn synthetic_description_points_at_real_endpoint() {
    use indiss::slp::{AttributeList, Registration, ServiceAgent};
    use indiss::ssdp::SearchTarget;
    use indiss::upnp::{ControlPoint, ControlPointConfig};

    let world = World::new(82);
    let service_host = world.add_node("slp-host");
    let client_host = world.add_node("upnp-client");
    let sa = ServiceAgent::start(&service_host, SlpConfig::default()).unwrap();
    let real_url = format!("service:printer:lpr://{}:515/queue", service_host.addr());
    sa.register(Registration::new(&real_url, AttributeList::new()).unwrap());
    let _indiss = Indiss::deploy(&service_host, IndissConfig::slp_upnp()).unwrap();

    let cp = ControlPoint::start(&client_host, ControlPointConfig::default()).unwrap();
    let described = cp.discover_described(&world, SearchTarget::device_urn("printer", 1));
    world.run_for(Duration::from_secs(3));
    let (_hit, desc) = described.take().unwrap().expect("described");
    assert_eq!(desc.services[0].control_url, real_url);
}
