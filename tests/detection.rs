//! Integration tests of SDP detection (§2.1) at the system level.

use indiss::core::{Indiss, IndissConfig, SdpProtocol};
use indiss::jini::{JiniAgent, JiniConfig, LookupService};
use indiss::net::World;
use indiss::slp::{SlpConfig, UserAgent};
use indiss::upnp::{ClockDevice, UpnpConfig};
use std::time::Duration;

/// Detection keys off the IANA identification tags, exactly the paper's
/// correspondence table.
#[test]
fn detection_uses_iana_identification_tags() {
    assert_eq!(SdpProtocol::Slp.port(), 427);
    assert_eq!(SdpProtocol::Upnp.port(), 1900);
    assert_eq!(SdpProtocol::Jini.port(), 4160);
    assert_eq!(
        SdpProtocol::Slp.multicast_groups(),
        vec!["239.255.255.253".parse::<std::net::Ipv4Addr>().unwrap()]
    );
    assert_eq!(
        SdpProtocol::Upnp.multicast_groups(),
        vec!["239.255.255.250".parse::<std::net::Ipv4Addr>().unwrap()]
    );
}

/// A gateway INDISS detects all three protocols as their traffic appears,
/// in arrival order, counting messages but never parsing for detection.
#[test]
fn gateway_detects_all_three_protocols_in_order() {
    let world = World::new(61);
    let gw = world.add_node("gateway");
    let indiss = Indiss::deploy(&gw, IndissConfig::all_protocols()).unwrap();
    assert!(indiss.monitor().detected().is_empty());

    // SLP first…
    let slp_host = world.add_node("slp");
    let ua = UserAgent::start(&slp_host, SlpConfig::default()).unwrap();
    ua.find_services(&world, "service:x", "");
    world.run_for(Duration::from_millis(500));
    assert_eq!(indiss.monitor().detected(), vec![SdpProtocol::Slp]);

    // …then Jini…
    let reggie = world.add_node("reggie");
    let _ls = LookupService::start(&reggie, JiniConfig::default()).unwrap();
    world.run_for(Duration::from_millis(500));
    assert_eq!(indiss.monitor().detected(), vec![SdpProtocol::Slp, SdpProtocol::Jini]);

    // …then UPnP.
    let upnp_host = world.add_node("upnp");
    let _clock = ClockDevice::start(&upnp_host, UpnpConfig::default()).unwrap();
    world.run_for(Duration::from_millis(500));
    assert_eq!(
        indiss.monitor().detected(),
        vec![SdpProtocol::Slp, SdpProtocol::Jini, SdpProtocol::Upnp]
    );

    // Message counters advanced per protocol.
    for p in SdpProtocol::ALL {
        assert!(indiss.monitor().detection(p).unwrap().message_count >= 1, "{p}");
    }
}

/// Lazy composition (Fig. 5): units appear exactly when their protocol is
/// first heard, and only configured units ever appear.
#[test]
fn lazy_composition_tracks_detection() {
    let world = World::new(62);
    let gw = world.add_node("gateway");
    // Configure only SLP and UPnP; Jini traffic must not instantiate one.
    let indiss = Indiss::deploy(&gw, IndissConfig::slp_upnp().with_lazy_units()).unwrap();

    let reggie = world.add_node("reggie");
    let _ls = LookupService::start(&reggie, JiniConfig::default()).unwrap();
    world.run_for(Duration::from_millis(500));
    assert!(indiss.active_units().is_empty(), "jini is not configured");

    let upnp_host = world.add_node("upnp");
    let _clock = ClockDevice::start(&upnp_host, UpnpConfig::default()).unwrap();
    world.run_for(Duration::from_millis(500));
    assert_eq!(indiss.active_units(), vec![SdpProtocol::Upnp]);

    let slp_host = world.add_node("slp");
    let ua = UserAgent::start(&slp_host, SlpConfig::default()).unwrap();
    ua.find_services(&world, "service:x", "");
    world.run_for(Duration::from_millis(500));
    assert_eq!(indiss.active_units(), vec![SdpProtocol::Slp, SdpProtocol::Upnp]);
}

/// A Jini agent's multicast discovery request (a *client* probe) is
/// enough for detection — §2.1's point that either side's traffic works.
#[test]
fn client_probes_suffice_for_detection() {
    let world = World::new(63);
    let gw = world.add_node("gateway");
    let indiss = Indiss::deploy(&gw, IndissConfig::all_protocols()).unwrap();
    let host = world.add_node("jini-client");
    let agent = JiniAgent::start(&host, JiniConfig::default()).unwrap();
    agent.discover_registrar(); // no registrar exists; pure client traffic
    world.run_for(Duration::from_millis(500));
    assert_eq!(indiss.monitor().detected(), vec![SdpProtocol::Jini]);
}
