//! The event vocabulary contract (paper §2.3, Table 1) from a consumer's
//! point of view: mandatory events exist under their exact names, the
//! specific sets are marked non-mandatory, and composers demonstrably
//! discard events they do not understand.

use indiss::core::{Event, EventKind, EventStream, ParserKind, SdpProtocol};

#[test]
fn mandatory_event_names_are_exactly_table1() {
    let table1 = [
        (EventKind::Start, "SDP_C_START"),
        (EventKind::Stop, "SDP_C_STOP"),
        (EventKind::ParserSwitch, "SDP_C_PARSER_SWITCH"),
        (EventKind::SocketSwitch, "SDP_C_SOCKET_SWITCH"),
        (EventKind::NetUnicast, "SDP_NET_UNICAST"),
        (EventKind::NetMulticast, "SDP_NET_MULTICAST"),
        (EventKind::NetSourceAddr, "SDP_NET_SOURCE_ADDR"),
        (EventKind::NetDestAddr, "SDP_NET_DEST_ADDR"),
        (EventKind::NetType, "SDP_NET_TYPE"),
        (EventKind::ServiceRequest, "SDP_SERVICE_REQUEST"),
        (EventKind::ServiceResponse, "SDP_SERVICE_RESPONSE"),
        (EventKind::ServiceAlive, "SDP_SERVICE_ALIVE"),
        (EventKind::ServiceByeBye, "SDP_SERVICE_BYEBYE"),
        (EventKind::ServiceType, "SDP_SERVICE_TYPE"),
        (EventKind::ServiceAttr, "SDP_SERVICE_ATTR"),
        (EventKind::ReqLang, "SDP_REQ_LANG"),
        (EventKind::ResOk, "SDP_RES_OK"),
        (EventKind::ResErr, "SDP_RES_ERR"),
        (EventKind::ResTtl, "SDP_RES_TTL"),
        (EventKind::ResServUrl, "SDP_RES_SERV_URL"),
        (EventKind::ResAttr, "SDP_RES_ATTR"),
    ];
    for (kind, name) in table1 {
        assert_eq!(kind.table1_name(), Some(name));
        assert_eq!(kind.name(), name);
    }
}

#[test]
fn specific_sets_are_marked_as_extensions() {
    // The SLP-specific request events from Fig. 4…
    for e in [
        Event::SlpReqVersion(2),
        Event::SlpReqScope("DEFAULT".into()),
        Event::SlpReqPredicate(String::new()),
        Event::SlpReqId(1),
    ] {
        assert!(!e.is_mandatory(), "{e}");
    }
    // …the UPnP-specific ones…
    for e in [
        Event::UpnpDeviceUrlDesc("http://x".into()),
        Event::UpnpUsn("uuid:x".into()),
        Event::UpnpServer("s".into()),
        Event::UpnpMx(0),
        Event::UpnpSt("upnp:clock".into()),
    ] {
        assert!(!e.is_mandatory(), "{e}");
    }
    // …and the Jini-specific ones.
    for e in [Event::JiniGroups(vec![]), Event::JiniServiceId(1), Event::JiniLease(300)] {
        assert!(!e.is_mandatory(), "{e}");
    }
}

/// "events added to the mandatory ones enable the richest SDPs to
/// interact using their advanced features without being misunderstood by
/// the poorest" — a stream full of foreign-specific events still exposes
/// its mandatory content through the accessors composers use.
#[test]
fn accessors_skip_unknown_specific_events() {
    let stream = EventStream::framed(vec![
        Event::NetType(SdpProtocol::Slp),
        Event::SlpReqVersion(2),                  // SLP-specific noise
        Event::JiniGroups(vec!["public".into()]), // Jini-specific noise
        Event::ServiceRequest,
        Event::UpnpMx(3), // UPnP-specific noise
        Event::ServiceType("clock".into()),
    ]);
    assert!(stream.is_request());
    assert_eq!(stream.service_type(), Some("clock"));
    assert_eq!(stream.net_type(), Some(SdpProtocol::Slp));
    assert!(stream.service_url().is_none());
}

#[test]
fn parser_switch_payload_names_targets() {
    // §2.4: the SSDP parser yields to an XML parser mid-process.
    let e = Event::ParserSwitch(ParserKind::Xml);
    assert_eq!(e.to_string(), "SDP_C_PARSER_SWITCH");
    assert!(e.is_mandatory());
    let _ = ParserKind::Http;
    let _ = ParserKind::Native;
}

#[test]
fn streams_require_framing() {
    assert!(EventStream::from_events(vec![Event::ServiceRequest]).is_err());
    let ok = EventStream::framed(vec![Event::ServiceRequest]);
    assert_eq!(ok.events().len(), 3);
    assert_eq!(EventStream::from_events(ok.events().to_vec()).unwrap(), ok);
}
