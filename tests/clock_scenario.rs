//! Integration test of the paper's §2.4 / Fig. 4 clock scenario: every
//! step of the SLP→UPnP translation, with the exact artifacts the paper
//! prints.

use indiss::core::{Indiss, IndissConfig, ParsedMessage, SlpUnit, SlpUnitConfig, Unit};
use indiss::net::{Datagram, World};
use indiss::slp::{Body, Header, Message, SlpConfig, SrvRqst, UserAgent};
use indiss::upnp::{ClockDevice, UpnpConfig};
use std::net::SocketAddrV4;
use std::time::Duration;

/// Fig. 4 step 1: the SLP parser must produce the paper's event list for
/// a SrvRqst, in order.
#[test]
fn step1_srv_rqst_event_stream_matches_fig4() {
    let world = World::new(1);
    let node = world.add_node("indiss");
    let unit = SlpUnit::new(&node, SlpUnitConfig::default()).unwrap();
    let msg = Message::new(
        Header::new(indiss::slp::FunctionId::SrvRqst, 0x1234, "en"),
        Body::SrvRqst(SrvRqst {
            prlist: String::new(),
            service_type: "service:clock".into(),
            scopes: "DEFAULT".into(),
            predicate: String::new(),
            spi: String::new(),
        }),
    );
    let dgram = Datagram {
        src: "10.0.0.9:40000".parse().unwrap(),
        dst: SocketAddrV4::new(indiss::slp::SLP_MULTICAST_GROUP, indiss::slp::SLP_PORT),
        payload: msg.encode().unwrap(),
    };
    let ParsedMessage::Request(stream) = unit.parse(&world, &dgram) else {
        panic!("SrvRqst must parse as a bridgeable request");
    };
    let names = stream.names();
    // The paper's step-1 list: SDP_C_START …, SDP_NET_MULTICAST,
    // SDP_NET_SOURCE_ADDR, SDP_SERVICE_REQUEST, SDP_REQ_VERSION,
    // SDP_REQ_SCOPE, SDP_REQ_PREDICATE, SDP_REQ_ID, SDP_SERVICE_TYPE,
    // SDP_C_STOP — we additionally tag SDP_NET_TYPE and SDP_REQ_LANG.
    let expected_order = [
        "SDP_C_START",
        "SDP_NET_MULTICAST",
        "SDP_NET_SOURCE_ADDR",
        "SDP_SERVICE_REQUEST",
        "SDP_REQ_VERSION",
        "SDP_REQ_SCOPE",
        "SDP_REQ_PREDICATE",
        "SDP_REQ_ID",
        "SDP_SERVICE_TYPE",
        "SDP_C_STOP",
    ];
    let mut cursor = 0;
    for name in names {
        if cursor < expected_order.len() && name == expected_order[cursor] {
            cursor += 1;
        }
    }
    assert_eq!(cursor, expected_order.len(), "Fig. 4 events present in order");
}

/// The full process: SLP client → INDISS → UPnP clock → SLP client, with
/// the paper's SrvRply artifacts (soap URL + description attributes).
#[test]
fn full_translation_produces_fig4_srv_rply() {
    let world = World::new(42);
    let service_host = world.add_node("clock-host");
    let client_host = world.add_node("slp-client");
    let _clock = ClockDevice::start(&service_host, UpnpConfig::default()).unwrap();
    let _indiss = Indiss::deploy(&service_host, IndissConfig::slp_upnp()).unwrap();
    let ua = UserAgent::start(&client_host, SlpConfig::default()).unwrap();

    let (_first, done) = ua.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(2));
    let outcome = done.take().expect("round finished");
    assert_eq!(outcome.urls.len(), 1);

    // Fig. 4: `SrvRply: service:clock:soap://…/service/timer/control`.
    let url = &outcome.urls[0].url;
    assert!(url.starts_with("service:clock:soap://"), "{url}");
    assert!(url.ends_with("/service/timer/control"), "{url}");

    // Fig. 4's attribute list: friendlyName:"CyberGarage Clock Device",
    // modelDescription:"CyberUPnP Clock Device", modelName:"Clock", …
    let attrs = ua.find_attributes(&world, url);
    world.run_for(Duration::from_secs(1));
    let attrs = attrs.take().expect("AttrRply for the bridged URL");
    assert_eq!(attrs.get("friendlyName"), Some("CyberGarage Clock Device"));
    assert_eq!(attrs.get("modelDescription"), Some("CyberUPnP Clock Device"));
    assert_eq!(attrs.get("modelName"), Some("Clock"));
    assert_eq!(attrs.get("modelNumber"), Some("1.0"));
    assert_eq!(attrs.get("manufacturerURL"), Some("http://www.cybergarage.org"));
}

/// §4.3 response-time bands: the service-side deployment must land near
/// the paper's 65 ms and the client-side one above it.
#[test]
fn response_times_land_in_paper_bands() {
    let measure = |client_side: bool| -> Duration {
        let world = World::new(9);
        let service_host = world.add_node("clock-host");
        let client_host = world.add_node("slp-client");
        let indiss_host = if client_side { &client_host } else { &service_host };
        let _clock = ClockDevice::start(&service_host, UpnpConfig::default()).unwrap();
        let _indiss = Indiss::deploy(indiss_host, IndissConfig::slp_upnp()).unwrap();
        let ua = UserAgent::start(&client_host, SlpConfig::default()).unwrap();
        let (_f, done) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(2));
        done.take().unwrap().response_time().expect("answered")
    };
    let service_side = measure(false);
    let client_side = measure(true);
    assert!(
        service_side > Duration::from_millis(55) && service_side < Duration::from_millis(80),
        "paper: 65 ms; got {service_side:?}"
    );
    assert!(client_side > service_side, "client side pays the extra crossings");
}

/// Transparency (§2.2): the application uses its unmodified native
/// library; the same `UserAgent` code path serves native and bridged
/// discoveries simultaneously.
#[test]
fn native_and_bridged_services_coexist_in_one_reply_round() {
    let world = World::new(17);
    let upnp_host = world.add_node("upnp-clock");
    let slp_host = world.add_node("slp-clock");
    let client_host = world.add_node("client");
    let gateway = world.add_node("gateway");

    let _upnp_clock = ClockDevice::start(&upnp_host, UpnpConfig::default()).unwrap();
    let sa = indiss::slp::ServiceAgent::start(&slp_host, SlpConfig::default()).unwrap();
    sa.register(
        indiss::slp::Registration::new(
            "service:clock://10.0.0.2:4444",
            indiss::slp::AttributeList::new(),
        )
        .unwrap(),
    );
    let _indiss = Indiss::deploy(&gateway, IndissConfig::slp_upnp()).unwrap();

    let ua = UserAgent::start(&client_host, SlpConfig::default()).unwrap();
    let (_f, done) = ua.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(2));
    let urls: Vec<String> = done.take().unwrap().urls.into_iter().map(|u| u.url).collect();
    assert_eq!(urls.len(), 2, "native + bridged: {urls:?}");
    assert!(urls.iter().any(|u| u == "service:clock://10.0.0.2:4444"));
    assert!(urls.iter().any(|u| u.starts_with("service:clock:soap://")));
}
