//! Cross-protocol interoperability matrix: every client kind × every
//! service kind × every INDISS location the paper's §4.2 enumerates —
//! plus the open-protocol rows: a DNS-SD-flavoured fourth SDP defined
//! *only* as an [`SdpDescriptor`] (no `Unit` implementation) must
//! round-trip against all three compiled-in protocols.

use indiss::core::{
    DescriptorClient, DescriptorService, Indiss, IndissConfig, SdpDescriptor, SdpProtocol,
};
use indiss::jini::{JiniAgent, JiniConfig, LookupService, ServiceItem};
use indiss::net::{Node, World};
use indiss::slp::{AttributeList, Registration, ServiceAgent, SlpConfig, UserAgent};
use indiss::ssdp::SearchTarget;
use indiss::upnp::{ClockDevice, ControlPoint, ControlPointConfig, UpnpConfig};
use std::time::Duration;

fn start_slp_clock(node: &Node) {
    let sa = ServiceAgent::start(node, SlpConfig::default()).unwrap();
    sa.register(
        Registration::new(
            &format!("service:clock://{}:4455/timer", node.addr()),
            AttributeList::parse("(friendlyName=SLP Clock)").unwrap(),
        )
        .unwrap(),
    );
}

/// SLP client → UPnP service, all three INDISS locations.
#[test]
fn slp_client_sees_upnp_service_from_every_location() {
    for location in ["client", "service", "gateway"] {
        let world = World::new(5);
        let service_host = world.add_node("upnp-host");
        let client_host = world.add_node("slp-host");
        let indiss_host = match location {
            "client" => client_host.clone(),
            "service" => service_host.clone(),
            _ => world.add_node("gateway"),
        };
        let _clock = ClockDevice::start(&service_host, UpnpConfig::default()).unwrap();
        let _indiss = Indiss::deploy(&indiss_host, IndissConfig::slp_upnp()).unwrap();
        let ua = UserAgent::start(&client_host, SlpConfig::default()).unwrap();
        let (_f, done) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(2));
        assert_eq!(done.take().unwrap().urls.len(), 1, "INDISS on {location} side");
    }
}

/// UPnP client → SLP service, all three locations; the answer's LOCATION
/// must be a fetchable synthetic description.
#[test]
fn upnp_client_sees_slp_service_from_every_location() {
    for location in ["client", "service", "gateway"] {
        let world = World::new(5);
        let service_host = world.add_node("slp-host");
        let client_host = world.add_node("upnp-host");
        let indiss_host = match location {
            "client" => client_host.clone(),
            "service" => service_host.clone(),
            _ => world.add_node("gateway"),
        };
        start_slp_clock(&service_host);
        let _indiss = Indiss::deploy(&indiss_host, IndissConfig::slp_upnp()).unwrap();
        let cp = ControlPoint::start(&client_host, ControlPointConfig::default()).unwrap();
        let (_f, all) = cp.search(&world, SearchTarget::device_urn("clock", 1));
        world.run_for(Duration::from_secs(2));
        let hits = all.take().unwrap();
        assert_eq!(hits.len(), 1, "INDISS on {location} side");

        // The description must really be served and carry the endpoint.
        let described = cp.fetch_description(&world, &hits[0].location);
        world.run_for(Duration::from_secs(2));
        let desc = described.take().unwrap().expect("synthetic description fetchable");
        assert_eq!(desc.friendly_name, "SLP Clock");
        assert!(desc.services[0].control_url.starts_with("service:clock://"));
    }
}

/// Jini client → UPnP service: the Jini unit announces itself as lookup
/// service and bridges the lookup.
#[test]
fn jini_client_sees_upnp_service() {
    let world = World::new(6);
    let service_host = world.add_node("upnp-host");
    let client_host = world.add_node("jini-host");
    let gateway = world.add_node("gateway");
    let _clock = ClockDevice::start(&service_host, UpnpConfig::default()).unwrap();
    let _indiss = Indiss::deploy(&gateway, IndissConfig::all_protocols()).unwrap();
    let client = JiniAgent::start(&client_host, JiniConfig::default()).unwrap();
    let found = client.lookup("clock");
    world.run_for(Duration::from_secs(3));
    let items = found.take().expect("lookup answered");
    assert_eq!(items.len(), 1);
    assert!(items[0].endpoint.starts_with("soap://"), "{:?}", items[0]);
    assert!(items[0]
        .attributes
        .iter()
        .any(|(t, v)| t == "friendlyName" && v == "CyberGarage Clock Device"));
}

/// SLP client → Jini service behind a real lookup service.
#[test]
fn slp_client_sees_jini_service() {
    let world = World::new(6);
    let reggie_host = world.add_node("reggie");
    let provider_host = world.add_node("provider");
    let client_host = world.add_node("slp-client");
    let gateway = world.add_node("gateway");
    let _reggie = LookupService::start(&reggie_host, JiniConfig::default()).unwrap();
    let provider = JiniAgent::start(&provider_host, JiniConfig::default()).unwrap();
    provider.register(ServiceItem {
        service_id: 9,
        service_type: "clock".into(),
        endpoint: format!("{}:9100", provider_host.addr()),
        attributes: vec![("friendlyName".into(), "Jini Clock".into())],
    });
    let _indiss = Indiss::deploy(&gateway, IndissConfig::all_protocols()).unwrap();
    world.run_for(Duration::from_secs(1));

    let ua = UserAgent::start(&client_host, SlpConfig::default()).unwrap();
    let (_f, done) = ua.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(2));
    let urls = done.take().unwrap().urls;
    assert_eq!(urls.len(), 1);
    assert!(urls[0].url.starts_with("service:clock:jini://"), "{}", urls[0].url);
}

/// UPnP client → Jini service: both ends foreign to each other.
#[test]
fn upnp_client_sees_jini_service() {
    let world = World::new(6);
    let reggie_host = world.add_node("reggie");
    let provider_host = world.add_node("provider");
    let client_host = world.add_node("upnp-client");
    let gateway = world.add_node("gateway");
    let _reggie = LookupService::start(&reggie_host, JiniConfig::default()).unwrap();
    let provider = JiniAgent::start(&provider_host, JiniConfig::default()).unwrap();
    provider.register(ServiceItem {
        service_id: 10,
        service_type: "thermometer".into(),
        endpoint: format!("{}:9200", provider_host.addr()),
        attributes: vec![],
    });
    let _indiss = Indiss::deploy(&gateway, IndissConfig::all_protocols()).unwrap();
    world.run_for(Duration::from_secs(1));

    let cp = ControlPoint::start(&client_host, ControlPointConfig::default()).unwrap();
    let (_f, all) = cp.search(&world, SearchTarget::device_urn("thermometer", 1));
    world.run_for(Duration::from_secs(2));
    assert_eq!(all.take().unwrap().len(), 1);
}

/// The 4-protocol gateway configuration every descriptor test deploys.
fn four_protocol_config() -> IndissConfig {
    IndissConfig::builder().slp().upnp().jini().descriptor(SdpDescriptor::dns_sd()).build()
}

/// DNS-SD client → UPnP service: a protocol that exists only as data
/// discovers a service behind a hand-written unit.
#[test]
fn dnssd_client_sees_upnp_service() {
    let world = World::new(9);
    let service_host = world.add_node("upnp-host");
    let client_host = world.add_node("dnssd-host");
    let gateway = world.add_node("gateway");
    let _clock = ClockDevice::start(&service_host, UpnpConfig::default()).unwrap();
    let _indiss = Indiss::deploy(&gateway, four_protocol_config()).unwrap();
    let client = DescriptorClient::start(&client_host, SdpDescriptor::dns_sd()).unwrap();
    let (first, done) = client.query(&world, "clock");
    world.run_for(Duration::from_secs(2));
    let url = first.take().expect("answered through INDISS");
    assert!(url.starts_with("soap://"), "UPnP control endpoint, got {url}");
    assert_eq!(done.take().unwrap().len(), 1);
}

/// DNS-SD client → SLP and Jini services, one query each.
#[test]
fn dnssd_client_sees_slp_and_jini_services() {
    let world = World::new(9);
    let slp_host = world.add_node("slp-host");
    let reggie_host = world.add_node("reggie");
    let provider_host = world.add_node("provider");
    let client_host = world.add_node("dnssd-host");
    let gateway = world.add_node("gateway");
    start_slp_clock(&slp_host);
    let _reggie = LookupService::start(&reggie_host, JiniConfig::default()).unwrap();
    let provider = JiniAgent::start(&provider_host, JiniConfig::default()).unwrap();
    provider.register(ServiceItem {
        service_id: 11,
        service_type: "thermometer".into(),
        endpoint: format!("{}:9300", provider_host.addr()),
        attributes: vec![],
    });
    let _indiss = Indiss::deploy(&gateway, four_protocol_config()).unwrap();
    world.run_for(Duration::from_secs(1));

    let client = DescriptorClient::start(&client_host, SdpDescriptor::dns_sd()).unwrap();
    let (clock_first, _) = client.query(&world, "clock");
    world.run_for(Duration::from_secs(2));
    let url = clock_first.take().expect("SLP clock answered");
    assert!(url.starts_with("service:clock://"), "SLP service URL, got {url}");

    let (thermo_first, _) = client.query(&world, "thermometer");
    world.run_for(Duration::from_secs(2));
    let url = thermo_first.take().expect("Jini thermometer answered");
    assert!(url.starts_with("jini://"), "Jini endpoint, got {url}");
}

/// DNS-SD service → SLP, UPnP and Jini clients: the descriptor
/// protocol's adverts and query answers are visible in all three
/// directions, and its records land in the registry under the dynamic
/// origin.
#[test]
fn dnssd_service_is_visible_to_all_three_builtin_clients() {
    let world = World::new(9);
    let service_host = world.add_node("dnssd-host");
    let gateway = world.add_node("gateway");
    let indiss = Indiss::deploy(&gateway, four_protocol_config()).unwrap();
    let service = DescriptorService::start(&service_host, SdpDescriptor::dns_sd()).unwrap();
    service.register("scanner", "scan://10.0.0.8:6566/sane");
    world.run_for(Duration::from_secs(1));

    // The announce was recorded under the dynamic origin protocol.
    let dnssd = SdpDescriptor::dns_sd().protocol();
    let registry = indiss.registry();
    assert_eq!(registry.record_count_by_origin(dnssd, world.now()), 1, "advert recorded");
    assert!(registry.contains_type("scanner", world.now()));

    // SLP client.
    let ua = UserAgent::start(&world.add_node("slp-client"), SlpConfig::default()).unwrap();
    let (_f, done) = ua.find_services(&world, "service:scanner", "");
    world.run_for(Duration::from_secs(2));
    let urls = done.take().unwrap().urls;
    assert_eq!(urls.len(), 1, "SLP sees the DNS-SD scanner");
    assert!(urls[0].url.starts_with("service:scanner:scan://"), "{}", urls[0].url);

    // UPnP control point.
    let cp =
        ControlPoint::start(&world.add_node("upnp-client"), ControlPointConfig::default()).unwrap();
    let (_f, all) = cp.search(&world, SearchTarget::device_urn("scanner", 1));
    world.run_for(Duration::from_secs(2));
    assert_eq!(all.take().unwrap().len(), 1, "UPnP sees the DNS-SD scanner");

    // Jini client.
    let jini = JiniAgent::start(&world.add_node("jini-client"), JiniConfig::default()).unwrap();
    let found = jini.lookup("scanner");
    world.run_for(Duration::from_secs(2));
    let items = found.take().expect("lookup answered");
    assert_eq!(items.len(), 1, "Jini sees the DNS-SD scanner");
    assert!(items[0].endpoint.starts_with("scan://"), "{:?}", items[0]);
}

/// The dynamic protocol gets the same registry machinery as compiled-in
/// units: repeat queries hit the response cache, absent types arm the
/// per-(origin, type) negative cache, and the suppression window holds.
#[test]
fn dnssd_requests_use_cache_negative_cache_and_suppression() {
    let world = World::new(9);
    let service_host = world.add_node("upnp-host");
    let client_host = world.add_node("dnssd-host");
    let gateway = world.add_node("gateway");
    let _clock = ClockDevice::start(&service_host, UpnpConfig::default()).unwrap();
    let indiss = Indiss::deploy(
        &gateway,
        IndissConfig::builder()
            .slp()
            .upnp()
            .jini()
            .descriptor(SdpDescriptor::dns_sd())
            .negative_ttl(Duration::from_secs(60))
            .build(),
    )
    .unwrap();
    let client = DescriptorClient::start(&client_host, SdpDescriptor::dns_sd()).unwrap();

    // Cold query bridges; the repeat is answered from the cache.
    let (_f, d) = client.query(&world, "clock");
    world.run_for(Duration::from_secs(2));
    assert_eq!(d.take().unwrap().len(), 1);
    let cold = indiss.stats();
    assert_eq!(cold.requests_bridged, 1);
    let (_f, d) = client.query(&world, "clock");
    world.run_for(Duration::from_secs(2));
    assert_eq!(d.take().unwrap().len(), 1, "warm answer");
    let warm = indiss.stats();
    assert_eq!(warm.cache_hits, cold.cache_hits + 1, "cache hit counted");

    // An absent type fans out once, then the negative cache absorbs the
    // storm — keyed by the *dynamic* origin protocol.
    for _ in 0..3 {
        let (_f, d) = client.query(&world, "toaster");
        world.run_for(Duration::from_secs(1));
        assert!(d.take().unwrap().is_empty());
    }
    let stats = indiss.stats();
    assert_eq!(
        stats.requests_bridged,
        warm.requests_bridged + 1,
        "one fan-out for the absent type: {stats:?}"
    );
    assert_eq!(stats.negative_hits, 2, "storm absorbed: {stats:?}");

    // The suppression window sees dynamic-origin types too: a burst of
    // distinct-client queries inside the window is not re-bridged.
    let burst_client =
        DescriptorClient::start(&world.add_node("dnssd-burst"), SdpDescriptor::dns_sd()).unwrap();
    let registry = indiss.registry();
    assert!(matches!(SdpDescriptor::dns_sd().protocol(), SdpProtocol::Dynamic(_)));
    registry.mark_bridged("printer", world.now() + Duration::from_secs(5));
    let (_f, d) = burst_client.query(&world, "printer");
    world.run_for(Duration::from_secs(1));
    assert!(d.take().unwrap().is_empty());
    assert!(indiss.stats().requests_suppressed >= 1, "{:?}", indiss.stats());
}

/// Two INDISS instances in one network must not amplify traffic into a
/// loop: each ignores its own sockets, and bridged answers are unicast.
#[test]
fn two_gateways_do_not_loop() {
    let world = World::new(8);
    let service_host = world.add_node("upnp-host");
    let client_host = world.add_node("slp-host");
    let gw1 = world.add_node("gateway-1");
    let gw2 = world.add_node("gateway-2");
    let _clock = ClockDevice::start(&service_host, UpnpConfig::default()).unwrap();
    let indiss1 = Indiss::deploy(&gw1, IndissConfig::slp_upnp()).unwrap();
    let indiss2 = Indiss::deploy(&gw2, IndissConfig::slp_upnp()).unwrap();
    let ua = UserAgent::start(&client_host, SlpConfig::default()).unwrap();
    let (_f, done) = ua.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(3));
    // Both gateways answer (duplicate replies are normal in multicast
    // discovery) but the system settles: no unbounded request storm.
    let urls = done.take().unwrap().urls;
    assert!(!urls.is_empty() && urls.len() <= 4, "bounded answers: {urls:?}");
    let total_bridged = indiss1.stats().requests_bridged + indiss2.stats().requests_bridged;
    assert!(total_bridged <= 6, "no amplification loop: {total_bridged}");
}
