//! Failure injection and hostile-input tests: INDISS must degrade, not
//! break, when the network or its peers misbehave.

use indiss::core::{Indiss, IndissConfig};
use indiss::net::{LinkConfig, World, WorldConfig};
use indiss::slp::{SlpConfig, UserAgent};
use indiss::upnp::{ClockDevice, UpnpConfig};
use std::net::SocketAddrV4;
use std::time::Duration;

/// Garbage on the monitored ports must not disturb bridging.
#[test]
fn malformed_packets_on_sdp_ports_are_ignored() {
    let world = World::new(51);
    let service_host = world.add_node("clock-host");
    let client_host = world.add_node("slp-client");
    let attacker = world.add_node("fuzzer");
    let _clock = ClockDevice::start(&service_host, UpnpConfig::default()).unwrap();
    let indiss = Indiss::deploy(&service_host, IndissConfig::slp_upnp()).unwrap();

    // Blast junk at both SDP ports, multicast and unicast.
    let gun = attacker.udp_bind_ephemeral().unwrap();
    let payloads: Vec<Vec<u8>> = vec![
        vec![],
        vec![0xFF; 3],
        b"GET / HTTP/1.1\r\n\r\n".to_vec(), // valid HTTP, wrong method for SSDP
        b"\x02\x01\x00\x00\x08".to_vec(),   // truncated SLP header
        vec![0x41; 2000],                   // oversized noise
        b"M-SEARCH * HTTP/1.1\r\nST: ssdp:all\r\n\r\n".to_vec(), // no MAN header
    ];
    for (i, p) in payloads.iter().enumerate() {
        let port = if i % 2 == 0 { 427 } else { 1900 };
        let group = if port == 427 {
            indiss::slp::SLP_MULTICAST_GROUP
        } else {
            indiss::ssdp::SSDP_MULTICAST_GROUP
        };
        let _ = gun.send_to(p, SocketAddrV4::new(group, port));
        let _ = gun.send_to(p, SocketAddrV4::new(service_host.addr(), port));
    }
    world.run_for(Duration::from_secs(1));

    // Bridging still works afterwards.
    let ua = UserAgent::start(&client_host, SlpConfig::default()).unwrap();
    let (_f, done) = ua.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(2));
    assert_eq!(done.take().unwrap().urls.len(), 1);
    // Detection counted the junk (port-based detection has no notion of
    // well-formedness, §2.1) but nothing was bridged from it.
    assert_eq!(indiss.stats().responses_composed, 1);
}

/// The target service crashing mid-bridge must yield silence to the
/// client, not a hang or a partial answer.
#[test]
fn service_crash_mid_bridge_degrades_to_silence() {
    let world = World::new(52);
    let service_host = world.add_node("clock-host");
    let client_host = world.add_node("slp-client");
    let gateway = world.add_node("gateway");
    let _clock = ClockDevice::start(&service_host, UpnpConfig::default()).unwrap();
    let _indiss = Indiss::deploy(&gateway, IndissConfig::slp_upnp()).unwrap();
    let ua = UserAgent::start(&client_host, SlpConfig::default()).unwrap();

    // Crash the device just after the search would reach it but before
    // the description fetch completes.
    let crash_at = Duration::from_millis(45);
    let host = service_host.clone();
    world.schedule_in(crash_at, move |_| host.set_up(false));

    let (first, done) = ua.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(3));
    assert!(!first.is_complete(), "no partial answer");
    assert!(done.take().unwrap().urls.is_empty());
}

/// Packet loss on the LAN: multicast discovery is inherently best-effort;
/// INDISS must simply miss the request, not misbehave. (A native client
/// would retry; we assert retries eventually succeed.)
#[test]
fn lossy_network_recovers_on_retry() {
    let mut cfg = WorldConfig::with_seed(53);
    cfg.default_link = LinkConfig::lan_10mbps().with_loss(0.5);
    let world = World::with_config(cfg);
    let service_host = world.add_node("clock-host");
    let client_host = world.add_node("slp-client");
    let _clock = ClockDevice::start(&service_host, UpnpConfig::default()).unwrap();
    let _indiss = Indiss::deploy(&service_host, IndissConfig::slp_upnp()).unwrap();
    let ua = UserAgent::start(&client_host, SlpConfig::default()).unwrap();

    // Retry until something gets through (bounded).
    let mut answered = false;
    for _ in 0..20 {
        let (_f, done) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(1));
        if done.take().map(|o| !o.urls.is_empty()).unwrap_or(false) {
            answered = true;
            break;
        }
    }
    assert!(answered, "eventually a request+reply pair survives 90% loss");
}

/// A downed INDISS node must leave native discovery untouched.
#[test]
fn indiss_down_does_not_affect_native_paths() {
    let world = World::new(54);
    let service_host = world.add_node("slp-service");
    let client_host = world.add_node("slp-client");
    let gateway = world.add_node("gateway");
    let sa = indiss::slp::ServiceAgent::start(&service_host, SlpConfig::default()).unwrap();
    sa.register(
        indiss::slp::Registration::new(
            "service:clock://10.0.0.1:9",
            indiss::slp::AttributeList::new(),
        )
        .unwrap(),
    );
    let _indiss = Indiss::deploy(&gateway, IndissConfig::slp_upnp()).unwrap();
    gateway.set_up(false);

    let ua = UserAgent::start(&client_host, SlpConfig::default()).unwrap();
    let (_f, done) = ua.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(2));
    assert_eq!(done.take().unwrap().urls.len(), 1, "native SLP unaffected");
}

/// Repeated deploy/teardown cycles across worlds must be independent —
/// no global state leaks between simulations.
#[test]
fn worlds_are_isolated() {
    for seed in 0..5 {
        let world = World::new(seed);
        let host = world.add_node("host");
        let client = world.add_node("client");
        let _clock = ClockDevice::start(&host, UpnpConfig::default()).unwrap();
        let indiss = Indiss::deploy(&host, IndissConfig::slp_upnp()).unwrap();
        let ua = UserAgent::start(&client, SlpConfig::default()).unwrap();
        let (_f, done) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(2));
        assert_eq!(done.take().unwrap().urls.len(), 1, "seed {seed}");
        assert_eq!(indiss.stats().requests_bridged, 1, "fresh stats per world");
    }
}

/// The same search type asked rapidly from two different clients within
/// the suppression window: the second is served from cache, not dropped.
#[test]
fn suppression_window_does_not_starve_second_client() {
    let world = World::new(55);
    let service_host = world.add_node("clock-host");
    let c1 = world.add_node("client-1");
    let c2 = world.add_node("client-2");
    let _clock = ClockDevice::start(&service_host, UpnpConfig::default()).unwrap();
    let indiss = Indiss::deploy(&service_host, IndissConfig::slp_upnp()).unwrap();
    let ua1 = UserAgent::start(&c1, SlpConfig::default()).unwrap();
    let ua2 = UserAgent::start(&c2, SlpConfig::default()).unwrap();

    let (_f1, d1) = ua1.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_millis(200));
    let (_f2, d2) = ua2.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(2));
    assert_eq!(d1.take().unwrap().urls.len(), 1);
    assert_eq!(d2.take().unwrap().urls.len(), 1, "second client cache-served");
    assert_eq!(indiss.stats().cache_hits, 1);
}
