//! Repository-based discovery (paper §2's taxonomy): the optional SLP
//! Directory Agent and Jini's mandatory lookup service both act as
//! "centralized lookup services", and INDISS must interoperate with them
//! exactly as with repository-less agents.

use indiss::core::{Indiss, IndissConfig};
use indiss::net::World;
use indiss::slp::{
    AttributeList, DirectoryAgent, Registration, ServiceAgent, SlpConfig, UserAgent,
};
use indiss::ssdp::SearchTarget;
use indiss::upnp::{ControlPoint, ControlPointConfig};
use std::net::SocketAddrV4;
use std::time::Duration;

/// A UPnP client can discover an SLP service whose only announcer is a
/// Directory Agent: the INDISS SLP unit's multicast SrvRqst is answered
/// by the DA from its store.
#[test]
fn upnp_client_finds_service_known_only_to_a_da() {
    let world = World::new(71);
    let da_host = world.add_node("da");
    let sa_host = world.add_node("sa");
    let client_host = world.add_node("upnp-client");
    let gateway = world.add_node("gateway");

    let da =
        DirectoryAgent::start(&da_host, SlpConfig::default(), Duration::from_secs(60)).unwrap();
    let sa = ServiceAgent::start(&sa_host, SlpConfig::default()).unwrap();
    sa.register(
        Registration::new(
            "service:clock://10.0.0.2:9100",
            AttributeList::parse("(friendlyName=DA Clock)").unwrap(),
        )
        .unwrap(),
    );
    // Let the SA hear the DAAdvert and forward its registration, then
    // silence the SA so only the DA can answer.
    world.run_for(Duration::from_secs(1));
    assert_eq!(da.registration_count(), 1);
    sa.deregister("service:clock://10.0.0.2:9100");

    let indiss = Indiss::deploy(&gateway, IndissConfig::slp_upnp()).unwrap();
    let cp = ControlPoint::start(&client_host, ControlPointConfig::default()).unwrap();
    let (_f, all) = cp.search(&world, SearchTarget::device_urn("clock", 1));
    world.run_for(Duration::from_secs(2));
    let hits = all.take().unwrap();
    assert_eq!(hits.len(), 1, "the DA's store was bridged to UPnP");

    // The DA-known service now lives in the gateway's registry: the
    // bridged SrvRply warmed the response cache, so the next foreign
    // request is answered from already-held knowledge (§4.3).
    let registry = indiss.registry();
    assert!(
        registry.cache_contains("clock", world.now()),
        "DA-known service landed in the registry: {registry:?}"
    );
    assert_eq!(registry.cached_types(world.now()), vec!["clock"]);
}

/// The DA answering unicast requests: a UA pointed at the DA (no
/// multicast at all) coexists with INDISS on the same network.
#[test]
fn unicast_da_discovery_is_undisturbed_by_indiss() {
    let world = World::new(72);
    let da_host = world.add_node("da");
    let sa_host = world.add_node("sa");
    let client_host = world.add_node("client");
    let gateway = world.add_node("gateway");

    let _da =
        DirectoryAgent::start(&da_host, SlpConfig::default(), Duration::from_secs(60)).unwrap();
    let sa = ServiceAgent::start(&sa_host, SlpConfig::default()).unwrap();
    sa.register(Registration::new("service:printer://10.0.0.2:515", AttributeList::new()).unwrap());
    let _indiss = Indiss::deploy(&gateway, IndissConfig::slp_upnp()).unwrap();
    world.run_for(Duration::from_secs(1));

    let ua = UserAgent::start(&client_host, SlpConfig::default()).unwrap();
    ua.set_da(Some(SocketAddrV4::new(da_host.addr(), indiss::slp::SLP_PORT)));
    let (_f, done) = ua.find_services(&world, "service:printer", "");
    world.run_for(Duration::from_secs(1));
    assert_eq!(done.take().unwrap().urls.len(), 1);
}

/// Repository + repository-less mixing: with both a DA and a live SA
/// answering, the client sees the service exactly twice (once each) and
/// INDISS adds nothing spurious.
#[test]
fn da_and_sa_both_answer_without_indiss_interference() {
    let world = World::new(73);
    let da_host = world.add_node("da");
    let sa_host = world.add_node("sa");
    let client_host = world.add_node("client");
    let gateway = world.add_node("gateway");

    let da =
        DirectoryAgent::start(&da_host, SlpConfig::default(), Duration::from_secs(60)).unwrap();
    let sa = ServiceAgent::start(&sa_host, SlpConfig::default()).unwrap();
    sa.register(Registration::new("service:clock://10.0.0.2:9100", AttributeList::new()).unwrap());
    let _indiss = Indiss::deploy(&gateway, IndissConfig::slp_upnp()).unwrap();
    world.run_for(Duration::from_secs(1));
    assert_eq!(da.registration_count(), 1);

    let ua = UserAgent::start(&client_host, SlpConfig::default()).unwrap();
    let (_f, done) = ua.find_services(&world, "service:clock", "");
    world.run_for(Duration::from_secs(1));
    let urls = done.take().unwrap().urls;
    assert_eq!(urls.len(), 2, "SA + DA, nothing more: {urls:?}");
    assert!(urls.iter().all(|u| u.url == "service:clock://10.0.0.2:9100"));
}
