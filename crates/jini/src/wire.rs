//! Compact binary codec for the simplified Jini discovery protocol.
//!
//! Real Jini moves Java-serialized `ServiceRegistrar` proxies over JRMP;
//! that is not reproducible (or desirable) outside a JVM. As documented in
//! `DESIGN.md` §5, we substitute a compact binary record format that
//! preserves the protocol *shape*: multicast request / announcement
//! packets on port 4160 and unicast registrar traffic.

use std::fmt;

/// Protocol version tag.
pub const JINI_WIRE_VERSION: u8 = 1;

/// Packet type discriminants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PacketType {
    /// Multicast request: "any lookup services out there?"
    DiscoveryRequest = 1,
    /// Multicast announcement / unicast reply: "lookup service here".
    Announcement = 2,
    /// Unicast: register a service item with the registrar.
    Register = 3,
    /// Unicast: acknowledgement of a registration.
    RegisterAck = 4,
    /// Unicast: query the registrar by service type.
    Lookup = 5,
    /// Unicast: query results.
    LookupReply = 6,
}

impl PacketType {
    fn from_u8(v: u8) -> Option<PacketType> {
        Some(match v {
            1 => PacketType::DiscoveryRequest,
            2 => PacketType::Announcement,
            3 => PacketType::Register,
            4 => PacketType::RegisterAck,
            5 => PacketType::Lookup,
            6 => PacketType::LookupReply,
            _ => return None,
        })
    }
}

/// One registered Jini service: the stand-in for a serialized proxy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ServiceItem {
    /// Unique service id.
    pub service_id: u64,
    /// Service type name, e.g. `clock`.
    pub service_type: String,
    /// Endpoint the proxy would connect to, e.g. `10.0.0.2:4005`.
    pub endpoint: String,
    /// Attribute pairs (Jini's `Entry` attributes, flattened).
    pub attributes: Vec<(String, String)>,
}

/// A parsed Jini packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JiniPacket {
    /// Multicast lookup-service discovery request; `groups` filters which
    /// lookup services should answer (empty = all).
    DiscoveryRequest {
        /// Discovery groups of interest.
        groups: Vec<String>,
    },
    /// Lookup service announcement (multicast, or unicast reply to a
    /// discovery request).
    Announcement {
        /// Registrar host string.
        host: String,
        /// Registrar port.
        port: u16,
        /// Groups served.
        groups: Vec<String>,
    },
    /// Register a service item.
    Register {
        /// The item to store.
        item: ServiceItem,
        /// Requested lease duration, seconds.
        lease_secs: u32,
    },
    /// Registration acknowledgement with granted lease.
    RegisterAck {
        /// Echoed service id.
        service_id: u64,
        /// Granted lease, seconds.
        lease_secs: u32,
    },
    /// Query by service type (empty = all).
    Lookup {
        /// Service type filter.
        service_type: String,
    },
    /// Query results.
    LookupReply {
        /// Matching items.
        items: Vec<ServiceItem>,
    },
}

/// Errors decoding a Jini packet.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JiniError {
    /// Buffer too short.
    Truncated,
    /// Unknown version byte.
    BadVersion(u8),
    /// Unknown packet type.
    BadPacketType(u8),
    /// String field is not UTF-8.
    BadString,
}

impl fmt::Display for JiniError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JiniError::Truncated => write!(f, "truncated jini packet"),
            JiniError::BadVersion(v) => write!(f, "unknown jini wire version {v}"),
            JiniError::BadPacketType(t) => write!(f, "unknown jini packet type {t}"),
            JiniError::BadString => write!(f, "jini string field is not utf-8"),
        }
    }
}

impl std::error::Error for JiniError {}

/// Convenience alias for Jini codec results.
pub type JiniResult<T> = Result<T, JiniError>;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(ptype: PacketType) -> Self {
        Writer { buf: vec![JINI_WIRE_VERSION, ptype as u8] }
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn string(&mut self, s: &str) {
        let len = s.len().min(u16::MAX as usize) as u16;
        self.u16(len);
        self.buf.extend_from_slice(&s.as_bytes()[..len as usize]);
    }

    fn strings(&mut self, items: &[String]) {
        self.u16(items.len().min(u16::MAX as usize) as u16);
        for s in items {
            self.string(s);
        }
    }

    fn item(&mut self, item: &ServiceItem) {
        self.u64(item.service_id);
        self.string(&item.service_type);
        self.string(&item.endpoint);
        self.u16(item.attributes.len().min(u16::MAX as usize) as u16);
        for (k, v) in &item.attributes {
            self.string(k);
            self.string(v);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> JiniResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(JiniError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> JiniResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> JiniResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> JiniResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> JiniResult<u64> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_be_bytes(arr))
    }

    fn string(&mut self) -> JiniResult<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| JiniError::BadString)
    }

    fn strings(&mut self) -> JiniResult<Vec<String>> {
        let n = self.u16()? as usize;
        let mut out = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            out.push(self.string()?);
        }
        Ok(out)
    }

    fn item(&mut self) -> JiniResult<ServiceItem> {
        let service_id = self.u64()?;
        let service_type = self.string()?;
        let endpoint = self.string()?;
        let n = self.u16()? as usize;
        let mut attributes = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let k = self.string()?;
            let v = self.string()?;
            attributes.push((k, v));
        }
        Ok(ServiceItem { service_id, service_type, endpoint, attributes })
    }
}

impl JiniPacket {
    /// Encodes the packet to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            JiniPacket::DiscoveryRequest { groups } => {
                let mut w = Writer::new(PacketType::DiscoveryRequest);
                w.strings(groups);
                w.buf
            }
            JiniPacket::Announcement { host, port, groups } => {
                let mut w = Writer::new(PacketType::Announcement);
                w.string(host);
                w.u16(*port);
                w.strings(groups);
                w.buf
            }
            JiniPacket::Register { item, lease_secs } => {
                let mut w = Writer::new(PacketType::Register);
                w.item(item);
                w.u32(*lease_secs);
                w.buf
            }
            JiniPacket::RegisterAck { service_id, lease_secs } => {
                let mut w = Writer::new(PacketType::RegisterAck);
                w.u64(*service_id);
                w.u32(*lease_secs);
                w.buf
            }
            JiniPacket::Lookup { service_type } => {
                let mut w = Writer::new(PacketType::Lookup);
                w.string(service_type);
                w.buf
            }
            JiniPacket::LookupReply { items } => {
                let mut w = Writer::new(PacketType::LookupReply);
                w.u16(items.len().min(u16::MAX as usize) as u16);
                for item in items {
                    w.item(item);
                }
                w.buf
            }
        }
    }

    /// Decodes a packet from wire bytes.
    ///
    /// # Errors
    ///
    /// Any [`JiniError`] for malformed input.
    pub fn decode(buf: &[u8]) -> JiniResult<JiniPacket> {
        let mut r = Reader { buf, pos: 0 };
        let version = r.u8()?;
        if version != JINI_WIRE_VERSION {
            return Err(JiniError::BadVersion(version));
        }
        let ptype_byte = r.u8()?;
        let ptype = PacketType::from_u8(ptype_byte).ok_or(JiniError::BadPacketType(ptype_byte))?;
        Ok(match ptype {
            PacketType::DiscoveryRequest => JiniPacket::DiscoveryRequest { groups: r.strings()? },
            PacketType::Announcement => {
                JiniPacket::Announcement { host: r.string()?, port: r.u16()?, groups: r.strings()? }
            }
            PacketType::Register => JiniPacket::Register { item: r.item()?, lease_secs: r.u32()? },
            PacketType::RegisterAck => {
                JiniPacket::RegisterAck { service_id: r.u64()?, lease_secs: r.u32()? }
            }
            PacketType::Lookup => JiniPacket::Lookup { service_type: r.string()? },
            PacketType::LookupReply => {
                let n = r.u16()? as usize;
                let mut items = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    items.push(r.item()?);
                }
                JiniPacket::LookupReply { items }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item() -> ServiceItem {
        ServiceItem {
            service_id: 0xDEADBEEF,
            service_type: "clock".into(),
            endpoint: "10.0.0.2:4005".into(),
            attributes: vec![("name".into(), "Jini Clock".into())],
        }
    }

    #[test]
    fn all_packets_roundtrip() {
        let packets = vec![
            JiniPacket::DiscoveryRequest { groups: vec!["public".into()] },
            JiniPacket::DiscoveryRequest { groups: vec![] },
            JiniPacket::Announcement {
                host: "10.0.0.5".into(),
                port: 4160,
                groups: vec!["public".into(), "lab".into()],
            },
            JiniPacket::Register { item: item(), lease_secs: 300 },
            JiniPacket::RegisterAck { service_id: 1, lease_secs: 300 },
            JiniPacket::Lookup { service_type: "clock".into() },
            JiniPacket::LookupReply { items: vec![item(), item()] },
        ];
        for p in packets {
            let wire = p.encode();
            assert_eq!(JiniPacket::decode(&wire).unwrap(), p, "{p:?}");
        }
    }

    #[test]
    fn rejects_bad_version_and_type() {
        assert_eq!(JiniPacket::decode(&[9, 1]), Err(JiniError::BadVersion(9)));
        assert_eq!(JiniPacket::decode(&[1, 99]), Err(JiniError::BadPacketType(99)));
        assert_eq!(JiniPacket::decode(&[]), Err(JiniError::Truncated));
    }

    #[test]
    fn truncation_detected_mid_item() {
        let wire = JiniPacket::Register { item: item(), lease_secs: 60 }.encode();
        assert_eq!(JiniPacket::decode(&wire[..wire.len() - 3]), Err(JiniError::Truncated));
    }
}
