//! Jini roles: lookup service (registrar), service provider, and client.

use std::cell::RefCell;
use std::net::SocketAddrV4;
use std::rc::Rc;
use std::time::Duration;

use indiss_net::{Completion, Datagram, NetResult, Node, SimTime, UdpSocket, World};

use crate::wire::{JiniPacket, ServiceItem};

/// IANA-assigned Jini discovery port (request and announcement).
pub const JINI_PORT: u16 = 4160;

/// Jini multicast announcement group.
pub const JINI_ANNOUNCEMENT_GROUP: std::net::Ipv4Addr = std::net::Ipv4Addr::new(224, 0, 1, 84);

/// Jini multicast request group.
pub const JINI_REQUEST_GROUP: std::net::Ipv4Addr = std::net::Ipv4Addr::new(224, 0, 1, 85);

/// Shared Jini tuning.
#[derive(Debug, Clone)]
pub struct JiniConfig {
    /// Discovery groups served / requested.
    pub groups: Vec<String>,
    /// Per-message processing cost. A JVM-based registrar sat between
    /// SLP's and UPnP's costs; 2 ms is a reasonable middle ground.
    pub processing_delay: Duration,
    /// Interval between unsolicited announcements.
    pub announce_interval: Duration,
    /// Granted lease duration, seconds.
    pub lease_secs: u32,
}

impl Default for JiniConfig {
    fn default() -> Self {
        JiniConfig {
            groups: vec!["public".to_owned()],
            processing_delay: Duration::from_millis(2),
            announce_interval: Duration::from_secs(120),
            lease_secs: 300,
        }
    }
}

struct RegistrarInner {
    node: Node,
    socket: UdpSocket,
    config: JiniConfig,
    store: Vec<(ServiceItem, SimTime)>,
    running: bool,
}

/// A Jini lookup service (the "reggie" role): the mandatory repository of
/// Jini's discovery architecture.
#[derive(Clone)]
pub struct LookupService {
    inner: Rc<RefCell<RegistrarInner>>,
}

impl LookupService {
    /// Starts a lookup service on `node`.
    ///
    /// # Errors
    ///
    /// Network errors if UDP 4160 is exclusively taken on this node.
    pub fn start(node: &Node, config: JiniConfig) -> NetResult<LookupService> {
        let socket = node.udp_bind_shared(JINI_PORT)?;
        socket.join_multicast(JINI_REQUEST_GROUP)?;
        socket.join_multicast(JINI_ANNOUNCEMENT_GROUP)?;
        let ls = LookupService {
            inner: Rc::new(RefCell::new(RegistrarInner {
                node: node.clone(),
                socket: socket.clone(),
                config,
                store: Vec::new(),
                running: true,
            })),
        };
        let handler = ls.clone();
        socket.on_receive(move |world, dgram| handler.handle(world, dgram));
        let announcer = ls.clone();
        node.world().schedule_in(Duration::ZERO, move |w| announcer.announce_and_reschedule(w));
        Ok(ls)
    }

    /// Number of live registrations.
    pub fn registration_count(&self) -> usize {
        self.inner.borrow().store.len()
    }

    /// Stops announcing and answering.
    pub fn shutdown(&self) {
        self.inner.borrow_mut().running = false;
    }

    fn announcement(&self) -> JiniPacket {
        let inner = self.inner.borrow();
        JiniPacket::Announcement {
            host: inner.node.addr().to_string(),
            port: JINI_PORT,
            groups: inner.config.groups.clone(),
        }
    }

    fn announce_and_reschedule(&self, world: &World) {
        let (running, interval, socket) = {
            let inner = self.inner.borrow();
            (inner.running, inner.config.announce_interval, inner.socket.clone())
        };
        if !running {
            return;
        }
        let _ = socket.send_to(
            &self.announcement().encode(),
            SocketAddrV4::new(JINI_ANNOUNCEMENT_GROUP, JINI_PORT),
        );
        let this = self.clone();
        world.schedule_in(interval, move |w| this.announce_and_reschedule(w));
    }

    fn handle(&self, world: &World, dgram: Datagram) {
        if !self.inner.borrow().running {
            return;
        }
        let Ok(packet) = JiniPacket::decode(&dgram.payload) else {
            return;
        };
        let now = world.now();
        let reply = {
            let mut inner = self.inner.borrow_mut();
            inner.store.retain(|(_, expires)| *expires > now);
            match packet {
                JiniPacket::DiscoveryRequest { groups } => {
                    let serves =
                        groups.is_empty() || groups.iter().any(|g| inner.config.groups.contains(g));
                    serves.then(|| self_announcement(&inner))
                }
                JiniPacket::Register { item, lease_secs } => {
                    let lease = lease_secs.min(inner.config.lease_secs);
                    let expires = now + Duration::from_secs(u64::from(lease));
                    let service_id = item.service_id;
                    inner.store.retain(|(i, _)| i.service_id != service_id);
                    inner.store.push((item, expires));
                    Some(JiniPacket::RegisterAck { service_id, lease_secs: lease })
                }
                JiniPacket::Lookup { service_type } => {
                    let items: Vec<ServiceItem> = inner
                        .store
                        .iter()
                        .filter(|(i, _)| {
                            service_type.is_empty()
                                || i.service_type.eq_ignore_ascii_case(&service_type)
                        })
                        .map(|(i, _)| i.clone())
                        .collect();
                    Some(JiniPacket::LookupReply { items })
                }
                _ => None,
            }
        };
        if let Some(reply) = reply {
            let (delay, socket) = {
                let inner = self.inner.borrow();
                (inner.config.processing_delay, inner.socket.clone())
            };
            world.schedule_in(delay, move |_| {
                let _ = socket.send_to(&reply.encode(), dgram.src);
            });
        }
    }
}

fn self_announcement(inner: &RegistrarInner) -> JiniPacket {
    JiniPacket::Announcement {
        host: inner.node.addr().to_string(),
        port: JINI_PORT,
        groups: inner.config.groups.clone(),
    }
}

struct ClientInner {
    socket: UdpSocket,
    registrar: Option<SocketAddrV4>,
    pending_discover: Vec<Completion<SocketAddrV4>>,
    pending_lookup: Vec<Completion<Vec<ServiceItem>>>,
    pending_register: Vec<Completion<u32>>,
}

/// A Jini client / service provider endpoint: discovers the lookup
/// service, registers items (provider role) and queries (client role).
#[derive(Clone)]
pub struct JiniAgent {
    inner: Rc<RefCell<ClientInner>>,
    config: JiniConfig,
}

impl JiniAgent {
    /// Creates an agent on `node`, passively listening for announcements.
    ///
    /// # Errors
    ///
    /// Network errors from socket binds.
    pub fn start(node: &Node, config: JiniConfig) -> NetResult<JiniAgent> {
        let socket = node.udp_bind_ephemeral()?;
        // Listen to announcements on the announcement group as well.
        let announce = node.udp_bind_shared(JINI_PORT)?;
        announce.join_multicast(JINI_ANNOUNCEMENT_GROUP)?;
        let agent = JiniAgent {
            inner: Rc::new(RefCell::new(ClientInner {
                socket: socket.clone(),
                registrar: None,
                pending_discover: Vec::new(),
                pending_lookup: Vec::new(),
                pending_register: Vec::new(),
            })),
            config,
        };
        let h1 = agent.clone();
        socket.on_receive(move |world, dgram| h1.handle(world, dgram));
        let h2 = agent.clone();
        announce.on_receive(move |world, dgram| h2.handle(world, dgram));
        Ok(agent)
    }

    /// The registrar learned so far, if any.
    pub fn registrar(&self) -> Option<SocketAddrV4> {
        self.inner.borrow().registrar
    }

    /// Actively discovers a lookup service (multicast request). The
    /// completion yields the registrar's address.
    pub fn discover_registrar(&self) -> Completion<SocketAddrV4> {
        let done: Completion<SocketAddrV4> = Completion::new();
        {
            let mut inner = self.inner.borrow_mut();
            if let Some(addr) = inner.registrar {
                done.complete(addr);
                return done;
            }
            inner.pending_discover.push(done.clone());
        }
        let req = JiniPacket::DiscoveryRequest { groups: self.config.groups.clone() };
        let socket = self.inner.borrow().socket.clone();
        let _ = socket.send_to(&req.encode(), SocketAddrV4::new(JINI_REQUEST_GROUP, JINI_PORT));
        done
    }

    /// Registers a service item with the (known or discovered) registrar.
    /// The completion yields the granted lease in seconds.
    pub fn register(&self, item: ServiceItem) -> Completion<u32> {
        let done: Completion<u32> = Completion::new();
        self.inner.borrow_mut().pending_register.push(done.clone());
        let lease = self.config.lease_secs;
        let this = self.clone();
        self.discover_registrar().subscribe(move |registrar| {
            let packet = JiniPacket::Register { item, lease_secs: lease };
            let socket = this.inner.borrow().socket.clone();
            let _ = socket.send_to(&packet.encode(), registrar);
        });
        done
    }

    /// Looks up services by type (empty string = all). The completion
    /// yields the matching items.
    pub fn lookup(&self, service_type: &str) -> Completion<Vec<ServiceItem>> {
        let done: Completion<Vec<ServiceItem>> = Completion::new();
        self.inner.borrow_mut().pending_lookup.push(done.clone());
        let service_type = service_type.to_owned();
        let this = self.clone();
        self.discover_registrar().subscribe(move |registrar| {
            let packet = JiniPacket::Lookup { service_type };
            let socket = this.inner.borrow().socket.clone();
            let _ = socket.send_to(&packet.encode(), registrar);
        });
        done
    }

    fn handle(&self, _world: &World, dgram: Datagram) {
        let Ok(packet) = JiniPacket::decode(&dgram.payload) else {
            return;
        };
        // Pull completions out before firing them (re-entrancy safety).
        let mut fire_discover: Vec<(Completion<SocketAddrV4>, SocketAddrV4)> = Vec::new();
        let mut fire_lookup: Vec<(Completion<Vec<ServiceItem>>, Vec<ServiceItem>)> = Vec::new();
        let mut fire_register: Vec<(Completion<u32>, u32)> = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            match packet {
                JiniPacket::Announcement { host, port, .. } => {
                    if let Ok(ip) = host.parse() {
                        let addr = SocketAddrV4::new(ip, port);
                        inner.registrar = Some(addr);
                        for c in inner.pending_discover.drain(..) {
                            fire_discover.push((c, addr));
                        }
                    }
                }
                JiniPacket::LookupReply { items } => {
                    for c in inner.pending_lookup.drain(..) {
                        fire_lookup.push((c, items.clone()));
                    }
                }
                JiniPacket::RegisterAck { lease_secs, .. } => {
                    for c in inner.pending_register.drain(..) {
                        fire_register.push((c, lease_secs));
                    }
                }
                _ => {}
            }
        }
        for (c, v) in fire_discover {
            c.complete(v);
        }
        for (c, v) in fire_lookup {
            c.complete(v);
        }
        for (c, v) in fire_register {
            c.complete(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(id: u64, ty: &str) -> ServiceItem {
        ServiceItem {
            service_id: id,
            service_type: ty.into(),
            endpoint: "10.0.0.9:5000".into(),
            attributes: vec![("name".into(), format!("svc-{id}"))],
        }
    }

    fn setup() -> (World, LookupService, JiniAgent, JiniAgent) {
        let world = World::new(77);
        let reggie_node = world.add_node("reggie");
        let provider_node = world.add_node("provider");
        let client_node = world.add_node("client");
        let ls = LookupService::start(&reggie_node, JiniConfig::default()).unwrap();
        let provider = JiniAgent::start(&provider_node, JiniConfig::default()).unwrap();
        let client = JiniAgent::start(&client_node, JiniConfig::default()).unwrap();
        (world, ls, provider, client)
    }

    #[test]
    fn passive_discovery_via_announcement() {
        let (world, _ls, _provider, client) = setup();
        world.run_for(Duration::from_secs(1));
        assert!(client.registrar().is_some(), "announcement heard at startup");
    }

    #[test]
    fn active_discovery_via_request() {
        let world = World::new(78);
        let client_node = world.add_node("client");
        let client = JiniAgent::start(&client_node, JiniConfig::default()).unwrap();
        // Registrar starts *after* the client, announcement interval long.
        let reggie_node = world.add_node("reggie");
        let config =
            JiniConfig { announce_interval: Duration::from_secs(3600), ..JiniConfig::default() };
        let _ls = LookupService::start(&reggie_node, config).unwrap();
        world.run_for(Duration::from_millis(50)); // initial announcement flushes
                                                  // Force re-discovery through the request path.
        client.inner.borrow_mut().registrar = None;
        let found = client.discover_registrar();
        world.run_for(Duration::from_secs(1));
        assert!(found.is_complete(), "request → unicast announcement worked");
    }

    #[test]
    fn register_then_lookup() {
        let (world, ls, provider, client) = setup();
        world.run_for(Duration::from_secs(1));
        let lease = provider.register(item(1, "clock"));
        world.run_for(Duration::from_secs(1));
        assert_eq!(lease.get(), Some(300));
        assert_eq!(ls.registration_count(), 1);

        let found = client.lookup("clock");
        world.run_for(Duration::from_secs(1));
        let items = found.take().unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].service_type, "clock");
    }

    #[test]
    fn lookup_filters_by_type() {
        let (world, _ls, provider, client) = setup();
        world.run_for(Duration::from_secs(1));
        provider.register(item(1, "clock"));
        provider.register(item(2, "printer"));
        world.run_for(Duration::from_secs(1));
        let found = client.lookup("printer");
        world.run_for(Duration::from_secs(1));
        let items = found.take().unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].service_id, 2);
        let all = client.lookup("");
        world.run_for(Duration::from_secs(1));
        assert_eq!(all.take().unwrap().len(), 2);
    }

    #[test]
    fn leases_expire() {
        let (world, ls, provider, client) = setup();
        world.run_for(Duration::from_secs(1));
        let config = JiniConfig { lease_secs: 1, ..JiniConfig::default() };
        let short_provider = provider.clone();
        // Register with a 1-second lease by asking for more than granted.
        let _ = config;
        let lease = short_provider.register(ServiceItem {
            service_id: 9,
            service_type: "ephemeral".into(),
            endpoint: "x".into(),
            attributes: vec![],
        });
        world.run_for(Duration::from_secs(1));
        assert!(lease.is_complete());
        assert_eq!(ls.registration_count(), 1);
        // Far beyond the 300 s default lease: the next query purges.
        world.run_for(Duration::from_secs(400));
        let found = client.lookup("ephemeral");
        world.run_for(Duration::from_secs(1));
        assert!(found.take().unwrap().is_empty(), "lease expired");
    }

    #[test]
    fn shutdown_silences_registrar() {
        let (world, ls, _provider, client) = setup();
        world.run_for(Duration::from_secs(1));
        ls.shutdown();
        client.inner.borrow_mut().registrar = None;
        let found = client.discover_registrar();
        world.run_for(Duration::from_secs(2));
        assert!(!found.is_complete(), "no answer after shutdown");
    }
}
