//! # indiss-jini — simplified Jini discovery
//!
//! Jini is the third discovery protocol of the INDISS paper's Fig. 5
//! configuration (`Component Unit JINI(port=4160)`). Its architecture is
//! repository-mandatory: clients and providers first discover a *lookup
//! service* (multicast request on `224.0.1.85:4160`, unsolicited
//! announcements on `224.0.1.84:4160`), then register/query it unicast.
//!
//! Java object serialization (how real Jini moves `ServiceRegistrar`
//! proxies) is substituted by a compact binary record codec — see
//! `DESIGN.md` §5; the discovery *process* is preserved.
//!
//! ```
//! use indiss_net::World;
//! use indiss_jini::{JiniAgent, JiniConfig, LookupService, ServiceItem};
//! use std::time::Duration;
//!
//! let world = World::new(1);
//! let reggie = world.add_node("reggie");
//! let provider = world.add_node("provider");
//! let _ls = LookupService::start(&reggie, JiniConfig::default())?;
//! let agent = JiniAgent::start(&provider, JiniConfig::default())?;
//! agent.register(ServiceItem {
//!     service_id: 1,
//!     service_type: "clock".into(),
//!     endpoint: "10.0.0.2:4005".into(),
//!     attributes: vec![],
//! });
//! world.run_for(Duration::from_secs(1));
//! let found = agent.lookup("clock");
//! world.run_for(Duration::from_secs(1));
//! assert_eq!(found.take().unwrap().len(), 1);
//! # Ok::<(), indiss_net::NetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod wire;

pub use agent::{
    JiniAgent, JiniConfig, LookupService, JINI_ANNOUNCEMENT_GROUP, JINI_PORT, JINI_REQUEST_GROUP,
};
pub use wire::{JiniError, JiniPacket, JiniResult, PacketType, ServiceItem, JINI_WIRE_VERSION};
