//! Property-based tests of the Jini binary codec.

use proptest::prelude::*;

use indiss_jini::{JiniPacket, ServiceItem};

fn token() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9:._/-]{0,24}"
}

fn arb_item() -> impl Strategy<Value = ServiceItem> {
    (any::<u64>(), token(), token(), proptest::collection::vec((token(), token()), 0..4)).prop_map(
        |(service_id, service_type, endpoint, attributes)| ServiceItem {
            service_id,
            service_type,
            endpoint,
            attributes,
        },
    )
}

fn arb_packet() -> impl Strategy<Value = JiniPacket> {
    prop_oneof![
        proptest::collection::vec(token(), 0..4)
            .prop_map(|groups| JiniPacket::DiscoveryRequest { groups }),
        (token(), any::<u16>(), proptest::collection::vec(token(), 0..4))
            .prop_map(|(host, port, groups)| JiniPacket::Announcement { host, port, groups }),
        (arb_item(), any::<u32>())
            .prop_map(|(item, lease_secs)| JiniPacket::Register { item, lease_secs }),
        (any::<u64>(), any::<u32>()).prop_map(|(service_id, lease_secs)| JiniPacket::RegisterAck {
            service_id,
            lease_secs
        }),
        token().prop_map(|service_type| JiniPacket::Lookup { service_type }),
        proptest::collection::vec(arb_item(), 0..4)
            .prop_map(|items| JiniPacket::LookupReply { items }),
    ]
}

proptest! {
    /// Every packet round-trips through the codec.
    #[test]
    fn packets_roundtrip(packet in arb_packet()) {
        let wire = packet.encode();
        prop_assert_eq!(JiniPacket::decode(&wire).unwrap(), packet);
    }

    /// The decoder is total on arbitrary bytes.
    #[test]
    fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = JiniPacket::decode(&bytes);
    }

    /// Any strict prefix of a valid packet is rejected, not mis-decoded.
    #[test]
    fn prefixes_rejected(packet in arb_packet(), cut in 1usize..8) {
        let wire = packet.encode();
        prop_assume!(wire.len() > cut);
        let truncated = &wire[..wire.len() - cut];
        match JiniPacket::decode(truncated) {
            Err(_) => {}
            // A shorter valid decode can only happen if trailing bytes
            // were list items; the codec reads exact counts, so a
            // successful decode of a strict prefix must differ.
            Ok(decoded) => prop_assert_ne!(decoded, packet),
        }
    }
}
