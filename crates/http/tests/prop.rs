//! Property-based tests of the HTTP/HTTPU codec.

use proptest::prelude::*;

use indiss_http::{message_len, Headers, Method, Request, Response};

fn header_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,16}"
}

fn header_value() -> impl Strategy<Value = String> {
    // No CR/LF or leading/trailing whitespace (trimmed on parse).
    "[ -~]{0,24}".prop_map(|s| s.trim().to_owned())
}

fn arb_method() -> impl Strategy<Value = Method> {
    prop_oneof![
        Just(Method::Get),
        Just(Method::Post),
        Just(Method::Notify),
        Just(Method::MSearch),
        Just(Method::Subscribe),
        Just(Method::Unsubscribe),
        Just(Method::Head),
    ]
}

proptest! {
    /// Requests round-trip: start line, headers (case preserved), body.
    #[test]
    fn requests_roundtrip(
        method in arb_method(),
        target in "[!-~]{1,24}",
        headers in proptest::collection::vec((header_name(), header_value()), 0..6),
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut req = Request::new(method, target.clone());
        let mut expected = Vec::new();
        for (n, v) in &headers {
            // Skip a user-specified content-length: serialization manages it.
            if n.eq_ignore_ascii_case("content-length") {
                continue;
            }
            req.headers.append(n.clone(), v.clone());
            expected.push((n.clone(), v.clone()));
        }
        req.body = body.clone();
        let back = Request::parse(&req.serialize()).unwrap();
        prop_assert_eq!(back.method, method);
        prop_assert_eq!(back.target, target);
        prop_assert_eq!(back.body, body);
        for (n, v) in expected {
            prop_assert!(back.headers.get_all(&n).any(|got| got == v), "{n}: {v}");
        }
    }

    /// Responses round-trip.
    #[test]
    fn responses_roundtrip(
        status in 100u16..=599,
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut resp = Response::new(status);
        resp.body = body.clone();
        let back = Response::parse(&resp.serialize()).unwrap();
        prop_assert_eq!(back.status, status);
        prop_assert_eq!(back.body, body);
    }

    /// The parsers are total on arbitrary bytes.
    #[test]
    fn parsers_are_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Request::parse(&bytes);
        let _ = Response::parse(&bytes);
        let _ = message_len(&bytes);
    }

    /// `message_len` of a serialized message equals its length, for any
    /// body size — and any strict prefix is "incomplete".
    #[test]
    fn message_len_is_exact(body in proptest::collection::vec(any::<u8>(), 0..96)) {
        let mut resp = Response::new(200);
        resp.body = body;
        let wire = resp.serialize();
        prop_assert_eq!(message_len(&wire), Some(wire.len()));
        prop_assert_eq!(message_len(&wire[..wire.len() - 1]), None);
    }

    /// Header lookup ignores case for any name.
    #[test]
    fn header_lookup_case_insensitive(name in header_name(), value in header_value()) {
        let mut h = Headers::new();
        h.insert(name.clone(), value.clone());
        prop_assert_eq!(h.get(&name.to_ascii_uppercase()), Some(value.as_str()));
        prop_assert_eq!(h.get(&name.to_ascii_lowercase()), Some(value.as_str()));
    }
}
