//! Request and response types with parsing and serialization.

use std::fmt;
use std::str::FromStr;

use crate::error::{HttpError, HttpResult};
use crate::headers::Headers;

/// HTTP methods used by SSDP and UPnP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Method {
    /// Description / presentation fetch.
    Get,
    /// SOAP control invocation.
    Post,
    /// SSDP advertisement (HTTPU).
    Notify,
    /// SSDP search (HTTPU).
    MSearch,
    /// GENA event subscription (accepted for completeness).
    Subscribe,
    /// GENA unsubscription.
    Unsubscribe,
    /// HEAD, for completeness.
    Head,
}

impl Method {
    /// The canonical wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Notify => "NOTIFY",
            Method::MSearch => "M-SEARCH",
            Method::Subscribe => "SUBSCRIBE",
            Method::Unsubscribe => "UNSUBSCRIBE",
            Method::Head => "HEAD",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Method {
    type Err = HttpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            "NOTIFY" => Ok(Method::Notify),
            "M-SEARCH" => Ok(Method::MSearch),
            "SUBSCRIBE" => Ok(Method::Subscribe),
            "UNSUBSCRIBE" => Ok(Method::Unsubscribe),
            "HEAD" => Ok(Method::Head),
            other => Err(HttpError::InvalidStartLine(other.to_owned())),
        }
    }
}

/// An HTTP/HTTPU request.
///
/// # Examples
///
/// ```
/// use indiss_http::{Method, Request};
///
/// let mut req = Request::new(Method::MSearch, "*");
/// req.headers.insert("MAN", "\"ssdp:discover\"");
/// let bytes = req.serialize();
/// let back = Request::parse(&bytes)?;
/// assert_eq!(back.method, Method::MSearch);
/// assert_eq!(back.headers.get("man"), Some("\"ssdp:discover\""));
/// # Ok::<(), indiss_http::HttpError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request target (`*` for SSDP, a path for description fetches).
    pub target: String,
    /// Header block.
    pub headers: Headers,
    /// Message body (empty for HTTPU).
    pub body: Vec<u8>,
}

impl Request {
    /// Creates a bodyless request.
    pub fn new(method: Method, target: impl Into<String>) -> Self {
        Request { method, target: target.into(), headers: Headers::new(), body: Vec::new() }
    }

    /// Serializes to wire bytes, adding `Content-Length` when a body is
    /// present and none was set.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(self.method.as_str().as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.target.as_bytes());
        out.extend_from_slice(b" HTTP/1.1\r\n");
        self.headers.serialize_into(&mut out);
        if !self.body.is_empty() && !self.headers.contains("content-length") {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses a request from wire bytes.
    ///
    /// # Errors
    ///
    /// Any [`HttpError`] for malformed input; a body shorter than
    /// `Content-Length` yields [`HttpError::BodyTooShort`] (the caller
    /// should accumulate more TCP segments and retry).
    pub fn parse(input: &[u8]) -> HttpResult<Request> {
        let (head, body) = split_head(input)?;
        let mut lines = head.lines();
        let start = lines.next().ok_or(HttpError::UnterminatedHeaders)?;
        let mut parts = start.split_whitespace();
        let method: Method =
            parts.next().ok_or_else(|| HttpError::InvalidStartLine(start.to_owned()))?.parse()?;
        let target =
            parts.next().ok_or_else(|| HttpError::InvalidStartLine(start.to_owned()))?.to_owned();
        let version = parts.next().ok_or_else(|| HttpError::InvalidStartLine(start.to_owned()))?;
        check_version(version)?;
        let headers = parse_headers(lines)?;
        let body = take_body(&headers, body)?;
        Ok(Request { method, target, headers, body })
    }
}

/// An HTTP/HTTPU response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Three-digit status code.
    pub status: u16,
    /// Reason phrase (informational only).
    pub reason: String,
    /// Header block.
    pub headers: Headers,
    /// Message body.
    pub body: Vec<u8>,
}

impl Response {
    /// Creates a bodyless response with the standard reason phrase.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            reason: standard_reason(status).to_owned(),
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// Creates a `200 OK` response.
    pub fn ok() -> Self {
        Response::new(200)
    }

    /// True for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Serializes to wire bytes, adding `Content-Length` when a body is
    /// present and none was set.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        self.headers.serialize_into(&mut out);
        if !self.body.is_empty() && !self.headers.contains("content-length") {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses a response from wire bytes.
    ///
    /// # Errors
    ///
    /// Same contract as [`Request::parse`].
    pub fn parse(input: &[u8]) -> HttpResult<Response> {
        let (head, body) = split_head(input)?;
        let mut lines = head.lines();
        let start = lines.next().ok_or(HttpError::UnterminatedHeaders)?;
        let mut parts = start.splitn(3, ' ');
        let version = parts.next().ok_or_else(|| HttpError::InvalidStartLine(start.to_owned()))?;
        check_version(version)?;
        let code_str = parts.next().ok_or_else(|| HttpError::InvalidStartLine(start.to_owned()))?;
        let status: u16 =
            code_str.parse().map_err(|_| HttpError::InvalidStatusCode(code_str.to_owned()))?;
        if !(100..=599).contains(&status) {
            return Err(HttpError::InvalidStatusCode(code_str.to_owned()));
        }
        let reason = parts.next().unwrap_or("").to_owned();
        let headers = parse_headers(lines)?;
        let body = take_body(&headers, body)?;
        Ok(Response { status, reason, headers, body })
    }
}

/// Standard reason phrase for the status codes this stack emits.
pub fn standard_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        412 => "Precondition Failed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn check_version(v: &str) -> HttpResult<()> {
    if v == "HTTP/1.1" || v == "HTTP/1.0" {
        Ok(())
    } else {
        Err(HttpError::UnsupportedVersion(v.to_owned()))
    }
}

/// Splits raw bytes at the blank line; returns (head as str, body bytes).
fn split_head(input: &[u8]) -> HttpResult<(&str, &[u8])> {
    let pos = find_blank_line(input).ok_or(HttpError::UnterminatedHeaders)?;
    let head = std::str::from_utf8(&input[..pos]).map_err(|_| HttpError::NotUtf8)?;
    Ok((head, &input[pos + 4..]))
}

fn find_blank_line(input: &[u8]) -> Option<usize> {
    input.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_headers<'a, I: Iterator<Item = &'a str>>(lines: I) -> HttpResult<Headers> {
    let mut headers = Headers::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) =
            line.split_once(':').ok_or_else(|| HttpError::InvalidHeaderLine(line.to_owned()))?;
        headers.append(name.trim(), value.trim());
    }
    Ok(headers)
}

fn take_body(headers: &Headers, body: &[u8]) -> HttpResult<Vec<u8>> {
    match headers.content_length()? {
        Some(len) if body.len() < len => {
            Err(HttpError::BodyTooShort { expected: len, found: body.len() })
        }
        Some(len) => Ok(body[..len].to_vec()),
        None => Ok(body.to_vec()),
    }
}

/// Returns how many bytes from the start of `input` form one complete HTTP
/// message, or `None` if more data is needed. Used by stream readers to
/// delimit pipelined messages.
pub fn message_len(input: &[u8]) -> Option<usize> {
    let head_end = find_blank_line(input)? + 4;
    let head = std::str::from_utf8(&input[..head_end]).ok()?;
    let mut content_length = 0usize;
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    let total = head_end + content_length;
    (input.len() >= total).then_some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_with_body() {
        let mut req = Request::new(Method::Post, "/control");
        req.headers.insert("SOAPACTION", "\"GetTime\"");
        req.body = b"<xml/>".to_vec();
        let bytes = req.serialize();
        let back = Request::parse(&bytes).unwrap();
        assert_eq!(back.method, req.method);
        assert_eq!(back.target, req.target);
        assert_eq!(back.body, req.body);
        assert_eq!(back.headers.get("soapaction"), Some("\"GetTime\""));
        // Serialization added the Content-Length the request lacked.
        assert_eq!(back.headers.content_length().unwrap(), Some(6));
    }

    #[test]
    fn response_roundtrip_with_body() {
        let mut resp = Response::ok();
        resp.headers.insert("Content-Type", "text/xml");
        resp.body = b"<root/>".to_vec();
        let back = Response::parse(&resp.serialize()).unwrap();
        assert_eq!(back.status, 200);
        assert!(back.is_success());
        assert_eq!(back.body, b"<root/>");
    }

    #[test]
    fn msearch_wire_format_matches_paper() {
        // The paper's Fig. 4 shows this exact request shape.
        let mut req = Request::new(Method::MSearch, "*");
        req.headers.append("HOST", "239.255.255.250:1900");
        req.headers.append("ST", "urn:schemas-upnp-org:device:clock:1");
        req.headers.append("MAN", "\"ssdp:discover\"");
        req.headers.append("MX", "0");
        let text = String::from_utf8(req.serialize()).unwrap();
        assert!(text.starts_with("M-SEARCH * HTTP/1.1\r\n"));
        assert!(text.contains("MAN: \"ssdp:discover\"\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn body_too_short_is_reported() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort";
        match Response::parse(raw) {
            Err(HttpError::BodyTooShort { expected: 10, found: 5 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn extra_bytes_after_content_length_are_dropped() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhiEXTRA";
        let resp = Response::parse(raw).unwrap();
        assert_eq!(resp.body, b"hi");
    }

    #[test]
    fn invalid_method_rejected() {
        assert!(Request::parse(b"BREW / HTTP/1.1\r\n\r\n").is_err());
    }

    #[test]
    fn invalid_version_rejected() {
        assert!(Request::parse(b"GET / HTTP/2\r\n\r\n").is_err());
        assert!(Response::parse(b"SPDY/3 200 OK\r\n\r\n").is_err());
    }

    #[test]
    fn missing_blank_line_rejected() {
        assert!(Request::parse(b"GET / HTTP/1.1\r\nHost: x\r\n").is_err());
    }

    #[test]
    fn status_code_bounds_checked() {
        assert!(Response::parse(b"HTTP/1.1 99 Low\r\n\r\n").is_err());
        assert!(Response::parse(b"HTTP/1.1 abc Bad\r\n\r\n").is_err());
    }

    #[test]
    fn header_whitespace_trimmed() {
        let req = Request::parse(b"GET / HTTP/1.1\r\nHost:   spaced.example   \r\n\r\n").unwrap();
        assert_eq!(req.headers.get("host"), Some("spaced.example"));
    }

    #[test]
    fn message_len_delimits_pipelined_messages() {
        let mut resp = Response::ok();
        resp.body = b"abc".to_vec();
        let mut wire = resp.serialize();
        let first_len = wire.len();
        wire.extend_from_slice(b"HTTP/1.1 200 OK\r\n\r\n");
        assert_eq!(message_len(&wire), Some(first_len));
        assert_eq!(message_len(&wire[..first_len - 1]), None);
    }

    #[test]
    fn all_methods_roundtrip() {
        for m in [
            Method::Get,
            Method::Post,
            Method::Notify,
            Method::MSearch,
            Method::Subscribe,
            Method::Unsubscribe,
            Method::Head,
        ] {
            assert_eq!(m.as_str().parse::<Method>().unwrap(), m);
        }
    }
}
