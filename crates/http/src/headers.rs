//! Case-insensitive header map preserving insertion order.

use std::fmt;

/// An ordered multimap of HTTP headers with case-insensitive names.
///
/// SSDP relies on specific headers (`ST`, `USN`, `LOCATION`, `MX`, `NTS`)
/// whose capitalization varies between stacks; lookups here ignore case
/// while serialization preserves the names as inserted.
///
/// # Examples
///
/// ```
/// use indiss_http::Headers;
///
/// let mut h = Headers::new();
/// h.insert("LOCATION", "http://10.0.0.2:4004/description.xml");
/// assert_eq!(h.get("location"), Some("http://10.0.0.2:4004/description.xml"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header map.
    pub fn new() -> Self {
        Headers::default()
    }

    /// Appends a header, keeping any existing ones with the same name.
    pub fn append(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Sets a header, replacing all existing values of the same name.
    pub fn insert(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(&name));
        self.entries.push((name, value.into()));
    }

    /// First value of the header, case-insensitive.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// All values of the header, case-insensitive.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the header is present.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Removes all values of the header; returns whether any were removed.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.entries.len() != before
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Parses `Content-Length` if present.
    ///
    /// # Errors
    ///
    /// [`crate::HttpError::InvalidContentLength`] when present but not a
    /// valid decimal number.
    pub fn content_length(&self) -> crate::HttpResult<Option<usize>> {
        match self.get("content-length") {
            None => Ok(None),
            Some(v) => v
                .trim()
                .parse::<usize>()
                .map(Some)
                .map_err(|_| crate::HttpError::InvalidContentLength(v.to_owned())),
        }
    }

    /// Serializes the header block, each line `Name: value\r\n`.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        for (name, value) in &self.entries {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
    }
}

impl fmt::Display for Headers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.entries {
            writeln!(f, "{name}: {value}")?;
        }
        Ok(())
    }
}

impl FromIterator<(String, String)> for Headers {
    fn from_iter<I: IntoIterator<Item = (String, String)>>(iter: I) -> Self {
        Headers { entries: iter.into_iter().collect() }
    }
}

impl Extend<(String, String)> for Headers {
    fn extend<I: IntoIterator<Item = (String, String)>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        let mut h = Headers::new();
        h.append("Cache-Control", "max-age=1800");
        assert_eq!(h.get("CACHE-CONTROL"), Some("max-age=1800"));
        assert!(h.contains("cache-control"));
    }

    #[test]
    fn insert_replaces_append_accumulates() {
        let mut h = Headers::new();
        h.append("ST", "a");
        h.append("st", "b");
        assert_eq!(h.get_all("ST").count(), 2);
        h.insert("St", "c");
        assert_eq!(h.get_all("ST").collect::<Vec<_>>(), vec!["c"]);
    }

    #[test]
    fn remove_reports_presence() {
        let mut h = Headers::new();
        h.append("X", "1");
        assert!(h.remove("x"));
        assert!(!h.remove("x"));
        assert!(h.is_empty());
    }

    #[test]
    fn content_length_parsing() {
        let mut h = Headers::new();
        assert_eq!(h.content_length().unwrap(), None);
        h.insert("Content-Length", " 42 ");
        assert_eq!(h.content_length().unwrap(), Some(42));
        h.insert("Content-Length", "nan");
        assert!(h.content_length().is_err());
    }

    #[test]
    fn serialization_preserves_case_and_order() {
        let mut h = Headers::new();
        h.append("HOST", "239.255.255.250:1900");
        h.append("Man", "\"ssdp:discover\"");
        let mut out = Vec::new();
        h.serialize_into(&mut out);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "HOST: 239.255.255.250:1900\r\nMan: \"ssdp:discover\"\r\n"
        );
    }

    #[test]
    fn from_iterator_collects() {
        let h: Headers = vec![("A".to_string(), "1".to_string())].into_iter().collect();
        assert_eq!(h.len(), 1);
    }
}
