//! HTTP parse errors.

use std::fmt;

/// Error produced while parsing an HTTP message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HttpError {
    /// The start line is not a valid request or status line.
    InvalidStartLine(String),
    /// A header line has no `:` separator.
    InvalidHeaderLine(String),
    /// The HTTP version token is not `HTTP/1.0` or `HTTP/1.1`.
    UnsupportedVersion(String),
    /// The status code is not a three-digit number.
    InvalidStatusCode(String),
    /// Input ended before the blank line terminating the header block.
    UnterminatedHeaders,
    /// `Content-Length` is present but not a valid number.
    InvalidContentLength(String),
    /// The body is shorter than the declared `Content-Length`.
    BodyTooShort {
        /// Bytes promised by `Content-Length`.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The message is not valid UTF-8 in its head section.
    NotUtf8,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::InvalidStartLine(l) => write!(f, "invalid start line {l:?}"),
            HttpError::InvalidHeaderLine(l) => write!(f, "invalid header line {l:?}"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported http version {v:?}"),
            HttpError::InvalidStatusCode(c) => write!(f, "invalid status code {c:?}"),
            HttpError::UnterminatedHeaders => write!(f, "headers not terminated by blank line"),
            HttpError::InvalidContentLength(v) => write!(f, "invalid content-length {v:?}"),
            HttpError::BodyTooShort { expected, found } => {
                write!(f, "body too short: expected {expected} bytes, found {found}")
            }
            HttpError::NotUtf8 => write!(f, "message head is not valid utf-8"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Convenience alias for HTTP parse results.
pub type HttpResult<T> = Result<T, HttpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(HttpError::InvalidStartLine("x".into()).to_string().contains("x"));
        assert!(HttpError::BodyTooShort { expected: 5, found: 2 }.to_string().contains('5'));
    }
}
