//! # indiss-http — HTTP/1.1 subset and HTTPU
//!
//! SSDP — the discovery half of UPnP — is "HTTP over UDP" (HTTPU): request
//! and response messages with the familiar start-line + headers syntax but
//! carried in single datagrams. The UPnP description fetch the INDISS paper
//! walks through in §2.4 (`GET /description.xml HTTP/1.1`) is plain HTTP
//! over TCP. This crate provides the shared message model for both.
//!
//! ```
//! use indiss_http::{Method, Request, Response};
//!
//! let mut req = Request::new(Method::Get, "/description.xml");
//! req.headers.insert("HOST", "10.0.0.2:4004");
//! let parsed = Request::parse(&req.serialize())?;
//! assert_eq!(parsed.target, "/description.xml");
//! # Ok::<(), indiss_http::HttpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod headers;
mod message;

pub use error::{HttpError, HttpResult};
pub use headers::Headers;
pub use message::{message_len, standard_reason, Method, Request, Response};
