//! # indiss-ssdp — Simple Service Discovery Protocol
//!
//! SSDP is the discovery layer of UPnP: HTTPU messages on multicast group
//! `239.255.255.250:1900`. Three message kinds matter for the INDISS
//! paper's scenarios:
//!
//! * `M-SEARCH` — a control point's *active* search (Fig. 4 step 1 shows
//!   the exact M-SEARCH the INDISS UPnP unit composes from SLP events);
//! * `NOTIFY` with `NTS: ssdp:alive` / `ssdp:byebye` — a device's
//!   *passive* advertisement;
//! * the `HTTP/1.1 200 OK` search response carrying `LOCATION:`, the URL
//!   of the device description the UPnP unit must then GET (§2.4).
//!
//! ```
//! use indiss_ssdp::{MSearch, SearchTarget, SsdpMessage};
//!
//! let search = MSearch::new(SearchTarget::device_urn("clock", 1), 0);
//! let wire = search.to_bytes();
//! match SsdpMessage::parse(&wire)? {
//!     SsdpMessage::MSearch(m) => assert_eq!(m.mx, 0),
//!     other => panic!("unexpected {other:?}"),
//! }
//! # Ok::<(), indiss_ssdp::SsdpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod consts;
mod message;

pub use consts::{SSDP_MULTICAST_GROUP, SSDP_PORT};
pub use message::{MSearch, Notify, NotifySubType, SearchResponse, SearchTarget, SsdpMessage};

use std::fmt;

/// Errors from parsing SSDP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SsdpError {
    /// The datagram is not valid HTTPU.
    Http(indiss_http::HttpError),
    /// The HTTP message is valid but not a recognizable SSDP message.
    NotSsdp(&'static str),
    /// A required header is missing.
    MissingHeader(&'static str),
}

impl fmt::Display for SsdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsdpError::Http(e) => write!(f, "invalid httpu: {e}"),
            SsdpError::NotSsdp(why) => write!(f, "not an ssdp message: {why}"),
            SsdpError::MissingHeader(h) => write!(f, "missing required header {h}"),
        }
    }
}

impl std::error::Error for SsdpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SsdpError::Http(e) => Some(e),
            _ => None,
        }
    }
}

impl From<indiss_http::HttpError> for SsdpError {
    fn from(e: indiss_http::HttpError) -> Self {
        SsdpError::Http(e)
    }
}

/// Convenience alias for SSDP results.
pub type SsdpResult<T> = Result<T, SsdpError>;
