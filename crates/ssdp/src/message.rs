//! SSDP message types over HTTPU.

use std::fmt;
use std::str::FromStr;

use indiss_http::{Headers, Method, Request, Response};

use crate::{SsdpError, SsdpResult, SSDP_MULTICAST_GROUP, SSDP_PORT};

/// An SSDP search target (`ST:`) or notification type (`NT:`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SearchTarget {
    /// `ssdp:all` — everything.
    All,
    /// `upnp:rootdevice` — root devices only.
    RootDevice,
    /// `uuid:<device-uuid>` — one specific device.
    Uuid(String),
    /// `urn:schemas-upnp-org:device:<type>:<version>`.
    DeviceType {
        /// Device type name, e.g. `clock`.
        name: String,
        /// Type version.
        version: u32,
    },
    /// `urn:schemas-upnp-org:service:<type>:<version>`.
    ServiceType {
        /// Service type name, e.g. `timer`.
        name: String,
        /// Type version.
        version: u32,
    },
    /// Anything else (vendor-defined targets like the paper's `upnp:clock`).
    Custom(String),
}

impl SearchTarget {
    /// Builds a standard device-type URN target.
    pub fn device_urn(name: &str, version: u32) -> Self {
        SearchTarget::DeviceType { name: name.to_owned(), version }
    }

    /// Builds a standard service-type URN target.
    pub fn service_urn(name: &str, version: u32) -> Self {
        SearchTarget::ServiceType { name: name.to_owned(), version }
    }

    /// True when an offered target (a device's `NT`/`ST` value) satisfies a
    /// search for `self`. `ssdp:all` matches everything; URN targets match
    /// when name matches and the offered version is at least the requested
    /// one (UPnP-DA backward compatibility rule).
    pub fn matches(&self, offered: &SearchTarget) -> bool {
        match (self, offered) {
            (SearchTarget::All, _) => true,
            (SearchTarget::RootDevice, SearchTarget::RootDevice) => true,
            (SearchTarget::Uuid(a), SearchTarget::Uuid(b)) => a == b,
            (
                SearchTarget::DeviceType { name: a, version: va },
                SearchTarget::DeviceType { name: b, version: vb },
            ) => a.eq_ignore_ascii_case(b) && vb >= va,
            (
                SearchTarget::ServiceType { name: a, version: va },
                SearchTarget::ServiceType { name: b, version: vb },
            ) => a.eq_ignore_ascii_case(b) && vb >= va,
            (SearchTarget::Custom(a), SearchTarget::Custom(b)) => a.eq_ignore_ascii_case(b),
            _ => false,
        }
    }
}

impl fmt::Display for SearchTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchTarget::All => f.write_str("ssdp:all"),
            SearchTarget::RootDevice => f.write_str("upnp:rootdevice"),
            SearchTarget::Uuid(u) => write!(f, "uuid:{u}"),
            SearchTarget::DeviceType { name, version } => {
                write!(f, "urn:schemas-upnp-org:device:{name}:{version}")
            }
            SearchTarget::ServiceType { name, version } => {
                write!(f, "urn:schemas-upnp-org:service:{name}:{version}")
            }
            SearchTarget::Custom(s) => f.write_str(s),
        }
    }
}

impl FromStr for SearchTarget {
    type Err = SsdpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("ssdp:all") {
            return Ok(SearchTarget::All);
        }
        if s.eq_ignore_ascii_case("upnp:rootdevice") {
            return Ok(SearchTarget::RootDevice);
        }
        if let Some(u) = s.strip_prefix("uuid:") {
            return Ok(SearchTarget::Uuid(u.to_owned()));
        }
        for (prefix, is_device) in
            [("urn:schemas-upnp-org:device:", true), ("urn:schemas-upnp-org:service:", false)]
        {
            if let Some(rest) = s.strip_prefix(prefix) {
                if let Some((name, ver)) = rest.rsplit_once(':') {
                    if let Ok(version) = ver.parse::<u32>() {
                        return Ok(if is_device {
                            SearchTarget::DeviceType { name: name.to_owned(), version }
                        } else {
                            SearchTarget::ServiceType { name: name.to_owned(), version }
                        });
                    }
                }
                // URN without a version (the paper's own M-SEARCH omits it).
                return Ok(if is_device {
                    SearchTarget::DeviceType { name: rest.to_owned(), version: 1 }
                } else {
                    SearchTarget::ServiceType { name: rest.to_owned(), version: 1 }
                });
            }
        }
        Ok(SearchTarget::Custom(s.to_owned()))
    }
}

/// An `M-SEARCH` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MSearch {
    /// What is being searched for.
    pub st: SearchTarget,
    /// Maximum response delay in seconds (devices jitter replies in
    /// `[0, MX]`); the paper's Fig. 4 uses `MX: 0` for minimum latency.
    pub mx: u8,
}

impl MSearch {
    /// Creates a search request.
    pub fn new(st: SearchTarget, mx: u8) -> Self {
        MSearch { st, mx }
    }

    /// Serializes to HTTPU bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut req = Request::new(Method::MSearch, "*");
        req.headers.append("HOST", format!("{SSDP_MULTICAST_GROUP}:{SSDP_PORT}"));
        req.headers.append("MAN", "\"ssdp:discover\"");
        req.headers.append("MX", self.mx.to_string());
        req.headers.append("ST", self.st.to_string());
        req.serialize()
    }
}

/// `NOTIFY` sub-type (`NTS:` header).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NotifySubType {
    /// `ssdp:alive` — the device (still) exists.
    Alive,
    /// `ssdp:byebye` — the device is leaving.
    ByeBye,
    /// `ssdp:update` — configuration changed.
    Update,
}

impl fmt::Display for NotifySubType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NotifySubType::Alive => "ssdp:alive",
            NotifySubType::ByeBye => "ssdp:byebye",
            NotifySubType::Update => "ssdp:update",
        })
    }
}

/// A `NOTIFY` advertisement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notify {
    /// Notification type.
    pub nt: SearchTarget,
    /// Alive / byebye / update.
    pub nts: NotifySubType,
    /// Unique service name, typically `uuid:<id>::<nt>`.
    pub usn: String,
    /// Description URL (absent on byebye).
    pub location: Option<String>,
    /// Server banner.
    pub server: String,
    /// Advertisement validity in seconds (`CACHE-CONTROL: max-age=`).
    pub max_age: u32,
}

impl Notify {
    /// Serializes to HTTPU bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut req = Request::new(Method::Notify, "*");
        req.headers.append("HOST", format!("{SSDP_MULTICAST_GROUP}:{SSDP_PORT}"));
        req.headers.append("NT", self.nt.to_string());
        req.headers.append("NTS", self.nts.to_string());
        req.headers.append("USN", self.usn.clone());
        if let Some(loc) = &self.location {
            req.headers.append("LOCATION", loc.clone());
        }
        if !self.server.is_empty() {
            req.headers.append("SERVER", self.server.clone());
        }
        req.headers.append("CACHE-CONTROL", format!("max-age={}", self.max_age));
        req.serialize()
    }
}

/// A unicast `200 OK` answer to an `M-SEARCH`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResponse {
    /// Echo of the search target.
    pub st: SearchTarget,
    /// Unique service name.
    pub usn: String,
    /// Description document URL.
    pub location: String,
    /// Server banner (the paper shows `UPnP/1.0 CyberLink/1.3.2`).
    pub server: String,
    /// Validity in seconds.
    pub max_age: u32,
}

impl SearchResponse {
    /// Serializes to HTTPU bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut resp = Response::ok();
        resp.headers.append("CACHE-CONTROL", format!("max-age={}", self.max_age));
        resp.headers.append("EXT", "");
        resp.headers.append("ST", self.st.to_string());
        resp.headers.append("USN", self.usn.clone());
        resp.headers.append("LOCATION", self.location.clone());
        if !self.server.is_empty() {
            resp.headers.append("SERVER", self.server.clone());
        }
        resp.serialize()
    }
}

/// Any SSDP message, as classified by [`SsdpMessage::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdpMessage {
    /// An `M-SEARCH` request.
    MSearch(MSearch),
    /// A `NOTIFY` advertisement.
    Notify(Notify),
    /// A search response.
    Response(SearchResponse),
}

impl SsdpMessage {
    /// Parses a datagram into an SSDP message.
    ///
    /// # Errors
    ///
    /// [`SsdpError::Http`] when the datagram is not HTTPU at all;
    /// [`SsdpError::NotSsdp`] / [`SsdpError::MissingHeader`] when it is
    /// HTTP but not a valid SSDP message.
    pub fn parse(input: &[u8]) -> SsdpResult<SsdpMessage> {
        if input.starts_with(b"HTTP/") {
            let resp = Response::parse(input)?;
            if !resp.is_success() {
                return Err(SsdpError::NotSsdp("non-200 response"));
            }
            let st: SearchTarget =
                resp.headers.get("st").ok_or(SsdpError::MissingHeader("ST"))?.parse()?;
            let usn = resp.headers.get("usn").unwrap_or_default().to_owned();
            let location = resp
                .headers
                .get("location")
                .ok_or(SsdpError::MissingHeader("LOCATION"))?
                .to_owned();
            let server = resp.headers.get("server").unwrap_or_default().to_owned();
            let max_age = parse_max_age(&resp.headers);
            return Ok(SsdpMessage::Response(SearchResponse {
                st,
                usn,
                location,
                server,
                max_age,
            }));
        }
        let req = Request::parse(input)?;
        match req.method {
            Method::MSearch => {
                let man = req.headers.get("man").unwrap_or_default();
                if !man.contains("ssdp:discover") {
                    return Err(SsdpError::NotSsdp("M-SEARCH without ssdp:discover MAN"));
                }
                let st: SearchTarget =
                    req.headers.get("st").ok_or(SsdpError::MissingHeader("ST"))?.parse()?;
                let mx =
                    req.headers.get("mx").and_then(|v| v.trim().parse::<u8>().ok()).unwrap_or(1);
                Ok(SsdpMessage::MSearch(MSearch { st, mx }))
            }
            Method::Notify => {
                let nt: SearchTarget =
                    req.headers.get("nt").ok_or(SsdpError::MissingHeader("NT"))?.parse()?;
                let nts = match req.headers.get("nts") {
                    Some(v) if v.eq_ignore_ascii_case("ssdp:alive") => NotifySubType::Alive,
                    Some(v) if v.eq_ignore_ascii_case("ssdp:byebye") => NotifySubType::ByeBye,
                    Some(v) if v.eq_ignore_ascii_case("ssdp:update") => NotifySubType::Update,
                    Some(_) => return Err(SsdpError::NotSsdp("unknown NTS value")),
                    None => return Err(SsdpError::MissingHeader("NTS")),
                };
                Ok(SsdpMessage::Notify(Notify {
                    nt,
                    nts,
                    usn: req.headers.get("usn").unwrap_or_default().to_owned(),
                    location: req.headers.get("location").map(str::to_owned),
                    server: req.headers.get("server").unwrap_or_default().to_owned(),
                    max_age: parse_max_age(&req.headers),
                }))
            }
            _ => Err(SsdpError::NotSsdp("unexpected method")),
        }
    }
}

fn parse_max_age(headers: &Headers) -> u32 {
    headers
        .get("cache-control")
        .and_then(|v| {
            v.split(',')
                .filter_map(|p| p.trim().strip_prefix("max-age="))
                .next()
                .and_then(|n| n.trim().parse().ok())
        })
        .unwrap_or(1800)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msearch_roundtrip() {
        let m = MSearch::new(SearchTarget::device_urn("clock", 1), 0);
        match SsdpMessage::parse(&m.to_bytes()).unwrap() {
            SsdpMessage::MSearch(back) => assert_eq!(back, m),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn notify_alive_roundtrip() {
        let n = Notify {
            nt: SearchTarget::RootDevice,
            nts: NotifySubType::Alive,
            usn: "uuid:ClockDevice::upnp:rootdevice".into(),
            location: Some("http://10.0.0.2:4004/description.xml".into()),
            server: "UPnP/1.0 indiss/0.1".into(),
            max_age: 1800,
        };
        match SsdpMessage::parse(&n.to_bytes()).unwrap() {
            SsdpMessage::Notify(back) => assert_eq!(back, n),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn byebye_without_location() {
        let n = Notify {
            nt: SearchTarget::device_urn("clock", 1),
            nts: NotifySubType::ByeBye,
            usn: "uuid:x::urn".into(),
            location: None,
            server: String::new(),
            max_age: 0,
        };
        match SsdpMessage::parse(&n.to_bytes()).unwrap() {
            SsdpMessage::Notify(back) => {
                assert_eq!(back.nts, NotifySubType::ByeBye);
                assert_eq!(back.location, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn search_response_roundtrip() {
        let r = SearchResponse {
            st: SearchTarget::Custom("upnp:clock".into()),
            usn: "uuid:ClockDevice::upnp:clock".into(),
            location: "http://128.93.8.112:4004/description.xml".into(),
            server: "UPnP/1.0 CyberLink/1.3.2".into(),
            max_age: 1800,
        };
        match SsdpMessage::parse(&r.to_bytes()).unwrap() {
            SsdpMessage::Response(back) => assert_eq!(back, r),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn target_parsing_variants() {
        assert_eq!("ssdp:all".parse::<SearchTarget>().unwrap(), SearchTarget::All);
        assert_eq!("upnp:rootdevice".parse::<SearchTarget>().unwrap(), SearchTarget::RootDevice);
        assert_eq!("uuid:abc".parse::<SearchTarget>().unwrap(), SearchTarget::Uuid("abc".into()));
        assert_eq!(
            "urn:schemas-upnp-org:device:clock:2".parse::<SearchTarget>().unwrap(),
            SearchTarget::device_urn("clock", 2)
        );
        assert_eq!(
            "urn:schemas-upnp-org:service:timer:1".parse::<SearchTarget>().unwrap(),
            SearchTarget::service_urn("timer", 1)
        );
        // The paper's unversioned URN defaults to version 1.
        assert_eq!(
            "urn:schemas-upnp-org:device:clock".parse::<SearchTarget>().unwrap(),
            SearchTarget::device_urn("clock", 1)
        );
        assert_eq!(
            "upnp:clock".parse::<SearchTarget>().unwrap(),
            SearchTarget::Custom("upnp:clock".into())
        );
    }

    #[test]
    fn target_matching_rules() {
        let all = SearchTarget::All;
        let clock1 = SearchTarget::device_urn("clock", 1);
        let clock2 = SearchTarget::device_urn("clock", 2);
        let printer = SearchTarget::device_urn("printer", 1);
        assert!(all.matches(&clock1));
        assert!(clock1.matches(&clock2), "newer version satisfies older search");
        assert!(!clock2.matches(&clock1), "older version does not satisfy newer search");
        assert!(!clock1.matches(&printer));
        assert!(!clock1.matches(&SearchTarget::service_urn("clock", 1)));
    }

    #[test]
    fn msearch_requires_man_header() {
        let mut req = indiss_http::Request::new(indiss_http::Method::MSearch, "*");
        req.headers.append("ST", "ssdp:all");
        assert!(matches!(SsdpMessage::parse(&req.serialize()), Err(SsdpError::NotSsdp(_))));
    }

    #[test]
    fn missing_st_is_rejected() {
        let mut req = indiss_http::Request::new(indiss_http::Method::MSearch, "*");
        req.headers.append("MAN", "\"ssdp:discover\"");
        assert!(matches!(
            SsdpMessage::parse(&req.serialize()),
            Err(SsdpError::MissingHeader("ST"))
        ));
    }

    #[test]
    fn garbage_is_http_error() {
        assert!(matches!(SsdpMessage::parse(b"\x02\x01junk"), Err(SsdpError::Http(_))));
    }

    #[test]
    fn max_age_parsing_defaults() {
        let mut h = Headers::new();
        assert_eq!(parse_max_age(&h), 1800);
        h.insert("Cache-Control", "no-cache, max-age=60");
        assert_eq!(parse_max_age(&h), 60);
    }
}
