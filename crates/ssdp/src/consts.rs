//! SSDP constants (UPnP Device Architecture 1.0).

use std::net::Ipv4Addr;

/// IANA-assigned SSDP port.
pub const SSDP_PORT: u16 = 1900;

/// Administratively scoped SSDP multicast group.
pub const SSDP_MULTICAST_GROUP: Ipv4Addr = Ipv4Addr::new(239, 255, 255, 250);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_is_multicast() {
        assert!(SSDP_MULTICAST_GROUP.is_multicast());
    }
}
