//! Fixed-bucket latency histograms for the hot path.
//!
//! The recording side is [`AtomicHistogram`]: 64 log₂-spaced buckets of
//! `AtomicU64` counters — bucket *i* covers `[2^i, 2^(i+1))` nanoseconds
//! (bucket 0 absorbs 0 and 1 ns, the top bucket is open-ended) — so a
//! record is one shift-class computation plus one relaxed atomic add,
//! with no allocation and no lock. One instance lives per worker lane;
//! scrapes merge the lanes into a plain [`LatencyHistogram`] value.
//!
//! Merging is elementwise addition, which makes it associative,
//! commutative and lossless — properties the `obs.rs` integration suite
//! pins with the proptest shim, because the scrape path depends on them
//! (lanes can be merged in any order, any grouping, and no count may
//! vanish).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets. 64 covers every expressible `u64` nanosecond
/// duration: bucket 63 holds everything from ~292 years up.
pub const HIST_BUCKETS: usize = 64;

/// The bucket index a duration of `nanos` lands in.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` ns, except bucket 0 which also
/// absorbs a zero duration (sim-time spans whose virtual clock did not
/// advance). Every `u64` lands in exactly one bucket.
pub fn bucket_of(nanos: u64) -> usize {
    // 0 and 1 both land in bucket 0; otherwise floor(log2(nanos)).
    (63 - nanos.max(1).leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i` in nanoseconds.
pub fn bucket_floor(i: usize) -> u64 {
    debug_assert!(i < HIST_BUCKETS);
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// A merged, plain-value latency histogram: what a scrape reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; HIST_BUCKETS],
    sum_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { counts: [0; HIST_BUCKETS], sum_nanos: 0 }
    }
}

impl LatencyHistogram {
    /// An empty histogram (the merge identity).
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one duration. The value side is used by tests and the
    /// merge property suite; the hot path records through
    /// [`AtomicHistogram::record`].
    pub fn record(&mut self, nanos: u64) {
        self.counts[bucket_of(nanos)] += 1;
        self.sum_nanos = self.sum_nanos.wrapping_add(nanos);
    }

    /// Folds `other` into `self` by elementwise addition.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.wrapping_add(*theirs);
        }
        self.sum_nanos = self.sum_nanos.wrapping_add(other.sum_nanos);
    }

    /// Total number of recorded durations.
    pub fn count(&self) -> u64 {
        self.counts.iter().fold(0u64, |acc, c| acc.wrapping_add(*c))
    }

    /// Sum of all recorded durations, in nanoseconds (wrapping).
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos
    }

    /// Per-bucket counts, bucket `i` covering `[2^i, 2^(i+1))` ns.
    pub fn counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// The smallest duration `d` such that at least `q` (in `[0, 1]`) of
    /// the recorded samples are `< 2^(bucket(d)+1)` — i.e. the upper
    /// edge of the quantile's bucket, the usual HDR-style estimate.
    /// Returns 0 for an empty histogram.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen = seen.wrapping_add(*c);
            if seen >= rank {
                return if i + 1 >= HIST_BUCKETS { u64::MAX } else { (1u64 << (i + 1)) - 1 };
            }
        }
        u64::MAX
    }
}

/// The lock-free recording side: one per worker lane.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; HIST_BUCKETS],
    sum_nanos: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram::default()
    }

    /// Records one duration: one relaxed add, no allocation.
    pub fn record(&self, nanos: u64) {
        self.counts[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Reads the current counts into a plain value for merging.
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for (slot, counter) in out.counts.iter_mut().zip(self.counts.iter()) {
            *slot = counter.load(Ordering::Relaxed);
        }
        out.sum_nanos = self.sum_nanos.load(Ordering::Relaxed);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_spaced_and_exhaustive() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        // Boundaries are monotone: every floor is ≥ the previous.
        for i in 1..HIST_BUCKETS {
            assert!(bucket_floor(i) > bucket_floor(i - 1), "bucket {i}");
        }
        // Floors are fixed points: a floor value lands in its own bucket.
        for i in 0..HIST_BUCKETS {
            assert_eq!(bucket_of(bucket_floor(i)), i, "floor of bucket {i}");
        }
    }

    #[test]
    fn merge_is_lossless() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for n in [0u64, 1, 7, 4096, 1 << 40] {
            a.record(n);
            b.record(n * 3 + 1);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), a.count() + b.count());
        assert_eq!(merged.sum_nanos(), a.sum_nanos().wrapping_add(b.sum_nanos()));
    }

    #[test]
    fn atomic_snapshot_matches_value_side() {
        let atomic = AtomicHistogram::new();
        let mut value = LatencyHistogram::new();
        for n in [0u64, 5, 5, 900, 1_000_000, u64::MAX] {
            atomic.record(n);
            value.record(n);
        }
        assert_eq!(atomic.snapshot(), value);
    }

    #[test]
    fn quantile_upper_bound_brackets_the_samples() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(1_000); // bucket 9: [512, 1024)
        }
        for _ in 0..10 {
            h.record(1 << 20); // bucket 20
        }
        assert_eq!(h.quantile_upper_bound(0.5), 1023);
        assert_eq!(h.quantile_upper_bound(0.99), (1 << 21) - 1);
        assert_eq!(LatencyHistogram::new().quantile_upper_bound(0.5), 0);
    }
}
