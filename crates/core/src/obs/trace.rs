//! Pipeline trace spans: a lock-free, fixed-capacity span ring per
//! worker lane, stamped from a pluggable [`Clock`].
//!
//! # Design
//!
//! * **Clock seam.** Every timestamp is a [`SimTime`] from a [`Clock`]:
//!   [`SimClock`] in simulation (the driver advances an atomic virtual
//!   clock, so two same-seed runs stamp identical times — the replay
//!   contract the determinism tests pin) and [`WallClock`] in the live
//!   runtimes (an [`Instant`] epoch mapped onto the same axis with the
//!   wire driver's +1 s offset, so "now" is never before `SimTime::ZERO`).
//! * **Zero allocation on the hot path.** Span names are the interned
//!   `&'static str`s of [`Phase`]; a recorded span is four relaxed
//!   atomic stores into a preallocated ring slot plus one histogram
//!   bump. A disabled tracer is a single branch.
//! * **Single writer per ring.** Rings are indexed `lane % rings`, the
//!   same routing the [`crate::WorkerPool`] uses to map work onto
//!   threads, so each ring has exactly one writing thread. Readers may
//!   scrape concurrently: every slot is a seqlock (odd generation =
//!   write in progress) and the exporter simply skips a slot it cannot
//!   read consistently.
//! * **Overwrite-oldest.** When a ring wraps, the oldest span is
//!   overwritten and `spans_dropped` increments — recording never
//!   blocks and never grows.
//!
//! The crate forbids `unsafe`, so the ring is built from plain
//! `AtomicU64`s rather than raw memory — the seqlock generation is what
//! makes torn reads detectable without it.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use indiss_net::SimTime;

use super::hist::{AtomicHistogram, LatencyHistogram};

/// A pipeline phase: the span's interned name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Wire bytes → parsed message (codec decode).
    Decode = 0,
    /// Parsed message → event stream (unit parser).
    Parse = 1,
    /// Warm-path decision (`classify_request`).
    Classify = 2,
    /// Composing the native reply / recording the advert.
    Deliver = 3,
    /// Flushing composed replies back out the socket.
    Reply = 4,
    /// One mesh anti-entropy gossip round.
    Gossip = 5,
    /// A query-tracker retry attempt firing.
    Retry = 6,
    /// One worker-pool job execution.
    Job = 7,
}

/// Number of [`Phase`] variants (per-phase histogram array width).
pub const PHASES: usize = 8;

impl Phase {
    /// The phase's interned span name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Decode => "decode",
            Phase::Parse => "parse",
            Phase::Classify => "classify",
            Phase::Deliver => "deliver",
            Phase::Reply => "reply",
            Phase::Gossip => "gossip",
            Phase::Retry => "retry",
            Phase::Job => "job",
        }
    }

    /// Every phase, in numeric order (scrape/export iteration order).
    pub fn all() -> [Phase; PHASES] {
        [
            Phase::Decode,
            Phase::Parse,
            Phase::Classify,
            Phase::Deliver,
            Phase::Reply,
            Phase::Gossip,
            Phase::Retry,
            Phase::Job,
        ]
    }

    fn from_u8(v: u8) -> Option<Phase> {
        Some(match v {
            0 => Phase::Decode,
            1 => Phase::Parse,
            2 => Phase::Classify,
            3 => Phase::Deliver,
            4 => Phase::Reply,
            5 => Phase::Gossip,
            6 => Phase::Retry,
            7 => Phase::Job,
            _ => return None,
        })
    }
}

/// The time source spans are stamped from.
///
/// Implementations must be monotone (a later call never returns an
/// earlier time) — the export validator checks non-decreasing span
/// starts, and both provided clocks guarantee it.
pub trait Clock: Send + Sync {
    /// The current instant on the shared virtual-nanosecond axis.
    fn now(&self) -> SimTime;
}

/// Live-runtime clock: monotonic wall time from an [`Instant`] epoch,
/// offset by +1 s onto the [`SimTime`] axis (the same mapping the wire
/// driver uses for TTL bookkeeping, so stats and spans agree).
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock whose epoch is "now".
    pub fn new() -> WallClock {
        WallClock { epoch: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        let nanos = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        SimTime::from_nanos(nanos.saturating_add(1_000_000_000))
    }
}

/// Simulation clock: an atomic virtual instant the driving event loop
/// advances with [`SimClock::set`]. Reads never consult the wall clock,
/// so same-seed runs stamp byte-identical spans.
#[derive(Debug, Default)]
pub struct SimClock {
    nanos: AtomicU64,
}

impl SimClock {
    /// A clock starting at `SimTime::ZERO`.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Advances the clock to `now` (monotone: earlier values are ignored).
    pub fn set(&self, now: SimTime) {
        self.nanos.fetch_max(now.as_nanos(), Ordering::Relaxed);
    }
}

impl Clock for SimClock {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.nanos.load(Ordering::Relaxed))
    }
}

/// One read-out span: what the exporter and the tests see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Global sequence number within the span's ring (monotone per ring;
    /// survivors of a wrap keep their original numbers, so ordering is
    /// never disturbed by overwrites).
    pub seq: u64,
    /// Ring (≈ worker thread) the span was recorded on.
    pub ring: usize,
    /// The pipeline phase (also the span's name).
    pub phase: Phase,
    /// The lane the work ran on (Perfetto `tid`).
    pub lane: u16,
    /// Span start.
    pub start: SimTime,
    /// Span end.
    pub end: SimTime,
}

/// Bits of slot meta: `seq << 24 | lane << 8 | phase`.
const META_PHASE_MASK: u64 = 0xFF;
const META_LANE_SHIFT: u32 = 8;
const META_SEQ_SHIFT: u32 = 24;

struct Slot {
    /// Seqlock generation: odd while a write is in progress.
    gen: AtomicU64,
    meta: AtomicU64,
    start: AtomicU64,
    end: AtomicU64,
}

struct Ring {
    slots: Box<[Slot]>,
    /// Next sequence number to write (== spans ever recorded here).
    head: AtomicU64,
    /// Spans overwritten by ring wrap, monotone.
    dropped: AtomicU64,
    /// Per-phase latency histograms for this ring, merged at scrape.
    phase_hists: [AtomicHistogram; PHASES],
    /// Per-protocol end-to-end histograms for this ring (parallel to
    /// `TracerInner::proto_ports`). Per ring — i.e. per writing thread —
    /// so the request hot path never bumps a cache line another worker
    /// is bumping; the scrape merges them.
    proto_hists: Box<[AtomicHistogram]>,
}

impl Ring {
    fn new(capacity: usize, protocols: usize) -> Ring {
        let slots = (0..capacity)
            .map(|_| Slot {
                gen: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                start: AtomicU64::new(0),
                end: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            slots,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            phase_hists: std::array::from_fn(|_| AtomicHistogram::new()),
            proto_hists: (0..protocols).map(|_| AtomicHistogram::new()).collect(),
        }
    }

    fn push(&self, phase: Phase, lane: u16, start: SimTime, end: SimTime) {
        let cap = self.slots.len() as u64;
        let seq = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(seq % cap) as usize];
        if seq >= cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let gen = slot.gen.load(Ordering::Relaxed);
        // Odd generation marks the write window; Release on the final
        // store publishes the payload before the even generation lands.
        slot.gen.store(gen.wrapping_add(1), Ordering::Release);
        let meta =
            (seq << META_SEQ_SHIFT) | (u64::from(lane) << META_LANE_SHIFT) | u64::from(phase as u8);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.start.store(start.as_nanos(), Ordering::Relaxed);
        slot.end.store(end.as_nanos(), Ordering::Relaxed);
        slot.gen.store(gen.wrapping_add(2), Ordering::Release);
        self.head.store(seq + 1, Ordering::Release);
    }

    fn snapshot_into(&self, ring_index: usize, out: &mut Vec<SpanSnapshot>) {
        let head = self.head.load(Ordering::Acquire);
        for slot in self.slots.iter() {
            // Seqlock read: retry a torn slot a few times, then skip it
            // (a slot being overwritten right now is, by definition, the
            // oldest span — losing it is the ring's contract anyway).
            let mut span = None;
            for _ in 0..4 {
                let g1 = slot.gen.load(Ordering::Acquire);
                if g1 == 0 || g1 & 1 == 1 {
                    if g1 == 0 {
                        break; // never written
                    }
                    continue;
                }
                let meta = slot.meta.load(Ordering::Relaxed);
                let start = slot.start.load(Ordering::Relaxed);
                let end = slot.end.load(Ordering::Relaxed);
                let g2 = slot.gen.load(Ordering::Acquire);
                if g1 == g2 {
                    span = Some((meta, start, end));
                    break;
                }
            }
            let Some((meta, start, end)) = span else { continue };
            let seq = meta >> META_SEQ_SHIFT;
            if seq >= head {
                continue; // torn against a concurrent wrap; skip
            }
            let Some(phase) = Phase::from_u8((meta & META_PHASE_MASK) as u8) else {
                continue;
            };
            out.push(SpanSnapshot {
                seq,
                ring: ring_index,
                phase,
                lane: ((meta >> META_LANE_SHIFT) & 0xFFFF) as u16,
                start: SimTime::from_nanos(start),
                end: SimTime::from_nanos(end),
            });
        }
    }
}

struct TracerInner {
    enabled: bool,
    rings: Vec<Ring>,
    clock: Arc<dyn Clock>,
    /// Declared native ports, sorted — the index into each ring's
    /// `proto_hists`.
    proto_ports: Box<[u16]>,
}

/// The span recorder: a cheap-clone handle shared by every instrumented
/// layer. See the module docs for the ring discipline.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.enabled)
            .field("rings", &self.inner.rings.len())
            .field("capacity", &self.inner.rings.first().map_or(0, |r| r.slots.len()))
            .finish()
    }
}

impl Tracer {
    /// An enabled tracer: `rings` span rings of `capacity` slots each,
    /// stamped from `clock`, with one end-to-end histogram per port in
    /// `protocols`. `rings` and `capacity` are clamped to ≥ 1.
    pub fn new(capacity: usize, rings: usize, protocols: &[u16], clock: Arc<dyn Clock>) -> Tracer {
        let capacity = capacity.max(1);
        let mut proto_ports: Vec<u16> = protocols.to_vec();
        proto_ports.sort_unstable();
        proto_ports.dedup();
        let proto_ports = proto_ports.into_boxed_slice();
        let rings = (0..rings.max(1)).map(|_| Ring::new(capacity, proto_ports.len())).collect();
        Tracer { inner: Arc::new(TracerInner { enabled: true, rings, clock, proto_ports }) }
    }

    /// A disabled tracer: every record is a single branch, nothing is
    /// allocated per call, and snapshots are empty.
    pub fn disabled() -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                enabled: false,
                rings: Vec::new(),
                clock: Arc::new(SimClock::new()),
                proto_ports: Box::new([]),
            }),
        }
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// The current instant, or `SimTime::ZERO` when disabled — pair
    /// with [`Tracer::record`], which ignores the stamp when disabled.
    pub fn stamp(&self) -> SimTime {
        if self.inner.enabled {
            self.inner.clock.now()
        } else {
            SimTime::ZERO
        }
    }

    /// Records a span from `start` to "now" on `lane`.
    pub fn record(&self, lane: usize, phase: Phase, start: SimTime) {
        if !self.inner.enabled {
            return;
        }
        let end = self.inner.clock.now();
        self.record_at(lane, phase, start, end.max(start));
    }

    /// Records a span with explicit endpoints (virtual-time callers:
    /// gossip rounds and tracker retries stamp the event-loop's `now`).
    pub fn record_at(&self, lane: usize, phase: Phase, start: SimTime, end: SimTime) {
        if !self.inner.enabled {
            return;
        }
        let ring = &self.inner.rings[lane % self.inner.rings.len()];
        ring.phase_hists[phase as usize].record(end.as_nanos().saturating_sub(start.as_nanos()));
        ring.push(phase, (lane & 0xFFFF) as u16, start, end);
    }

    /// Records one end-to-end request latency for `port`'s protocol on
    /// `lane`'s ring, so concurrent workers never contend on one
    /// histogram's cache lines. Ports not declared at construction are
    /// ignored (never allocates).
    pub fn record_protocol(&self, lane: usize, port: u16, start: SimTime, end: SimTime) {
        if !self.inner.enabled {
            return;
        }
        if let Ok(i) = self.inner.proto_ports.binary_search(&port) {
            let ring = &self.inner.rings[lane % self.inner.rings.len()];
            ring.proto_hists[i].record(end.as_nanos().saturating_sub(start.as_nanos()));
        }
    }

    /// Total spans ever recorded (survivors + dropped), summed over rings.
    pub fn spans_recorded(&self) -> u64 {
        self.inner.rings.iter().map(|r| r.head.load(Ordering::Acquire)).sum()
    }

    /// Spans overwritten by ring wrap, monotone, summed over rings.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.rings.iter().map(|r| r.dropped.load(Ordering::Acquire)).sum()
    }

    /// Every surviving span, sorted by `(start, ring, seq)` — a total,
    /// deterministic order (same-seed sim runs yield identical vectors).
    pub fn snapshot(&self) -> Vec<SpanSnapshot> {
        let mut out = Vec::new();
        for (i, ring) in self.inner.rings.iter().enumerate() {
            ring.snapshot_into(i, &mut out);
        }
        out.sort_by_key(|s| (s.start, s.ring, s.seq));
        out
    }

    /// Per-phase latency histograms, merged across rings, in
    /// [`Phase::all`] order (empty phases included, so the shape is
    /// fixed).
    pub fn phase_histograms(&self) -> Vec<(&'static str, LatencyHistogram)> {
        Phase::all()
            .into_iter()
            .map(|phase| {
                let mut merged = LatencyHistogram::new();
                for ring in &self.inner.rings {
                    merged.merge(&ring.phase_hists[phase as usize].snapshot());
                }
                (phase.name(), merged)
            })
            .collect()
    }

    /// Per-protocol end-to-end histograms, merged across rings, in
    /// port order.
    pub fn protocol_histograms(&self) -> Vec<(u16, LatencyHistogram)> {
        self.inner
            .proto_ports
            .iter()
            .enumerate()
            .map(|(i, port)| {
                let mut merged = LatencyHistogram::new();
                for ring in &self.inner.rings {
                    merged.merge(&ring.proto_hists[i].snapshot());
                }
                (*port, merged)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert_eq!(t.stamp(), SimTime::ZERO);
        t.record(3, Phase::Decode, SimTime::ZERO);
        t.record_at(0, Phase::Gossip, SimTime::ZERO, SimTime::from_secs(1));
        t.record_protocol(0, 427, SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(t.spans_recorded(), 0);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn spans_come_back_in_start_order() {
        let clock = Arc::new(SimClock::new());
        let t = Tracer::new(16, 2, &[427], clock.clone());
        for i in 0..6u64 {
            let start = SimTime::from_micros(i * 10);
            let end = start + Duration::from_micros(5);
            t.record_at(i as usize, Phase::Classify, start, end);
        }
        let spans = t.snapshot();
        assert_eq!(spans.len(), 6);
        for w in spans.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert_eq!(spans[0].lane, 0);
        assert_eq!(spans[0].phase, Phase::Classify);
        assert_eq!(t.spans_dropped(), 0);
        // The classify histogram saw all six 5 µs durations.
        let hists = t.phase_histograms();
        let (name, classify) = &hists[Phase::Classify as usize];
        assert_eq!(*name, "classify");
        assert_eq!(classify.count(), 6);
    }

    #[test]
    fn wall_clock_is_monotone_and_offset() {
        let clock = WallClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(a >= SimTime::from_secs(1), "live clock sits past the sim epoch");
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_never_moves_backwards() {
        let clock = SimClock::new();
        clock.set(SimTime::from_secs(5));
        clock.set(SimTime::from_secs(3));
        assert_eq!(clock.now(), SimTime::from_secs(5));
    }

    #[test]
    fn undeclared_protocol_port_is_ignored() {
        let t = Tracer::new(8, 2, &[427, 1900], Arc::new(SimClock::new()));
        t.record_protocol(0, 9999, SimTime::ZERO, SimTime::from_micros(1));
        t.record_protocol(0, 1900, SimTime::ZERO, SimTime::from_micros(1));
        // A second lane routes to the other ring; the scrape merges both.
        t.record_protocol(1, 1900, SimTime::ZERO, SimTime::from_micros(2));
        let hists = t.protocol_histograms();
        assert_eq!(hists.len(), 2);
        assert_eq!(hists[0].0, 427);
        assert_eq!(hists[0].1.count(), 0);
        assert_eq!(hists[1].0, 1900);
        assert_eq!(hists[1].1.count(), 2);
    }
}
