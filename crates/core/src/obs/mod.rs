//! Production observability: pipeline trace spans, latency histograms,
//! and the scrapeable stats endpoint.
//!
//! Three submodules, one story:
//!
//! * [`trace`](self) — [`Tracer`]: a lock-free per-lane span ring with
//!   nanosecond timestamps from a [`Clock`] seam ([`SimClock`] under
//!   simulation, [`WallClock`] live), zero allocation on the hot path;
//! * `hist` — [`AtomicHistogram`]/[`LatencyHistogram`]: fixed
//!   log₂-bucket latency histograms recorded per lane and merged at
//!   scrape time;
//! * `export` — the Chrome/Perfetto `trace.json` exporter with its
//!   dependency-free validator, the plaintext stats renderers, and
//!   [`StatsServer`], the `GET /metrics` endpoint built on
//!   `indiss-http`.
//!
//! Instrumented layers: the wire front-end (`netfront.rs`: decode /
//! classify / deliver / reply spans plus per-protocol end-to-end
//! latency), the worker pool (`pool.rs`: per-job spans), the simulation
//! runtime's unit parsers (`runtime.rs`), the query tracker's retries
//! (`tracker.rs`) and the mesh's gossip rounds (`mesh/mod.rs`). Knobs
//! ride [`crate::IndissConfig`] (`trace`, `trace_capacity`,
//! `stats_port`) and the §3 config language's `Trace = { … }` block.
//!
//! Everything is deterministic under [`SimClock`]: two same-seed
//! simulation runs export byte-identical `trace.json` documents, which
//! `request_storm --trace` and the worlds suite gate.

mod export;
mod hist;
mod trace;

pub use export::{
    chrome_trace_json, render_bridge_stats, render_interner_gauges, render_mesh_stats,
    render_netfront_stats, render_registry_stats, render_tracer, validate_chrome_trace,
    StatsServer,
};
pub use hist::{bucket_floor, bucket_of, AtomicHistogram, LatencyHistogram, HIST_BUCKETS};
pub use trace::{Clock, Phase, SimClock, SpanSnapshot, Tracer, WallClock, PHASES};
