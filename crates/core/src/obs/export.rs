//! Exporters for the observability layer: Chrome/Perfetto `trace.json`,
//! a dependency-free JSON validator for it, the plaintext stats page,
//! and the scrapeable [`StatsServer`] built on the workspace's own
//! `indiss-http` message types (parse/serialize only — the accept loop
//! lives here).
//!
//! Everything renders deterministically: fixed field order, integer
//! microsecond arithmetic for timestamps (no float formatting), so two
//! same-seed simulation runs export byte-identical documents — the
//! replay contract `request_storm --trace` and the worlds suite gate.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use indiss_http::{Request, Response};
use indiss_net::FaultStats;

use crate::error::{CoreError, CoreResult};
use crate::mesh::MeshStats;
use crate::netfront::NetFrontStats;
use crate::registry::RegistryStats;
use crate::runtime::BridgeStats;
use crate::symbol::Symbol;

use super::hist::LatencyHistogram;
use super::trace::{SpanSnapshot, Tracer};

/// Serializes spans (as produced by [`Tracer::snapshot`], already in
/// deterministic order) into Chrome/Perfetto trace-event JSON: one
/// complete (`"ph":"X"`) event per span, `ts`/`dur` in microseconds
/// with fixed 3-digit nanosecond fractions, `tid` = lane, `pid` = ring.
pub fn chrome_trace_json(spans: &[SpanSnapshot]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = span.start.as_nanos();
        let dur = span.end.as_nanos().saturating_sub(ts);
        out.push_str("{\"name\":\"");
        out.push_str(span.phase.name());
        out.push_str("\",\"cat\":\"pipeline\",\"ph\":\"X\",\"ts\":");
        push_micros(&mut out, ts);
        out.push_str(",\"dur\":");
        push_micros(&mut out, dur);
        out.push_str(",\"pid\":");
        out.push_str(itoa(span.ring as u64).as_str());
        out.push_str(",\"tid\":");
        out.push_str(itoa(u64::from(span.lane)).as_str());
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Formats `nanos` as decimal microseconds with exactly three fraction
/// digits — integer arithmetic only, so output is platform-independent.
fn push_micros(out: &mut String, nanos: u64) {
    out.push_str(itoa(nanos / 1_000).as_str());
    out.push('.');
    let frac = nanos % 1_000;
    out.push((b'0' + (frac / 100) as u8) as char);
    out.push((b'0' + (frac / 10 % 10) as u8) as char);
    out.push((b'0' + (frac % 10) as u8) as char);
}

fn itoa(v: u64) -> String {
    v.to_string()
}

// ---------------------------------------------------------------------
// A minimal JSON reader: just enough to validate an exported trace
// without serde (the workspace has no crates.io access). It parses the
// full JSON grammar for objects/arrays/strings/numbers and surfaces the
// `ts` value of every trace event in document order.

struct JsonScan<'a> {
    bytes: &'a [u8],
    at: usize,
    /// Each `"ts"` number encountered, in nanoseconds (µs × 1000).
    ts_nanos: Vec<u64>,
    /// Trace events seen (objects directly inside the first array).
    events: usize,
    depth: usize,
}

impl<'a> JsonScan<'a> {
    fn error(&self, msg: &str) -> String {
        format!("trace.json byte {}: {}", self.at, msg)
    }

    fn skip_ws(&mut self) {
        while self.at < self.bytes.len() && self.bytes[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.error("unterminated string"))?;
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.at += 1;
                    match esc {
                        b'"' | b'\\' | b'/' => out.push(esc as char),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' | b'f' => out.push(' '),
                        b'u' => {
                            for _ in 0..4 {
                                let h =
                                    self.peek().ok_or_else(|| self.error("short \\u escape"))?;
                                if !h.is_ascii_hexdigit() {
                                    return Err(self.error("bad \\u escape"));
                                }
                                self.at += 1;
                            }
                            out.push('?');
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => out.push(b as char),
            }
        }
    }

    /// Parses a non-negative decimal number, returning nanoseconds
    /// (integer part × 1000 + up to three fraction digits).
    fn number(&mut self) -> Result<u64, String> {
        let start = self.at;
        let mut int: u64 = 0;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                int = int
                    .checked_mul(10)
                    .and_then(|v| v.checked_add(u64::from(b - b'0')))
                    .ok_or_else(|| self.error("number overflow"))?;
                self.at += 1;
            } else {
                break;
            }
        }
        if self.at == start {
            return Err(self.error("expected a digit"));
        }
        let mut nanos = int.checked_mul(1_000).ok_or_else(|| self.error("number overflow"))?;
        if self.peek() == Some(b'.') {
            self.at += 1;
            let mut scale = 100u64;
            let mut digits = 0;
            while let Some(b) = self.peek() {
                if !b.is_ascii_digit() {
                    break;
                }
                if digits < 3 {
                    nanos += u64::from(b - b'0') * scale;
                    scale /= 10;
                }
                digits += 1;
                self.at += 1;
            }
            if digits == 0 {
                return Err(self.error("expected fraction digits"));
            }
        }
        Ok(nanos)
    }

    fn value(&mut self, in_events: bool) -> Result<(), String> {
        self.depth += 1;
        if self.depth > 64 {
            return Err(self.error("nesting too deep"));
        }
        self.skip_ws();
        match self.peek().ok_or_else(|| self.error("unexpected end of input"))? {
            b'{' => {
                self.at += 1;
                if in_events {
                    self.events += 1;
                }
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.at += 1;
                } else {
                    loop {
                        self.skip_ws();
                        let key = self.string()?;
                        self.skip_ws();
                        self.eat(b':')?;
                        self.skip_ws();
                        if in_events && key == "ts" {
                            let ts = self.number()?;
                            self.ts_nanos.push(ts);
                        } else if key == "traceEvents" {
                            self.array_of_events()?;
                        } else {
                            self.value(false)?;
                        }
                        self.skip_ws();
                        if self.peek() == Some(b',') {
                            self.at += 1;
                            continue;
                        }
                        self.eat(b'}')?;
                        break;
                    }
                }
            }
            b'[' => {
                self.at += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.at += 1;
                } else {
                    loop {
                        self.value(false)?;
                        self.skip_ws();
                        if self.peek() == Some(b',') {
                            self.at += 1;
                            continue;
                        }
                        self.eat(b']')?;
                        break;
                    }
                }
            }
            b'"' => {
                self.string()?;
            }
            b't' => self.literal("true")?,
            b'f' => self.literal("false")?,
            b'n' => self.literal("null")?,
            b'-' => {
                self.at += 1;
                self.number()?;
            }
            _ => {
                self.number()?;
            }
        }
        self.depth -= 1;
        Ok(())
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn array_of_events(&mut self) -> Result<(), String> {
        self.skip_ws();
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(());
        }
        loop {
            self.value(true)?;
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.at += 1;
                continue;
            }
            self.eat(b']')?;
            return Ok(());
        }
    }
}

/// Validates an exported Chrome trace: well-formed JSON, a
/// `traceEvents` array, and chronologically non-decreasing `ts` values.
/// Returns the number of events.
///
/// # Errors
///
/// A human-readable description of the first syntax or ordering
/// violation, with a byte offset.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let mut scan =
        JsonScan { bytes: json.as_bytes(), at: 0, ts_nanos: Vec::new(), events: 0, depth: 0 };
    scan.value(false)?;
    scan.skip_ws();
    if scan.at != scan.bytes.len() {
        return Err(scan.error("trailing bytes after the document"));
    }
    if scan.events != scan.ts_nanos.len() {
        return Err(format!(
            "{} events but {} ts fields — every span needs a timestamp",
            scan.events,
            scan.ts_nanos.len()
        ));
    }
    for (i, pair) in scan.ts_nanos.windows(2).enumerate() {
        if pair[1] < pair[0] {
            return Err(format!(
                "span timestamps regress at event {}: {} < {} (µs×1000)",
                i + 1,
                pair[1],
                pair[0]
            ));
        }
    }
    Ok(scan.events)
}

// ---------------------------------------------------------------------
// Plaintext stats rendering: `name value` lines, one metric per line,
// fixed order. The format is Prometheus-flavoured but deliberately
// minimal — a scrape is `GET /metrics`, the body is ASCII.

fn line(out: &mut String, name: &str, value: u64) {
    out.push_str(name);
    out.push(' ');
    out.push_str(itoa(value).as_str());
    out.push('\n');
}

/// Renders the bridge-path counters.
pub fn render_bridge_stats(out: &mut String, s: &BridgeStats) {
    line(out, "indiss_bridge_requests_bridged", s.requests_bridged);
    line(out, "indiss_bridge_responses_composed", s.responses_composed);
    line(out, "indiss_bridge_cache_hits", s.cache_hits);
    line(out, "indiss_bridge_remote_cache_hits", s.remote_cache_hits);
    line(out, "indiss_bridge_cache_misses", s.cache_misses);
    line(out, "indiss_bridge_negative_hits", s.negative_hits);
    line(out, "indiss_bridge_cache_evictions", s.cache_evictions);
    line(out, "indiss_bridge_cache_expired", s.cache_expired);
    line(out, "indiss_bridge_adverts_recorded", s.adverts_recorded);
    line(out, "indiss_bridge_adverts_translated", s.adverts_translated);
    line(out, "indiss_bridge_requests_suppressed", s.requests_suppressed);
    line(out, "indiss_bridge_queries_retried", s.queries_retried);
    line(out, "indiss_bridge_queries_exhausted", s.queries_exhausted);
    line(out, "indiss_bridge_stale_served", s.stale_served);
    line(out, "indiss_bridge_records_expired", s.records_expired);
    line(out, "indiss_bridge_records_evicted", s.records_evicted);
}

/// Renders the wire front-end counters (reactor and fault blocks
/// included).
pub fn render_netfront_stats(out: &mut String, s: &NetFrontStats) {
    line(out, "indiss_netfront_datagrams_received", s.datagrams_received);
    line(out, "indiss_netfront_dropped_backpressure", s.dropped_backpressure);
    line(out, "indiss_netfront_requests_decoded", s.requests_decoded);
    line(out, "indiss_netfront_replies_sent", s.replies_sent);
    line(out, "indiss_netfront_cold_misses", s.cold_misses);
    line(out, "indiss_netfront_adverts_seen", s.adverts_seen);
    line(out, "indiss_netfront_descriptions_fetched", s.descriptions_fetched);
    line(out, "indiss_netfront_decode_rejected", s.decode_rejected);
    line(out, "indiss_netfront_reactor_wakeups", s.reactor_wakeups);
    for (i, count) in s.recv_batch_hist.iter().enumerate() {
        line(out, &format!("indiss_netfront_recv_batch_bucket_{i}"), *count);
    }
    line(out, "indiss_netfront_batch_sends_flushed", s.batch_sends_flushed);
    line(out, "indiss_netfront_recv_eagain", s.recv_eagain);
    line(out, "indiss_netfront_multicast_join_misses", s.multicast_join_misses);
    render_fault_stats(out, &s.faults);
}

fn render_fault_stats(out: &mut String, s: &FaultStats) {
    line(out, "indiss_fault_dropped", s.dropped);
    line(out, "indiss_fault_duplicated", s.duplicated);
    line(out, "indiss_fault_reordered", s.reordered);
    line(out, "indiss_fault_corrupted", s.corrupted);
    line(out, "indiss_fault_delayed", s.delayed);
    line(out, "indiss_fault_partitioned", s.partitioned);
    line(out, "indiss_fault_time_partitioned", s.time_partitioned);
}

/// Renders the registry's per-shard-merged counters.
pub fn render_registry_stats(out: &mut String, s: &RegistryStats) {
    line(out, "indiss_registry_cache_hits", s.cache_hits);
    line(out, "indiss_registry_remote_cache_hits", s.remote_cache_hits);
    line(out, "indiss_registry_cache_misses", s.cache_misses);
    line(out, "indiss_registry_cache_evictions", s.cache_evictions);
    line(out, "indiss_registry_cache_expired", s.cache_expired);
    line(out, "indiss_registry_negative_hits", s.negative_hits);
    line(out, "indiss_registry_negative_stored", s.negative_stored);
    line(out, "indiss_registry_records_inserted", s.records_inserted);
    line(out, "indiss_registry_records_refreshed", s.records_refreshed);
    line(out, "indiss_registry_records_evicted", s.records_evicted);
    line(out, "indiss_registry_records_expired", s.records_expired);
    line(out, "indiss_registry_records_removed", s.records_removed);
}

/// Renders the federated-mesh counters.
pub fn render_mesh_stats(out: &mut String, s: &MeshStats) {
    line(out, "indiss_mesh_rounds_run", s.rounds_run);
    line(out, "indiss_mesh_digests_sent", s.digests_sent);
    line(out, "indiss_mesh_digests_received", s.digests_received);
    line(out, "indiss_mesh_digest_resyncs", s.digest_resyncs);
    line(out, "indiss_mesh_acks_sent", s.acks_sent);
    line(out, "indiss_mesh_acks_received", s.acks_received);
    line(out, "indiss_mesh_pulls_sent", s.pulls_sent);
    line(out, "indiss_mesh_pulls_received", s.pulls_received);
    line(out, "indiss_mesh_records_sent", s.records_sent);
    line(out, "indiss_mesh_records_received", s.records_received);
    line(out, "indiss_mesh_records_applied", s.records_applied);
    line(out, "indiss_mesh_records_stale", s.records_stale);
    line(out, "indiss_mesh_frames_rejected", s.frames_rejected);
    line(out, "indiss_mesh_custody_enqueued", s.custody_enqueued);
    line(out, "indiss_mesh_custody_dropped", s.custody_dropped);
    line(out, "indiss_mesh_custody_expired", s.custody_expired);
    line(out, "indiss_mesh_custody_replayed", s.custody_replayed);
    line(out, "indiss_mesh_peers_down", s.peers_down);
    line(out, "indiss_mesh_peers_reconnected", s.peers_reconnected);
}

/// Renders the symbol-interner gauges (process-wide).
pub fn render_interner_gauges(out: &mut String) {
    line(out, "indiss_interner_symbols", Symbol::interned_count() as u64);
    line(out, "indiss_interner_bytes", Symbol::interned_bytes() as u64);
}

fn render_histogram(out: &mut String, prefix: &str, h: &LatencyHistogram) {
    line(out, &format!("{prefix}_count"), h.count());
    line(out, &format!("{prefix}_sum_nanos"), h.sum_nanos());
    line(out, &format!("{prefix}_p50_nanos"), h.quantile_upper_bound(0.5));
    line(out, &format!("{prefix}_p99_nanos"), h.quantile_upper_bound(0.99));
}

/// Renders the tracer gauges plus every per-phase and per-protocol
/// histogram (merged across rings at this scrape).
pub fn render_tracer(out: &mut String, tracer: &Tracer) {
    line(out, "indiss_trace_enabled", u64::from(tracer.enabled()));
    line(out, "indiss_trace_spans_recorded", tracer.spans_recorded());
    line(out, "indiss_trace_spans_dropped", tracer.spans_dropped());
    for (name, hist) in tracer.phase_histograms() {
        render_histogram(out, &format!("indiss_phase_{name}"), &hist);
    }
    for (port, hist) in tracer.protocol_histograms() {
        render_histogram(out, &format!("indiss_protocol_{port}"), &hist);
    }
}

// ---------------------------------------------------------------------
// The scrape endpoint.

/// A scrapeable plaintext stats endpoint: one accept-loop thread on a
/// loopback `TcpListener`, speaking just enough HTTP/1.1 (via the
/// workspace `indiss-http` parser) to answer `GET /metrics`.
///
/// The render closure runs per scrape, so gauges are read at scrape
/// time — nothing is sampled or cached. Port 0 binds an ephemeral port
/// (tests); [`StatsServer::addr`] reports the bound address either way.
pub struct StatsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for StatsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsServer").field("addr", &self.addr).finish()
    }
}

impl StatsServer {
    /// Binds `127.0.0.1:port` and starts serving `render()` bodies.
    ///
    /// # Errors
    ///
    /// [`CoreError::Net`] when the listener cannot bind.
    pub fn start(
        port: u16,
        render: Arc<dyn Fn() -> String + Send + Sync>,
    ) -> CoreResult<StatsServer> {
        let listener = TcpListener::bind(("127.0.0.1", port)).map_err(|e| {
            CoreError::Net(indiss_net::NetError::Io { op: "stats bind", message: e.to_string() })
        })?;
        let addr = listener.local_addr().map_err(|e| {
            CoreError::Net(indiss_net::NetError::Io { op: "stats addr", message: e.to_string() })
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("indiss-stats".into())
            .spawn(move || {
                while let Ok((stream, _)) = listener.accept() {
                    if stop_thread.load(Ordering::Acquire) {
                        break;
                    }
                    // Scrapes are short-lived; serve inline. A slow or
                    // stuck client is bounded by the read timeout.
                    let _ = serve_one(stream, render.as_ref());
                }
            })
            .expect("spawn stats thread");
        Ok(StatsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (the real port even when started with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread. Idempotent.
    pub fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for StatsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_one(
    mut stream: TcpStream,
    render: &(dyn Fn() -> String + Send + Sync),
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // GET requests have no body: the head ends at the blank line.
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(());
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > 16 * 1024 {
            break; // header flood: answer 400 below via parse failure
        }
    }
    let mut response = match Request::parse(&buf) {
        Ok(req)
            if req.method == indiss_http::Method::Get
                && (req.target == "/metrics" || req.target == "/") =>
        {
            let mut r = Response::ok();
            r.body = render().into_bytes();
            r.headers.insert("Content-Type", "text/plain; version=0.0.4");
            r
        }
        Ok(_) => Response::new(404),
        Err(_) => Response::new(400),
    };
    response.headers.insert("Connection", "close");
    stream.write_all(&response.serialize())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::trace::{Phase, SimClock};
    use super::*;
    use indiss_net::SimTime;

    fn sample_tracer() -> Tracer {
        let t = Tracer::new(8, 1, &[427], Arc::new(SimClock::new()));
        t.record_at(0, Phase::Decode, SimTime::from_micros(10), SimTime::from_micros(12));
        t.record_at(0, Phase::Classify, SimTime::from_micros(12), SimTime::from_micros(13));
        t
    }

    #[test]
    fn export_is_valid_and_ordered() {
        let json = chrome_trace_json(&sample_tracer().snapshot());
        assert!(json.starts_with("{\"traceEvents\":[{"));
        assert!(json.contains("\"name\":\"decode\""));
        assert!(json.contains("\"ts\":10.000"));
        assert_eq!(validate_chrome_trace(&json), Ok(2));
    }

    #[test]
    fn validator_rejects_regressions_and_junk() {
        let ok = r#"{"traceEvents":[{"ts":1.5},{"ts":1.5},{"ts":2.0}]}"#;
        assert_eq!(validate_chrome_trace(ok), Ok(3));
        let regress = r#"{"traceEvents":[{"ts":5.0},{"ts":4.999}]}"#;
        assert!(validate_chrome_trace(regress).unwrap_err().contains("regress"));
        assert!(validate_chrome_trace("{\"traceEvents\":[").is_err());
        assert!(validate_chrome_trace("{}x").is_err());
        assert!(validate_chrome_trace("").is_err());
        // Events without ts are rejected, not silently accepted.
        assert!(validate_chrome_trace(r#"{"traceEvents":[{"name":"a"}]}"#).is_err());
        // Nested structures and escapes parse.
        let fancy = r#"{"meta":{"x":[1,2,{"s":"a\"b"}],"b":true,"n":null},"traceEvents":[]}"#;
        assert_eq!(validate_chrome_trace(fancy), Ok(0));
    }

    #[test]
    fn micros_formatting_is_exact() {
        let mut s = String::new();
        push_micros(&mut s, 1_234_567);
        assert_eq!(s, "1234.567");
        s.clear();
        push_micros(&mut s, 999);
        assert_eq!(s, "0.999");
        s.clear();
        push_micros(&mut s, 1_000_000_000);
        assert_eq!(s, "1000000.000");
    }

    #[test]
    fn stats_page_renders_fixed_order_lines() {
        let mut out = String::new();
        render_bridge_stats(&mut out, &BridgeStats::default());
        render_interner_gauges(&mut out);
        render_tracer(&mut out, &sample_tracer());
        assert!(out.starts_with("indiss_bridge_requests_bridged 0\n"));
        assert!(out.contains("indiss_trace_spans_recorded 2\n"));
        assert!(out.contains("indiss_phase_decode_count 1\n"));
        assert!(out.contains("indiss_protocol_427_count 0\n"));
        for l in out.lines() {
            let mut parts = l.split(' ');
            assert!(parts.next().unwrap().starts_with("indiss_"));
            parts.next().unwrap().parse::<u64>().expect("numeric value");
            assert!(parts.next().is_none());
        }
    }
}
