//! The monitor component (paper §2.1): passive, port-based SDP detection.
//!
//! Every SDP has an IANA-assigned multicast group and port — a "permanent
//! identification tag". The monitor joins all of them and detects which
//! protocols are active purely from *data arrival at the monitored
//! ports*: no payload inspection, no computation ("the detection is not
//! based on the data content but on the data existence at the specified
//! UDP/TCP ports inside the corresponding groups"). Raw datagrams are
//! then forwarded to the appropriate unit's parser (§2.2 step 2).
//!
//! Because detection never looks inside a payload, the monitor is
//! already protocol-open: a [`SdpProtocol::Dynamic`] protocol is watched
//! exactly like a built-in one, on the port and groups its
//! [`crate::ProtocolId`] registration declared.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::net::SocketAddrV4;
use std::rc::Rc;

use indiss_net::{Datagram, NetResult, Node, SimTime, UdpSocket, World};

use crate::event::SdpProtocol;

/// Detection statistics for one protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionRecord {
    /// When the first message was observed.
    pub first_seen: SimTime,
    /// When the most recent message was observed.
    pub last_seen: SimTime,
    /// How many messages have been observed.
    pub message_count: u64,
}

type MessageSubscriber = Box<dyn Fn(&World, SdpProtocol, &Datagram)>;
type DetectSubscriber = Box<dyn Fn(&World, SdpProtocol)>;

struct MonitorInner {
    sockets: Vec<(SdpProtocol, UdpSocket)>,
    detections: HashMap<SdpProtocol, DetectionRecord>,
    /// Subscriber lists are immutable shared snapshots: `observe` runs
    /// per datagram and must not allocate, so it clones the `Rc` (a
    /// pointer bump) while subscribing rebuilds the slice. Handlers may
    /// re-enter the monitor (e.g. lazy unit instantiation registering
    /// loop-filter sources), which the snapshot also makes safe.
    message_subscribers: Rc<[Rc<MessageSubscriber>]>,
    detect_subscribers: Rc<[Rc<DetectSubscriber>]>,
    /// Source addresses whose traffic is ignored (this INDISS instance's
    /// own sockets, to prevent translation loops).
    own_sources: HashSet<SocketAddrV4>,
}

/// The monitor component: one shared socket per monitored protocol.
///
/// # Examples
///
/// ```
/// use indiss_core::{Monitor, SdpProtocol};
/// use indiss_net::World;
///
/// let world = World::new(1);
/// let node = world.add_node("gateway");
/// let monitor = Monitor::start(&node, &[SdpProtocol::Slp, SdpProtocol::Upnp])?;
/// assert!(monitor.detected().is_empty(), "nothing heard yet");
/// # Ok::<(), indiss_net::NetError>(())
/// ```
#[derive(Clone)]
pub struct Monitor {
    inner: Rc<RefCell<MonitorInner>>,
}

impl Monitor {
    /// Starts monitoring the given protocols on `node`: subscribes to each
    /// protocol's multicast groups and listens on its registered port.
    ///
    /// # Errors
    ///
    /// Network errors from binding (exclusive holders of an SDP port on
    /// this node conflict; native stacks built on `indiss-*` crates bind
    /// shared, as real stacks use `SO_REUSEADDR`).
    pub fn start(node: &Node, protocols: &[SdpProtocol]) -> NetResult<Monitor> {
        let monitor = Monitor {
            inner: Rc::new(RefCell::new(MonitorInner {
                sockets: Vec::new(),
                detections: HashMap::new(),
                message_subscribers: Rc::from(Vec::new()),
                detect_subscribers: Rc::from(Vec::new()),
                own_sources: HashSet::new(),
            })),
        };
        for &protocol in protocols {
            let socket = node.udp_bind_shared(protocol.port())?;
            for &group in protocol.multicast_groups() {
                socket.join_multicast(group)?;
            }
            let this = monitor.clone();
            socket.on_receive(move |world, dgram| this.observe(world, protocol, dgram));
            monitor.inner.borrow_mut().sockets.push((protocol, socket));
        }
        Ok(monitor)
    }

    /// Registers a source address whose packets the monitor must ignore —
    /// the runtime adds every socket INDISS itself sends from, so the
    /// system never tries to translate its own traffic.
    pub fn ignore_source(&self, addr: SocketAddrV4) {
        self.inner.borrow_mut().own_sources.insert(addr);
    }

    /// Protocols seen so far, in first-detection order.
    pub fn detected(&self) -> Vec<SdpProtocol> {
        let inner = self.inner.borrow();
        let mut seen: Vec<(SimTime, SdpProtocol)> =
            inner.detections.iter().map(|(p, r)| (r.first_seen, *p)).collect();
        seen.sort();
        seen.into_iter().map(|(_, p)| p).collect()
    }

    /// Detection statistics for one protocol.
    pub fn detection(&self, protocol: SdpProtocol) -> Option<DetectionRecord> {
        self.inner.borrow().detections.get(&protocol).copied()
    }

    /// Subscribes to every observed datagram (after loop filtering),
    /// tagged with the detected protocol. This is the §2.2 step-2 hookup:
    /// "forwards the input data to the appropriate parser".
    pub fn on_message<F>(&self, f: F)
    where
        F: Fn(&World, SdpProtocol, &Datagram) + 'static,
    {
        let mut inner = self.inner.borrow_mut();
        let mut subs: Vec<Rc<MessageSubscriber>> = inner.message_subscribers.to_vec();
        subs.push(Rc::new(Box::new(f)));
        inner.message_subscribers = subs.into();
    }

    /// Subscribes to first-detection of each protocol (used for dynamic
    /// unit instantiation, §3).
    pub fn on_detect<F>(&self, f: F)
    where
        F: Fn(&World, SdpProtocol) + 'static,
    {
        let mut inner = self.inner.borrow_mut();
        let mut subs: Vec<Rc<DetectSubscriber>> = inner.detect_subscribers.to_vec();
        subs.push(Rc::new(Box::new(f)));
        inner.detect_subscribers = subs.into();
    }

    /// Stops monitoring and closes all sockets.
    pub fn stop(&self) {
        let inner = self.inner.borrow();
        for (_, socket) in &inner.sockets {
            socket.close();
        }
    }

    fn observe(&self, world: &World, protocol: SdpProtocol, dgram: Datagram) {
        let (message_subs, detect_subs) = {
            let mut inner = self.inner.borrow_mut();
            if inner.own_sources.contains(&dgram.src) {
                return; // our own traffic: never re-translate (loop guard)
            }
            let now = world.now();
            let newly = !inner.detections.contains_key(&protocol);
            let record = inner.detections.entry(protocol).or_insert(DetectionRecord {
                first_seen: now,
                last_seen: now,
                message_count: 0,
            });
            record.last_seen = now;
            record.message_count += 1;
            // Snapshot by reference count; this path runs per datagram.
            (
                Rc::clone(&inner.message_subscribers),
                newly.then(|| Rc::clone(&inner.detect_subscribers)),
            )
        };
        for sub in detect_subs.iter().flat_map(|s| s.iter()) {
            sub(world, protocol);
        }
        for sub in message_subs.iter() {
            sub(world, protocol, &dgram);
        }
    }
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Monitor")
            .field("protocols", &inner.sockets.iter().map(|(p, _)| *p).collect::<Vec<_>>())
            .field("detections", &inner.detections)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indiss_net::Collector;
    use indiss_slp::{Registration, ServiceAgent, SlpConfig, UserAgent};
    use std::time::Duration;

    #[test]
    fn detects_slp_from_client_requests_without_parsing() {
        // Mirrors Fig. 1: an *active* SDP (SLP client multicasting
        // requests) is detected from data arrival alone.
        let world = World::new(3);
        let gw = world.add_node("gateway");
        let client = world.add_node("client");
        let monitor = Monitor::start(&gw, &[SdpProtocol::Slp, SdpProtocol::Upnp]).unwrap();
        let ua = UserAgent::start(&client, SlpConfig::default()).unwrap();
        ua.find_services(&world, "service:anything", "");
        world.run_for(Duration::from_secs(1));
        assert_eq!(monitor.detected(), vec![SdpProtocol::Slp]);
        let rec = monitor.detection(SdpProtocol::Slp).unwrap();
        assert_eq!(rec.message_count, 1);
    }

    #[test]
    fn detects_upnp_from_service_advertisements() {
        // Mirrors Fig. 1's passive SDP: a service advertising itself.
        let world = World::new(3);
        let gw = world.add_node("gateway");
        let dev = world.add_node("device");
        let monitor = Monitor::start(&gw, &[SdpProtocol::Slp, SdpProtocol::Upnp]).unwrap();
        let _clock =
            indiss_upnp::ClockDevice::start(&dev, indiss_upnp::UpnpConfig::default()).unwrap();
        world.run_for(Duration::from_secs(1));
        assert_eq!(monitor.detected(), vec![SdpProtocol::Upnp]);
        // One alive burst = 4 NOTIFYs (root, uuid, device, service).
        assert_eq!(monitor.detection(SdpProtocol::Upnp).unwrap().message_count, 4);
    }

    #[test]
    fn detection_order_is_first_seen() {
        let world = World::new(3);
        let gw = world.add_node("gateway");
        let a = world.add_node("a");
        let monitor = Monitor::start(&gw, &[SdpProtocol::Slp, SdpProtocol::Upnp]).unwrap();
        // SLP traffic at t≈0, UPnP later.
        let ua = UserAgent::start(&a, SlpConfig::default()).unwrap();
        ua.find_services(&world, "service:x", "");
        world.run_for(Duration::from_millis(100));
        let _clock =
            indiss_upnp::ClockDevice::start(&a, indiss_upnp::UpnpConfig::default()).unwrap();
        world.run_for(Duration::from_secs(1));
        assert_eq!(monitor.detected(), vec![SdpProtocol::Slp, SdpProtocol::Upnp]);
    }

    #[test]
    fn own_sources_are_ignored() {
        let world = World::new(3);
        let gw = world.add_node("gateway");
        let client = world.add_node("client");
        let monitor = Monitor::start(&gw, &[SdpProtocol::Slp]).unwrap();
        let ua = UserAgent::start(&client, SlpConfig::default()).unwrap();
        // Tell the monitor that this client's traffic is "its own".
        // We can't see the UA's ephemeral port directly; ignore all
        // plausible ones by probing after the fact instead:
        let seen: Collector<SocketAddrV4> = Collector::new();
        let seen2 = seen.clone();
        monitor.on_message(move |_, _, d| seen2.push(d.src));
        ua.find_services(&world, "service:x", "");
        world.run_for(Duration::from_secs(1));
        let src = *seen.snapshot().first().expect("first request observed");
        monitor.ignore_source(src);
        let before = monitor.detection(SdpProtocol::Slp).unwrap().message_count;
        ua.find_services(&world, "service:x", "");
        world.run_for(Duration::from_secs(1));
        let after = monitor.detection(SdpProtocol::Slp).unwrap().message_count;
        assert_eq!(before, after, "ignored source not counted");
    }

    #[test]
    fn on_detect_fires_once_per_protocol() {
        let world = World::new(3);
        let gw = world.add_node("gateway");
        let svc = world.add_node("svc");
        let monitor = Monitor::start(&gw, &[SdpProtocol::Slp]).unwrap();
        let detections: Collector<SdpProtocol> = Collector::new();
        let d2 = detections.clone();
        monitor.on_detect(move |_, p| d2.push(p));
        let sa = ServiceAgent::start(&svc, SlpConfig::default()).unwrap();
        sa.register(
            Registration::new("service:clock://10.0.0.9", indiss_slp::AttributeList::new())
                .unwrap(),
        );
        sa.advertise().unwrap();
        sa.advertise().unwrap();
        world.run_for(Duration::from_secs(1));
        assert_eq!(detections.snapshot(), vec![SdpProtocol::Slp], "detected exactly once");
    }

    /// Detection of a descriptor-defined protocol works from port
    /// activity alone, exactly like the built-ins.
    #[test]
    fn detects_dynamic_protocol_from_its_registered_port() {
        let descriptor = crate::units::SdpDescriptor::dns_sd();
        let protocol = descriptor.protocol();
        let world = World::new(3);
        let gw = world.add_node("gateway");
        let client_host = world.add_node("client");
        let monitor = Monitor::start(&gw, &[SdpProtocol::Slp, protocol]).unwrap();
        let client = crate::units::DescriptorClient::start(&client_host, descriptor).unwrap();
        client.query(&world, "clock");
        world.run_for(Duration::from_secs(1));
        assert_eq!(monitor.detected(), vec![protocol]);
        assert_eq!(monitor.detection(protocol).unwrap().message_count, 1);
    }

    #[test]
    fn monitor_coexists_with_native_stack_on_same_node() {
        // The monitor must share port 1900 with a native device on the
        // same host (service-side deployment).
        let world = World::new(3);
        let host = world.add_node("host");
        let _clock =
            indiss_upnp::ClockDevice::start(&host, indiss_upnp::UpnpConfig::default()).unwrap();
        assert!(Monitor::start(&host, &[SdpProtocol::Upnp, SdpProtocol::Slp]).is_ok());
    }
}
