//! Descriptor-driven SDP units: a new discovery protocol from data, not
//! Rust (paper §3).
//!
//! The paper's `System SDP = { Component Unit SLP(port=427); … }` names
//! units declaratively; this module is the mechanism that makes the
//! declaration sufficient. An [`SdpDescriptor`] captures everything a
//! line-oriented discovery protocol needs to be bridged:
//!
//! * the monitor's detection tag — scan **port** plus **multicast
//!   group** — registered process-wide as a [`ProtocolId`];
//! * a **parser table**: message templates (`"DNSSD Q PTR
//!   _{type}._tcp.local"`) whose `{field}` placeholders map captured
//!   wire text straight onto Table-1 events (`SDP_SERVICE_TYPE`,
//!   `SDP_RES_SERV_URL`, `SDP_RES_TTL`);
//! * **composer templates**: the same patterns rendered in the reverse
//!   direction, events → native message.
//!
//! [`DescriptorUnit`] interprets a descriptor as a full [`Unit`]: it
//! parses foreign-bound requests and adverts, executes native query
//! processes on behalf of other SDPs, and composes native responses and
//! advertisements — so a fourth (fifth, …) protocol participates in
//! bridging, the registry, the response/negative caches and the
//! statistics without a line of protocol-specific Rust.
//!
//! [`DescriptorService`] and [`DescriptorClient`] are native peers
//! generated from the same descriptor — the "unmodified application"
//! role the interop tests and benchmarks need for a protocol that has no
//! hand-written stack.

use std::cell::RefCell;
use std::net::{Ipv4Addr, SocketAddrV4};
use std::rc::Rc;
use std::time::Duration;

use indiss_net::{Completion, Datagram, NetResult, Node, UdpSocket, World};

use crate::error::{CoreError, CoreResult};
use crate::event::{Event, EventStream, EventStreamBuilder, ProtocolId, SdpProtocol, Symbol};
use crate::units::{ParsedMessage, Unit};

// ---------------------------------------------------------------------
// Templates: the parser table rows / composer templates
// ---------------------------------------------------------------------

/// The fields a message template can capture (parsing) or substitute
/// (composing). Each maps onto exactly one Table-1 event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    /// `{type}` → `SDP_SERVICE_TYPE` (canonicalized to lowercase).
    Type,
    /// `{url}` → `SDP_RES_SERV_URL`.
    Url,
    /// `{ttl}` → `SDP_RES_TTL` (decimal seconds).
    Ttl,
}

impl Field {
    fn from_name(name: &str) -> Option<Field> {
        match name {
            "type" => Some(Field::Type),
            "url" => Some(Field::Url),
            "ttl" => Some(Field::Ttl),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Part {
    Literal(String),
    Field(Field),
}

/// Field values captured from (or rendered into) one message line.
#[derive(Debug, Clone, Default, PartialEq)]
struct Captures {
    ty: Option<String>,
    url: Option<String>,
    ttl: Option<u32>,
}

/// One line-oriented message template: literal text with `{type}`,
/// `{url}` and `{ttl}` placeholders. Used in both directions — matching
/// a wire line captures the fields, rendering substitutes them.
#[derive(Debug, Clone, PartialEq)]
struct Template {
    raw: String,
    parts: Vec<Part>,
}

impl Template {
    fn compile(raw: &str) -> CoreResult<Template> {
        let syntax = |msg: String| CoreError::ConfigSyntax(format!("template {raw:?}: {msg}"));
        if raw.trim().is_empty() {
            return Err(syntax("must not be empty".to_owned()));
        }
        let mut parts = Vec::new();
        let mut rest = raw;
        while let Some(open) = rest.find('{') {
            let close = rest[open..]
                .find('}')
                .map(|i| open + i)
                .ok_or_else(|| syntax("unclosed '{'".to_owned()))?;
            if open > 0 {
                parts.push(Part::Literal(rest[..open].to_owned()));
            }
            let name = &rest[open + 1..close];
            let field = Field::from_name(name)
                .ok_or_else(|| syntax(format!("unknown field {{{name}}} (type, url, ttl)")))?;
            if matches!(parts.last(), Some(Part::Field(_))) {
                return Err(syntax("two adjacent fields are ambiguous to parse".to_owned()));
            }
            parts.push(Part::Field(field));
            rest = &rest[close + 1..];
        }
        if !rest.is_empty() {
            parts.push(Part::Literal(rest.to_owned()));
        }
        Ok(Template { raw: raw.to_owned(), parts })
    }

    fn has_field(&self, field: Field) -> bool {
        self.parts.iter().any(|p| matches!(p, Part::Field(f) if *f == field))
    }

    /// Matches `line` against the template; a full match yields the
    /// captured fields, any mismatch (including a non-numeric `{ttl}`)
    /// yields `None`.
    fn capture(&self, line: &str) -> Option<Captures> {
        let mut caps = Captures::default();
        let mut rest = line;
        let mut parts = self.parts.iter().peekable();
        while let Some(part) = parts.next() {
            match part {
                Part::Literal(lit) => rest = rest.strip_prefix(lit.as_str())?,
                Part::Field(field) => {
                    let value = match parts.peek() {
                        Some(Part::Literal(lit)) => {
                            let at = rest.find(lit.as_str())?;
                            let (value, tail) = rest.split_at(at);
                            rest = tail;
                            value
                        }
                        _ => std::mem::take(&mut rest),
                    };
                    if value.is_empty() {
                        return None;
                    }
                    match field {
                        Field::Type => caps.ty = Some(value.to_owned()),
                        Field::Url => caps.url = Some(value.to_owned()),
                        Field::Ttl => caps.ttl = Some(value.parse().ok()?),
                    }
                }
            }
        }
        rest.is_empty().then_some(caps)
    }

    /// Renders the template with the given field values; `None` when a
    /// placeholder has no value to substitute.
    fn render(&self, ty: Option<&str>, url: Option<&str>, ttl: u32) -> Option<String> {
        let mut out = String::with_capacity(self.raw.len() + 32);
        for part in &self.parts {
            match part {
                Part::Literal(lit) => out.push_str(lit),
                Part::Field(Field::Type) => out.push_str(ty?),
                Part::Field(Field::Url) => out.push_str(url?),
                Part::Field(Field::Ttl) => out.push_str(&ttl.to_string()),
            }
        }
        Some(out)
    }
}

// ---------------------------------------------------------------------
// The descriptor
// ---------------------------------------------------------------------

/// A declarative description of a line-oriented discovery protocol,
/// sufficient for [`DescriptorUnit`] to bridge it (paper §3).
///
/// Build one with [`SdpDescriptor::define`] or write it in the textual
/// `System SDP = { … }` config language
/// ([`crate::IndissConfig::from_system_sdp`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SdpDescriptor {
    id: ProtocolId,
    query: Template,
    answer: Template,
    alive: Option<Template>,
    byebye: Option<Template>,
    default_ttl: u32,
    query_window: Duration,
    translation_delay: Duration,
}

/// Accumulates an [`SdpDescriptor`]; see [`SdpDescriptor::define`].
#[derive(Debug, Clone)]
pub struct SdpDescriptorBuilder {
    name: String,
    port: u16,
    group: Ipv4Addr,
    query: Option<String>,
    answer: Option<String>,
    alive: Option<String>,
    byebye: Option<String>,
    default_ttl: u32,
    query_window: Duration,
    translation_delay: Duration,
}

impl SdpDescriptorBuilder {
    /// The request template (required; must contain `{type}` and, since
    /// queries carry no endpoint, must not contain `{url}`).
    pub fn query(mut self, template: &str) -> Self {
        self.query = Some(template.to_owned());
        self
    }

    /// The response template (required; must contain `{type}` and
    /// `{url}`).
    pub fn answer(mut self, template: &str) -> Self {
        self.answer = Some(template.to_owned());
        self
    }

    /// The alive-advertisement template (optional; must contain `{type}`
    /// and `{url}` when given).
    pub fn alive(mut self, template: &str) -> Self {
        self.alive = Some(template.to_owned());
        self
    }

    /// The byebye-advertisement template (optional; must contain
    /// `{type}` when given).
    pub fn byebye(mut self, template: &str) -> Self {
        self.byebye = Some(template.to_owned());
        self
    }

    /// Default TTL (seconds) for answers and adverts whose template
    /// carries no `{ttl}` field, and for parsed messages without one.
    pub fn ttl(mut self, seconds: u32) -> Self {
        self.default_ttl = seconds;
        self
    }

    /// How long a bridged native query waits for answers.
    pub fn query_window(mut self, window: Duration) -> Self {
        self.query_window = window;
        self
    }

    /// Event-layer translation cost applied before composed sends.
    pub fn translation_delay(mut self, delay: Duration) -> Self {
        self.translation_delay = delay;
        self
    }

    /// Validates the templates and registers the protocol's detection
    /// tag, yielding the descriptor.
    ///
    /// # Errors
    ///
    /// [`CoreError::ConfigSyntax`] for malformed templates,
    /// [`CoreError::BadConfig`] for missing/inconsistent templates or a
    /// name/port conflict with an already-registered protocol.
    pub fn build(self) -> CoreResult<SdpDescriptor> {
        let query = Template::compile(
            self.query
                .as_deref()
                .ok_or(CoreError::BadConfig("descriptor needs a Query template"))?,
        )?;
        let answer = Template::compile(
            self.answer
                .as_deref()
                .ok_or(CoreError::BadConfig("descriptor needs an Answer template"))?,
        )?;
        if !query.has_field(Field::Type) || query.has_field(Field::Url) {
            return Err(CoreError::BadConfig(
                "Query template must capture {type} and cannot carry {url}",
            ));
        }
        if !answer.has_field(Field::Type) || !answer.has_field(Field::Url) {
            return Err(CoreError::BadConfig("Answer template must carry {type} and {url}"));
        }
        let alive = self.alive.as_deref().map(Template::compile).transpose()?;
        if let Some(t) = &alive {
            if !t.has_field(Field::Type) || !t.has_field(Field::Url) {
                return Err(CoreError::BadConfig("Alive template must carry {type} and {url}"));
            }
        }
        let byebye = self.byebye.as_deref().map(Template::compile).transpose()?;
        if let Some(t) = &byebye {
            if !t.has_field(Field::Type) {
                return Err(CoreError::BadConfig("ByeBye template must carry {type}"));
            }
        }
        let id = ProtocolId::register(&self.name, self.port, &[self.group])?;
        Ok(SdpDescriptor {
            id,
            query,
            answer,
            alive,
            byebye,
            default_ttl: self.default_ttl,
            query_window: self.query_window,
            translation_delay: self.translation_delay,
        })
    }
}

impl SdpDescriptor {
    /// Starts describing a protocol named `name`, detected on `port`
    /// within the multicast `group`.
    pub fn define(name: &str, port: u16, group: Ipv4Addr) -> SdpDescriptorBuilder {
        SdpDescriptorBuilder {
            name: name.to_owned(),
            port,
            group,
            query: None,
            answer: None,
            alive: None,
            byebye: None,
            default_ttl: 120,
            query_window: Duration::from_millis(20),
            translation_delay: Duration::from_micros(150),
        }
    }

    /// The canonical demonstration descriptor: a DNS-SD-flavoured
    /// protocol (mDNS port 5353, group 224.0.0.251, PTR/SRV-shaped
    /// one-line records). Used by the examples, the interop matrix and
    /// the request-storm benchmark as the fourth SDP.
    pub fn dns_sd() -> SdpDescriptor {
        SdpDescriptor::define("DNS-SD", 5353, Ipv4Addr::new(224, 0, 0, 251))
            .query("DNSSD Q PTR _{type}._tcp.local")
            .answer("DNSSD A PTR _{type}._tcp.local SRV {url} TTL {ttl}")
            .alive("DNSSD ANNOUNCE _{type}._tcp.local SRV {url} TTL {ttl}")
            .byebye("DNSSD GOODBYE _{type}._tcp.local SRV {url}")
            .ttl(120)
            .build()
            .expect("canonical DNS-SD descriptor is valid")
    }

    /// The registered protocol identity.
    pub fn protocol_id(&self) -> ProtocolId {
        self.id
    }

    /// This descriptor as an [`SdpProtocol`] (always
    /// [`SdpProtocol::Dynamic`]).
    pub fn protocol(&self) -> SdpProtocol {
        SdpProtocol::Dynamic(self.id)
    }

    /// The protocol's name.
    pub fn name(&self) -> &'static str {
        self.id.name()
    }

    /// The scan port the monitor detects the protocol on.
    pub fn port(&self) -> u16 {
        self.id.port()
    }

    /// The protocol's multicast group.
    pub fn group(&self) -> Ipv4Addr {
        self.id.multicast_groups()[0]
    }

    fn multicast_addr(&self) -> SocketAddrV4 {
        SocketAddrV4::new(self.group(), self.port())
    }

    /// First line of a datagram payload, if it is text.
    fn message_line(payload: &[u8]) -> Option<&str> {
        std::str::from_utf8(payload).ok()?.lines().next().map(str::trim_end)
    }

    /// The stateless parser table of this descriptor: one raw payload →
    /// events, first matching row wins (request → alive → byebye →
    /// answer). Both [`DescriptorUnit::parse`] and the wire front-end's
    /// [`crate::netfront::NetDriver`] go through this single function,
    /// so simulated and real-socket pipelines translate identically by
    /// construction.
    pub(crate) fn decode_wire(
        &self,
        payload: &[u8],
        src: SocketAddrV4,
        multicast: bool,
    ) -> ParsedMessage {
        let Some(line) = SdpDescriptor::message_line(payload) else {
            return ParsedMessage::NotRelevant;
        };
        if let Some(caps) = self.query.capture(line) {
            if let Some(ty) = caps.ty {
                let mut body = EventStreamBuilder::with_capacity(5);
                body.push(Event::NetType(self.protocol()))
                    .push(if multicast { Event::NetMulticast } else { Event::NetUnicast })
                    .push(Event::NetSourceAddr(src))
                    .push(Event::ServiceRequest)
                    .push(Event::ServiceType(Symbol::intern_lowercase(&ty)));
                return ParsedMessage::Request(body.build());
            }
        }
        for (template, alive) in [(self.alive.as_ref(), true), (self.byebye.as_ref(), false)] {
            let Some(caps) = template.and_then(|t| t.capture(line)) else {
                continue;
            };
            let Some(ty) = caps.ty else { continue };
            let mut body = EventStreamBuilder::with_capacity(7);
            body.push(Event::NetType(self.protocol()))
                .push(Event::NetMulticast)
                .push(Event::NetSourceAddr(src))
                .push(if alive { Event::ServiceAlive } else { Event::ServiceByeBye })
                .push(Event::ServiceType(Symbol::intern_lowercase(&ty)));
            if let Some(url) = caps.url {
                body.push(Event::ResServUrl(url));
            }
            if alive {
                body.push(Event::ResTtl(caps.ttl.unwrap_or(self.default_ttl)));
            }
            return ParsedMessage::Advert(body.build());
        }
        if let Some(caps) = self.answer.capture(line) {
            if let (Some(ty), Some(url)) = (caps.ty, caps.url) {
                let mut body = EventStreamBuilder::with_capacity(6);
                body.push(Event::NetType(self.protocol()))
                    .push(Event::ServiceResponse)
                    .push(Event::ResOk)
                    .push(Event::ServiceType(Symbol::intern_lowercase(&ty)))
                    .push(Event::ResTtl(caps.ttl.unwrap_or(self.default_ttl)))
                    .push(Event::ResServUrl(url));
                return ParsedMessage::Response(body.build());
            }
        }
        ParsedMessage::NotRelevant
    }

    /// Composes the answer line for `request` carrying `response`'s
    /// endpoint, plus the requester to send it to. Pure: the composer
    /// half [`DescriptorUnit::compose_response`] and the wire front-end
    /// share.
    pub(crate) fn compose_answer_wire(
        &self,
        request: &EventStream,
        response: &EventStream,
    ) -> Option<(Vec<u8>, SocketAddrV4)> {
        let url = response.service_url()?;
        let requester = request.source_addr()?;
        let canonical = request.service_type()?;
        let ttl = response
            .events()
            .iter()
            .find_map(|e| match e {
                Event::ResTtl(t) => Some(*t),
                _ => None,
            })
            .unwrap_or(self.default_ttl);
        let line = self.answer.render(Some(canonical), Some(url), ttl)?;
        Some((line.into_bytes(), requester))
    }
}

// ---------------------------------------------------------------------
// The unit
// ---------------------------------------------------------------------

struct PendingQuery {
    token: u64,
    canonical: Symbol,
    reply: Completion<EventStream>,
}

struct DescriptorUnitInner {
    descriptor: SdpDescriptor,
    socket: UdpSocket,
    pending: Vec<PendingQuery>,
    next_token: u64,
}

/// A [`Unit`] interpreted from an [`SdpDescriptor`]: the open-world
/// counterpart of the hand-written SLP/UPnP/Jini units.
#[derive(Clone)]
pub struct DescriptorUnit {
    inner: Rc<RefCell<DescriptorUnitInner>>,
}

impl DescriptorUnit {
    /// Creates the unit on `node` with its own ephemeral socket (used
    /// for native queries it executes and responses it composes).
    ///
    /// # Errors
    ///
    /// Network errors from the socket bind.
    pub fn new(node: &Node, descriptor: SdpDescriptor) -> NetResult<DescriptorUnit> {
        let socket = node.udp_bind_ephemeral()?;
        let unit = DescriptorUnit {
            inner: Rc::new(RefCell::new(DescriptorUnitInner {
                descriptor,
                socket: socket.clone(),
                pending: Vec::new(),
                next_token: 1,
            })),
        };
        let this = unit.clone();
        socket.on_receive(move |world, dgram| this.handle_own_socket(world, &dgram));
        Ok(unit)
    }

    /// The descriptor this unit interprets.
    pub fn descriptor(&self) -> SdpDescriptor {
        self.inner.borrow().descriptor.clone()
    }

    /// Answers arriving at the unit's own socket complete the pending
    /// native queries for their canonical type. The answer line goes
    /// through the same parser-table row as monitor-path answers
    /// ([`Unit::parse`]'s `Response` branch), so both paths stay in sync.
    fn handle_own_socket(&self, world: &World, dgram: &Datagram) {
        let ParsedMessage::Response(response) = self.parse(world, dgram) else {
            return;
        };
        let Some(canonical) = response.service_type_symbol() else {
            return;
        };
        // Extract the matching pendings first, then complete outside the
        // borrow: completion subscribers run synchronously and may
        // re-enter the unit.
        let matched = {
            let mut inner = self.inner.borrow_mut();
            let mut matched = Vec::new();
            let mut i = 0;
            while i < inner.pending.len() {
                if inner.pending[i].canonical == canonical {
                    matched.push(inner.pending.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            matched
        };
        for pending in matched {
            pending.reply.complete(response.clone());
        }
    }

    fn error_stream(&self, code: u16) -> EventStream {
        let protocol = self.inner.borrow().descriptor.protocol();
        EventStream::framed(vec![
            Event::NetType(protocol),
            Event::ServiceResponse,
            Event::ResErr(code),
        ])
    }
}

impl Unit for DescriptorUnit {
    fn protocol(&self) -> SdpProtocol {
        self.inner.borrow().descriptor.protocol()
    }

    fn parse(&self, _world: &World, dgram: &Datagram) -> ParsedMessage {
        let inner = self.inner.borrow();
        inner.descriptor.decode_wire(&dgram.payload, dgram.src, dgram.is_multicast())
    }

    fn execute_query(&self, world: &World, request: &EventStream, reply: Completion<EventStream>) {
        let Some(canonical) = request.service_type_symbol() else {
            reply.complete(self.error_stream(2));
            return;
        };
        let (wire, dst, window, token) = {
            let mut inner = self.inner.borrow_mut();
            let Some(line) =
                inner.descriptor.query.render(Some(&canonical), None, inner.descriptor.default_ttl)
            else {
                reply.complete(self.error_stream(2));
                return;
            };
            let token = inner.next_token;
            inner.next_token += 1;
            inner.pending.push(PendingQuery { token, canonical, reply: reply.clone() });
            (
                line.into_bytes(),
                inner.descriptor.multicast_addr(),
                inner.descriptor.query_window,
                token,
            )
        };
        let socket = self.inner.borrow().socket.clone();
        let _ = socket.send_to(&wire, dst);
        // Deadline: a query nothing answered fails the bridge honestly.
        let this = self.clone();
        world.schedule_in(window + Duration::from_millis(5), move |_| {
            let timed_out = {
                let mut inner = this.inner.borrow_mut();
                match inner.pending.iter().position(|p| p.token == token) {
                    Some(at) => Some(inner.pending.swap_remove(at)),
                    None => None,
                }
            };
            if let Some(pending) = timed_out {
                pending.reply.complete(this.error_stream(404));
            }
        });
    }

    fn compose_response(&self, world: &World, request: &EventStream, response: &EventStream) {
        let (wire, requester, delay, socket) = {
            let inner = self.inner.borrow();
            // Nothing found (or an uncomposable stream): silence, like
            // the multicast SDPs.
            let Some((wire, requester)) = inner.descriptor.compose_answer_wire(request, response)
            else {
                return;
            };
            (wire, requester, inner.descriptor.translation_delay, inner.socket.clone())
        };
        world.schedule_in(delay, move |_| {
            let _ = socket.send_to(&wire, requester);
        });
    }

    fn compose_advert(&self, world: &World, advert: &EventStream) {
        let Some(canonical) = advert.service_type() else {
            return;
        };
        let (line, delay, socket, dst) = {
            let inner = self.inner.borrow();
            let d = &inner.descriptor;
            let template = if advert.is_byebye() { d.byebye.as_ref() } else { d.alive.as_ref() };
            let Some(template) = template else {
                return; // this protocol has no advert vocabulary
            };
            let ttl = advert
                .events()
                .iter()
                .find_map(|e| match e {
                    Event::ResTtl(t) => Some(*t),
                    _ => None,
                })
                .unwrap_or(d.default_ttl);
            let Some(line) = template.render(Some(canonical), advert.service_url(), ttl) else {
                return;
            };
            (line, d.translation_delay, inner.socket.clone(), d.multicast_addr())
        };
        world.schedule_in(delay, move |_| {
            let _ = socket.send_to(line.as_bytes(), dst);
        });
    }

    fn own_sources(&self) -> Vec<SocketAddrV4> {
        self.inner.borrow().socket.local_addr().map(|a| vec![a]).unwrap_or_default()
    }
}

// ---------------------------------------------------------------------
// Native peers generated from the descriptor
// ---------------------------------------------------------------------

/// A native service speaking a descriptor-defined protocol: announces
/// registered services and answers matching queries. The "unmodified
/// application" on the service side.
#[derive(Clone)]
pub struct DescriptorService {
    inner: Rc<RefCell<DescriptorServiceInner>>,
}

struct DescriptorServiceInner {
    descriptor: SdpDescriptor,
    socket: UdpSocket,
    registrations: Vec<(Symbol, String)>,
}

impl DescriptorService {
    /// Starts the service on `node`: binds the protocol's shared port and
    /// joins its multicast group.
    ///
    /// # Errors
    ///
    /// Network errors from binding or joining.
    pub fn start(node: &Node, descriptor: SdpDescriptor) -> NetResult<DescriptorService> {
        let socket = node.udp_bind_shared(descriptor.port())?;
        socket.join_multicast(descriptor.group())?;
        let service = DescriptorService {
            inner: Rc::new(RefCell::new(DescriptorServiceInner {
                descriptor,
                socket: socket.clone(),
                registrations: Vec::new(),
            })),
        };
        let this = service.clone();
        socket.on_receive(move |_, dgram| this.handle(&dgram));
        Ok(service)
    }

    /// Registers a service endpoint and multicasts its alive
    /// advertisement (when the protocol has an alive vocabulary).
    pub fn register(&self, service_type: &str, url: &str) {
        let canonical = Symbol::intern_lowercase(service_type);
        self.inner.borrow_mut().registrations.push((canonical.clone(), url.to_owned()));
        let inner = self.inner.borrow();
        if let Some(alive) = &inner.descriptor.alive {
            if let Some(line) =
                alive.render(Some(&canonical), Some(url), inner.descriptor.default_ttl)
            {
                let _ = inner.socket.send_to(line.as_bytes(), inner.descriptor.multicast_addr());
            }
        }
    }

    /// Deregisters an endpoint and multicasts its byebye (when the
    /// protocol has one).
    pub fn deregister(&self, service_type: &str, url: &str) {
        let canonical = Symbol::intern_lowercase(service_type);
        let mut inner = self.inner.borrow_mut();
        inner.registrations.retain(|(t, u)| !(*t == canonical && u == url));
        if let Some(byebye) = &inner.descriptor.byebye {
            if let Some(line) =
                byebye.render(Some(&canonical), Some(url), inner.descriptor.default_ttl)
            {
                let _ = inner.socket.send_to(line.as_bytes(), inner.descriptor.multicast_addr());
            }
        }
    }

    /// The service's own source address (for loop filtering in tests).
    pub fn local_addr(&self) -> Option<SocketAddrV4> {
        self.inner.borrow().socket.local_addr().ok()
    }

    fn handle(&self, dgram: &Datagram) {
        let inner = self.inner.borrow();
        let Some(line) = SdpDescriptor::message_line(&dgram.payload) else {
            return;
        };
        let Some(caps) = inner.descriptor.query.capture(line) else {
            return;
        };
        let Some(ty) = caps.ty else { return };
        let canonical = Symbol::intern_lowercase(&ty);
        for (registered, url) in &inner.registrations {
            if *registered != canonical {
                continue;
            }
            if let Some(answer) = inner.descriptor.answer.render(
                Some(&canonical),
                Some(url),
                inner.descriptor.default_ttl,
            ) {
                let _ = inner.socket.send_to(answer.as_bytes(), dgram.src);
            }
        }
    }
}

/// A native client speaking a descriptor-defined protocol: multicasts
/// queries and collects unicast answers. The "unmodified application" on
/// the client side.
#[derive(Clone)]
pub struct DescriptorClient {
    inner: Rc<RefCell<DescriptorClientInner>>,
}

struct ClientPending {
    token: u64,
    canonical: Symbol,
    first: Completion<String>,
    urls: Rc<RefCell<Vec<String>>>,
}

struct DescriptorClientInner {
    descriptor: SdpDescriptor,
    socket: UdpSocket,
    response_window: Duration,
    pending: Vec<ClientPending>,
    next_token: u64,
}

impl DescriptorClient {
    /// Starts the client on `node` with its own ephemeral socket.
    ///
    /// # Errors
    ///
    /// Network errors from the socket bind.
    pub fn start(node: &Node, descriptor: SdpDescriptor) -> NetResult<DescriptorClient> {
        let socket = node.udp_bind_ephemeral()?;
        let client = DescriptorClient {
            inner: Rc::new(RefCell::new(DescriptorClientInner {
                descriptor,
                socket: socket.clone(),
                response_window: Duration::from_secs(1),
                pending: Vec::new(),
                next_token: 1,
            })),
        };
        let this = client.clone();
        socket.on_receive(move |_, dgram| this.handle(&dgram));
        Ok(client)
    }

    /// Changes how long a query collects answers before completing.
    pub fn set_response_window(&self, window: Duration) {
        self.inner.borrow_mut().response_window = window;
    }

    /// Multicasts a query for `service_type`. The first completion fires
    /// on the first answer's URL; the second completes with every URL
    /// collected when the response window closes.
    pub fn query(
        &self,
        world: &World,
        service_type: &str,
    ) -> (Completion<String>, Completion<Vec<String>>) {
        let first: Completion<String> = Completion::new();
        let done: Completion<Vec<String>> = Completion::new();
        let urls: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let canonical = Symbol::intern_lowercase(service_type);
        let (wire, dst, window, token) = {
            let mut inner = self.inner.borrow_mut();
            let Some(line) =
                inner.descriptor.query.render(Some(&canonical), None, inner.descriptor.default_ttl)
            else {
                done.complete(Vec::new());
                return (first, done);
            };
            let token = inner.next_token;
            inner.next_token += 1;
            inner.pending.push(ClientPending {
                token,
                canonical,
                first: first.clone(),
                urls: Rc::clone(&urls),
            });
            (line.into_bytes(), inner.descriptor.multicast_addr(), inner.response_window, token)
        };
        let socket = self.inner.borrow().socket.clone();
        let _ = socket.send_to(&wire, dst);
        let this = self.clone();
        let done2 = done.clone();
        world.schedule_in(window, move |_| {
            this.inner.borrow_mut().pending.retain(|p| p.token != token);
            done2.complete(urls.borrow().clone());
        });
        (first, done)
    }

    fn handle(&self, dgram: &Datagram) {
        // Collect the completions under the borrow, fire them after:
        // completion subscribers run synchronously and may re-enter the
        // client (e.g. issuing the next query from a `first` callback).
        let (url, to_notify) = {
            let inner = self.inner.borrow();
            let Some(line) = SdpDescriptor::message_line(&dgram.payload) else {
                return;
            };
            let Some(caps) = inner.descriptor.answer.capture(line) else {
                return;
            };
            let (Some(ty), Some(url)) = (caps.ty, caps.url) else {
                return;
            };
            let canonical = Symbol::intern_lowercase(&ty);
            let to_notify: Vec<_> = inner
                .pending
                .iter()
                .filter(|p| p.canonical == canonical)
                .map(|p| (p.first.clone(), Rc::clone(&p.urls)))
                .collect();
            (url, to_notify)
        };
        for (first, urls) in to_notify {
            urls.borrow_mut().push(url.clone());
            first.complete(url.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_descriptor(tag: &str, port: u16) -> SdpDescriptor {
        SdpDescriptor::define(tag, port, Ipv4Addr::new(239, 7, 7, 7))
            .query("TQ {type}")
            .answer("TA {type} {url} ttl={ttl}")
            .alive("TALIVE {type} {url} ttl={ttl}")
            .byebye("TBYE {type} {url}")
            .ttl(90)
            .build()
            .expect("valid test descriptor")
    }

    #[test]
    fn template_round_trips_fields() {
        let t = Template::compile("A PTR _{type}._tcp SRV {url} TTL {ttl}").unwrap();
        let line = t.render(Some("clock"), Some("soap://h:1/c"), 60).unwrap();
        assert_eq!(line, "A PTR _clock._tcp SRV soap://h:1/c TTL 60");
        let caps = t.capture(&line).unwrap();
        assert_eq!(caps.ty.as_deref(), Some("clock"));
        assert_eq!(caps.url.as_deref(), Some("soap://h:1/c"));
        assert_eq!(caps.ttl, Some(60));
    }

    #[test]
    fn template_rejects_malformed_patterns() {
        assert!(Template::compile("").is_err(), "empty");
        assert!(Template::compile("A {unknown}").is_err(), "unknown field");
        assert!(Template::compile("A {type").is_err(), "unclosed");
        assert!(Template::compile("A {type}{url}").is_err(), "adjacent fields");
    }

    #[test]
    fn template_mismatches_capture_nothing() {
        let t = Template::compile("Q {type} ttl={ttl}").unwrap();
        assert_eq!(t.capture("X clock ttl=5"), None, "literal mismatch");
        assert_eq!(t.capture("Q clock ttl=soon"), None, "non-numeric ttl");
        assert_eq!(t.capture("Q clock ttl=5 trailing"), None, "unconsumed tail");
        assert_eq!(t.capture("Q  ttl=5"), None, "empty field");
        assert!(t.capture("Q clock ttl=5").is_some());
    }

    #[test]
    fn builder_validates_template_roles() {
        let group = Ipv4Addr::new(239, 7, 7, 8);
        assert!(
            SdpDescriptor::define("role-a", 6301, group).answer("A {type} {url}").build().is_err(),
            "query required"
        );
        assert!(
            SdpDescriptor::define("role-b", 6302, group).query("Q {type}").build().is_err(),
            "answer required"
        );
        assert!(
            SdpDescriptor::define("role-c", 6303, group)
                .query("Q {url}")
                .answer("A {type} {url}")
                .build()
                .is_err(),
            "query cannot carry {{url}}"
        );
        assert!(
            SdpDescriptor::define("role-d", 6304, group)
                .query("Q {type}")
                .answer("A {type}")
                .build()
                .is_err(),
            "answer needs {{url}}"
        );
    }

    #[test]
    fn unit_parses_query_advert_and_answer_lines() {
        let d = test_descriptor("unit-parse-proto", 6310);
        let world = World::new(1);
        let node = world.add_node("gw");
        let unit = DescriptorUnit::new(&node, d.clone()).unwrap();
        let dgram = |payload: &str, multicast: bool| Datagram {
            src: "10.0.0.9:41000".parse().unwrap(),
            dst: if multicast {
                d.multicast_addr()
            } else {
                SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, 1), d.port())
            },
            payload: payload.as_bytes().to_vec(),
        };

        let ParsedMessage::Request(req) = unit.parse(&world, &dgram("TQ Clock", true)) else {
            panic!("query line parses to a request");
        };
        assert_eq!(req.service_type(), Some("clock"), "canonicalized");
        assert_eq!(req.net_type(), Some(d.protocol()));
        assert_eq!(req.source_addr().unwrap().port(), 41000);

        let ParsedMessage::Advert(alive) =
            unit.parse(&world, &dgram("TALIVE printer lpr://10.0.0.9:515 ttl=30", true))
        else {
            panic!("alive line parses to an advert");
        };
        assert!(alive.is_alive());
        assert_eq!(alive.service_url(), Some("lpr://10.0.0.9:515"));

        let ParsedMessage::Advert(bye) =
            unit.parse(&world, &dgram("TBYE printer lpr://10.0.0.9:515", true))
        else {
            panic!("byebye line parses to an advert");
        };
        assert!(bye.is_byebye());

        let ParsedMessage::Response(resp) =
            unit.parse(&world, &dgram("TA clock soap://10.0.0.2:1/c ttl=45", false))
        else {
            panic!("answer line parses to a response");
        };
        assert!(resp.is_response());
        assert_eq!(resp.service_url(), Some("soap://10.0.0.2:1/c"));

        assert_eq!(unit.parse(&world, &dgram("GARBAGE", true)), ParsedMessage::NotRelevant);
        let binary = Datagram {
            src: "10.0.0.9:41000".parse().unwrap(),
            dst: d.multicast_addr(),
            payload: vec![0xFF, 0xFE, 0x00],
        };
        assert_eq!(unit.parse(&world, &binary), ParsedMessage::NotRelevant);
    }

    #[test]
    fn execute_query_drives_the_native_process() {
        let d = test_descriptor("unit-query-proto", 6311);
        let world = World::new(2);
        let gw = world.add_node("gw");
        let svc_node = world.add_node("svc");
        let service = DescriptorService::start(&svc_node, d.clone()).unwrap();
        service.register("scanner", "scan://10.0.0.5:99");
        let unit = DescriptorUnit::new(&gw, d).unwrap();
        let request =
            EventStream::framed(vec![Event::ServiceRequest, Event::ServiceType("scanner".into())]);
        let reply: Completion<EventStream> = Completion::new();
        unit.execute_query(&world, &request, reply.clone());
        world.run_for(Duration::from_secs(1));
        let response = reply.take().expect("query completed");
        assert_eq!(response.service_url(), Some("scan://10.0.0.5:99"));
        assert!(response.is_response());
    }

    #[test]
    fn execute_query_times_out_to_error_stream() {
        let d = test_descriptor("unit-timeout-proto", 6312);
        let world = World::new(3);
        let gw = world.add_node("gw");
        let unit = DescriptorUnit::new(&gw, d).unwrap();
        let request =
            EventStream::framed(vec![Event::ServiceRequest, Event::ServiceType("nothing".into())]);
        let reply: Completion<EventStream> = Completion::new();
        unit.execute_query(&world, &request, reply.clone());
        world.run_for(Duration::from_secs(1));
        let response = reply.take().expect("deadline fired");
        assert!(response.events().iter().any(|e| matches!(e, Event::ResErr(404))));
    }

    #[test]
    fn compose_response_answers_the_native_requester() {
        let d = test_descriptor("unit-compose-proto", 6313);
        let world = World::new(4);
        let gw = world.add_node("gw");
        let client_node = world.add_node("client");
        let unit = DescriptorUnit::new(&gw, d.clone()).unwrap();
        let listen = client_node.udp_bind(42000).unwrap();
        let got: Completion<Vec<u8>> = Completion::new();
        let got2 = got.clone();
        listen.on_receive(move |_, dg| got2.complete(dg.payload));
        let request = EventStream::framed(vec![
            Event::NetSourceAddr(SocketAddrV4::new(client_node.addr(), 42000)),
            Event::ServiceRequest,
            Event::ServiceType("clock".into()),
        ]);
        let response = EventStream::framed(vec![
            Event::ServiceResponse,
            Event::ResOk,
            Event::ResTtl(1800),
            Event::ResServUrl("soap://10.0.0.2:4005/ctl".into()),
        ]);
        unit.compose_response(&world, &request, &response);
        world.run_for(Duration::from_secs(1));
        let wire = got.take().expect("answer delivered");
        assert_eq!(
            std::str::from_utf8(&wire).unwrap(),
            "TA clock soap://10.0.0.2:4005/ctl ttl=1800"
        );

        // An empty result stays silent.
        let empty = EventStream::framed(vec![Event::ServiceResponse, Event::ResErr(404)]);
        unit.compose_response(&world, &request, &empty);
        world.run_for(Duration::from_secs(1));
        assert!(got.take().is_none(), "no second datagram");
    }

    #[test]
    fn compose_advert_multicasts_the_translated_advert() {
        let d = test_descriptor("unit-advert-proto", 6314);
        let world = World::new(5);
        let gw = world.add_node("gw");
        let listener_node = world.add_node("listener");
        let unit = DescriptorUnit::new(&gw, d.clone()).unwrap();
        let sock = listener_node.udp_bind(d.port()).unwrap();
        sock.join_multicast(d.group()).unwrap();
        let got: Completion<Vec<u8>> = Completion::new();
        let got2 = got.clone();
        sock.on_receive(move |_, dg| got2.complete(dg.payload));
        let advert = EventStream::framed(vec![
            Event::ServiceAlive,
            Event::ServiceType("clock".into()),
            Event::ResServUrl("soap://10.0.0.2:4005/ctl".into()),
            Event::ResTtl(60),
        ]);
        unit.compose_advert(&world, &advert);
        world.run_for(Duration::from_secs(1));
        let wire = got.take().expect("advert heard");
        assert_eq!(
            std::str::from_utf8(&wire).unwrap(),
            "TALIVE clock soap://10.0.0.2:4005/ctl ttl=60"
        );
    }

    #[test]
    fn native_client_discovers_native_service_directly() {
        let d = test_descriptor("native-pair-proto", 6315);
        let world = World::new(6);
        let svc_node = world.add_node("svc");
        let cli_node = world.add_node("cli");
        let service = DescriptorService::start(&svc_node, d.clone()).unwrap();
        service.register("camera", "cam://10.0.0.8:80");
        let client = DescriptorClient::start(&cli_node, d).unwrap();
        let (first, done) = client.query(&world, "camera");
        world.run_for(Duration::from_secs(2));
        assert_eq!(first.take().as_deref(), Some("cam://10.0.0.8:80"));
        assert_eq!(done.take().unwrap(), vec!["cam://10.0.0.8:80".to_owned()]);

        // Deregistration silences the service.
        service.deregister("camera", "cam://10.0.0.8:80");
        let client2 = DescriptorClient::start(
            &world.add_node("cli2"),
            test_descriptor("native-pair-proto", 6315),
        )
        .unwrap();
        let (_f, done2) = client2.query(&world, "camera");
        world.run_for(Duration::from_secs(2));
        assert!(done2.take().unwrap().is_empty());
    }
}
