//! The Jini unit: bridges Jini's repository-based discovery.
//!
//! Jini has no repository-less mode — clients *must* find a lookup
//! service first. The unit therefore plays both sides:
//!
//! * towards Jini **clients**, it answers multicast discovery requests by
//!   announcing *itself* as a lookup service; lookups that arrive are
//!   bridged to the other SDPs through the runtime;
//! * towards Jini **services**, it behaves as a client of any real
//!   lookup service it hears (queries it for foreign requests, forwards
//!   foreign advertisements as registrations).

use std::cell::RefCell;
use std::net::SocketAddrV4;
use std::rc::Rc;
use std::time::Duration;

use indiss_jini::{JiniPacket, ServiceItem, JINI_PORT, JINI_REQUEST_GROUP};
use indiss_net::{Completion, Datagram, NetResult, Node, UdpSocket, World};

use crate::event::{Event, EventStream, SdpProtocol, Symbol};
use crate::registry::{Projection, RegistryConfig, ServiceRegistry};
use crate::units::{ParsedMessage, Unit};

/// Callback the runtime installs so lookups arriving at the unit's own
/// socket can be bridged: `(world, request-events, reply)`.
pub type BridgeRequestFn = Rc<dyn Fn(&World, EventStream, Completion<EventStream>)>;

/// Jini unit tuning.
#[derive(Debug, Clone)]
pub struct JiniUnitConfig {
    /// Discovery groups announced/requested.
    pub groups: Vec<String>,
    /// Deadline for a bridged native query.
    pub query_window: Duration,
    /// Event-layer translation cost.
    pub translation_delay: Duration,
    /// Lease granted on bridged registrations, seconds.
    pub lease_secs: u32,
}

impl Default for JiniUnitConfig {
    fn default() -> Self {
        JiniUnitConfig {
            groups: vec!["public".to_owned()],
            query_window: Duration::from_millis(50),
            translation_delay: Duration::from_micros(150),
            lease_secs: 300,
        }
    }
}

struct JiniUnitInner {
    socket: UdpSocket,
    config: JiniUnitConfig,
    /// A real lookup service, if one has been heard.
    real_registrar: Option<SocketAddrV4>,
    pending_lookups: Vec<Completion<Vec<ServiceItem>>>,
    pending_discoveries: Vec<Completion<SocketAddrV4>>,
    bridge: Option<BridgeRequestFn>,
    /// Shared registry: bridged endpoints keep one stable service id
    /// (stored as a projection) instead of minting a fresh id per reply.
    registry: ServiceRegistry,
    next_service_id: u64,
}

/// The Jini unit.
#[derive(Clone)]
pub struct JiniUnit {
    inner: Rc<RefCell<JiniUnitInner>>,
}

impl JiniUnit {
    /// Creates the unit on `node` with its own socket (which doubles as
    /// the bridging-registrar endpoint announced to Jini clients).
    ///
    /// # Errors
    ///
    /// Network errors from the socket bind.
    pub fn new(node: &Node, config: JiniUnitConfig) -> NetResult<JiniUnit> {
        let socket = node.udp_bind_ephemeral()?;
        let unit = JiniUnit {
            inner: Rc::new(RefCell::new(JiniUnitInner {
                socket: socket.clone(),
                config,
                real_registrar: None,
                pending_lookups: Vec::new(),
                pending_discoveries: Vec::new(),
                bridge: None,
                registry: ServiceRegistry::new(RegistryConfig::default()),
                next_service_id: 0x1000,
            })),
        };
        let this = unit.clone();
        socket.on_receive(move |world, dgram| this.handle_own_socket(world, dgram));
        Ok(unit)
    }

    /// Installs the runtime's bridge callback for lookups that arrive at
    /// the unit's registrar endpoint.
    pub fn set_bridge(&self, bridge: BridgeRequestFn) {
        self.inner.borrow_mut().bridge = Some(bridge);
    }

    /// The real registrar heard so far, if any (exposed for tests).
    pub fn real_registrar(&self) -> Option<SocketAddrV4> {
        self.inner.borrow().real_registrar
    }

    /// The stable service id for a bridged endpoint: reused from the
    /// shared registry's projection when the endpoint was bridged before,
    /// minted (and recorded) otherwise.
    fn service_id_for(&self, url: &str) -> u64 {
        let registry = self.inner.borrow().registry.clone();
        if let Some(id) = registry.projection(SdpProtocol::Jini, url).and_then(|p| p.service_id) {
            return id;
        }
        let id = {
            let mut inner = self.inner.borrow_mut();
            inner.next_service_id += 1;
            inner.next_service_id
        };
        registry.set_projection(
            SdpProtocol::Jini,
            url,
            Projection { service_id: Some(id), ..Projection::default() },
        );
        id
    }

    fn send(&self, packet: &JiniPacket, to: SocketAddrV4) {
        let socket = self.inner.borrow().socket.clone();
        let _ = socket.send_to(&packet.encode(), to);
    }

    fn own_announcement(&self) -> JiniPacket {
        let inner = self.inner.borrow();
        let addr = inner.socket.local_addr().expect("socket open");
        JiniPacket::Announcement {
            host: addr.ip().to_string(),
            port: addr.port(),
            groups: inner.config.groups.clone(),
        }
    }

    /// Traffic at the unit's own socket: replies to queries it issued,
    /// plus lookups/registrations from Jini clients that discovered the
    /// unit as their registrar.
    fn handle_own_socket(&self, world: &World, dgram: Datagram) {
        let Ok(packet) = JiniPacket::decode(&dgram.payload) else {
            return;
        };
        match packet {
            JiniPacket::Announcement { host, port, .. } => {
                let mut fire = Vec::new();
                {
                    let mut inner = self.inner.borrow_mut();
                    if let Ok(ip) = host.parse() {
                        let addr = SocketAddrV4::new(ip, port);
                        inner.real_registrar = Some(addr);
                        for c in inner.pending_discoveries.drain(..) {
                            fire.push((c, addr));
                        }
                    }
                }
                for (c, v) in fire {
                    c.complete(v);
                }
            }
            JiniPacket::LookupReply { items } => {
                let pending: Vec<_> = self.inner.borrow_mut().pending_lookups.drain(..).collect();
                for c in pending {
                    c.complete(items.clone());
                }
            }
            JiniPacket::Lookup { service_type } => {
                // A Jini client using us as its registrar: bridge it.
                self.bridge_lookup(world, &service_type, dgram.src);
            }
            JiniPacket::Register { item, lease_secs } => {
                // A Jini service registering with us: acknowledge and let
                // the runtime re-advertise it in other SDPs.
                let (ack_lease, delay) = {
                    let inner = self.inner.borrow();
                    (lease_secs.min(inner.config.lease_secs), inner.config.translation_delay)
                };
                let ack =
                    JiniPacket::RegisterAck { service_id: item.service_id, lease_secs: ack_lease };
                let this = self.clone();
                world.schedule_in(delay, move |_| this.send(&ack, dgram.src));
                // Surface as an advert through the bridge (if installed):
                // the runtime treats it exactly like a parsed advert.
                let advert = advert_events_from_item(&item, dgram.src, ack_lease);
                if let Some(bridge) = self.inner.borrow().bridge.clone() {
                    // Adverts need no reply; the completion is dropped.
                    bridge(world, advert, Completion::new());
                }
            }
            _ => {}
        }
    }

    /// Bridges a native Jini lookup into a foreign request via the
    /// runtime, answering with a composed `LookupReply`.
    fn bridge_lookup(&self, world: &World, service_type: &str, requester: SocketAddrV4) {
        let Some(bridge) = self.inner.borrow().bridge.clone() else {
            // No bridge: answer honestly with nothing.
            self.send(&JiniPacket::LookupReply { items: Vec::new() }, requester);
            return;
        };
        let canonical = Symbol::intern_lowercase(service_type);
        let request = EventStream::framed(vec![
            Event::NetType(SdpProtocol::Jini),
            Event::NetUnicast,
            Event::NetSourceAddr(requester),
            Event::ServiceRequest,
            Event::JiniGroups(self.inner.borrow().config.groups.clone()),
            Event::ServiceType(canonical),
        ]);
        let reply: Completion<EventStream> = Completion::new();
        bridge(world, request.clone(), reply.clone());
        let this = self.clone();
        let request2 = request.clone();
        let world2 = world.clone();
        reply.subscribe(move |response| {
            this.compose_response(&world2, &request2, &response);
        });
    }
}

/// Builds advert events for a registered Jini service item.
fn advert_events_from_item(item: &ServiceItem, src: SocketAddrV4, lease: u32) -> EventStream {
    let mut body = vec![
        Event::NetType(SdpProtocol::Jini),
        Event::NetUnicast,
        Event::NetSourceAddr(src),
        Event::ServiceAlive,
        Event::ServiceType(Symbol::intern_lowercase(&item.service_type)),
        Event::JiniServiceId(item.service_id),
        Event::JiniLease(lease),
        Event::ResTtl(lease),
        Event::ResServUrl(endpoint_to_url(&item.endpoint)),
    ];
    for (tag, value) in &item.attributes {
        body.push(Event::ResAttr { tag: tag.as_str().into(), value: value.as_str().into() });
    }
    EventStream::framed(body)
}

/// `10.0.0.9:5000` → `jini://10.0.0.9:5000` (idempotent for URLs).
fn endpoint_to_url(endpoint: &str) -> String {
    if endpoint.contains("://") || endpoint.starts_with("service:") {
        endpoint.to_owned()
    } else {
        format!("jini://{endpoint}")
    }
}

/// Reverse of [`endpoint_to_url`] for composing `ServiceItem`s.
fn url_to_endpoint(url: &str) -> String {
    url.strip_prefix("jini://").map(str::to_owned).unwrap_or_else(|| url.to_owned())
}

impl Unit for JiniUnit {
    fn protocol(&self) -> SdpProtocol {
        SdpProtocol::Jini
    }

    fn bind_registry(&self, registry: &ServiceRegistry) {
        self.inner.borrow_mut().registry = registry.clone();
    }

    fn parse(&self, world: &World, dgram: &Datagram) -> ParsedMessage {
        let Ok(packet) = JiniPacket::decode(&dgram.payload) else {
            return ParsedMessage::NotRelevant;
        };
        match packet {
            JiniPacket::DiscoveryRequest { groups } => {
                // Announce ourselves as a lookup service so the client's
                // lookups reach the bridge (delayed by translation cost).
                let serves = {
                    let inner = self.inner.borrow();
                    inner.bridge.is_some()
                        && (groups.is_empty()
                            || groups.iter().any(|g| inner.config.groups.contains(g)))
                };
                if serves {
                    let announcement = self.own_announcement();
                    let delay = self.inner.borrow().config.translation_delay;
                    let this = self.clone();
                    let requester = dgram.src;
                    world.schedule_in(delay, move |_| this.send(&announcement, requester));
                }
                ParsedMessage::Handled
            }
            JiniPacket::Announcement { host, port, .. } => {
                // A real lookup service on the network: remember it.
                if let Ok(ip) = host.parse::<std::net::Ipv4Addr>() {
                    let addr = SocketAddrV4::new(ip, port);
                    let own = self.inner.borrow().socket.local_addr().ok();
                    if own != Some(addr) {
                        self.inner.borrow_mut().real_registrar = Some(addr);
                    }
                }
                ParsedMessage::Handled
            }
            _ => ParsedMessage::NotRelevant,
        }
    }

    fn execute_query(&self, world: &World, request: &EventStream, reply: Completion<EventStream>) {
        let Some(canonical) = request.service_type_symbol() else {
            reply.complete(EventStream::framed(vec![Event::ServiceResponse, Event::ResErr(2)]));
            return;
        };
        let window = self.inner.borrow().config.query_window;
        // Step 1: make sure we know a real registrar (Jini's mandatory
        // repository step).
        let registrar_known: Completion<SocketAddrV4> = Completion::new();
        {
            let mut inner = self.inner.borrow_mut();
            match inner.real_registrar {
                Some(addr) => registrar_known.complete(addr),
                None => inner.pending_discoveries.push(registrar_known.clone()),
            }
        }
        if !registrar_known.is_complete() {
            let packet =
                JiniPacket::DiscoveryRequest { groups: self.inner.borrow().config.groups.clone() };
            self.send(&packet, SocketAddrV4::new(JINI_REQUEST_GROUP, JINI_PORT));
        }
        // Step 2: on discovery, issue the lookup.
        let this = self.clone();
        let lookup_done: Completion<Vec<ServiceItem>> = Completion::new();
        let lookup_done2 = lookup_done.clone();
        let canonical2 = canonical.clone();
        registrar_known.subscribe(move |registrar| {
            this.inner.borrow_mut().pending_lookups.push(lookup_done2.clone());
            this.send(
                &JiniPacket::Lookup { service_type: canonical2.as_str().to_owned() },
                registrar,
            );
        });
        // Step 3: translate items to response events.
        let reply2 = reply.clone();
        lookup_done.subscribe(move |items| {
            let mut body = vec![Event::NetType(SdpProtocol::Jini), Event::ServiceResponse];
            match items.first() {
                Some(item) => {
                    body.push(Event::ResOk);
                    body.push(Event::ServiceType(canonical));
                    body.push(Event::JiniServiceId(item.service_id));
                    body.push(Event::ResTtl(300));
                    for (tag, value) in &item.attributes {
                        body.push(Event::ResAttr {
                            tag: tag.as_str().into(),
                            value: value.as_str().into(),
                        });
                    }
                    body.push(Event::ResServUrl(endpoint_to_url(&item.endpoint)));
                }
                None => body.push(Event::ResErr(404)),
            }
            reply2.complete(EventStream::framed(body));
        });
        // Deadline.
        world.schedule_in(window + Duration::from_millis(10), move |_| {
            reply.complete(EventStream::framed(vec![
                Event::NetType(SdpProtocol::Jini),
                Event::ServiceResponse,
                Event::ResErr(404),
            ]));
        });
    }

    fn compose_response(&self, world: &World, request: &EventStream, response: &EventStream) {
        let Some(requester) = request.source_addr() else {
            return;
        };
        let items = match response.service_url() {
            Some(url) => {
                let service_id = self.service_id_for(url);
                vec![ServiceItem {
                    service_id,
                    service_type: response
                        .service_type()
                        .or(request.service_type())
                        .unwrap_or_default()
                        .to_owned(),
                    endpoint: url_to_endpoint(url),
                    attributes: response
                        .response_attrs()
                        .into_iter()
                        .map(|(t, v)| (t.to_owned(), v.to_owned()))
                        .collect(),
                }]
            }
            None => Vec::new(),
        };
        let delay = self.inner.borrow().config.translation_delay;
        let this = self.clone();
        world.schedule_in(delay, move |_| {
            this.send(&JiniPacket::LookupReply { items }, requester);
        });
    }

    fn compose_advert(&self, world: &World, advert: &EventStream) {
        // Jini has no multicast service advertisement: translate the
        // foreign advert into a registration with the real registrar.
        let Some(registrar) = self.inner.borrow().real_registrar else {
            return;
        };
        if advert.is_byebye() {
            return; // leases expire on their own
        }
        let Some(url) = advert.service_url() else {
            return;
        };
        let service_id = self.service_id_for(url);
        let lease = self.inner.borrow().config.lease_secs;
        let item = ServiceItem {
            service_id,
            service_type: advert.service_type().unwrap_or_default().to_owned(),
            endpoint: url_to_endpoint(url),
            attributes: advert
                .response_attrs()
                .into_iter()
                .map(|(t, v)| (t.to_owned(), v.to_owned()))
                .collect(),
        };
        let delay = self.inner.borrow().config.translation_delay;
        let this = self.clone();
        world.schedule_in(delay, move |_| {
            this.send(&JiniPacket::Register { item, lease_secs: lease }, registrar);
        });
    }

    fn own_sources(&self) -> Vec<SocketAddrV4> {
        self.inner.borrow().socket.local_addr().map(|a| vec![a]).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indiss_jini::{JiniAgent, JiniConfig, LookupService, JINI_ANNOUNCEMENT_GROUP};
    use indiss_net::World;

    #[test]
    fn announcement_records_real_registrar() {
        let world = World::new(61);
        let indiss_node = world.add_node("indiss");
        let reggie_node = world.add_node("reggie");
        let unit = JiniUnit::new(&indiss_node, JiniUnitConfig::default()).unwrap();
        let _ls = LookupService::start(&reggie_node, JiniConfig::default()).unwrap();
        // The monitor would feed announcements; simulate that feed.
        let dgram = Datagram {
            src: SocketAddrV4::new(reggie_node.addr(), JINI_PORT),
            dst: SocketAddrV4::new(JINI_ANNOUNCEMENT_GROUP, JINI_PORT),
            payload: JiniPacket::Announcement {
                host: reggie_node.addr().to_string(),
                port: JINI_PORT,
                groups: vec!["public".into()],
            }
            .encode(),
        };
        assert_eq!(unit.parse(&world, &dgram), ParsedMessage::Handled);
        assert_eq!(unit.real_registrar(), Some(SocketAddrV4::new(reggie_node.addr(), JINI_PORT)));
    }

    #[test]
    fn execute_query_discovers_and_looks_up() {
        let world = World::new(61);
        let indiss_node = world.add_node("indiss");
        let reggie_node = world.add_node("reggie");
        let provider_node = world.add_node("provider");
        let unit = JiniUnit::new(&indiss_node, JiniUnitConfig::default()).unwrap();
        let ls = LookupService::start(&reggie_node, JiniConfig::default()).unwrap();
        let provider = JiniAgent::start(&provider_node, JiniConfig::default()).unwrap();
        provider.register(ServiceItem {
            service_id: 7,
            service_type: "clock".into(),
            endpoint: "10.0.0.9:4005".into(),
            attributes: vec![("name".into(), "Jini Clock".into())],
        });
        world.run_for(Duration::from_secs(1));
        assert_eq!(ls.registration_count(), 1);

        let request =
            EventStream::framed(vec![Event::ServiceRequest, Event::ServiceType("clock".into())]);
        let reply: Completion<EventStream> = Completion::new();
        unit.execute_query(&world, &request, reply.clone());
        world.run_for(Duration::from_secs(1));
        let response = reply.take().expect("query done");
        assert_eq!(response.service_url(), Some("jini://10.0.0.9:4005"));
        assert!(response.response_attrs().contains(&("name", "Jini Clock")));
    }

    #[test]
    fn execute_query_without_registrar_fails_cleanly() {
        let world = World::new(61);
        let indiss_node = world.add_node("indiss");
        let unit = JiniUnit::new(&indiss_node, JiniUnitConfig::default()).unwrap();
        let request =
            EventStream::framed(vec![Event::ServiceRequest, Event::ServiceType("clock".into())]);
        let reply: Completion<EventStream> = Completion::new();
        unit.execute_query(&world, &request, reply.clone());
        world.run_for(Duration::from_secs(1));
        let response = reply.take().expect("deadline fired");
        assert!(response.events().iter().any(|e| matches!(e, Event::ResErr(_))));
    }

    #[test]
    fn jini_client_lookup_is_bridged() {
        let world = World::new(61);
        let indiss_node = world.add_node("indiss");
        let client_node = world.add_node("jini-client");
        let unit = JiniUnit::new(&indiss_node, JiniUnitConfig::default()).unwrap();
        // Install a bridge that answers every request with one service.
        unit.set_bridge(Rc::new(|_world, request, reply| {
            assert_eq!(request.service_type(), Some("clock"));
            reply.complete(EventStream::framed(vec![
                Event::ServiceResponse,
                Event::ResOk,
                Event::ServiceType("clock".into()),
                Event::ResServUrl("soap://10.0.0.2:4005/ctl".into()),
                Event::ResAttr { tag: "friendlyName".into(), value: "Clock".into() },
            ]));
        }));

        let client = JiniAgent::start(&client_node, JiniConfig::default()).unwrap();
        // The client's multicast discovery request reaches the monitor in
        // a full deployment; simulate the monitor feed here.
        let found = client.lookup("clock");
        // Client sent a DiscoveryRequest; feed it to the unit as the
        // monitor would (src = client's ephemeral socket).
        world.run_for(Duration::from_millis(5));
        let trace_src = SocketAddrV4::new(client_node.addr(), 40000);
        let dgram = Datagram {
            src: trace_src,
            dst: SocketAddrV4::new(JINI_REQUEST_GROUP, JINI_PORT),
            payload: JiniPacket::DiscoveryRequest { groups: vec!["public".into()] }.encode(),
        };
        assert_eq!(unit.parse(&world, &dgram), ParsedMessage::Handled);
        world.run_for(Duration::from_secs(2));
        let items = found.take().expect("lookup bridged");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].endpoint, "soap://10.0.0.2:4005/ctl");
    }

    #[test]
    fn endpoint_url_mapping_roundtrips() {
        assert_eq!(endpoint_to_url("10.0.0.9:5000"), "jini://10.0.0.9:5000");
        assert_eq!(endpoint_to_url("soap://h:1/x"), "soap://h:1/x");
        assert_eq!(url_to_endpoint("jini://10.0.0.9:5000"), "10.0.0.9:5000");
        assert_eq!(url_to_endpoint("soap://h:1/x"), "soap://h:1/x");
    }
}
