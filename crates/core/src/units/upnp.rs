//! The UPnP unit: SSDP/HTTP/XML parsers + SSDP composer + the §2.4
//! coordination FSM.
//!
//! This unit is the paper's showcase. Translating *to* UPnP is a
//! multi-round native process: the SSDP search response only carries a
//! description URL (`SDP_DEVICE_URL_DESC`), not the service endpoint the
//! foreign client needs (`SDP_RES_SERV_URL`), so the unit "recursively
//! generate[s] additional requests to the remote service until it
//! receives the expected event" — an HTTP GET of `description.xml`,
//! switching its parser from SSDP to XML (`SDP_C_PARSER_SWITCH`).
//!
//! Translating *from* UPnP requires the reverse trick: a UPnP client
//! expects a description *document*, so the unit synthesizes one for each
//! bridged foreign service and serves it from its own HTTP endpoint.

use std::cell::RefCell;
use std::net::SocketAddrV4;
use std::rc::Rc;
use std::time::Duration;

use indiss_net::{Completion, Datagram, NetResult, Node, UdpSocket, World};
use indiss_ssdp::{
    MSearch, Notify, NotifySubType, SearchResponse, SearchTarget, SsdpMessage,
    SSDP_MULTICAST_GROUP, SSDP_PORT,
};
use indiss_upnp::{DeviceDescription, HttpServer, ServiceDescription};

use crate::event::{Event, EventStream, EventStreamBuilder, ParserKind, SdpProtocol, Symbol};
use crate::fsm::{Fsm, FsmBuilder, Trigger};
use crate::registry::{Projection, RegistryConfig, ServiceRegistry};
use crate::units::{canonical_type_from_target, ParsedMessage, Unit};

/// UPnP unit tuning.
#[derive(Debug, Clone)]
pub struct UpnpUnitConfig {
    /// MX sent in composed M-SEARCHes (0, as in the paper's Fig. 4).
    pub mx: u8,
    /// How long to wait for the first search response.
    pub search_window: Duration,
    /// Overall deadline for the whole query process (search + fetch).
    pub process_deadline: Duration,
    /// TCP port of the synthetic-description server.
    pub bridge_port: u16,
    /// Simulated XML parse cost (client side of the description fetch).
    pub parse_delay: Duration,
    /// Event-layer translation cost per composed message.
    pub translation_delay: Duration,
    /// `SERVER:` banner on composed SSDP messages.
    pub server_banner: String,
}

impl Default for UpnpUnitConfig {
    fn default() -> Self {
        UpnpUnitConfig {
            mx: 0,
            search_window: Duration::from_millis(100),
            process_deadline: Duration::from_millis(400),
            bridge_port: 4104,
            parse_delay: Duration::from_millis(2),
            translation_delay: Duration::from_micros(150),
            server_banner: "UPnP/1.0 INDISS/0.1".to_owned(),
        }
    }
}

/// State variables of one query session (the paper's "events data from
/// previous states are recorded using state variables").
#[derive(Default)]
struct QueryVars {
    canonical: Symbol,
    location: Option<String>,
    usn: Option<Symbol>,
    ttl: Option<u32>,
    attrs: Vec<(String, String)>,
    endpoint: Option<String>,
}

/// Commands the query FSM's actions emit for the unit to execute.
enum QueryCmd {
    /// Fetch the description document (the §2.4 recursive request).
    FetchDescription(String),
    /// The process is complete; build and deliver the response stream.
    Finish,
}

/// One in-flight query process: the coordination FSM, its state
/// variables and a command scratch buffer reused across every stream
/// the session feeds (SSDP first, XML after the parser switch).
struct QuerySession {
    fsm: RefCell<Fsm<QueryVars, QueryCmd>>,
    vars: RefCell<QueryVars>,
    scratch: RefCell<Vec<QueryCmd>>,
}

impl QuerySession {
    fn new(canonical: Symbol) -> QuerySession {
        QuerySession {
            fsm: RefCell::new(query_fsm()),
            vars: RefCell::new(QueryVars { canonical, ..QueryVars::default() }),
            scratch: RefCell::new(Vec::new()),
        }
    }

    /// Feeds a stream through the FSM, handing out the scratch buffer
    /// with the emitted commands. The caller drains it and gives the
    /// capacity back via [`QuerySession::recycle`] (commands may
    /// re-enter the session, so it cannot stay borrowed).
    fn feed(&self, stream: &EventStream) -> Vec<QueryCmd> {
        let mut cmds = std::mem::take(&mut *self.scratch.borrow_mut());
        self.fsm.borrow_mut().feed_all(stream.events(), &mut self.vars.borrow_mut(), &mut cmds);
        cmds
    }

    fn recycle(&self, cmds: Vec<QueryCmd>) {
        *self.scratch.borrow_mut() = cmds;
    }
}

/// Builds the UPnP query-side DFA:
///
/// ```text
/// await_search --UpnpDeviceUrlDesc--> fetching --ResServUrl--> done
/// ```
fn query_fsm() -> Fsm<QueryVars, QueryCmd> {
    FsmBuilder::new("await_search")
        .accepting(&["done"])
        // Search response carries the description URL but no endpoint:
        // record it and command the recursive fetch.
        .on(
            "await_search",
            crate::event::EventKind::UpnpDeviceUrlDesc,
            "fetching",
            Rc::new(|vars: &mut QueryVars, e: &Event, out: &mut Vec<QueryCmd>| {
                if let Event::UpnpDeviceUrlDesc(url) = e {
                    vars.location = Some(url.clone());
                    out.push(QueryCmd::FetchDescription(url.clone()));
                }
            }),
        )
        // Record bookkeeping events in either state.
        .tuple(
            "await_search",
            Trigger::Kind(crate::event::EventKind::UpnpUsn),
            None,
            "await_search",
            Some(Rc::new(|vars: &mut QueryVars, e: &Event, _: &mut Vec<QueryCmd>| {
                if let Event::UpnpUsn(u) = e {
                    vars.usn = Some(u.clone());
                }
            })),
        )
        .tuple(
            "await_search",
            Trigger::Kind(crate::event::EventKind::ResTtl),
            None,
            "await_search",
            Some(Rc::new(|vars: &mut QueryVars, e: &Event, _: &mut Vec<QueryCmd>| {
                if let Event::ResTtl(t) = e {
                    vars.ttl = Some(*t);
                }
            })),
        )
        .tuple(
            "fetching",
            Trigger::Kind(crate::event::EventKind::ResAttr),
            None,
            "fetching",
            Some(Rc::new(|vars: &mut QueryVars, e: &Event, _: &mut Vec<QueryCmd>| {
                if let Event::ResAttr { tag, value } = e {
                    vars.attrs.push((tag.to_string(), value.to_string()));
                }
            })),
        )
        // The event the whole process works towards (§2.4).
        .on(
            "fetching",
            crate::event::EventKind::ResServUrl,
            "done",
            Rc::new(|vars: &mut QueryVars, e: &Event, out: &mut Vec<QueryCmd>| {
                if let Event::ResServUrl(u) = e {
                    vars.endpoint = Some(u.clone());
                }
                out.push(QueryCmd::Finish);
            }),
        )
        .build()
}

struct UpnpUnitInner {
    node: Node,
    config: UpnpUnitConfig,
    /// Shared registry: bridged-service projections (location, USN and
    /// the synthetic description document, per canonical type) live
    /// here, not in a private map. The cell is shared with the HTTP
    /// handler so [`Unit::bind_registry`] reaches it too.
    registry: Rc<RefCell<ServiceRegistry>>,
    next_bridge_id: u64,
    loop_filter: Option<Rc<dyn Fn(SocketAddrV4)>>,
    own_sources: Vec<SocketAddrV4>,
}

/// `/bridged/<canonical>/description.xml` → `<canonical>`.
fn canonical_from_description_path(target: &str) -> Option<&str> {
    target.strip_prefix("/bridged/")?.strip_suffix("/description.xml")
}

/// The UPnP unit.
#[derive(Clone)]
pub struct UpnpUnit {
    inner: Rc<RefCell<UpnpUnitInner>>,
    _server: Rc<HttpServer>,
}

impl UpnpUnit {
    /// Creates the unit on `node`, starting its synthetic-description
    /// HTTP server on `config.bridge_port`.
    ///
    /// # Errors
    ///
    /// Network errors from the server bind.
    pub fn new(node: &Node, config: UpnpUnitConfig) -> NetResult<UpnpUnit> {
        let registry = Rc::new(RefCell::new(ServiceRegistry::new(RegistryConfig::default())));
        let serve_registry = Rc::clone(&registry);
        let server = HttpServer::start(
            node,
            config.bridge_port,
            // Serving a synthetic description is INDISS code, not the
            // sluggish native stack: keep it at the translation cost.
            config.translation_delay,
            Rc::new(move |_, req| {
                // Descriptions are served straight from the registry's
                // projections, so they stay bounded by its LRU.
                let document = canonical_from_description_path(&req.target).and_then(|c| {
                    let registry = serve_registry.borrow().clone();
                    registry.projection(SdpProtocol::Upnp, c).and_then(|p| p.document)
                });
                match document {
                    Some(xml) => {
                        let mut resp = indiss_http::Response::ok();
                        resp.headers.insert("Content-Type", "text/xml");
                        resp.body = xml.into_bytes();
                        resp
                    }
                    None => indiss_http::Response::new(404),
                }
            }),
        )?;
        Ok(UpnpUnit {
            inner: Rc::new(RefCell::new(UpnpUnitInner {
                node: node.clone(),
                config,
                registry,
                next_bridge_id: 1,
                loop_filter: None,
                own_sources: Vec::new(),
            })),
            _server: Rc::new(server),
        })
    }

    /// The currently bound registry handle.
    fn registry(&self) -> ServiceRegistry {
        self.inner.borrow().registry.borrow().clone()
    }

    /// Sets the loop-filter callback: every socket the unit opens reports
    /// its address so the monitor can ignore the unit's own traffic.
    pub fn set_loop_filter(&self, f: Rc<dyn Fn(SocketAddrV4)>) {
        self.inner.borrow_mut().loop_filter = Some(f);
    }

    fn open_session_socket(&self) -> NetResult<UdpSocket> {
        let node = self.inner.borrow().node.clone();
        let socket = node.udp_bind_ephemeral()?;
        if let Ok(addr) = socket.local_addr() {
            let mut inner = self.inner.borrow_mut();
            inner.own_sources.push(addr);
            if let Some(f) = &inner.loop_filter {
                f(addr);
            }
        }
        Ok(socket)
    }

    /// Parses an SSDP search response into events (§2.4 step 2's list).
    fn response_events(resp: &SearchResponse, src: SocketAddrV4) -> EventStream {
        let mut body = EventStreamBuilder::with_capacity(9);
        body.push(Event::NetType(SdpProtocol::Upnp));
        body.push(Event::NetUnicast);
        body.push(Event::NetSourceAddr(src));
        body.push(Event::ServiceResponse);
        if let Some(t) = canonical_type_from_target(&resp.st) {
            body.push(Event::ServiceType(t));
        }
        body.push(Event::UpnpUsn(resp.usn.as_str().into()));
        body.push(Event::UpnpServer(resp.server.clone()));
        body.push(Event::ResTtl(resp.max_age));
        body.push(Event::UpnpDeviceUrlDesc(resp.location.clone()));
        body.build()
    }

    /// Parses a fetched description into the XML-side events: the stream
    /// opens with `SDP_C_PARSER_SWITCH` (the SSDP parser handed over) and
    /// works towards `SDP_RES_SERV_URL`.
    fn description_events(desc: &DeviceDescription, location: &str) -> EventStream {
        let mut body = EventStreamBuilder::new();
        body.push(Event::SocketSwitch);
        body.push(Event::ParserSwitch(ParserKind::Xml));
        push_description_attrs(desc, &mut body);
        body.push(Event::ResOk);
        body.push(Event::ResServUrl(description_endpoint(desc, location)));
        body.build()
    }
}

/// The stateless SSDP parser table: one raw datagram → events. Both
/// [`UpnpUnit::parse`] and the wire front-end's
/// [`crate::netfront::NetDriver`] go through this single function, so
/// the simulated and the real-socket pipelines translate UPnP traffic
/// identically by construction.
pub(crate) fn decode_ssdp_wire(payload: &[u8], src: SocketAddrV4) -> ParsedMessage {
    let Ok(msg) = SsdpMessage::parse(payload) else {
        return ParsedMessage::NotRelevant;
    };
    match msg {
        SsdpMessage::MSearch(search) => {
            let Some(canonical) = canonical_type_from_target(&search.st) else {
                return ParsedMessage::NotRelevant; // ssdp:all etc: not bridged
            };
            let body = vec![
                Event::NetType(SdpProtocol::Upnp),
                Event::NetMulticast,
                Event::NetSourceAddr(src),
                Event::ServiceRequest,
                Event::UpnpMx(search.mx),
                Event::UpnpSt(search.st.to_string().into()),
                Event::ServiceType(canonical),
            ];
            ParsedMessage::Request(EventStream::framed(body))
        }
        SsdpMessage::Notify(n) => {
            let Some(canonical) = canonical_type_from_target(&n.nt) else {
                return ParsedMessage::Handled; // rootdevice/uuid NTs: redundant
            };
            let mut body = vec![
                Event::NetType(SdpProtocol::Upnp),
                Event::NetMulticast,
                Event::NetSourceAddr(src),
                match n.nts {
                    NotifySubType::Alive | NotifySubType::Update => Event::ServiceAlive,
                    NotifySubType::ByeBye => Event::ServiceByeBye,
                },
                Event::ServiceType(canonical),
                Event::UpnpUsn(n.usn.as_str().into()),
                Event::ResTtl(n.max_age),
            ];
            if let Some(loc) = &n.location {
                body.push(Event::UpnpDeviceUrlDesc(loc.clone()));
            }
            ParsedMessage::Advert(EventStream::framed(body))
        }
        SsdpMessage::Response(resp) => {
            ParsedMessage::Response(UpnpUnit::response_events(&resp, src))
        }
    }
}

/// Derives the advert stream a fetched description enriches `advert`
/// into: the original advert's body plus the description's attributes,
/// `SDP_RES_OK` and the control-URL endpoint — the §2.4 recursive
/// process as a pure function over an already-fetched document, shared
/// by the simulated unit and the wire front-end's description fetcher.
pub(crate) fn enrich_advert_with_description(
    advert: &EventStream,
    desc: &DeviceDescription,
    location: &str,
) -> EventStream {
    let mut body = advert.to_builder();
    body.push(Event::ParserSwitch(ParserKind::Xml));
    push_description_attrs(desc, &mut body);
    body.push(Event::ResServUrl(description_endpoint(desc, location)));
    body.build()
}

/// Pushes one `ResAttr` per non-empty description attribute.
fn push_description_attrs(desc: &DeviceDescription, body: &mut EventStreamBuilder) {
    for (tag, value) in desc.attribute_pairs() {
        if !value.is_empty() {
            body.push(Event::ResAttr { tag: tag.into(), value: value.into() });
        }
    }
}

/// The endpoint a description yields: the first service's control URL,
/// made absolute against the description host, with the soap:// scheme
/// the paper's Fig. 4 SrvRply shows.
fn description_endpoint(desc: &DeviceDescription, location: &str) -> String {
    desc.services
        .first()
        .map(|s| absolute_control_url(location, &s.control_url))
        .unwrap_or_else(|| location.replace("http://", "soap://"))
}

/// `http://10.0.0.2:4004/description.xml` + `/service/timer/control` →
/// `soap://10.0.0.2:4004/service/timer/control`.
fn absolute_control_url(location: &str, control: &str) -> String {
    if control.starts_with("http://") {
        return control.replacen("http://", "soap://", 1);
    }
    if control.starts_with("soap://") {
        return control.to_owned();
    }
    let host = location
        .strip_prefix("http://")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or_default();
    format!("soap://{host}{control}")
}

impl Unit for UpnpUnit {
    fn protocol(&self) -> SdpProtocol {
        SdpProtocol::Upnp
    }

    fn bind_registry(&self, registry: &ServiceRegistry) {
        *self.inner.borrow().registry.borrow_mut() = registry.clone();
    }

    fn parse(&self, _world: &World, dgram: &Datagram) -> ParsedMessage {
        decode_ssdp_wire(&dgram.payload, dgram.src)
    }

    fn execute_query(&self, world: &World, request: &EventStream, reply: Completion<EventStream>) {
        let Some(canonical) = request.service_type_symbol() else {
            reply.complete(EventStream::framed(vec![Event::ServiceResponse, Event::ResErr(2)]));
            return;
        };
        let Ok(socket) = self.open_session_socket() else {
            reply.complete(EventStream::framed(vec![Event::ServiceResponse, Event::ResErr(500)]));
            return;
        };
        let (mx, deadline, parse_delay) = {
            let inner = self.inner.borrow();
            (inner.config.mx, inner.config.process_deadline, inner.config.parse_delay)
        };

        let session = Rc::new(QuerySession::new(canonical.clone()));

        let this = self.clone();
        let reply_for_events = reply.clone();
        let session2 = Rc::clone(&session);
        let socket_for_handler = socket.clone();
        socket.on_receive(move |world, dgram| {
            let Ok(SsdpMessage::Response(resp)) = SsdpMessage::parse(&dgram.payload) else {
                return;
            };
            let stream = UpnpUnit::response_events(&resp, dgram.src);
            let mut cmds = session2.feed(&stream);
            for cmd in cmds.drain(..) {
                match cmd {
                    QueryCmd::FetchDescription(url) => {
                        this.run_description_fetch(
                            world,
                            &url,
                            parse_delay,
                            Rc::clone(&session2),
                            reply_for_events.clone(),
                        );
                    }
                    QueryCmd::Finish => {
                        finish(&session2.vars.borrow(), &reply_for_events);
                    }
                }
            }
            session2.recycle(cmds);
            let _ = &socket_for_handler;
        });

        // Compose and send the M-SEARCH (Fig. 4 step 1's output).
        let target = SearchTarget::device_urn(canonical.as_str(), 1);
        let wire = MSearch::new(target, mx).to_bytes();
        let translation_delay = self.inner.borrow().config.translation_delay;
        let send_socket = socket.clone();
        world.schedule_in(translation_delay, move |_| {
            let _ = send_socket.send_to(&wire, SocketAddrV4::new(SSDP_MULTICAST_GROUP, SSDP_PORT));
        });

        // Process deadline: fail the bridge if the FSM never accepted.
        let reply_deadline = reply.clone();
        let session3 = Rc::clone(&session);
        let socket_close = socket.clone();
        world.schedule_in(deadline, move |_| {
            socket_close.close();
            if !session3.fsm.borrow().is_accepting() {
                reply_deadline.complete(EventStream::framed(vec![
                    Event::NetType(SdpProtocol::Upnp),
                    Event::ServiceResponse,
                    Event::ResErr(404),
                ]));
            }
        });
    }

    fn compose_response(&self, world: &World, request: &EventStream, response: &EventStream) {
        let Some(endpoint) = response.service_url().map(str::to_owned) else {
            return; // nothing found: silent, as native devices are
        };
        let Some(requester) = request.source_addr() else {
            return;
        };
        let Some(canonical) = request.service_type_symbol() else {
            return;
        };
        let st_text = request
            .events()
            .iter()
            .find_map(|e| match e {
                Event::UpnpSt(st) => Some(st.as_str().to_owned()),
                _ => None,
            })
            .unwrap_or_else(|| format!("urn:schemas-upnp-org:device:{canonical}:1"));
        let ttl = response
            .events()
            .iter()
            .find_map(|e| match e {
                Event::ResTtl(t) => Some(*t),
                _ => None,
            })
            .unwrap_or(1800);

        let (location, usn) =
            self.ensure_bridged(canonical.as_str(), &endpoint, response.response_attrs());
        let ssdp_response = SearchResponse {
            st: st_text.parse().unwrap_or(SearchTarget::Custom(st_text)),
            usn,
            location,
            server: self.inner.borrow().config.server_banner.clone(),
            max_age: ttl,
        };
        let Ok(socket) = self.open_session_socket() else {
            return;
        };
        let delay = self.inner.borrow().config.translation_delay;
        world.schedule_in(delay, move |_| {
            let _ = socket.send_to(&ssdp_response.to_bytes(), requester);
            socket.close();
        });
    }

    fn compose_advert(&self, world: &World, advert: &EventStream) {
        let Some(canonical) = advert.service_type().map(str::to_owned) else {
            return;
        };
        let nts = if advert.is_byebye() { NotifySubType::ByeBye } else { NotifySubType::Alive };
        let (location, usn) = if nts == NotifySubType::ByeBye {
            match self
                .registry()
                .projection(SdpProtocol::Upnp, &canonical)
                .and_then(|p| Some((p.location?, p.usn?)))
            {
                Some((location, usn)) => (Some(location), usn),
                None => return, // never advertised: nothing to retract
            }
        } else {
            let Some(endpoint) = advert.service_url().map(str::to_owned) else {
                return;
            };
            let (l, u) = self.ensure_bridged(&canonical, &endpoint, advert.response_attrs());
            (Some(l), u)
        };
        let notify = Notify {
            nt: SearchTarget::device_urn(&canonical, 1),
            nts,
            usn,
            location: if nts == NotifySubType::ByeBye { None } else { location },
            server: self.inner.borrow().config.server_banner.clone(),
            max_age: 1800,
        };
        let Ok(socket) = self.open_session_socket() else {
            return;
        };
        let delay = self.inner.borrow().config.translation_delay;
        world.schedule_in(delay, move |_| {
            let _ = socket
                .send_to(&notify.to_bytes(), SocketAddrV4::new(SSDP_MULTICAST_GROUP, SSDP_PORT));
            socket.close();
        });
    }

    fn own_sources(&self) -> Vec<SocketAddrV4> {
        self.inner.borrow().own_sources.clone()
    }

    /// A UPnP `NOTIFY` only points at the description document; fetch it
    /// so the advert carries the endpoint and attributes other SDPs need.
    fn enrich_advert(&self, world: &World, advert: &EventStream, done: Completion<EventStream>) {
        if advert.service_url().is_some() || advert.is_byebye() {
            done.complete(advert.clone());
            return;
        }
        let location = advert.events().iter().find_map(|e| match e {
            Event::UpnpDeviceUrlDesc(url) => Some(url.clone()),
            _ => None,
        });
        let Some(location) = location else {
            done.complete(advert.clone());
            return;
        };
        let node = self.inner.borrow().node.clone();
        let parse_delay = self.inner.borrow().config.parse_delay;
        let base = advert.clone();
        let fetched = indiss_upnp::http_get(&node, &location);
        let world2 = world.clone();
        fetched.subscribe(move |resp| {
            let desc = resp
                .filter(|r| r.is_success())
                .and_then(|r| String::from_utf8(r.body).ok())
                .and_then(|xml| DeviceDescription::from_xml(&xml).ok());
            let Some(desc) = desc else {
                done.complete(base);
                return;
            };
            world2.schedule_in(parse_delay, move |_| {
                done.complete(enrich_advert_with_description(&base, &desc, &location));
            });
        });
    }
}

impl UpnpUnit {
    /// Runs the recursive description fetch (§2.4): GET the description,
    /// model the XML parse cost, feed the resulting events to the FSM.
    fn run_description_fetch(
        &self,
        world: &World,
        url: &str,
        parse_delay: Duration,
        session: Rc<QuerySession>,
        reply: Completion<EventStream>,
    ) {
        let node = self.inner.borrow().node.clone();
        let fetched = indiss_upnp::http_get(&node, url);
        let world2 = world.clone();
        let url2 = url.to_owned();
        fetched.subscribe(move |resp| {
            let Some(resp) = resp.filter(|r| r.is_success()) else {
                reply.complete(EventStream::framed(vec![
                    Event::NetType(SdpProtocol::Upnp),
                    Event::ServiceResponse,
                    Event::ResErr(502),
                ]));
                return;
            };
            let Some(desc) = String::from_utf8(resp.body)
                .ok()
                .and_then(|xml| DeviceDescription::from_xml(&xml).ok())
            else {
                reply.complete(EventStream::framed(vec![
                    Event::NetType(SdpProtocol::Upnp),
                    Event::ServiceResponse,
                    Event::ResErr(500),
                ]));
                return;
            };
            // Model the XML parse cost, then feed the XML-side events.
            world2.schedule_in(parse_delay, move |_| {
                let stream = UpnpUnit::description_events(&desc, &url2);
                let mut cmds = session.feed(&stream);
                for cmd in cmds.drain(..) {
                    if matches!(cmd, QueryCmd::Finish) {
                        finish(&session.vars.borrow(), &reply);
                    }
                }
                session.recycle(cmds);
            });
        });
    }

    /// Registers (or reuses) a synthetic description for a bridged
    /// foreign service; returns `(location, usn)`. The projection —
    /// including the description document served over HTTP — lives in
    /// the shared registry, so re-bridging the same canonical type from
    /// any path reuses one description, and the documents are bounded by
    /// the projection store instead of growing without limit.
    fn ensure_bridged(
        &self,
        canonical: &str,
        endpoint: &str,
        attrs: Vec<(&str, &str)>,
    ) -> (String, String) {
        let registry = self.registry();
        if let Some((location, usn)) = registry
            .projection(SdpProtocol::Upnp, canonical)
            .and_then(|p| Some((p.location?, p.usn?)))
        {
            return (location, usn);
        }
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_bridge_id;
        inner.next_bridge_id += 1;
        // Keyed by canonical type: re-minting after a projection
        // eviction reuses the same path rather than minting a new one.
        let path = format!("/bridged/{canonical}/description.xml");
        let friendly = attrs
            .iter()
            .find(|(t, _)| t.eq_ignore_ascii_case("friendlyName"))
            .map(|(_, v)| (*v).to_owned())
            .unwrap_or_else(|| format!("Bridged {canonical} service"));
        let description = DeviceDescription {
            device_type: format!("urn:schemas-upnp-org:device:{canonical}:1"),
            friendly_name: friendly,
            manufacturer: "INDISS bridge".to_owned(),
            manufacturer_url: String::new(),
            model_description: format!("bridged from {endpoint}"),
            model_name: canonical.to_owned(),
            model_number: "1.0".to_owned(),
            model_url: String::new(),
            udn: format!("uuid:indiss-bridged-{id}"),
            services: vec![ServiceDescription {
                service_type: format!("urn:schemas-upnp-org:service:{canonical}:1"),
                service_id: format!("urn:upnp-org:serviceId:{canonical}"),
                // Absolute: points at the real foreign endpoint.
                control_url: endpoint.to_owned(),
                event_sub_url: String::new(),
                scpd_url: String::new(),
            }],
        };
        let location = format!("http://{}:{}{}", inner.node.addr(), inner.config.bridge_port, path);
        let usn = format!("uuid:indiss-bridged-{id}::urn:schemas-upnp-org:device:{canonical}:1");
        drop(inner);
        registry.set_projection(
            SdpProtocol::Upnp,
            canonical,
            Projection {
                location: Some(location.clone()),
                usn: Some(usn.clone()),
                document: Some(description.to_xml()),
                attrs: attrs.iter().map(|(t, v)| ((*t).to_owned(), (*v).to_owned())).collect(),
                service_id: None,
            },
        );
        (location, usn)
    }
}

/// Builds the final response event stream from the session variables and
/// completes the bridge reply.
fn finish(vars: &QueryVars, reply: &Completion<EventStream>) {
    let mut body = vec![
        Event::NetType(SdpProtocol::Upnp),
        Event::ServiceResponse,
        Event::ResOk,
        Event::ServiceType(vars.canonical.clone()),
    ];
    if let Some(usn) = vars.usn.clone() {
        body.push(Event::UpnpUsn(usn));
    }
    body.push(Event::ResTtl(vars.ttl.unwrap_or(1800)));
    for (tag, value) in &vars.attrs {
        body.push(Event::ResAttr { tag: tag.as_str().into(), value: value.as_str().into() });
    }
    if let Some(endpoint) = &vars.endpoint {
        body.push(Event::ResServUrl(endpoint.clone()));
    }
    reply.complete(EventStream::framed(body));
}

#[cfg(test)]
mod tests {
    use super::*;
    use indiss_upnp::{ClockDevice, UpnpConfig};

    fn unit_world() -> (World, Node, UpnpUnit) {
        let world = World::new(51);
        let node = world.add_node("indiss");
        let unit = UpnpUnit::new(&node, UpnpUnitConfig::default()).unwrap();
        (world, node, unit)
    }

    #[test]
    fn msearch_parses_to_request_events() {
        let (world, _node, unit) = unit_world();
        let dgram = Datagram {
            src: "10.0.0.7:40001".parse().unwrap(),
            dst: SocketAddrV4::new(SSDP_MULTICAST_GROUP, SSDP_PORT),
            payload: MSearch::new(SearchTarget::device_urn("clock", 1), 0).to_bytes(),
        };
        let ParsedMessage::Request(stream) = unit.parse(&world, &dgram) else {
            panic!("expected request");
        };
        assert!(stream.is_request());
        assert_eq!(stream.service_type(), Some("clock"));
        assert!(stream.names().any(|n| n == "SDP_UPNP_ST"));
    }

    #[test]
    fn ssdp_all_is_not_bridged() {
        let (world, _node, unit) = unit_world();
        let dgram = Datagram {
            src: "10.0.0.7:40001".parse().unwrap(),
            dst: SocketAddrV4::new(SSDP_MULTICAST_GROUP, SSDP_PORT),
            payload: MSearch::new(SearchTarget::All, 0).to_bytes(),
        };
        assert_eq!(unit.parse(&world, &dgram), ParsedMessage::NotRelevant);
    }

    #[test]
    fn notify_alive_parses_to_advert() {
        let (world, _node, unit) = unit_world();
        let notify = Notify {
            nt: SearchTarget::device_urn("clock", 1),
            nts: NotifySubType::Alive,
            usn: "uuid:c::urn".into(),
            location: Some("http://10.0.0.2:4004/description.xml".into()),
            server: "x".into(),
            max_age: 1800,
        };
        let dgram = Datagram {
            src: "10.0.0.2:1900".parse().unwrap(),
            dst: SocketAddrV4::new(SSDP_MULTICAST_GROUP, SSDP_PORT),
            payload: notify.to_bytes(),
        };
        let ParsedMessage::Advert(stream) = unit.parse(&world, &dgram) else {
            panic!("expected advert");
        };
        assert!(stream.is_alive());
        assert_eq!(stream.service_type(), Some("clock"));
    }

    /// The full §2.4 process: M-SEARCH → response → recursive GET →
    /// XML parse → `SDP_RES_SERV_URL`.
    #[test]
    fn execute_query_fetches_description_recursively() {
        let (world, _node, unit) = unit_world();
        let device_node = world.add_node("clock-device");
        let _clock = ClockDevice::start(&device_node, UpnpConfig::default()).unwrap();
        world.run_for(Duration::from_millis(10));

        let request =
            EventStream::framed(vec![Event::ServiceRequest, Event::ServiceType("clock".into())]);
        let reply: Completion<EventStream> = Completion::new();
        unit.execute_query(&world, &request, reply.clone());
        world.run_for(Duration::from_secs(2));
        let response = reply.take().expect("process completed");
        assert!(response.is_response());
        let url = response.service_url().expect("endpoint found");
        assert!(
            url.starts_with("soap://") && url.ends_with("/service/timer/control"),
            "expected the paper's soap control URL shape, got {url}"
        );
        let attrs = response.response_attrs();
        assert!(
            attrs.contains(&("friendlyName", "CyberGarage Clock Device")),
            "description attributes extracted: {attrs:?}"
        );
    }

    #[test]
    fn execute_query_times_out_cleanly() {
        let (world, _node, unit) = unit_world();
        let request =
            EventStream::framed(vec![Event::ServiceRequest, Event::ServiceType("toaster".into())]);
        let reply: Completion<EventStream> = Completion::new();
        unit.execute_query(&world, &request, reply.clone());
        world.run_for(Duration::from_secs(2));
        let response = reply.take().expect("deadline fired");
        assert!(response.events().iter().any(|e| matches!(e, Event::ResErr(404))));
    }

    #[test]
    fn compose_response_serves_synthetic_description() {
        let (world, node, unit) = unit_world();
        let client_node = world.add_node("upnp-client");
        let listen = client_node.udp_bind(40001).unwrap();
        let got: Completion<Vec<u8>> = Completion::new();
        let got2 = got.clone();
        listen.on_receive(move |_, d| got2.complete(d.payload));

        let request = EventStream::framed(vec![
            Event::NetSourceAddr(SocketAddrV4::new(client_node.addr(), 40001)),
            Event::ServiceRequest,
            Event::UpnpSt("urn:schemas-upnp-org:device:printer:1".into()),
            Event::ServiceType("printer".into()),
        ]);
        let response = EventStream::framed(vec![
            Event::ServiceResponse,
            Event::ResOk,
            Event::ResTtl(1800),
            Event::ResServUrl("service:printer:lpr://10.0.0.9:515".into()),
            Event::ResAttr { tag: "friendlyName".into(), value: "Office Printer".into() },
        ]);
        unit.compose_response(&world, &request, &response);
        world.run_for(Duration::from_secs(1));
        let wire = got.take().expect("SSDP response delivered");
        let SsdpMessage::Response(resp) = SsdpMessage::parse(&wire).unwrap() else {
            panic!("expected response");
        };
        assert_eq!(resp.st.to_string(), "urn:schemas-upnp-org:device:printer:1");

        // And the LOCATION must be fetchable, yielding the synthetic doc.
        let fetched = indiss_upnp::http_get(&client_node, &resp.location);
        world.run_for(Duration::from_secs(1));
        let body = fetched.take().unwrap().expect("description served").body;
        let desc = DeviceDescription::from_xml(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(desc.friendly_name, "Office Printer");
        assert_eq!(desc.services[0].control_url, "service:printer:lpr://10.0.0.9:515");
        let _ = node;
    }

    #[test]
    fn compose_advert_notifies_alive_and_byebye() {
        let (world, _node, unit) = unit_world();
        let listener_node = world.add_node("listener");
        let sock = listener_node.udp_bind(SSDP_PORT).unwrap();
        sock.join_multicast(SSDP_MULTICAST_GROUP).unwrap();
        let seen: indiss_net::Collector<SsdpMessage> = indiss_net::Collector::new();
        let seen2 = seen.clone();
        sock.on_receive(move |_, d| {
            if let Ok(m) = SsdpMessage::parse(&d.payload) {
                seen2.push(m);
            }
        });
        let alive = EventStream::framed(vec![
            Event::ServiceAlive,
            Event::ServiceType("clock".into()),
            Event::ResServUrl("service:clock://10.0.0.9".into()),
        ]);
        unit.compose_advert(&world, &alive);
        world.run_for(Duration::from_secs(1));
        let bye =
            EventStream::framed(vec![Event::ServiceByeBye, Event::ServiceType("clock".into())]);
        unit.compose_advert(&world, &bye);
        world.run_for(Duration::from_secs(1));
        let messages = seen.snapshot();
        assert_eq!(messages.len(), 2);
        assert!(matches!(&messages[0], SsdpMessage::Notify(n) if n.nts == NotifySubType::Alive));
        assert!(matches!(&messages[1], SsdpMessage::Notify(n) if n.nts == NotifySubType::ByeBye));
    }

    #[test]
    fn control_url_resolution() {
        assert_eq!(
            absolute_control_url("http://10.0.0.2:4004/description.xml", "/service/timer/control"),
            "soap://10.0.0.2:4004/service/timer/control"
        );
        assert_eq!(
            absolute_control_url("http://h:1/d.xml", "http://other:2/ctl"),
            "soap://other:2/ctl"
        );
    }
}
