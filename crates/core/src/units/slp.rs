//! The SLP unit: SLP parser + SLP composer + coordination FSM.

use std::cell::RefCell;
use std::collections::HashMap;
use std::net::SocketAddrV4;
use std::rc::Rc;
use std::time::Duration;

use indiss_net::{Completion, Datagram, NetResult, Node, UdpSocket, World};
use indiss_slp::{
    AttributeList, Body, Header, Message, SlpError, UrlEntry, DEFAULT_LANG, FLAG_MCAST,
    SLP_MULTICAST_GROUP, SLP_PORT,
};

use crate::event::{Event, EventStream, EventStreamBuilder, SdpProtocol, Symbol};
use crate::registry::{Projection, RegistryConfig, ServiceRegistry};
use crate::units::{canonical_type_from_slp, ParsedMessage, Unit};

/// SLP unit tuning.
#[derive(Debug, Clone)]
pub struct SlpUnitConfig {
    /// Scopes used for composed requests.
    pub scopes: String,
    /// How long a native query waits for SrvRply convergence.
    pub query_window: Duration,
    /// Lifetime advertised for bridged services.
    pub bridged_lifetime: u16,
    /// Parse/compose processing cost (the event layer's own overhead; the
    /// paper's event translation is deliberately cheap).
    pub translation_delay: Duration,
}

impl Default for SlpUnitConfig {
    fn default() -> Self {
        SlpUnitConfig {
            scopes: "DEFAULT".to_owned(),
            query_window: Duration::from_millis(15),
            bridged_lifetime: 1800,
            translation_delay: Duration::from_micros(150),
        }
    }
}

/// A pending native SLP query the unit is driving for a foreign request.
struct PendingQuery {
    reply: Completion<EventStream>,
    urls: Vec<UrlEntry>,
    canonical_type: Symbol,
    /// Set once we issued the follow-up AttrRqst (process translation:
    /// a complete bridged answer needs attributes too).
    awaiting_attrs: Option<String>,
}

struct SlpUnitInner {
    node: Node,
    socket: UdpSocket,
    config: SlpUnitConfig,
    next_xid: u16,
    pending: HashMap<u16, PendingQuery>,
    /// Shared registry: attributes of services this unit bridged *into*
    /// SLP live here as projections keyed by the bridged SLP URL, so
    /// follow-up `AttrRqst`s from native SLP clients can be answered
    /// locally from shared state.
    registry: ServiceRegistry,
}

/// The SLP unit.
#[derive(Clone)]
pub struct SlpUnit {
    inner: Rc<RefCell<SlpUnitInner>>,
}

impl SlpUnit {
    /// Creates the unit on `node` with its own ephemeral socket.
    ///
    /// # Errors
    ///
    /// Network errors from the socket bind.
    pub fn new(node: &Node, config: SlpUnitConfig) -> NetResult<SlpUnit> {
        let socket = node.udp_bind_ephemeral()?;
        let unit = SlpUnit {
            inner: Rc::new(RefCell::new(SlpUnitInner {
                node: node.clone(),
                socket: socket.clone(),
                config,
                next_xid: 0x4000,
                pending: HashMap::new(),
                registry: ServiceRegistry::new(RegistryConfig::default()),
            })),
        };
        let this = unit.clone();
        socket.on_receive(move |world, dgram| this.handle_own_socket(world, dgram));
        Ok(unit)
    }

    /// Attributes recorded for a bridged URL (exposed for tests; reads
    /// the shared registry's projection).
    pub fn bridged_attributes(&self, url: &str) -> Option<AttributeList> {
        let registry = self.inner.borrow().registry.clone();
        let projection = registry.projection(SdpProtocol::Slp, url)?;
        let mut attrs = AttributeList::new();
        for (tag, value) in &projection.attrs {
            attrs.push(indiss_slp::Attribute::single(tag, value));
        }
        Some(attrs)
    }

    // -------------------------------------------------------------------
    // Parser side: native SLP message → events
    // -------------------------------------------------------------------

    // -------------------------------------------------------------------
    // Composer side: events → native SLP messages
    // -------------------------------------------------------------------

    /// Builds the SrvRply answering `request` with the contents of
    /// `response` (Fig. 4's final step, including the
    /// `service:<type>:soap://…` URL mapping).
    fn build_srv_rply(request: &EventStream, response: &EventStream) -> Option<(Message, String)> {
        let xid = request.events().iter().find_map(|e| match e {
            Event::SlpReqId(x) => Some(*x),
            _ => None,
        });
        let lang = request
            .events()
            .iter()
            .find_map(|e| match e {
                Event::ReqLang(l) => Some(l.clone()),
                _ => None,
            })
            .unwrap_or_else(|| DEFAULT_LANG.to_owned());
        let canonical = request.service_type()?.to_owned();
        let url = response.service_url()?;
        let slp_url = to_slp_url(&canonical, url);
        let ttl = response
            .events()
            .iter()
            .find_map(|e| match e {
                Event::ResTtl(t) => Some(*t),
                _ => None,
            })
            .unwrap_or(1800);
        let lifetime = u16::try_from(ttl).unwrap_or(u16::MAX);
        let msg = Message::new(
            Header::new(indiss_slp::FunctionId::SrvRply, xid.unwrap_or(0), &lang),
            Body::SrvRply(indiss_slp::SrvRply {
                error: 0,
                urls: vec![UrlEntry::new(slp_url.clone(), lifetime)],
            }),
        );
        Some((msg, slp_url))
    }
}

/// The Fig. 4 step-1 translation as a pure function: a decoded SrvRqst
/// becomes a request event stream (or `None` for SLP infrastructure
/// discovery, which is never bridged). No unit state is involved, so
/// this runs on any thread — the multi-threaded gateway benchmark
/// drives the exact parser the deployed SLP unit uses.
fn srv_rqst_events(
    header: &Header,
    req: &indiss_slp::SrvRqst,
    src: SocketAddrV4,
    multicast: bool,
) -> Option<EventStream> {
    let canonical = canonical_type_from_slp(&req.service_type);
    if canonical == "directory-agent" || canonical == "service-agent" {
        return None;
    }
    let mut body = EventStreamBuilder::with_capacity(10);
    body.push(Event::NetType(SdpProtocol::Slp));
    body.push(if multicast { Event::NetMulticast } else { Event::NetUnicast });
    body.push(Event::NetSourceAddr(src));
    body.push(Event::ServiceRequest);
    body.push(Event::SlpReqVersion(indiss_slp::SLP_VERSION));
    body.push(Event::SlpReqScope(req.scopes.as_str().into()));
    body.push(Event::SlpReqPredicate(req.predicate.clone()));
    body.push(Event::SlpReqId(header.xid));
    body.push(Event::ReqLang(header.lang.clone()));
    body.push(Event::ServiceType(canonical));
    Some(body.build())
}

/// Decodes one raw SLP datagram payload and, when it is a bridgeable
/// SrvRqst, parses it into the request event stream of Fig. 4 step 1 —
/// the stateless slice of [`SlpUnit::parse`], usable from any thread.
pub fn parse_slp_request(
    payload: &[u8],
    src: SocketAddrV4,
    multicast: bool,
) -> Option<EventStream> {
    let msg = Message::decode(payload).ok()?;
    match &msg.body {
        Body::SrvRqst(req) => srv_rqst_events(&msg.header, req, src, multicast),
        _ => None,
    }
}

/// The advert-side translation as a pure function: an SLP registration /
/// deregistration / SA advertisement becomes an advert event stream.
fn slp_advert_events(
    alive: bool,
    url: &str,
    attrs: &str,
    ttl: u16,
    src: SocketAddrV4,
) -> ParsedMessage {
    let canonical = canonical_type_from_slp(url);
    let mut body = vec![
        Event::NetType(SdpProtocol::Slp),
        Event::NetMulticast,
        Event::NetSourceAddr(src),
        if alive { Event::ServiceAlive } else { Event::ServiceByeBye },
        Event::ServiceType(canonical),
        Event::ResServUrl(url.to_owned()),
        Event::ResTtl(u32::from(ttl)),
    ];
    if let Ok(list) = AttributeList::parse(attrs) {
        for attr in list.iter() {
            for value in &attr.values {
                body.push(Event::ResAttr {
                    tag: attr.tag.as_str().into(),
                    value: value.as_str().into(),
                });
            }
        }
    }
    ParsedMessage::Advert(EventStream::framed(body))
}

/// The stateless SLP parser table: one decoded message → events. Both
/// [`SlpUnit::parse`] (which additionally answers `AttrRqst`s from the
/// shared registry) and the wire front-end's
/// [`crate::netfront::NetDriver`] go through this single function, so
/// the simulated and the real-socket pipelines translate identically by
/// construction. `AttrRqst` is `NotRelevant` here — answering it needs
/// unit state.
pub(crate) fn slp_message_events(
    msg: &Message,
    src: SocketAddrV4,
    multicast: bool,
) -> ParsedMessage {
    match &msg.body {
        Body::SrvRqst(req) => match srv_rqst_events(&msg.header, req, src, multicast) {
            Some(stream) => ParsedMessage::Request(stream),
            None => ParsedMessage::NotRelevant, // infrastructure discovery
        },
        Body::SaAdvert(advert) => {
            // SAAdverts announce an agent, not a concrete service; use
            // the embedded attributes when they carry a service URL.
            if let Some(url) = AttributeList::parse(&advert.attrs)
                .ok()
                .and_then(|a| a.get("service-url").map(str::to_owned))
            {
                slp_advert_events(true, &url, &advert.attrs, 1800, src)
            } else {
                ParsedMessage::Handled
            }
        }
        Body::SrvReg(reg) => {
            slp_advert_events(true, &reg.entry.url, &reg.attrs, reg.entry.lifetime, src)
        }
        Body::SrvDeReg(dereg) => slp_advert_events(false, &dereg.entry.url, "", 0, src),
        Body::SrvRply(rply) if rply.error == 0 => {
            // Observed on the wire (warm the runtime cache).
            let mut body =
                vec![Event::NetType(SdpProtocol::Slp), Event::ServiceResponse, Event::ResOk];
            if let Some(entry) = rply.urls.first() {
                body.push(Event::ServiceType(canonical_type_from_slp(&entry.url)));
                body.push(Event::ResTtl(u32::from(entry.lifetime)));
                body.push(Event::ResServUrl(entry.url.clone()));
            }
            ParsedMessage::Response(EventStream::framed(body))
        }
        _ => ParsedMessage::NotRelevant,
    }
}

/// Decodes one raw SLP payload through the full stateless parser table
/// ([`slp_message_events`]): requests, adverts and observed responses.
pub(crate) fn decode_slp_wire(payload: &[u8], src: SocketAddrV4, multicast: bool) -> ParsedMessage {
    match Message::decode(payload) {
        Ok(msg) => slp_message_events(&msg, src, multicast),
        Err(_) => ParsedMessage::NotRelevant,
    }
}

/// Composes the wire bytes of the SrvRply answering `request` with
/// `response`, plus the requester to send them to and the mapped SLP
/// URL (for recording the attribute projection). Pure: this is the
/// composer half the real-socket front-end shares with [`SlpUnit`].
pub(crate) fn compose_slp_reply(
    request: &EventStream,
    response: &EventStream,
) -> Option<(Vec<u8>, SocketAddrV4, String)> {
    // Nothing found: multicast etiquette is silence.
    response.service_url()?;
    let requester = request.source_addr()?;
    let (msg, slp_url) = SlpUnit::build_srv_rply(request, response)?;
    Some((msg.encode().ok()?, requester, slp_url))
}

/// Maps a protocol-neutral endpoint URL to an SLP service URL, exactly as
/// the paper's Fig. 4 shows: `soap://h:p/path` + type `clock` →
/// `service:clock:soap://h:p/path`.
fn to_slp_url(canonical_type: &str, endpoint: &str) -> String {
    if endpoint.starts_with("service:") {
        return endpoint.to_owned(); // already native SLP
    }
    match endpoint.split_once("://") {
        Some((scheme, rest)) => format!("service:{canonical_type}:{scheme}://{rest}"),
        None => format!("service:{canonical_type}://{endpoint}"),
    }
}

impl SlpUnit {
    /// Handles traffic on the unit's own socket: replies to queries this
    /// unit initiated (SrvRply / AttrRply correlated by XID).
    fn handle_own_socket(&self, world: &World, dgram: Datagram) {
        let Ok(msg) = Message::decode(&dgram.payload) else {
            return;
        };
        let xid = msg.header.xid;
        match msg.body {
            Body::SrvRply(rply) if rply.error == 0 && !rply.urls.is_empty() => {
                // First reply wins; ask for its attributes next (process
                // translation: the bridged answer must carry attributes).
                let next = {
                    let mut inner = self.inner.borrow_mut();
                    let Some(pending) = inner.pending.get_mut(&xid) else {
                        return;
                    };
                    if pending.awaiting_attrs.is_some() || !pending.urls.is_empty() {
                        pending.urls.extend(rply.urls);
                        return;
                    }
                    pending.urls.extend(rply.urls);
                    let url = pending.urls[0].url.clone();
                    pending.awaiting_attrs = Some(url.clone());
                    let scopes = inner.config.scopes.clone();
                    Some((url, scopes))
                };
                if let Some((url, scopes)) = next {
                    let attr_rqst = Message::new(
                        Header::new(indiss_slp::FunctionId::AttrRqst, xid, DEFAULT_LANG),
                        Body::AttrRqst(indiss_slp::AttrRqst {
                            prlist: String::new(),
                            url,
                            scopes,
                            tags: String::new(),
                            spi: String::new(),
                        }),
                    );
                    let socket = self.inner.borrow().socket.clone();
                    if let Ok(wire) = attr_rqst.encode() {
                        let _ = socket.send_to(&wire, dgram.src);
                    }
                }
                let _ = world;
            }
            Body::AttrRply(rply) => {
                let finished = {
                    let mut inner = self.inner.borrow_mut();
                    inner.pending.remove(&xid)
                };
                let Some(pending) = finished else {
                    return;
                };
                let attrs = AttributeList::parse(&rply.attrs).unwrap_or_default();
                let mut body = vec![
                    Event::NetType(SdpProtocol::Slp),
                    Event::ServiceResponse,
                    Event::ResOk,
                    Event::ServiceType(pending.canonical_type),
                ];
                let entry = &pending.urls[0];
                body.push(Event::ResTtl(u32::from(entry.lifetime)));
                body.push(Event::ResServUrl(entry.url.clone()));
                for attr in attrs.iter() {
                    for value in &attr.values {
                        body.push(Event::ResAttr {
                            tag: attr.tag.as_str().into(),
                            value: value.as_str().into(),
                        });
                    }
                }
                pending.reply.complete(EventStream::framed(body));
            }
            _ => {}
        }
    }
}

impl Unit for SlpUnit {
    fn protocol(&self) -> SdpProtocol {
        SdpProtocol::Slp
    }

    fn bind_registry(&self, registry: &ServiceRegistry) {
        self.inner.borrow_mut().registry = registry.clone();
    }

    fn parse(&self, _world: &World, dgram: &Datagram) -> ParsedMessage {
        let msg = match Message::decode(&dgram.payload) {
            Ok(m) => m,
            Err(SlpError::BadVersion(_)) | Err(_) => return ParsedMessage::NotRelevant,
        };
        // The one stateful row of the parser table: attribute requests
        // for services this unit bridged are answered from the shared
        // registry's projections. Everything else is the stateless
        // table shared with the wire front-end.
        if let Body::AttrRqst(req) = &msg.body {
            let answer = self.bridged_attributes(&req.url);
            return if let Some(attrs) = answer {
                let reply = Message::new(
                    Header::new(indiss_slp::FunctionId::AttrRply, msg.header.xid, &msg.header.lang),
                    Body::AttrRply(indiss_slp::AttrRply { error: 0, attrs: attrs.to_string() }),
                );
                let socket = self.inner.borrow().socket.clone();
                if let Ok(wire) = reply.encode() {
                    let _ = socket.send_to(&wire, dgram.src);
                }
                ParsedMessage::Handled
            } else {
                ParsedMessage::NotRelevant
            };
        }
        slp_message_events(&msg, dgram.src, dgram.is_multicast())
    }

    fn execute_query(&self, world: &World, request: &EventStream, reply: Completion<EventStream>) {
        let Some(canonical) = request.service_type_symbol() else {
            reply.complete(EventStream::framed(vec![Event::ServiceResponse, Event::ResErr(2)]));
            return;
        };
        let (xid, wire, window) = {
            let mut inner = self.inner.borrow_mut();
            let xid = inner.next_xid;
            inner.next_xid = inner.next_xid.wrapping_add(1).max(0x4000);
            let mut header = Header::new(indiss_slp::FunctionId::SrvRqst, xid, DEFAULT_LANG);
            header.flags = FLAG_MCAST;
            let msg = Message::new(
                header,
                Body::SrvRqst(indiss_slp::SrvRqst {
                    prlist: String::new(),
                    service_type: format!("service:{canonical}"),
                    scopes: inner.config.scopes.clone(),
                    predicate: String::new(),
                    spi: String::new(),
                }),
            );
            inner.pending.insert(
                xid,
                PendingQuery {
                    reply: reply.clone(),
                    urls: Vec::new(),
                    canonical_type: canonical,
                    awaiting_attrs: None,
                },
            );
            (xid, msg.encode().expect("request encodable"), inner.config.query_window)
        };
        let socket = self.inner.borrow().socket.clone();
        let _ = socket.send_to(&wire, SocketAddrV4::new(SLP_MULTICAST_GROUP, SLP_PORT));
        // Deadline: if the full process did not finish, fail the bridge.
        let this = self.clone();
        world.schedule_in(window + Duration::from_millis(5), move |_| {
            if let Some(pending) = this.inner.borrow_mut().pending.remove(&xid) {
                pending.reply.complete(EventStream::framed(vec![
                    Event::NetType(SdpProtocol::Slp),
                    Event::ServiceResponse,
                    Event::ResErr(404),
                ]));
            }
        });
    }

    fn compose_response(&self, world: &World, request: &EventStream, response: &EventStream) {
        if response.service_url().is_none() {
            return; // nothing found: multicast etiquette is silence
        }
        let Some(requester) = request.source_addr() else {
            return;
        };
        let Some((msg, slp_url)) = Self::build_srv_rply(request, response) else {
            return;
        };
        // Record attributes in the shared registry so follow-up
        // AttrRqsts can be answered.
        let registry = self.inner.borrow().registry.clone();
        registry.set_projection(
            SdpProtocol::Slp,
            &slp_url,
            Projection {
                attrs: response
                    .response_attrs()
                    .into_iter()
                    .map(|(t, v)| (t.to_owned(), v.to_owned()))
                    .collect(),
                ..Projection::default()
            },
        );
        let delay = self.inner.borrow().config.translation_delay;
        let socket = self.inner.borrow().socket.clone();
        world.schedule_in(delay, move |_| {
            if let Ok(wire) = msg.encode() {
                let _ = socket.send_to(&wire, requester);
            }
        });
    }

    fn compose_advert(&self, world: &World, advert: &EventStream) {
        // Translate a foreign alive-advertisement into an SLP SAAdvert
        // carrying the service URL + attributes (the passive-SLP listener
        // path of Fig. 6).
        let Some(url) = advert.service_url() else {
            return;
        };
        let Some(canonical) = advert.service_type() else {
            return;
        };
        if advert.is_byebye() {
            return; // SLP has no multicast byebye; registrations just expire
        }
        let slp_url = to_slp_url(canonical, url);
        let mut attrs = AttributeList::new().with("service-url", &slp_url);
        for (tag, value) in advert.response_attrs() {
            attrs.push(indiss_slp::Attribute::single(tag, value));
        }
        let (own_url, scopes, xid) = {
            let mut inner = self.inner.borrow_mut();
            let xid = inner.next_xid;
            inner.next_xid = inner.next_xid.wrapping_add(1).max(0x4000);
            (
                format!("service:service-agent://{}", inner.node.addr()),
                inner.config.scopes.clone(),
                xid,
            )
        };
        let msg = Message::new(
            Header::new(indiss_slp::FunctionId::SaAdvert, xid, DEFAULT_LANG),
            Body::SaAdvert(indiss_slp::SaAdvert { url: own_url, scopes, attrs: attrs.to_string() }),
        );
        let socket = self.inner.borrow().socket.clone();
        let delay = self.inner.borrow().config.translation_delay;
        world.schedule_in(delay, move |_| {
            if let Ok(wire) = msg.encode() {
                let _ = socket.send_to(&wire, SocketAddrV4::new(SLP_MULTICAST_GROUP, SLP_PORT));
            }
        });
    }

    fn own_sources(&self) -> Vec<SocketAddrV4> {
        self.inner.borrow().socket.local_addr().map(|a| vec![a]).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indiss_net::World;
    use indiss_slp::{Registration, ServiceAgent, SlpConfig};

    fn unit_world() -> (World, Node, SlpUnit) {
        let world = World::new(41);
        let node = world.add_node("indiss");
        let unit = SlpUnit::new(&node, SlpUnitConfig::default()).unwrap();
        (world, node, unit)
    }

    fn srv_rqst_datagram(service_type: &str, multicast: bool) -> Datagram {
        let mut header = Header::new(indiss_slp::FunctionId::SrvRqst, 0xBEEF, "en");
        if multicast {
            header.flags = FLAG_MCAST;
        }
        let msg = Message::new(
            header,
            Body::SrvRqst(indiss_slp::SrvRqst {
                prlist: String::new(),
                service_type: service_type.to_owned(),
                scopes: "DEFAULT".into(),
                predicate: "(location=home)".into(),
                spi: String::new(),
            }),
        );
        Datagram {
            src: "10.0.0.7:40001".parse().unwrap(),
            dst: if multicast {
                SocketAddrV4::new(SLP_MULTICAST_GROUP, SLP_PORT)
            } else {
                "10.0.0.1:427".parse().unwrap()
            },
            payload: msg.encode().unwrap(),
        }
    }

    /// The parser must produce the Fig. 4 step-1 event sequence.
    #[test]
    fn srv_rqst_parses_to_fig4_events() {
        let (world, _node, unit) = unit_world();
        let parsed = unit.parse(&world, &srv_rqst_datagram("service:clock", true));
        let ParsedMessage::Request(stream) = parsed else {
            panic!("expected request, got {parsed:?}");
        };
        assert_eq!(
            stream.names().collect::<Vec<_>>(),
            vec![
                "SDP_C_START",
                "SDP_NET_TYPE",
                "SDP_NET_MULTICAST",
                "SDP_NET_SOURCE_ADDR",
                "SDP_SERVICE_REQUEST",
                "SDP_REQ_VERSION",
                "SDP_REQ_SCOPE",
                "SDP_REQ_PREDICATE",
                "SDP_REQ_ID",
                "SDP_REQ_LANG",
                "SDP_SERVICE_TYPE",
                "SDP_C_STOP",
            ]
        );
        assert_eq!(stream.service_type(), Some("clock"));
    }

    #[test]
    fn infrastructure_requests_are_not_bridged() {
        let (world, _node, unit) = unit_world();
        let parsed = unit.parse(&world, &srv_rqst_datagram("service:directory-agent", true));
        assert_eq!(parsed, ParsedMessage::NotRelevant);
    }

    #[test]
    fn garbage_is_not_relevant() {
        let (world, _node, unit) = unit_world();
        let dgram = Datagram {
            src: "10.0.0.7:40001".parse().unwrap(),
            dst: "10.0.0.1:427".parse().unwrap(),
            payload: b"NOTIFY * HTTP/1.1\r\n\r\n".to_vec(),
        };
        assert_eq!(unit.parse(&world, &dgram), ParsedMessage::NotRelevant);
    }

    #[test]
    fn execute_query_drives_request_and_attr_fetch() {
        let (world, _node, unit) = unit_world();
        let service_node = world.add_node("printer");
        let sa = ServiceAgent::start(&service_node, SlpConfig::default()).unwrap();
        sa.register(
            Registration::new(
                "service:printer:lpr://10.0.0.9:515",
                AttributeList::parse("(ppm=12),(location=office)").unwrap(),
            )
            .unwrap(),
        );
        let request =
            EventStream::framed(vec![Event::ServiceRequest, Event::ServiceType("printer".into())]);
        let reply: Completion<EventStream> = Completion::new();
        unit.execute_query(&world, &request, reply.clone());
        world.run_for(Duration::from_secs(1));
        let response = reply.take().expect("query completed");
        assert!(response.is_response());
        assert_eq!(response.service_url(), Some("service:printer:lpr://10.0.0.9:515"));
        let attrs = response.response_attrs();
        assert!(attrs.contains(&("ppm", "12")), "attrs fetched via AttrRqst: {attrs:?}");
    }

    #[test]
    fn execute_query_times_out_to_error_stream() {
        let (world, _node, unit) = unit_world();
        let request = EventStream::framed(vec![
            Event::ServiceRequest,
            Event::ServiceType("nonexistent".into()),
        ]);
        let reply: Completion<EventStream> = Completion::new();
        unit.execute_query(&world, &request, reply.clone());
        world.run_for(Duration::from_secs(1));
        let response = reply.take().expect("deadline fired");
        assert!(response.events().iter().any(|e| matches!(e, Event::ResErr(_))));
    }

    #[test]
    fn compose_response_builds_fig4_srv_rply() {
        let (world, node, unit) = unit_world();
        let client_node = world.add_node("client");
        let listen = client_node.udp_bind(40001).unwrap();
        let got: Completion<Vec<u8>> = Completion::new();
        let got2 = got.clone();
        listen.on_receive(move |_, d| got2.complete(d.payload));

        let request = EventStream::framed(vec![
            Event::NetSourceAddr(SocketAddrV4::new(client_node.addr(), 40001)),
            Event::ServiceRequest,
            Event::SlpReqId(0xBEEF),
            Event::ReqLang("en".into()),
            Event::ServiceType("clock".into()),
        ]);
        let response = EventStream::framed(vec![
            Event::ServiceResponse,
            Event::ResOk,
            Event::ResTtl(1800),
            Event::ResServUrl("soap://10.0.0.2:4005/service/timer/control".into()),
            Event::ResAttr { tag: "friendlyName".into(), value: "CyberGarage Clock Device".into() },
        ]);
        unit.compose_response(&world, &request, &response);
        world.run_for(Duration::from_secs(1));
        let wire = got.take().expect("SrvRply delivered");
        let msg = Message::decode(&wire).unwrap();
        assert_eq!(msg.header.xid, 0xBEEF);
        match msg.body {
            Body::SrvRply(rply) => {
                assert_eq!(
                    rply.urls[0].url,
                    "service:clock:soap://10.0.0.2:4005/service/timer/control"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // Attributes recorded for follow-up AttrRqst answering.
        let attrs = unit
            .bridged_attributes("service:clock:soap://10.0.0.2:4005/service/timer/control")
            .unwrap();
        assert_eq!(attrs.get("friendlyName"), Some("CyberGarage Clock Device"));
        let _ = node;
    }

    #[test]
    fn empty_response_is_silent() {
        let (world, _node, unit) = unit_world();
        let client_node = world.add_node("client");
        let listen = client_node.udp_bind(40001).unwrap();
        let got: Completion<()> = Completion::new();
        let got2 = got.clone();
        listen.on_receive(move |_, _| got2.complete(()));
        let request = EventStream::framed(vec![
            Event::NetSourceAddr(SocketAddrV4::new(client_node.addr(), 40001)),
            Event::ServiceRequest,
            Event::ServiceType("clock".into()),
        ]);
        let response = EventStream::framed(vec![Event::ServiceResponse, Event::ResErr(404)]);
        unit.compose_response(&world, &request, &response);
        world.run_for(Duration::from_secs(1));
        assert!(!got.is_complete(), "no SrvRply for an empty result");
    }

    #[test]
    fn compose_advert_emits_sa_advert() {
        let (world, _node, unit) = unit_world();
        let listener_node = world.add_node("listener");
        let sock = listener_node.udp_bind(SLP_PORT).unwrap();
        sock.join_multicast(SLP_MULTICAST_GROUP).unwrap();
        let got: Completion<Vec<u8>> = Completion::new();
        let got2 = got.clone();
        sock.on_receive(move |_, d| got2.complete(d.payload));
        let advert = EventStream::framed(vec![
            Event::ServiceAlive,
            Event::ServiceType("clock".into()),
            Event::ResServUrl("soap://10.0.0.2:4005/ctl".into()),
            Event::ResAttr { tag: "friendlyName".into(), value: "Clock".into() },
        ]);
        unit.compose_advert(&world, &advert);
        world.run_for(Duration::from_secs(1));
        let msg = Message::decode(&got.take().expect("SAAdvert heard")).unwrap();
        match msg.body {
            Body::SaAdvert(sa) => {
                let attrs = AttributeList::parse(&sa.attrs).unwrap();
                assert_eq!(
                    attrs.get("service-url"),
                    Some("service:clock:soap://10.0.0.2:4005/ctl")
                );
                assert_eq!(attrs.get("friendlyName"), Some("Clock"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn slp_url_mapping() {
        assert_eq!(
            to_slp_url("clock", "soap://1.2.3.4:5/ctl"),
            "service:clock:soap://1.2.3.4:5/ctl"
        );
        assert_eq!(to_slp_url("clock", "1.2.3.4:5"), "service:clock://1.2.3.4:5");
        assert_eq!(to_slp_url("x", "service:x://h"), "service:x://h");
    }
}
