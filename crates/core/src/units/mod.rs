//! SDP units: coupled parser/composer pairs coordinated by an FSM
//! (paper §2.2–§2.3).
//!
//! A unit owns everything INDISS needs to speak one SDP: parsing native
//! messages into event streams, composing native messages from event
//! streams, and — because "the translation of SDP functions … is actually
//! achieved in terms of translation of *processes* and not simply of
//! exchanged messages" — driving multi-step native interactions (the UPnP
//! unit's recursive description fetch of §2.4 being the canonical case).

pub mod jini;
pub mod slp;
mod upnp;

pub use jini::{BridgeRequestFn, JiniUnit, JiniUnitConfig};
pub use slp::{SlpUnit, SlpUnitConfig};
pub use upnp::{UpnpUnit, UpnpUnitConfig};

use std::net::SocketAddrV4;

use indiss_net::{Completion, Datagram, World};

use crate::event::{EventStream, SdpProtocol, Symbol};
use crate::registry::ServiceRegistry;

/// Result of feeding a raw native message to a unit's parser.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedMessage {
    /// A service search request that may be bridged to other SDPs.
    Request(EventStream),
    /// A service advertisement (alive or byebye).
    Advert(EventStream),
    /// A response observed on the wire (useful for cache warming).
    Response(EventStream),
    /// The unit consumed the message internally (e.g. answered an
    /// attribute request for a bridged service) — nothing to bridge.
    Handled,
    /// Not this unit's business.
    NotRelevant,
}

/// A deployable SDP unit.
///
/// Object-safe: the runtime stores `Rc<dyn Unit>` and dispatches by
/// protocol. Implementations are [`SlpUnit`], [`UpnpUnit`], [`JiniUnit`].
pub trait Unit {
    /// The protocol this unit translates.
    fn protocol(&self) -> SdpProtocol;

    /// Attaches the runtime's shared [`ServiceRegistry`]. Units mint
    /// bridge projections (synthetic descriptions, attribute lists,
    /// service ids) into it instead of keeping private copies; a unit
    /// constructed standalone keeps its own registry until bound.
    fn bind_registry(&self, _registry: &ServiceRegistry) {}

    /// Parses one raw datagram (handed over by the monitor) into semantic
    /// events, per the unit's parser and FSM.
    fn parse(&self, world: &World, dgram: &Datagram) -> ParsedMessage;

    /// Executes this unit's *native* discovery process on behalf of a
    /// foreign request: composes native request(s), coordinates however
    /// many rounds the protocol needs, and completes `reply` with the
    /// response event stream (or an error stream on timeout).
    fn execute_query(&self, world: &World, request: &EventStream, reply: Completion<EventStream>);

    /// Composes and sends the native response to the original requester
    /// described by `request`, carrying the results in `response`.
    fn compose_response(&self, world: &World, request: &EventStream, response: &EventStream);

    /// Composes and multicasts a native advertisement equivalent to the
    /// foreign advertisement `advert` (used by the §4.2 active mode).
    fn compose_advert(&self, world: &World, advert: &EventStream);

    /// Completes `done` with an advert stream enriched to carry a service
    /// endpoint (`SDP_RES_SERV_URL`). The default passes the stream
    /// through; the UPnP unit overrides it to fetch the description
    /// document its `NOTIFY` advertisements merely point at — the same
    /// recursive process §2.4 uses on the query path.
    fn enrich_advert(&self, world: &World, advert: &EventStream, done: Completion<EventStream>) {
        let _ = world;
        done.complete(advert.clone());
    }

    /// Source addresses this unit sends from; the runtime registers them
    /// with the monitor's loop filter.
    fn own_sources(&self) -> Vec<SocketAddrV4>;
}

/// Extracts the canonical short type name (`clock`, `printer`) from a
/// protocol-specific service type string, interned for the pipeline.
pub(crate) fn canonical_type_from_slp(service_type: &str) -> Symbol {
    // "service:clock:soap" → "clock"; "service:clock" → "clock"; "clock" → "clock"
    let stripped = service_type.strip_prefix("service:").unwrap_or(service_type);
    Symbol::intern_lowercase(stripped.split(':').next().unwrap_or(stripped))
}

/// Extracts the canonical short type from an SSDP search target.
pub(crate) fn canonical_type_from_target(st: &indiss_ssdp::SearchTarget) -> Option<Symbol> {
    use indiss_ssdp::SearchTarget;
    match st {
        SearchTarget::DeviceType { name, .. } | SearchTarget::ServiceType { name, .. } => {
            Some(Symbol::intern_lowercase(name))
        }
        // The paper's own trace uses the vendor target `upnp:clock`.
        SearchTarget::Custom(s) => {
            Some(Symbol::intern_lowercase(s.strip_prefix("upnp:").unwrap_or(s)))
        }
        SearchTarget::All | SearchTarget::RootDevice | SearchTarget::Uuid(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indiss_ssdp::SearchTarget;

    #[test]
    fn slp_type_canonicalization() {
        assert_eq!(canonical_type_from_slp("service:clock"), "clock");
        assert_eq!(canonical_type_from_slp("service:clock:soap"), "clock");
        assert_eq!(canonical_type_from_slp("service:Printer:LPR"), "printer");
        assert_eq!(canonical_type_from_slp("clock"), "clock");
    }

    #[test]
    fn upnp_target_canonicalization() {
        assert_eq!(
            canonical_type_from_target(&SearchTarget::device_urn("Clock", 1)),
            Some("clock".into())
        );
        assert_eq!(
            canonical_type_from_target(&SearchTarget::service_urn("timer", 1)),
            Some("timer".into())
        );
        assert_eq!(
            canonical_type_from_target(&SearchTarget::Custom("upnp:clock".into())),
            Some("clock".into())
        );
        assert_eq!(canonical_type_from_target(&SearchTarget::All), None);
        assert_eq!(canonical_type_from_target(&SearchTarget::RootDevice), None);
    }
}
