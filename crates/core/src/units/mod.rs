//! SDP units: coupled parser/composer pairs coordinated by an FSM
//! (paper §2.2–§2.3).
//!
//! A unit owns everything INDISS needs to speak one SDP: parsing native
//! messages into event streams, composing native messages from event
//! streams, and — because "the translation of SDP functions … is actually
//! achieved in terms of translation of *processes* and not simply of
//! exchanged messages" — driving multi-step native interactions (the UPnP
//! unit's recursive description fetch of §2.4 being the canonical case).

pub mod descriptor;
pub mod jini;
pub mod slp;
pub(crate) mod upnp;

pub use descriptor::{
    DescriptorClient, DescriptorService, DescriptorUnit, SdpDescriptor, SdpDescriptorBuilder,
};
pub use jini::{BridgeRequestFn, JiniUnit, JiniUnitConfig};
pub use slp::{parse_slp_request, SlpUnit, SlpUnitConfig};
pub use upnp::{UpnpUnit, UpnpUnitConfig};

use std::net::SocketAddrV4;
use std::rc::Rc;

use indiss_net::{Completion, Datagram, Node, World};

use crate::error::CoreResult;
use crate::event::{EventStream, SdpProtocol, Symbol};
use crate::monitor::Monitor;
use crate::registry::ServiceRegistry;
use crate::runtime::BridgeHandle;

/// Result of feeding a raw native message to a unit's parser.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParsedMessage {
    /// A service search request that may be bridged to other SDPs.
    Request(EventStream),
    /// A service advertisement (alive or byebye).
    Advert(EventStream),
    /// A response observed on the wire (useful for cache warming).
    Response(EventStream),
    /// The unit consumed the message internally (e.g. answered an
    /// attribute request for a bridged service) — nothing to bridge.
    Handled,
    /// Not this unit's business.
    NotRelevant,
}

/// A deployable SDP unit.
///
/// Object-safe: the runtime stores `Rc<dyn Unit>` and dispatches by
/// protocol. Implementations are [`SlpUnit`], [`UpnpUnit`], [`JiniUnit`].
pub trait Unit {
    /// The protocol this unit translates.
    fn protocol(&self) -> SdpProtocol;

    /// Attaches the runtime's shared [`ServiceRegistry`]. Units mint
    /// bridge projections (synthetic descriptions, attribute lists,
    /// service ids) into it instead of keeping private copies; a unit
    /// constructed standalone keeps its own registry until bound.
    fn bind_registry(&self, _registry: &ServiceRegistry) {}

    /// Parses one raw datagram (handed over by the monitor) into semantic
    /// events, per the unit's parser and FSM.
    fn parse(&self, world: &World, dgram: &Datagram) -> ParsedMessage;

    /// Executes this unit's *native* discovery process on behalf of a
    /// foreign request: composes native request(s), coordinates however
    /// many rounds the protocol needs, and completes `reply` with the
    /// response event stream (or an error stream on timeout).
    fn execute_query(&self, world: &World, request: &EventStream, reply: Completion<EventStream>);

    /// Composes and sends the native response to the original requester
    /// described by `request`, carrying the results in `response`.
    fn compose_response(&self, world: &World, request: &EventStream, response: &EventStream);

    /// Composes and multicasts a native advertisement equivalent to the
    /// foreign advertisement `advert` (used by the §4.2 active mode).
    fn compose_advert(&self, world: &World, advert: &EventStream);

    /// Completes `done` with an advert stream enriched to carry a service
    /// endpoint (`SDP_RES_SERV_URL`). The default passes the stream
    /// through; the UPnP unit overrides it to fetch the description
    /// document its `NOTIFY` advertisements merely point at — the same
    /// recursive process §2.4 uses on the query path.
    fn enrich_advert(&self, world: &World, advert: &EventStream, done: Completion<EventStream>) {
        let _ = world;
        done.complete(advert.clone());
    }

    /// Source addresses this unit sends from; the runtime registers them
    /// with the monitor's loop filter.
    fn own_sources(&self) -> Vec<SocketAddrV4>;
}

/// Everything a [`UnitFactory`] may wire a freshly built unit to: the
/// node it deploys on, the shared registry, the monitor (loop
/// filtering), and a re-entry handle into the runtime's bridge.
///
/// Constructed by the runtime per instantiation; custom factories get
/// the same capabilities the built-in units use (the UPnP unit's dynamic
/// session sockets report to the loop filter, the Jini unit's registrar
/// endpoint feeds lookups back through the bridge).
pub struct UnitContext {
    pub(crate) node: Node,
    pub(crate) registry: ServiceRegistry,
    pub(crate) monitor: Monitor,
    pub(crate) bridge: BridgeHandle,
}

impl UnitContext {
    /// The node the unit deploys on.
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// The runtime's shared service registry.
    pub fn registry(&self) -> &ServiceRegistry {
        &self.registry
    }

    /// The runtime's monitor (e.g. for [`Monitor::ignore_source`] on
    /// dynamically opened sockets).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// A handle for feeding parsed streams back into the runtime's
    /// bridge — the hook units with their own listening endpoints use.
    pub fn bridge(&self) -> &BridgeHandle {
        &self.bridge
    }
}

/// Builds a [`Unit`] for one protocol — the open counterpart of the old
/// closed `match` over unit kinds in the runtime.
///
/// Object-safe: [`crate::IndissConfig`] carries factories (directly via
/// [`crate::UnitSpec::Custom`], or implied by the built-in and
/// descriptor specs) and the runtime instantiates through this trait
/// alone, so adding an SDP never touches `runtime.rs` again.
pub trait UnitFactory {
    /// The protocol the built unit will translate.
    fn protocol(&self) -> SdpProtocol;

    /// Builds (and wires) the unit.
    ///
    /// # Errors
    ///
    /// Typically network errors from socket binds.
    fn build(&self, ctx: &UnitContext) -> CoreResult<Rc<dyn Unit>>;
}

pub(crate) struct SlpFactory(pub(crate) SlpUnitConfig);

impl UnitFactory for SlpFactory {
    fn protocol(&self) -> SdpProtocol {
        SdpProtocol::Slp
    }

    fn build(&self, ctx: &UnitContext) -> CoreResult<Rc<dyn Unit>> {
        Ok(Rc::new(SlpUnit::new(ctx.node(), self.0.clone())?))
    }
}

pub(crate) struct UpnpFactory(pub(crate) UpnpUnitConfig);

impl UnitFactory for UpnpFactory {
    fn protocol(&self) -> SdpProtocol {
        SdpProtocol::Upnp
    }

    fn build(&self, ctx: &UnitContext) -> CoreResult<Rc<dyn Unit>> {
        let unit = UpnpUnit::new(ctx.node(), self.0.clone())?;
        // Session sockets open dynamically; have each report to the
        // monitor's loop filter.
        let monitor = ctx.monitor().clone();
        unit.set_loop_filter(Rc::new(move |addr| monitor.ignore_source(addr)));
        Ok(Rc::new(unit))
    }
}

pub(crate) struct JiniFactory(pub(crate) JiniUnitConfig);

impl UnitFactory for JiniFactory {
    fn protocol(&self) -> SdpProtocol {
        SdpProtocol::Jini
    }

    fn build(&self, ctx: &UnitContext) -> CoreResult<Rc<dyn Unit>> {
        let unit = JiniUnit::new(ctx.node(), self.0.clone())?;
        // Lookups arriving at the unit's registrar endpoint feed back
        // into the runtime.
        let bridge = ctx.bridge().clone();
        unit.set_bridge(Rc::new(move |world, stream, reply| {
            if stream.is_request() {
                bridge.bridge_request(world, SdpProtocol::Jini, stream, Some(reply));
            } else if stream.is_alive() || stream.is_byebye() {
                bridge.record_advert(world, SdpProtocol::Jini, stream);
            }
        }));
        Ok(Rc::new(unit))
    }
}

pub(crate) struct DescriptorFactory(pub(crate) SdpDescriptor);

impl UnitFactory for DescriptorFactory {
    fn protocol(&self) -> SdpProtocol {
        self.0.protocol()
    }

    fn build(&self, ctx: &UnitContext) -> CoreResult<Rc<dyn Unit>> {
        Ok(Rc::new(DescriptorUnit::new(ctx.node(), self.0.clone())?))
    }
}

/// Extracts the canonical short type name (`clock`, `printer`) from a
/// protocol-specific service type string, interned for the pipeline.
pub(crate) fn canonical_type_from_slp(service_type: &str) -> Symbol {
    // "service:clock:soap" → "clock"; "service:clock" → "clock"; "clock" → "clock"
    let stripped = service_type.strip_prefix("service:").unwrap_or(service_type);
    Symbol::intern_lowercase(stripped.split(':').next().unwrap_or(stripped))
}

/// Extracts the canonical short type from an SSDP search target.
pub(crate) fn canonical_type_from_target(st: &indiss_ssdp::SearchTarget) -> Option<Symbol> {
    use indiss_ssdp::SearchTarget;
    match st {
        SearchTarget::DeviceType { name, .. } | SearchTarget::ServiceType { name, .. } => {
            Some(Symbol::intern_lowercase(name))
        }
        // The paper's own trace uses the vendor target `upnp:clock`.
        SearchTarget::Custom(s) => {
            Some(Symbol::intern_lowercase(s.strip_prefix("upnp:").unwrap_or(s)))
        }
        SearchTarget::All | SearchTarget::RootDevice | SearchTarget::Uuid(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indiss_ssdp::SearchTarget;

    #[test]
    fn slp_type_canonicalization() {
        assert_eq!(canonical_type_from_slp("service:clock"), "clock");
        assert_eq!(canonical_type_from_slp("service:clock:soap"), "clock");
        assert_eq!(canonical_type_from_slp("service:Printer:LPR"), "printer");
        assert_eq!(canonical_type_from_slp("clock"), "clock");
    }

    #[test]
    fn upnp_target_canonicalization() {
        assert_eq!(
            canonical_type_from_target(&SearchTarget::device_urn("Clock", 1)),
            Some("clock".into())
        );
        assert_eq!(
            canonical_type_from_target(&SearchTarget::service_urn("timer", 1)),
            Some("timer".into())
        );
        assert_eq!(
            canonical_type_from_target(&SearchTarget::Custom("upnp:clock".into())),
            Some("clock".into())
        );
        assert_eq!(canonical_type_from_target(&SearchTarget::All), None);
        assert_eq!(canonical_type_from_target(&SearchTarget::RootDevice), None);
    }
}
