//! Indexed storage for the registry: a slab of records with O(1)
//! secondary indexes, plus the intrusive LRU machinery shared by the
//! record store and the bounded response cache.
//!
//! Determinism note: all iteration surfaces (per-type lists, full
//! snapshots) follow slab/insertion order, never `HashMap` order, so a
//! seeded simulation replays identically.

use std::collections::HashMap;
use std::hash::Hash;

use crate::event::{SdpProtocol, Symbol};
use crate::registry::record::ServiceRecord;

/// Intrusive doubly-linked recency list over slab slots: O(1) touch,
/// push and tail eviction.
#[derive(Debug, Default)]
pub(crate) struct LruList {
    links: Vec<(usize, usize)>, // (prev, next) per slot; NIL-terminated
    head: usize,                // most recently used
    tail: usize,                // least recently used
}

const NIL: usize = usize::MAX;

impl LruList {
    pub(crate) fn new() -> LruList {
        LruList { links: Vec::new(), head: NIL, tail: NIL }
    }

    fn ensure(&mut self, slot: usize) {
        if slot >= self.links.len() {
            self.links.resize(slot + 1, (NIL, NIL));
        }
    }

    /// Inserts `slot` as most recently used.
    pub(crate) fn push_front(&mut self, slot: usize) {
        self.ensure(slot);
        self.links[slot] = (NIL, self.head);
        if self.head != NIL {
            self.links[self.head].0 = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Unlinks `slot` from the list.
    pub(crate) fn unlink(&mut self, slot: usize) {
        let (prev, next) = self.links[slot];
        if prev != NIL {
            self.links[prev].1 = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.links[next].0 = prev;
        } else {
            self.tail = prev;
        }
        self.links[slot] = (NIL, NIL);
    }

    /// Marks `slot` as most recently used.
    pub(crate) fn touch(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    /// The least recently used slot, if any.
    pub(crate) fn tail(&self) -> Option<usize> {
        (self.tail != NIL).then_some(self.tail)
    }
}

/// What happened to capacity when a record was inserted.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum InsertOutcome {
    /// A brand-new record was stored.
    Inserted,
    /// An existing record for the same (origin, key) was refreshed.
    Refreshed,
    /// A new record was stored and the least-recently-updated one was
    /// evicted to make room.
    Evicted(Box<ServiceRecord>),
}

/// The slab-backed record store with secondary indexes.
///
/// Primary identity is `(origin protocol, key)`; secondary indexes cover
/// canonical type, origin protocol and endpoint, each giving O(1) lookup
/// (amortized; type buckets are insertion-ordered vectors). All string
/// identities are interned [`Symbol`]s: inserting or looking up a record
/// hashes one machine word and clones nothing.
#[derive(Debug, Default)]
pub(crate) struct RecordStore {
    slots: Vec<Option<ServiceRecord>>,
    generations: Vec<u64>,
    free: Vec<usize>,
    capacity: usize,
    by_key: HashMap<(SdpProtocol, Symbol), usize>,
    by_type: HashMap<Symbol, Vec<usize>>,
    by_origin: HashMap<SdpProtocol, Vec<usize>>,
    /// Bucketed like `by_type`: several protocols may advertise the
    /// same endpoint concurrently.
    by_endpoint: HashMap<Symbol, Vec<usize>>,
    lru: LruList,
    len: usize,
}

impl RecordStore {
    /// An empty store bounded at `capacity` records (minimum 1).
    pub(crate) fn new(capacity: usize) -> RecordStore {
        RecordStore { capacity: capacity.max(1), lru: LruList::new(), ..RecordStore::default() }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The generation counter of `slot` (bumped whenever the slot's
    /// occupant changes or is refreshed, so stale expiry-wheel entries can
    /// be recognized).
    pub(crate) fn generation(&self, slot: usize) -> u64 {
        self.generations.get(slot).copied().unwrap_or(0)
    }

    pub(crate) fn get_slot(&self, slot: usize) -> Option<&ServiceRecord> {
        self.slots.get(slot).and_then(Option::as_ref)
    }

    /// Inserts or refreshes a record; at capacity, evicts the least
    /// recently updated record first. Returns what happened plus the slot
    /// the record now occupies.
    pub(crate) fn upsert(&mut self, record: ServiceRecord) -> (usize, InsertOutcome) {
        let ident = (record.origin(), record.key_symbol());
        if let Some(&slot) = self.by_key.get(&ident) {
            let old = self.slots[slot].take().expect("indexed slot occupied");
            self.unindex_secondary(&old, slot);
            let mut merged = old;
            merged.refresh_from(record);
            self.index_secondary(&merged, slot);
            self.slots[slot] = Some(merged);
            self.generations[slot] += 1;
            self.lru.touch(slot);
            return (slot, InsertOutcome::Refreshed);
        }

        let evicted = if self.len >= self.capacity {
            let victim = self.lru.tail().expect("non-empty store at capacity");
            Some(Box::new(self.remove_slot(victim).expect("tail slot occupied")))
        } else {
            None
        };

        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                self.generations.push(0);
                self.slots.len() - 1
            }
        };
        self.by_key.insert(ident, slot);
        self.index_secondary(&record, slot);
        self.slots[slot] = Some(record);
        self.generations[slot] += 1;
        self.lru.push_front(slot);
        self.len += 1;
        match evicted {
            Some(old) => (slot, InsertOutcome::Evicted(old)),
            None => (slot, InsertOutcome::Inserted),
        }
    }

    /// Removes the record identified by `(origin, key)`.
    pub(crate) fn remove(&mut self, origin: SdpProtocol, key: Symbol) -> Option<ServiceRecord> {
        let slot = *self.by_key.get(&(origin, key))?;
        self.remove_slot(slot)
    }

    /// Removes whatever occupies `slot`.
    pub(crate) fn remove_slot(&mut self, slot: usize) -> Option<ServiceRecord> {
        let record = self.slots.get_mut(slot)?.take()?;
        self.generations[slot] += 1;
        self.by_key.remove(&(record.origin(), record.key_symbol()));
        self.unindex_secondary(&record, slot);
        self.lru.unlink(slot);
        self.free.push(slot);
        self.len -= 1;
        Some(record)
    }

    pub(crate) fn get(&self, origin: SdpProtocol, key: Symbol) -> Option<&ServiceRecord> {
        let slot = *self.by_key.get(&(origin, key))?;
        self.get_slot(slot)
    }

    /// Records of one canonical type, in insertion order.
    pub(crate) fn of_type(&self, canonical_type: Symbol) -> impl Iterator<Item = &ServiceRecord> {
        self.by_type
            .get(&canonical_type)
            .into_iter()
            .flatten()
            .filter_map(|&slot| self.get_slot(slot))
    }

    /// Records announced by one protocol, in insertion order.
    pub(crate) fn of_origin(&self, origin: SdpProtocol) -> impl Iterator<Item = &ServiceRecord> {
        self.by_origin.get(&origin).into_iter().flatten().filter_map(|&slot| self.get_slot(slot))
    }

    /// Records advertising `endpoint`, in insertion order.
    pub(crate) fn by_endpoint(&self, endpoint: Symbol) -> impl Iterator<Item = &ServiceRecord> {
        self.by_endpoint
            .get(&endpoint)
            .into_iter()
            .flatten()
            .filter_map(|&slot| self.get_slot(slot))
    }

    /// All records, in slab order (deterministic).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (usize, &ServiceRecord)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|r| (i, r)))
    }

    fn index_secondary(&mut self, record: &ServiceRecord, slot: usize) {
        self.by_type.entry(record.canonical_type_symbol()).or_default().push(slot);
        self.by_origin.entry(record.origin()).or_default().push(slot);
        if let Some(endpoint) = record.endpoint_symbol() {
            self.by_endpoint.entry(endpoint).or_default().push(slot);
        }
    }

    fn unindex_secondary(&mut self, record: &ServiceRecord, slot: usize) {
        if let Some(bucket) = self.by_type.get_mut(&record.canonical_type_symbol()) {
            bucket.retain(|&s| s != slot);
            if bucket.is_empty() {
                self.by_type.remove(&record.canonical_type_symbol());
            }
        }
        if let Some(bucket) = self.by_origin.get_mut(&record.origin()) {
            bucket.retain(|&s| s != slot);
            if bucket.is_empty() {
                self.by_origin.remove(&record.origin());
            }
        }
        if let Some(endpoint) = record.endpoint_symbol() {
            if let Some(bucket) = self.by_endpoint.get_mut(&endpoint) {
                bucket.retain(|&s| s != slot);
                if bucket.is_empty() {
                    self.by_endpoint.remove(&endpoint);
                }
            }
        }
    }
}

/// A bounded LRU map used for the response cache and the per-protocol
/// bridge projections. Eviction is strictly least-recently-*used*: both
/// hits and inserts refresh recency.
#[derive(Debug)]
pub(crate) struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slots: Vec<Option<(K, V)>>,
    generations: Vec<u64>,
    free: Vec<usize>,
    lru: LruList,
    len: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    pub(crate) fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            slots: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            lru: LruList::new(),
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn generation(&self, slot: usize) -> u64 {
        self.generations.get(slot).copied().unwrap_or(0)
    }

    /// Inserts `value` under `key`; returns the evicted entry, if the
    /// cache was full, along with the slot used.
    pub(crate) fn insert(&mut self, key: K, value: V) -> (usize, Option<(K, V)>) {
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot] = Some((key, value));
            self.generations[slot] += 1;
            self.lru.touch(slot);
            return (slot, None);
        }
        let evicted = if self.len >= self.capacity {
            let victim = self.lru.tail().expect("non-empty cache at capacity");
            self.remove_slot(victim)
        } else {
            None
        };
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                self.generations.push(0);
                self.slots.len() - 1
            }
        };
        self.map.insert(key.clone(), slot);
        self.slots[slot] = Some((key, value));
        self.generations[slot] += 1;
        self.lru.push_front(slot);
        self.len += 1;
        (slot, evicted)
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub(crate) fn get(&mut self, key: &K) -> Option<&V> {
        let slot = *self.map.get(key)?;
        self.lru.touch(slot);
        self.slots[slot].as_ref().map(|(_, v)| v)
    }

    /// Looks `key` up without touching recency.
    pub(crate) fn peek(&self, key: &K) -> Option<&V> {
        let slot = *self.map.get(key)?;
        self.slots[slot].as_ref().map(|(_, v)| v)
    }

    pub(crate) fn remove(&mut self, key: &K) -> Option<(K, V)> {
        let slot = *self.map.get(key)?;
        self.remove_slot(slot)
    }

    pub(crate) fn remove_slot(&mut self, slot: usize) -> Option<(K, V)> {
        let entry = self.slots.get_mut(slot)?.take()?;
        self.generations[slot] += 1;
        self.map.remove(&entry.0);
        self.lru.unlink(slot);
        self.free.push(slot);
        self.len -= 1;
        Some(entry)
    }

    /// All entries, in slab order (deterministic).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|(k, v)| (k, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventStream};
    use indiss_net::SimTime;

    fn record(ty: &str, origin: SdpProtocol, url: &str) -> ServiceRecord {
        let stream = EventStream::framed(vec![
            Event::ServiceAlive,
            Event::ServiceType(ty.into()),
            Event::ResServUrl(url.into()),
        ]);
        ServiceRecord::from_advert(origin, &stream, SimTime::ZERO, None).unwrap()
    }

    #[test]
    fn upsert_indexes_all_dimensions() {
        let mut store = RecordStore::new(8);
        store.upsert(record("clock", SdpProtocol::Slp, "slp://a"));
        store.upsert(record("clock", SdpProtocol::Upnp, "soap://b"));
        store.upsert(record("printer", SdpProtocol::Slp, "lpr://c"));
        assert_eq!(store.len(), 3);
        assert_eq!(store.of_type("clock".into()).count(), 2);
        assert_eq!(store.of_origin(SdpProtocol::Slp).count(), 2);
        assert_eq!(store.by_endpoint("soap://b".into()).next().unwrap().canonical_type(), "clock");
        assert!(store.get(SdpProtocol::Slp, "slp://a".into()).is_some());
    }

    /// Two protocols advertising the same endpoint: both are indexed, and
    /// removing one leaves the other reachable.
    #[test]
    fn shared_endpoint_survives_removal_of_one_record() {
        let mut store = RecordStore::new(8);
        store.upsert(record("clock", SdpProtocol::Slp, "soap://shared"));
        store.upsert(record("clock", SdpProtocol::Jini, "soap://shared"));
        assert_eq!(store.by_endpoint("soap://shared".into()).count(), 2);
        store.remove(SdpProtocol::Jini, "soap://shared".into()).unwrap();
        let survivors: Vec<_> = store.by_endpoint("soap://shared".into()).collect();
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].origin(), SdpProtocol::Slp);
    }

    #[test]
    fn refresh_replaces_in_place() {
        let mut store = RecordStore::new(8);
        let (slot, outcome) = store.upsert(record("clock", SdpProtocol::Slp, "slp://a"));
        assert_eq!(outcome, InsertOutcome::Inserted);
        let gen_before = store.generation(slot);
        let (slot2, outcome2) = store.upsert(record("clock", SdpProtocol::Slp, "slp://a"));
        assert_eq!(slot, slot2);
        assert_eq!(outcome2, InsertOutcome::Refreshed);
        assert!(store.generation(slot) > gen_before);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn capacity_evicts_least_recently_updated() {
        let mut store = RecordStore::new(2);
        store.upsert(record("a", SdpProtocol::Slp, "u://a"));
        store.upsert(record("b", SdpProtocol::Slp, "u://b"));
        // Refresh "a" so "b" becomes the eviction victim.
        store.upsert(record("a", SdpProtocol::Slp, "u://a"));
        let (_, outcome) = store.upsert(record("c", SdpProtocol::Slp, "u://c"));
        let InsertOutcome::Evicted(victim) = outcome else {
            panic!("expected eviction, got {outcome:?}");
        };
        assert_eq!(victim.canonical_type(), "b");
        assert_eq!(store.len(), 2);
        assert!(store.get(SdpProtocol::Slp, "u://b".into()).is_none());
        assert_eq!(store.by_endpoint("u://b".into()).count(), 0);
    }

    #[test]
    fn remove_clears_every_index() {
        let mut store = RecordStore::new(4);
        store.upsert(record("clock", SdpProtocol::Jini, "jini://x"));
        let removed = store.remove(SdpProtocol::Jini, "jini://x".into()).unwrap();
        assert_eq!(removed.canonical_type(), "clock");
        assert_eq!(store.len(), 0);
        assert_eq!(store.of_type("clock".into()).count(), 0);
        assert_eq!(store.of_origin(SdpProtocol::Jini).count(), 0);
        assert_eq!(store.by_endpoint("jini://x".into()).count(), 0);
        // The freed slot is reused.
        let (slot, _) = store.upsert(record("printer", SdpProtocol::Slp, "u://p"));
        assert_eq!(slot, 0);
    }

    #[test]
    fn lru_cache_hits_refresh_recency() {
        let mut cache: LruCache<String, u32> = LruCache::new(2);
        cache.insert("a".into(), 1);
        cache.insert("b".into(), 2);
        assert_eq!(cache.get(&"a".into()), Some(&1)); // a is now most recent
        let (_, evicted) = cache.insert("c".into(), 3);
        assert_eq!(evicted, Some(("b".into(), 2)));
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(&"a".into()).is_some());
    }

    #[test]
    fn lru_list_handles_single_element() {
        let mut lru = LruList::new();
        lru.push_front(0);
        assert_eq!(lru.tail(), Some(0));
        lru.touch(0);
        assert_eq!(lru.tail(), Some(0));
        lru.unlink(0);
        assert_eq!(lru.tail(), None);
    }
}
