//! Deterministic TTL expiry for the registry.
//!
//! A min-heap of `(deadline, target, generation)` entries ("the wheel").
//! Entries are never removed eagerly; instead every mutation of a slot
//! bumps its generation, and stale wheel entries are skipped when popped.
//! Combined with lazy expiry checks on the read paths, this gives exact
//! TTL semantics that are a pure function of `SimTime` — the net
//! simulator's determinism is preserved because the runtime drives sweeps
//! from scheduled virtual-time timers, never from wall clocks.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use indiss_net::SimTime;

/// What a wheel entry points at.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Target {
    /// A record slot in the advert store.
    Advert { slot: usize, generation: u64 },
    /// A response-cache slot.
    Cache { slot: usize, generation: u64 },
    /// A negative-cache ("nothing found") slot.
    Negative { slot: usize, generation: u64 },
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Deadline {
    at: SimTime,
    target: Target,
}

/// The expiry wheel.
#[derive(Debug, Default)]
pub(crate) struct ExpiryWheel {
    heap: BinaryHeap<Reverse<Deadline>>,
}

impl ExpiryWheel {
    pub(crate) fn new() -> ExpiryWheel {
        ExpiryWheel { heap: BinaryHeap::new() }
    }

    /// Arms a deadline for `target`.
    pub(crate) fn arm(&mut self, at: SimTime, target: Target) {
        self.heap.push(Reverse(Deadline { at, target }));
    }

    /// The earliest armed deadline that is still current according to
    /// `is_current`; stale heads are discarded along the way.
    pub(crate) fn next_deadline<F>(&mut self, is_current: F) -> Option<SimTime>
    where
        F: Fn(&Target) -> bool,
    {
        while let Some(Reverse(head)) = self.heap.peek() {
            if is_current(&head.target) {
                return Some(head.at);
            }
            self.heap.pop();
        }
        None
    }

    /// Pops every entry due at or before `now` (stale or not; callers
    /// validate generations before acting).
    pub(crate) fn pop_due(&mut self, now: SimTime) -> Vec<Target> {
        let mut due = Vec::new();
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.at > now {
                break;
            }
            due.push(self.heap.pop().expect("peeked").0.target);
        }
        due
    }

    /// Number of armed (possibly stale) entries.
    pub(crate) fn armed(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_order() {
        let mut wheel = ExpiryWheel::new();
        wheel.arm(SimTime::from_secs(3), Target::Advert { slot: 3, generation: 1 });
        wheel.arm(SimTime::from_secs(1), Target::Advert { slot: 1, generation: 1 });
        wheel.arm(SimTime::from_secs(2), Target::Cache { slot: 2, generation: 1 });
        let due = wheel.pop_due(SimTime::from_secs(2));
        assert_eq!(
            due,
            vec![
                Target::Advert { slot: 1, generation: 1 },
                Target::Cache { slot: 2, generation: 1 },
            ]
        );
        assert_eq!(wheel.armed(), 1);
        assert_eq!(wheel.pop_due(SimTime::from_secs(10)).len(), 1);
    }

    #[test]
    fn next_deadline_skips_stale_entries() {
        let mut wheel = ExpiryWheel::new();
        wheel.arm(SimTime::from_secs(1), Target::Advert { slot: 0, generation: 1 });
        wheel.arm(SimTime::from_secs(5), Target::Advert { slot: 1, generation: 1 });
        // Slot 0's generation moved on: its entry is stale.
        let next = wheel.next_deadline(|t| matches!(t, Target::Advert { slot: 1, .. }));
        assert_eq!(next, Some(SimTime::from_secs(5)));
        assert_eq!(wheel.armed(), 1, "stale head discarded");
    }

    #[test]
    fn empty_wheel_has_no_deadline() {
        let mut wheel = ExpiryWheel::new();
        assert_eq!(wheel.next_deadline(|_| true), None);
        assert!(wheel.pop_due(SimTime::from_secs(100)).is_empty());
    }
}
