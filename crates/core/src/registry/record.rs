//! The canonical service record: one discovered service, normalized from
//! whatever SDP announced or answered it.

use std::time::Duration;

use indiss_net::SimTime;

use crate::event::{Event, EventStream, SdpProtocol, Symbol};

/// Identity of a peer gateway in the federated mesh (its peer-channel
/// UDP port, which doubles as the mesh-wide address through the
/// transport seam).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub u16);

impl std::fmt::Display for PeerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peer:{}", self.0)
    }
}

/// Where the registry learned a record: from SDP traffic on this
/// gateway's own segment, or pulled from a peer gateway during mesh
/// gossip. Remote records answer warm requests from the local cache
/// without re-fanning-out, and statistics distinguish the two.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum RecordOrigin {
    /// Learned from SDP traffic on the local segment.
    #[default]
    Local,
    /// Pulled from the given peer gateway during anti-entropy gossip.
    Remote(PeerId),
}

impl RecordOrigin {
    /// True when the record was learned from a mesh peer.
    pub fn is_remote(&self) -> bool {
        matches!(self, RecordOrigin::Remote(_))
    }
}

/// One discovered service, as the registry stores it.
///
/// A record is built from an advertisement (or response) event stream and
/// keeps the normalized fields every SDP understands — canonical type,
/// endpoint, attributes, TTL — plus the original stream so composers can
/// re-emit protocol-specific events (USNs, leases, …) faithfully.
///
/// Identity fields are interned [`Symbol`]s, so inserting a record never
/// clones type or key strings and the store's secondary indexes hash one
/// machine word; the advert stream itself is a shared buffer, so keeping
/// it costs a reference count, not a copy.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRecord {
    canonical_type: Symbol,
    origin: SdpProtocol,
    key: Symbol,
    endpoint: Option<Symbol>,
    attrs: Vec<(String, String)>,
    advert: EventStream,
    provenance: RecordOrigin,
    registered_at: SimTime,
    refreshed_at: SimTime,
    expires_at: Option<SimTime>,
}

impl ServiceRecord {
    /// Builds a record from an alive advertisement stream.
    ///
    /// Returns `None` when the stream carries no identity at all (no USN,
    /// URL or type — nothing to key on). The record's TTL is the stream's
    /// `SDP_RES_TTL` when present, `default_ttl` otherwise; `None` for
    /// `default_ttl` makes untimed adverts immortal.
    pub fn from_advert(
        origin: SdpProtocol,
        stream: &EventStream,
        now: SimTime,
        default_ttl: Option<Duration>,
    ) -> Option<ServiceRecord> {
        let key = advert_key(stream)?;
        let ttl = stream
            .events()
            .iter()
            .find_map(|e| match e {
                Event::ResTtl(t) => Some(Duration::from_secs(u64::from(*t))),
                _ => None,
            })
            .or(default_ttl);
        Some(ServiceRecord {
            canonical_type: stream.service_type_symbol().unwrap_or_else(|| Symbol::intern("")),
            origin,
            key,
            endpoint: stream.service_url().map(Symbol::intern),
            attrs: stream
                .response_attrs()
                .into_iter()
                .map(|(t, v)| (t.to_owned(), v.to_owned()))
                .collect(),
            advert: stream.clone(),
            provenance: RecordOrigin::Local,
            registered_at: now,
            refreshed_at: now,
            expires_at: ttl.map(|t| now.saturating_add(t)),
        })
    }

    /// The canonical short type name (`clock`, `printer`).
    pub fn canonical_type(&self) -> &str {
        self.canonical_type.as_str()
    }

    /// The canonical type as an interned symbol (index key).
    pub fn canonical_type_symbol(&self) -> Symbol {
        self.canonical_type.clone()
    }

    /// Which protocol announced the service.
    pub fn origin(&self) -> SdpProtocol {
        self.origin
    }

    /// The protocol-scoped identity the record is keyed by (USN, service
    /// URL or canonical type, in that preference order).
    pub fn key(&self) -> &str {
        self.key.as_str()
    }

    /// The record key as an interned symbol (index key).
    pub fn key_symbol(&self) -> Symbol {
        self.key.clone()
    }

    /// The service endpoint URL, when the advert carried one.
    pub fn endpoint(&self) -> Option<&str> {
        self.endpoint.as_ref().map(Symbol::as_str)
    }

    /// The endpoint as an interned symbol (index key).
    pub fn endpoint_symbol(&self) -> Option<Symbol> {
        self.endpoint.clone()
    }

    /// Attributes carried by the advert.
    pub fn attrs(&self) -> &[(String, String)] {
        &self.attrs
    }

    /// The original advert stream (for re-advertising into other SDPs).
    pub fn advert(&self) -> &EventStream {
        &self.advert
    }

    /// Where the registry learned this record: locally observed SDP
    /// traffic, or a mesh peer during gossip.
    pub fn provenance(&self) -> RecordOrigin {
        self.provenance
    }

    /// Stamps where the record was learned (the mesh's pull-apply path
    /// marks records it lands with [`RecordOrigin::Remote`]).
    pub fn set_provenance(&mut self, provenance: RecordOrigin) {
        self.provenance = provenance;
    }

    /// When the record was first registered.
    pub fn registered_at(&self) -> SimTime {
        self.registered_at
    }

    /// When the record was last refreshed by a new advert.
    pub fn refreshed_at(&self) -> SimTime {
        self.refreshed_at
    }

    /// The expiry deadline, when the record has one.
    pub fn expires_at(&self) -> Option<SimTime> {
        self.expires_at
    }

    /// True once the record's TTL has elapsed.
    pub fn is_expired(&self, now: SimTime) -> bool {
        self.expires_at.is_some_and(|at| at <= now)
    }

    /// Refreshes this record in place from a newer advert of the same
    /// service, carrying the original registration time over.
    pub fn refresh_from(&mut self, newer: ServiceRecord) {
        let registered_at = self.registered_at;
        *self = newer;
        self.registered_at = registered_at;
    }
}

/// Extracts the identity an advert stream is keyed by: the UPnP USN when
/// present (it survives description fetches), else the service URL, else
/// the canonical type. The USN and type are already interned in the
/// event; only a URL key pays an interning lookup.
pub fn advert_key(stream: &EventStream) -> Option<Symbol> {
    stream
        .events()
        .iter()
        .find_map(|e| match e {
            Event::UpnpUsn(u) => Some(u.clone()),
            _ => None,
        })
        .or_else(|| stream.service_url().map(Symbol::intern))
        .or_else(|| stream.service_type_symbol())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alive(ttl: Option<u32>) -> EventStream {
        let mut body = vec![
            Event::ServiceAlive,
            Event::ServiceType("clock".into()),
            Event::ResServUrl("soap://10.0.0.2:4005/ctl".into()),
            Event::ResAttr { tag: "friendlyName".into(), value: "Clock".into() },
        ];
        if let Some(t) = ttl {
            body.push(Event::ResTtl(t));
        }
        EventStream::framed(body)
    }

    #[test]
    fn record_normalizes_advert_fields() {
        let now = SimTime::from_secs(5);
        let r = ServiceRecord::from_advert(SdpProtocol::Slp, &alive(Some(60)), now, None)
            .expect("keyed");
        assert_eq!(r.canonical_type(), "clock");
        assert_eq!(r.origin(), SdpProtocol::Slp);
        assert_eq!(r.key(), "soap://10.0.0.2:4005/ctl");
        assert_eq!(r.endpoint(), Some("soap://10.0.0.2:4005/ctl"));
        assert_eq!(r.attrs(), &[("friendlyName".to_owned(), "Clock".to_owned())]);
        assert_eq!(r.expires_at(), Some(SimTime::from_secs(65)));
        assert!(!r.is_expired(SimTime::from_secs(64)));
        assert!(r.is_expired(SimTime::from_secs(65)));
    }

    #[test]
    fn record_shares_the_advert_buffer() {
        let stream = alive(Some(60));
        let r = ServiceRecord::from_advert(SdpProtocol::Slp, &stream, SimTime::ZERO, None)
            .expect("keyed");
        assert!(r.advert().shares_buffer(&stream), "no deep copy on insert");
    }

    #[test]
    fn usn_wins_as_key() {
        let stream = EventStream::framed(vec![
            Event::ServiceAlive,
            Event::ServiceType("clock".into()),
            Event::UpnpUsn("uuid:abc::urn:x".into()),
            Event::ResServUrl("soap://h/ctl".into()),
        ]);
        assert_eq!(advert_key(&stream).as_ref().map(Symbol::as_str), Some("uuid:abc::urn:x"));
    }

    #[test]
    fn default_ttl_applies_when_stream_has_none() {
        let now = SimTime::ZERO;
        let with_default = ServiceRecord::from_advert(
            SdpProtocol::Upnp,
            &alive(None),
            now,
            Some(Duration::from_secs(10)),
        )
        .unwrap();
        assert_eq!(with_default.expires_at(), Some(SimTime::from_secs(10)));
        let immortal =
            ServiceRecord::from_advert(SdpProtocol::Upnp, &alive(None), now, None).unwrap();
        assert_eq!(immortal.expires_at(), None);
        assert!(!immortal.is_expired(SimTime::from_secs(1_000_000)));
    }

    #[test]
    fn keyless_stream_yields_no_record() {
        let stream = EventStream::framed(vec![Event::ServiceAlive]);
        assert!(
            ServiceRecord::from_advert(SdpProtocol::Jini, &stream, SimTime::ZERO, None).is_none()
        );
    }

    #[test]
    fn provenance_defaults_local_and_is_stampable() {
        let mut r = ServiceRecord::from_advert(SdpProtocol::Slp, &alive(None), SimTime::ZERO, None)
            .expect("keyed");
        assert_eq!(r.provenance(), RecordOrigin::Local);
        assert!(!r.provenance().is_remote());
        r.set_provenance(RecordOrigin::Remote(PeerId(7101)));
        assert_eq!(r.provenance(), RecordOrigin::Remote(PeerId(7101)));
        assert!(r.provenance().is_remote());
    }

    #[test]
    fn refresh_preserves_registration_time() {
        let t0 = SimTime::from_secs(1);
        let t1 = SimTime::from_secs(9);
        let mut r =
            ServiceRecord::from_advert(SdpProtocol::Slp, &alive(Some(5)), t0, None).unwrap();
        let newer =
            ServiceRecord::from_advert(SdpProtocol::Slp, &alive(Some(5)), t1, None).unwrap();
        r.refresh_from(newer);
        assert_eq!(r.registered_at(), t0);
        assert_eq!(r.refreshed_at(), t1);
        assert_eq!(r.expires_at(), Some(SimTime::from_secs(14)));
    }
}
