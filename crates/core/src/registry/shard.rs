//! One independently locked slice of the sharded registry.
//!
//! A [`Shard`] owns every store for the canonical types that hash to it:
//! records, the response cache, the negative cache with its by-type
//! invalidation index, projections, the suppression map, the expiry
//! wheel and a private [`RegistryStats`] block. The public
//! [`crate::ServiceRegistry`] routes each call to exactly one shard (or
//! folds over all of them, one lock at a time), so this module is the
//! unit of concurrency the multi-threaded runtime scales across.

use std::collections::HashMap;

use indiss_net::SimTime;

use crate::event::{EventStream, SdpProtocol, Symbol};
use crate::gateway::WarmDecision;
use crate::registry::epoch::{ShardSnapshot, SnapEntry, SuppressCell};
use crate::registry::expiry::{ExpiryWheel, Target};
use crate::registry::index::{LruCache, RecordStore};
use crate::registry::{Projection, RegistryConfig, RegistryStats, ServiceRegistry, SweepReport};
use std::sync::atomic::Ordering;
use std::sync::{Arc, MutexGuard};

#[derive(Debug, Clone)]
pub(crate) struct CachedResponse {
    pub(crate) response: EventStream,
    pub(crate) expires: SimTime,
    /// True when the response was synthesized from knowledge pulled
    /// from a mesh peer: hits on it count as remote cache hits, and the
    /// entry is kept off the lock-free snapshot so that accounting
    /// stays exact (see [`Shard::build_snapshot`]).
    pub(crate) remote: bool,
}

/// Merge-on-read for the per-shard counter blocks: the aggregate
/// [`crate::ServiceRegistry::stats`] view folds shards with this.
impl RegistryStats {
    pub(crate) fn merge(&mut self, other: &RegistryStats) {
        self.cache_hits += other.cache_hits;
        self.remote_cache_hits += other.remote_cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.cache_expired += other.cache_expired;
        self.negative_hits += other.negative_hits;
        self.negative_stored += other.negative_stored;
        self.records_inserted += other.records_inserted;
        self.records_refreshed += other.records_refreshed;
        self.records_evicted += other.records_evicted;
        self.records_expired += other.records_expired;
        self.records_removed += other.records_removed;
    }
}

/// One independently locked slice of the registry: everything keyed by
/// the canonical types that hash here.
pub(crate) struct Shard {
    pub(crate) store: RecordStore,
    pub(crate) cache: LruCache<Symbol, CachedResponse>,
    /// "Nothing found" outcomes keyed by (requesting protocol,
    /// canonical type); the value is the entry's expiry deadline. The
    /// origin is part of the key because the fan-out set depends on it:
    /// a miss observed from one protocol says nothing about a fan-out
    /// that would include that protocol's own unit.
    pub(crate) negative: LruCache<(SdpProtocol, Symbol), SimTime>,
    /// Secondary index over `negative`: which origins hold a "nothing
    /// found" memory for each type. Advert-driven invalidation walks
    /// exactly the matching entries instead of scanning the store.
    pub(crate) negative_by_type: HashMap<Symbol, Vec<SdpProtocol>>,
    pub(crate) projections: LruCache<(SdpProtocol, Symbol), Projection>,
    /// Per-canonical-type suppression deadline (multi-bridge loop
    /// guard). The deadline lives in a shared atomic cell
    /// ([`SuppressCell`], nanoseconds) because published snapshots
    /// clone the cell: a lock-free cache hit re-arms the same window
    /// the locked path reads.
    pub(crate) suppress: HashMap<Symbol, SuppressCell>,
    pub(crate) wheel: ExpiryWheel,
    pub(crate) stats: RegistryStats,
    /// Monotone content version of the shard's *record store*: bumped
    /// exactly once per record mutation (insert, refresh, capacity
    /// eviction, byebye removal, TTL expiry). Mesh digests are built
    /// from these counters alone, so computing a digest never walks the
    /// store on the hot path.
    pub(crate) content_version: u64,
}

impl Shard {
    pub(crate) fn new(config: &RegistryConfig, shard_count: usize) -> Shard {
        let per = |total: usize| total.div_ceil(shard_count).max(1);
        Shard {
            store: RecordStore::new(per(config.advert_capacity)),
            cache: LruCache::new(per(config.cache_capacity)),
            negative: LruCache::new(per(config.cache_capacity)),
            negative_by_type: HashMap::new(),
            projections: LruCache::new(per(config.advert_capacity)),
            suppress: HashMap::new(),
            wheel: ExpiryWheel::new(),
            stats: RegistryStats::default(),
            content_version: 0,
        }
    }

    fn target_is_current(&self, target: &Target) -> bool {
        match *target {
            Target::Advert { slot, generation } => self.store.generation(slot) == generation,
            Target::Cache { slot, generation } => self.cache.generation(slot) == generation,
            Target::Negative { slot, generation } => self.negative.generation(slot) == generation,
        }
    }

    /// Records that `origin` now holds a negative entry for `key`'s type.
    pub(crate) fn index_negative(&mut self, origin: SdpProtocol, canonical_type: Symbol) {
        let origins = self.negative_by_type.entry(canonical_type).or_default();
        if !origins.contains(&origin) {
            origins.push(origin);
        }
    }

    /// Drops `origin` from the type index (entry gone from the store).
    pub(crate) fn unindex_negative(&mut self, origin: SdpProtocol, canonical_type: &Symbol) {
        if let Some(origins) = self.negative_by_type.get_mut(canonical_type) {
            origins.retain(|o| *o != origin);
            if origins.is_empty() {
                self.negative_by_type.remove(canonical_type);
            }
        }
    }

    pub(crate) fn sweep(&mut self, now: SimTime) -> SweepReport {
        let mut report = SweepReport::default();
        for target in self.wheel.pop_due(now) {
            if !self.target_is_current(&target) {
                continue; // refreshed or replaced since arming
            }
            match target {
                Target::Advert { slot, .. } => {
                    if self.store.get_slot(slot).is_some_and(|r| r.is_expired(now))
                        && self.store.remove_slot(slot).is_some()
                    {
                        report.records_expired += 1;
                        self.content_version += 1;
                    }
                }
                Target::Cache { slot, .. } => {
                    // A current generation means the entry is exactly the
                    // one this deadline was armed for, so it is due.
                    if self.cache.remove_slot(slot).is_some() {
                        report.cache_expired += 1;
                    }
                }
                Target::Negative { slot, .. } => {
                    if let Some(((origin, ty), _)) = self.negative.remove_slot(slot) {
                        self.unindex_negative(origin, &ty);
                        report.negative_expired += 1;
                    }
                }
            }
        }
        let now_nanos = now.as_nanos();
        self.suppress.retain(|_, until| until.load(Ordering::Relaxed) > now_nanos);
        self.stats.records_expired += report.records_expired;
        self.stats.cache_expired += report.cache_expired;
        report
    }

    /// Arms (or re-arms) the suppression window for `ty` until `until`,
    /// reusing the type's shared cell so published snapshots stay wired
    /// to it.
    pub(crate) fn arm_suppression(&mut self, ty: Symbol, until: SimTime) {
        self.suppress.entry(ty).or_default().store(until.as_nanos(), Ordering::Relaxed);
    }

    /// True while `ty` is inside its suppression window at `now`.
    pub(crate) fn suppression_active_at(&self, ty: &Symbol, now: SimTime) -> bool {
        self.suppress.get(ty).is_some_and(|until| until.load(Ordering::Relaxed) > now.as_nanos())
    }

    /// Builds the immutable snapshot the epoch pointer publishes: every
    /// cached response plus its type's suppression cell (created here
    /// if the type was never suppressed, so a lock-free hit always has
    /// a cell to arm). Remote-attributed entries are deliberately left
    /// out: a remote hit must take the locked path so the per-shard
    /// `remote_cache_hits` counter stays exact (the fast path only has
    /// one atomic, folded into plain `cache_hits`).
    pub(crate) fn build_snapshot(&mut self) -> ShardSnapshot {
        let Shard { cache, suppress, .. } = self;
        let mut snapshot = HashMap::with_capacity(cache.len());
        for (key, entry) in cache.iter().filter(|(_, entry)| !entry.remote) {
            let cell = Arc::clone(suppress.entry(key.clone()).or_default());
            snapshot.insert(
                key.clone(),
                SnapEntry {
                    response: entry.response.clone(),
                    expires: entry.expires,
                    suppress: cell,
                },
            );
        }
        ShardSnapshot { cache: snapshot }
    }

    /// Drops any "nothing found" memory for `canonical_type` (for every
    /// requesting protocol, dynamic ones included) — called whenever
    /// positive knowledge (an advert or response) arrives, so a service
    /// appearing right after a miss becomes visible immediately. The
    /// type index makes this O(matching entries), independent of how
    /// many other types the negative store remembers.
    pub(crate) fn clear_negative(&mut self, canonical_type: &Symbol) {
        let Some(origins) = self.negative_by_type.remove(canonical_type) else {
            return;
        };
        for origin in origins {
            self.negative.remove(&(origin, canonical_type.clone()));
        }
    }

    pub(crate) fn next_deadline(&mut self) -> Option<SimTime> {
        let Shard { wheel, store, cache, negative, .. } = self;
        wheel.next_deadline(|target| match *target {
            Target::Advert { slot, generation } => store.generation(slot) == generation,
            Target::Cache { slot, generation } => cache.generation(slot) == generation,
            Target::Negative { slot, generation } => negative.generation(slot) == generation,
        })
    }
}

/// Shard routing: the half of [`ServiceRegistry`] that knows requests
/// are served by independently locked shards. Lock discipline: at most
/// one shard lock is ever held, and fold-style aggregates take them in
/// ascending index order.
impl ServiceRegistry {
    /// Number of independently locked shards.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// The shard index all state keyed by `canonical_type` lives on.
    pub fn shard_of(&self, canonical_type: impl Into<Symbol>) -> usize {
        self.shard_index(&canonical_type.into())
    }

    /// Live (non-expired accounting is lazy; this counts stored) records
    /// on one shard — the observability hook the shard-routing tests and
    /// per-shard dashboards use.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn shard_record_count(&self, shard: usize) -> usize {
        self.lock_shard(shard).store.len()
    }

    /// Counter snapshot of one shard (the aggregate view is
    /// [`ServiceRegistry::stats`]). Cache hits served by the shard's
    /// lock-free snapshot path are folded into `cache_hits`.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn shard_stats(&self, shard: usize) -> RegistryStats {
        let mut stats = self.lock_shard(shard).stats;
        stats.cache_hits += self.shared.epochs[shard].fast_hits.load(Ordering::Relaxed);
        stats
    }

    pub(crate) fn shard_index(&self, sym: &Symbol) -> usize {
        if self.shared.shards.len() == 1 {
            return 0;
        }
        // Stable FNV-1a over the type name. Routing must be a pure
        // function of the record's contents — not of interner
        // allocation addresses or a per-instance random key — so that
        // same-seed scenario replays batch identically and federated
        // peers agree on which shard a record lives in.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in sym.as_str().as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h as usize % self.shared.shards.len()
    }

    pub(crate) fn lock_shard(&self, idx: usize) -> MutexGuard<'_, Shard> {
        self.shared.shards[idx].lock().expect("registry shard poisoned")
    }

    pub(crate) fn shard_for(&self, sym: &Symbol) -> MutexGuard<'_, Shard> {
        self.lock_shard(self.shard_index(sym))
    }

    /// Locks shards one at a time, in ascending index order (never
    /// nested), folding `f` over each.
    pub(crate) fn fold_shards<T>(&self, mut acc: T, mut f: impl FnMut(&mut T, &mut Shard)) -> T {
        for idx in 0..self.shared.shards.len() {
            f(&mut acc, &mut self.lock_shard(idx));
        }
        acc
    }
}

/// The warm path under one lock: cache, negative cache and suppression
/// are consulted — and the suppression window armed — in a single
/// acquisition of the type's shard, so the decision is atomic (two
/// workers racing the same type cannot both slip past the suppression
/// check) and the hot path pays one lock round trip instead of four.
impl ServiceRegistry {
    /// Classifies a request for `canonical_type` exactly as the
    /// sequential `cached_response` → `cached_negative` →
    /// `suppression_active` → `mark_bridged` calls would, including
    /// every counter side effect, but atomically. `None` for the type
    /// always bridges (there is nothing to cache or suppress by).
    ///
    /// A fresh cache hit is first attempted **lock-free** against the
    /// shard's epoch-published snapshot (see [`crate::registry::epoch`]):
    /// same decision, same counter total, same suppression re-arm, zero
    /// lock acquisitions. Everything else — misses, expired entries,
    /// negative hits, suppression decisions — falls through to the
    /// locked path below, whose semantics are unchanged.
    pub(crate) fn warm_path(
        &self,
        origin: SdpProtocol,
        canonical_type: Option<Symbol>,
        now: SimTime,
        enable_cache: bool,
        suppress_until: SimTime,
    ) -> WarmDecision {
        let Some(ty) = canonical_type else {
            return WarmDecision::Bridge;
        };
        let idx = self.shard_index(&ty);
        if enable_cache {
            if let Some(hit) =
                self.shared.epochs[idx].try_fast_hit(self.shared.id, idx, &ty, now, suppress_until)
            {
                return hit;
            }
        }
        let mut shard = self.lock_shard(idx);
        if enable_cache {
            match shard.cache.get(&ty) {
                Some(entry) if entry.expires > now => {
                    let response = entry.response.clone();
                    let remote = entry.remote;
                    shard.stats.cache_hits += 1;
                    if remote {
                        shard.stats.remote_cache_hits += 1;
                    }
                    // A cache-answered request still (re-)arms the
                    // window: the answer we just sent is about to echo.
                    shard.arm_suppression(ty, suppress_until);
                    return WarmDecision::CacheHit(response);
                }
                Some(_) => {
                    shard.cache.remove(&ty);
                    shard.stats.cache_expired += 1;
                    shard.stats.cache_misses += 1;
                }
                None => shard.stats.cache_misses += 1,
            }
            let negative_key = (origin, ty.clone());
            match shard.negative.get(&negative_key) {
                Some(expires) if *expires > now => {
                    shard.stats.negative_hits += 1;
                    return WarmDecision::NegativeHit;
                }
                Some(_) => {
                    shard.negative.remove(&negative_key);
                    shard.unindex_negative(origin, &ty);
                }
                None => {}
            }
        }
        if shard.suppression_active_at(&ty, now) {
            return WarmDecision::Suppressed;
        }
        shard.arm_suppression(ty, suppress_until);
        WarmDecision::Bridge
    }
}
