//! Epoch-published shard snapshots: the zero-lock warm-hit read path.
//!
//! The locked [`super::shard::Shard`] remains the single source of
//! truth; this module makes the *read-mostly* fraction of the warm path
//! lock-free. Every shard owns an [`EpochPtr`] — a hand-rolled
//! `ArcSwap`: writers rebuild an immutable [`ShardSnapshot`] of the
//! response cache **while still holding the shard lock** (so snapshots
//! publish in mutation order) and store it behind a monotonically
//! increasing epoch counter. Readers do one atomic epoch load; when it
//! matches their thread-local copy they upgrade a cached [`Weak`] and
//! serve the hit with **zero lock acquisitions** — an atomic load, a
//! refcount bump, a hash lookup, and two relaxed atomic stores (the
//! hit counter and the suppression re-arm). Only when the epoch moved
//! (a write happened) does a reader briefly take the publish mutex to
//! refresh its thread-local copy.
//!
//! Reads are never torn: a snapshot is immutable once published, so a
//! concurrent reader observes the registry exactly as it was before or
//! after a write, never mid-write. The thread-local cache holds `Weak`
//! references precisely so it cannot extend a snapshot's lifetime —
//! when a writer publishes epoch *n+1*, epoch *n*'s buffers (and their
//! interned symbols) free as soon as in-flight readers finish.
//!
//! Semantics relative to the locked path (documented divergences):
//!
//! * **Counters are exact**: fast hits count into [`EpochPtr`]'s atomic
//!   and are folded into [`super::RegistryStats::cache_hits`] on read.
//! * **Suppression re-arms exactly**: cache entries snapshot a shared
//!   [`SuppressCell`] (an atomic deadline) that the locked path reads
//!   through the same `Arc`, so a fast hit arms the same window the
//!   locked hit would.
//! * **LRU recency is *not* refreshed** by a fast hit — the one
//!   observable relaxation. A type answered purely from snapshots can
//!   be evicted as if it were idle. Re-warming (which every miss path
//!   does) restores recency; the deterministic sim tests that pin LRU
//!   order run under capacity and are unaffected.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use indiss_net::SimTime;

use crate::event::{EventStream, Symbol};
use crate::gateway::WarmDecision;

/// Shared suppression deadline for one canonical type, in [`SimTime`]
/// nanoseconds (`0` = never armed). Lives in the shard's suppression
/// map *and* in every snapshot entry for the type, so lock-free hits
/// and locked decisions re-arm one cell.
pub(crate) type SuppressCell = Arc<AtomicU64>;

/// One response-cache entry as the snapshot saw it.
pub(crate) struct SnapEntry {
    pub(crate) response: EventStream,
    pub(crate) expires: SimTime,
    pub(crate) suppress: SuppressCell,
}

/// Immutable copy of one shard's response cache at publish time.
/// Response buffers are shared (`EventStream` clones are refcount
/// bumps), so building one is O(entries), not O(bytes).
#[derive(Default)]
pub(crate) struct ShardSnapshot {
    pub(crate) cache: HashMap<Symbol, SnapEntry>,
}

/// Registry identities for the thread-local snapshot cache: a global
/// counter, never reused, so a dead registry's cache slots can never
/// alias a new registry's (no ABA via recycled addresses).
static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_registry_id() -> u64 {
    NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed)
}

/// `(registry id, shard) → (epoch, snapshot)` slots for [`SNAP_CACHE`].
type SnapCacheMap = HashMap<(u64, usize), (u64, Weak<ShardSnapshot>)>;

thread_local! {
    /// Per-thread `(registry id, shard) → (epoch, snapshot)` cache.
    /// `Weak`, so this cache never keeps a superseded snapshot (or a
    /// dropped registry's interned symbols) alive.
    static SNAP_CACHE: RefCell<SnapCacheMap> = RefCell::new(HashMap::new());
}

/// Bound on the thread-local cache: far above any realistic
/// `registries × shards` working set; hitting it clears stale slots.
const SNAP_CACHE_MAX: usize = 512;

/// One shard's publish point. See the module docs for the protocol.
pub(crate) struct EpochPtr {
    /// Bumped on every publish; readers compare against their cached
    /// epoch before touching anything else.
    epoch: AtomicU64,
    /// The current `(epoch, snapshot)` pair. A leaf lock: taken by
    /// writers already holding their shard lock, and by readers only
    /// on an epoch change. Never held while acquiring any other lock.
    current: Mutex<(u64, Arc<ShardSnapshot>)>,
    /// Cache hits served lock-free; folded into the shard's
    /// `cache_hits` on every stats read.
    pub(crate) fast_hits: AtomicU64,
}

impl EpochPtr {
    pub(crate) fn new() -> EpochPtr {
        EpochPtr {
            epoch: AtomicU64::new(1),
            current: Mutex::new((1, Arc::new(ShardSnapshot::default()))),
            fast_hits: AtomicU64::new(0),
        }
    }

    /// Publishes a freshly built snapshot. Callers hold the shard lock,
    /// which serializes publishes into mutation order; the epoch store
    /// is `Release` so a reader that observes the new epoch also
    /// observes the new snapshot behind the mutex.
    pub(crate) fn publish(&self, snapshot: ShardSnapshot) {
        let mut current = self.current.lock().expect("epoch slot poisoned");
        let next = current.0 + 1;
        *current = (next, Arc::new(snapshot));
        self.epoch.store(next, Ordering::Release);
    }

    /// The lock-free warm-hit attempt: `Some(CacheHit)` when the
    /// current snapshot holds a live entry for `ty` (counting the hit
    /// and re-arming suppression exactly as the locked path would);
    /// `None` means "fall back to the locked path" — a miss, an
    /// expired snapshot entry, or caching disabled upstream.
    pub(crate) fn try_fast_hit(
        &self,
        registry_id: u64,
        shard_idx: usize,
        ty: &Symbol,
        now: SimTime,
        suppress_until: SimTime,
    ) -> Option<WarmDecision> {
        let snapshot = self.load(registry_id, shard_idx)?;
        let entry = snapshot.cache.get(ty)?;
        if entry.expires <= now {
            return None; // lazily expired: let the locked path reap it
        }
        entry.suppress.store(suppress_until.as_nanos(), Ordering::Relaxed);
        self.fast_hits.fetch_add(1, Ordering::Relaxed);
        Some(WarmDecision::CacheHit(entry.response.clone()))
    }

    /// Current snapshot via the thread-local cache; takes the publish
    /// mutex only when the epoch moved since this thread last looked.
    fn load(&self, registry_id: u64, shard_idx: usize) -> Option<Arc<ShardSnapshot>> {
        let epoch = self.epoch.load(Ordering::Acquire);
        let key = (registry_id, shard_idx);
        let cached = SNAP_CACHE.with(|cache| {
            cache
                .borrow()
                .get(&key)
                .filter(|(seen, _)| *seen == epoch)
                .and_then(|(_, weak)| weak.upgrade())
        });
        if let Some(snapshot) = cached {
            return Some(snapshot);
        }
        let (fresh_epoch, snapshot) = {
            let current = self.current.lock().ok()?;
            (current.0, Arc::clone(&current.1))
        };
        SNAP_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if cache.len() >= SNAP_CACHE_MAX {
                cache.clear();
            }
            cache.insert(key, (fresh_epoch, Arc::downgrade(&snapshot)));
        });
        Some(snapshot)
    }
}
