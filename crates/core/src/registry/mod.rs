//! The service registry: the single source of truth for everything INDISS
//! knows about discovered services (paper §2.2/§4.3 — answering bridged
//! requests from "already-held knowledge").
//!
//! One [`ServiceRegistry`] instance sits behind the runtime and all units
//! and unifies what the first prototype scattered across ad-hoc maps:
//!
//! * **service records** ([`ServiceRecord`]) built from advertisements,
//!   indexed by `(origin protocol, identity)` with secondary indexes by
//!   canonical type, origin protocol and endpoint — O(1) lookups instead
//!   of stringly-keyed scans;
//! * a **bounded LRU response cache** for the paper's warm best case
//!   (§4.3, ~0.1 ms answers), with hit/miss/eviction/expiry counters
//!   surfaced through [`crate::BridgeStats`];
//! * a **negative cache** of "nothing found" outcomes per canonical
//!   type, with a short TTL, so request storms for absent types stop
//!   fanning out to every unit — indexed by type, so an arriving advert
//!   invalidates in O(matching entries);
//! * the **suppression window** that breaks multi-bridge translation
//!   ping-pong;
//! * per-protocol **bridge projections** ([`Projection`]) — the synthetic
//!   artifacts composers mint for foreign services (a UPnP description
//!   URL + USN, SLP attribute lists, Jini service ids) so every unit
//!   shares one view instead of private copies.
//!
//! # Sharding and concurrency
//!
//! The registry is split into [`RegistryConfig::shards`] independently
//! locked shards, routed by canonical-type hash: each shard owns its own
//! record store, response cache, negative cache, projections,
//! suppression map, expiry wheel and [`RegistryStats`]. Requests for
//! disjoint canonical types therefore proceed in parallel with no
//! cross-shard coordination on the warm path — the property the
//! multi-threaded runtime's worker pool exploits. `ServiceRegistry` is a
//! cheap `Arc` handle and is `Send + Sync`; cross-shard views (full
//! snapshots, aggregate counts, [`ServiceRegistry::stats`]) lock shards
//! one at a time in ascending index order and merge on read, so there is
//! never a nested lock and never a lost update. The default of one shard
//! preserves the exact single-store semantics (including global LRU
//! order) that the deterministic simulation tests pin down.
//!
//! Every type- and identity-keyed map is keyed on interned [`Symbol`]s,
//! so the hot lookups hash one machine word, and cached event streams
//! are shared buffers — answering from the cache is a reference-count
//! bump, not a deep copy.
//!
//! All stores are capacity-bounded (bounds split evenly across shards)
//! and TTL-bounded. Expiry is exact and deterministic: deadlines live on
//! a per-shard [`expiry`] wheel keyed by [`SimTime`], reads apply lazy
//! expiry checks, and the runtime schedules virtual-time sweep timers at
//! the earliest deadline across shards, so a seeded simulation replays
//! identically and memory stays bounded under churn.

pub(crate) mod epoch;
mod expiry;
mod index;
mod record;
mod shard;

pub use record::{PeerId, RecordOrigin, ServiceRecord};

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use indiss_net::SimTime;

use crate::event::{Event, EventStream, SdpProtocol, Symbol};
use epoch::EpochPtr;
use expiry::Target;
use index::InsertOutcome;
use shard::{CachedResponse, Shard};

/// Capacity and TTL knobs for the registry.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryConfig {
    /// Maximum number of service records held (least-recently-updated
    /// records are evicted beyond this; split evenly across shards).
    pub advert_capacity: usize,
    /// Maximum number of cached responses (LRU eviction beyond this;
    /// split evenly across shards).
    pub cache_capacity: usize,
    /// How long cached responses stay valid.
    pub cache_ttl: Duration,
    /// TTL applied to adverts that do not carry their own `SDP_RES_TTL`;
    /// `None` keeps such records until evicted.
    pub default_advert_ttl: Option<Duration>,
    /// How long a "nothing found" outcome is remembered per canonical
    /// type. Kept short: a service appearing right after a miss must not
    /// stay invisible for long (arriving adverts also invalidate the
    /// entry eagerly).
    pub negative_ttl: Duration,
    /// Number of independently locked shards the stores are split into,
    /// routed by canonical-type hash. One shard (the default) preserves
    /// global LRU semantics exactly; more shards let a worker pool serve
    /// disjoint types in parallel.
    pub shards: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            advert_capacity: 4096,
            cache_capacity: 256,
            cache_ttl: Duration::from_secs(60),
            default_advert_ttl: Some(Duration::from_secs(1800)),
            negative_ttl: Duration::from_secs(2),
            shards: 1,
        }
    }
}

/// Counters the registry maintains; folded into [`crate::BridgeStats`].
/// Maintained per shard and merged on read by
/// [`ServiceRegistry::stats`], so concurrent workers never contend on
/// (or lose) a shared counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Cache lookups answered from a live entry.
    pub cache_hits: u64,
    /// Of those hits, how many were served from responses learned from
    /// a mesh peer ([`ServiceRegistry::warm_remote`]) rather than from
    /// this gateway's own bridged traffic.
    pub remote_cache_hits: u64,
    /// Cache lookups that found nothing usable.
    pub cache_misses: u64,
    /// Cache entries evicted by the LRU capacity bound.
    pub cache_evictions: u64,
    /// Cache entries dropped because their TTL elapsed.
    pub cache_expired: u64,
    /// Lookups answered by the negative cache ("nothing found" without a
    /// fan-out).
    pub negative_hits: u64,
    /// Negative-cache entries stored.
    pub negative_stored: u64,
    /// Service records newly inserted.
    pub records_inserted: u64,
    /// Service records refreshed by a newer advert.
    pub records_refreshed: u64,
    /// Service records evicted by the capacity bound.
    pub records_evicted: u64,
    /// Service records dropped because their TTL elapsed.
    pub records_expired: u64,
    /// Service records removed by byebye advertisements.
    pub records_removed: u64,
}

/// What [`ServiceRegistry::record_advert`] did with a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvertDisposition {
    /// A new record was stored.
    Recorded,
    /// An existing record was refreshed.
    Refreshed,
    /// A byebye removed the record.
    Removed,
    /// A byebye for a service with no live record (already expired or
    /// evicted); nothing to remove, but the retraction itself is still
    /// meaningful to forward.
    NotPresent,
    /// The stream carried no usable identity; nothing stored.
    Ignored,
}

/// What [`ServiceRegistry::record_remote`] did with a record pulled
/// from a mesh peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteDisposition {
    /// A new record was stored with remote provenance.
    Applied,
    /// An existing record was refreshed (the pulled copy was newer).
    Refreshed,
    /// An equivalent live record already exists; nothing changed and
    /// the shard's content version did not advance (this is what stops
    /// two peers from bumping each other's versions forever).
    Stale,
    /// The record carried no usable identity; nothing stored.
    Ignored,
}

/// Slack [`ServiceRegistry::record_remote`]'s equivalence check grants
/// a rebuilt expiry. The mesh wire carries remaining TTL in whole
/// seconds rounded *up* (so a record never dies early in transit),
/// which means a receiver re-deriving `now + ttl` can land up to one
/// second past the sender's true expiry without carrying any news.
/// Treating that window as covered is what lets anti-entropy reach its
/// digest/ack fixpoint on fractional-second round times; a genuine
/// refresh extends a record by its full TTL, far beyond this slack.
const REMOTE_EXPIRY_SLACK: Duration = Duration::from_secs(1);

/// Synthetic artifacts a unit minted for a bridged foreign service,
/// shared through the registry so every layer sees one copy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Projection {
    /// Description-document URL served for the service (UPnP).
    pub location: Option<String>,
    /// Unique service name advertised for the service (UPnP).
    pub usn: Option<String>,
    /// The synthetic description document itself (UPnP); served over
    /// HTTP straight from the projection, so its lifetime is bounded by
    /// the projection store instead of an ever-growing side map.
    pub document: Option<String>,
    /// Attribute list recorded for follow-up attribute queries (SLP).
    pub attrs: Vec<(String, String)>,
    /// Stable service id minted for the service (Jini).
    pub service_id: Option<u64>,
}

/// Report of one expiry sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Service records dropped by this sweep.
    pub records_expired: u64,
    /// Cache entries dropped by this sweep.
    pub cache_expired: u64,
    /// Negative-cache entries dropped by this sweep.
    pub negative_expired: u64,
}

pub(super) struct RegistryShared {
    pub(super) config: RegistryConfig,
    /// Process-unique identity (see [`epoch::next_registry_id`]) keying
    /// the per-thread snapshot caches of the lock-free read path.
    pub(super) id: u64,
    pub(super) shards: Box<[Mutex<Shard>]>,
    /// One epoch-published snapshot per shard (same indexing as
    /// `shards`): the lock-free warm-hit read path. Writers republish
    /// under the matching shard lock; see [`epoch`].
    pub(super) epochs: Box<[EpochPtr]>,
}

/// Handle to the shared registry. Cloning is cheap and refers to the
/// same store; the handle is `Send + Sync`, so runtime workers on
/// different threads operate on the same registry concurrently (each
/// canonical type's state lives behind exactly one shard lock).
#[derive(Clone)]
pub struct ServiceRegistry {
    pub(super) shared: Arc<RegistryShared>,
}

impl ServiceRegistry {
    /// Creates an empty registry with the given bounds.
    pub fn new(config: RegistryConfig) -> ServiceRegistry {
        let shard_count = config.shards.max(1);
        let shards: Box<[Mutex<Shard>]> =
            (0..shard_count).map(|_| Mutex::new(Shard::new(&config, shard_count))).collect();
        let epochs: Box<[EpochPtr]> = (0..shard_count).map(|_| EpochPtr::new()).collect();
        ServiceRegistry {
            shared: Arc::new(RegistryShared {
                config,
                id: epoch::next_registry_id(),
                shards,
                epochs,
            }),
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> RegistryConfig {
        self.shared.config.clone()
    }

    // ------------------------------------------------------------------
    // Advert records
    // ------------------------------------------------------------------

    /// Records an advertisement stream: alive adverts insert or refresh a
    /// [`ServiceRecord`]; byebyes remove it. A stored alive advert also
    /// invalidates any negative-cache entry for its type.
    pub fn record_advert(
        &self,
        origin: SdpProtocol,
        stream: &EventStream,
        now: SimTime,
    ) -> AdvertDisposition {
        let Some(key) = record::advert_key(stream) else {
            return AdvertDisposition::Ignored;
        };
        if stream.is_byebye() {
            // Records live on the shard of their canonical type; a
            // byebye normally carries the type, so the home shard is hit
            // first, with a cross-shard fallback for retractions that
            // only carry an identity.
            let home = self.shard_index(&stream.service_type_symbol().unwrap_or_default());
            let others = (0..self.shared.shards.len()).filter(|i| *i != home);
            for idx in std::iter::once(home).chain(others) {
                let mut shard = self.lock_shard(idx);
                if shard.store.remove(origin, key.clone()).is_some() {
                    shard.stats.records_removed += 1;
                    shard.content_version += 1;
                    return AdvertDisposition::Removed;
                }
            }
            return AdvertDisposition::NotPresent;
        }
        let default_ttl = self.shared.config.default_advert_ttl;
        let Some(record) = ServiceRecord::from_advert(origin, stream, now, default_ttl) else {
            return AdvertDisposition::Ignored;
        };
        let type_sym = record.canonical_type_symbol();
        let expires = record.expires_at();
        let mut shard = self.shard_for(&type_sym);
        shard.clear_negative(&type_sym);
        let (slot, outcome) = shard.store.upsert(record);
        if let Some(at) = expires {
            let generation = shard.store.generation(slot);
            shard.wheel.arm(at, Target::Advert { slot, generation });
        }
        match outcome {
            InsertOutcome::Inserted => {
                shard.stats.records_inserted += 1;
                shard.content_version += 1;
                AdvertDisposition::Recorded
            }
            InsertOutcome::Refreshed => {
                shard.stats.records_refreshed += 1;
                shard.content_version += 1;
                AdvertDisposition::Refreshed
            }
            InsertOutcome::Evicted(_) => {
                shard.stats.records_inserted += 1;
                shard.stats.records_evicted += 1;
                // Two record mutations: the victim left, the new one
                // landed.
                shard.content_version += 2;
                AdvertDisposition::Recorded
            }
        }
    }

    /// Applies a record pulled from mesh peer `peer` during gossip: the
    /// alive stream is normalized exactly like a local advert, stamped
    /// [`RecordOrigin::Remote`], and upserted — *unless* an equivalent
    /// live record (same endpoint and canonical type, an expiry no more
    /// than `REMOTE_EXPIRY_SLACK` — the wire's TTL rounding quantum —
    /// earlier) already exists, in which
    /// case nothing changes and the shard's content version does not
    /// advance. The equivalence check is what makes anti-entropy
    /// converge: once two peers hold the same records, pulls stop
    /// mutating and digests stop advancing.
    pub fn record_remote(
        &self,
        origin: SdpProtocol,
        stream: &EventStream,
        peer: PeerId,
        now: SimTime,
    ) -> RemoteDisposition {
        let default_ttl = self.shared.config.default_advert_ttl;
        let Some(mut record) = ServiceRecord::from_advert(origin, stream, now, default_ttl) else {
            return RemoteDisposition::Ignored;
        };
        record.set_provenance(RecordOrigin::Remote(peer));
        let type_sym = record.canonical_type_symbol();
        let expires = record.expires_at();
        let mut shard = self.shard_for(&type_sym);
        if let Some(existing) = shard.store.get(origin, record.key_symbol()) {
            let covered = !existing.is_expired(now)
                && existing.endpoint() == record.endpoint()
                && existing.canonical_type() == record.canonical_type()
                && match (existing.expires_at(), record.expires_at()) {
                    (None, _) => true,
                    (Some(theirs), Some(ours)) => {
                        theirs.saturating_add(REMOTE_EXPIRY_SLACK) >= ours
                    }
                    (Some(_), None) => false,
                };
            if covered {
                return RemoteDisposition::Stale;
            }
        }
        shard.clear_negative(&type_sym);
        let (slot, outcome) = shard.store.upsert(record);
        if let Some(at) = expires {
            let generation = shard.store.generation(slot);
            shard.wheel.arm(at, Target::Advert { slot, generation });
        }
        match outcome {
            InsertOutcome::Inserted => {
                shard.stats.records_inserted += 1;
                shard.content_version += 1;
                RemoteDisposition::Applied
            }
            InsertOutcome::Refreshed => {
                shard.stats.records_refreshed += 1;
                shard.content_version += 1;
                RemoteDisposition::Refreshed
            }
            InsertOutcome::Evicted(_) => {
                shard.stats.records_inserted += 1;
                shard.stats.records_evicted += 1;
                shard.content_version += 2;
                RemoteDisposition::Applied
            }
        }
    }

    /// Number of live (non-expired) service records across all shards.
    pub fn record_count(&self) -> usize {
        self.fold_shards(0usize, |acc, shard| *acc += shard.store.len())
    }

    /// The live record identified by `(origin, key)`, if any. The key is
    /// an identity, not a canonical type, so this scans the shards (a
    /// cold-path, test-and-tooling API).
    pub fn record(
        &self,
        origin: SdpProtocol,
        key: impl Into<Symbol>,
        now: SimTime,
    ) -> Option<ServiceRecord> {
        let key = key.into();
        for idx in 0..self.shared.shards.len() {
            let shard = self.lock_shard(idx);
            if let Some(r) =
                shard.store.get(origin, key.clone()).filter(|r| !r.is_expired(now)).cloned()
            {
                return Some(r);
            }
        }
        None
    }

    /// True when a live record of this canonical type exists.
    pub fn contains_type(&self, canonical_type: impl Into<Symbol>, now: SimTime) -> bool {
        let key = canonical_type.into();
        self.shard_for(&key).store.of_type(key.clone()).any(|r| !r.is_expired(now))
    }

    /// Live records of one canonical type, in insertion order.
    pub fn records_of_type(
        &self,
        canonical_type: impl Into<Symbol>,
        now: SimTime,
    ) -> Vec<ServiceRecord> {
        let key = canonical_type.into();
        self.shard_for(&key)
            .store
            .of_type(key.clone())
            .filter(|r| !r.is_expired(now))
            .cloned()
            .collect()
    }

    /// Number of live records announced by one protocol.
    pub fn record_count_by_origin(&self, origin: SdpProtocol, now: SimTime) -> usize {
        self.fold_shards(0usize, |acc, shard| {
            *acc += shard.store.of_origin(origin).filter(|r| !r.is_expired(now)).count();
        })
    }

    /// The earliest-registered live record advertising `endpoint`, if
    /// any (several protocols may announce the same endpoint).
    pub fn record_by_endpoint(
        &self,
        endpoint: impl Into<Symbol>,
        now: SimTime,
    ) -> Option<ServiceRecord> {
        let key = endpoint.into();
        self.fold_shards(None::<ServiceRecord>, |best, shard| {
            for r in shard.store.by_endpoint(key.clone()).filter(|r| !r.is_expired(now)) {
                if best.as_ref().is_none_or(|b| r.registered_at() < b.registered_at()) {
                    *best = Some(r.clone());
                }
            }
        })
    }

    /// Every live advert as `(origin, stream)`, in deterministic
    /// shard-then-slab order (the active mode re-advertises these). The
    /// streams are shared buffers — this snapshot copies reference
    /// counts, not events.
    pub fn adverts(&self, now: SimTime) -> Vec<(SdpProtocol, EventStream)> {
        self.fold_shards(Vec::new(), |acc, shard| {
            acc.extend(
                shard
                    .store
                    .iter()
                    .filter(|(_, r)| !r.is_expired(now))
                    .map(|(_, r)| (r.origin(), r.advert().clone())),
            );
        })
    }

    // ------------------------------------------------------------------
    // Response cache
    // ------------------------------------------------------------------

    /// Stores a response stream for `canonical_type` (LRU-bounded; the
    /// entry expires after the configured cache TTL). Positive knowledge
    /// also invalidates any negative-cache entry for the type.
    pub fn warm(&self, canonical_type: impl Into<Symbol>, response: EventStream, now: SimTime) {
        self.warm_entry(canonical_type.into(), response, now, false);
    }

    /// Stores a response synthesized from knowledge a mesh peer pushed
    /// or we pulled during gossip. Identical to [`ServiceRegistry::warm`]
    /// except the entry is attributed as remote: hits on it count in
    /// [`RegistryStats::remote_cache_hits`] (on top of `cache_hits`),
    /// so `BridgeStats` can split local from remote warm serving.
    pub fn warm_remote(
        &self,
        canonical_type: impl Into<Symbol>,
        response: EventStream,
        now: SimTime,
    ) {
        self.warm_entry(canonical_type.into(), response, now, true);
    }

    fn warm_entry(&self, key: Symbol, response: EventStream, now: SimTime, remote: bool) {
        let idx = self.shard_index(&key);
        let mut shard = self.lock_shard(idx);
        shard.clear_negative(&key);
        let expires = now + self.shared.config.cache_ttl;
        let (slot, evicted) = shard.cache.insert(key, CachedResponse { response, expires, remote });
        if evicted.is_some() {
            shard.stats.cache_evictions += 1;
        }
        let generation = shard.cache.generation(slot);
        shard.wheel.arm(expires, Target::Cache { slot, generation });
        // Publish while still holding the shard lock, so snapshots go
        // out in mutation order and lock-free readers see this entry
        // (and the LRU victim's absence) from here on.
        self.shared.epochs[idx].publish(shard.build_snapshot());
    }

    /// Answers a lookup from the cache, counting a hit or a miss. Expired
    /// entries are dropped on access (lazy expiry). A hit returns a cheap
    /// clone of the shared response buffer.
    pub fn cached_response(
        &self,
        canonical_type: impl Into<Symbol>,
        now: SimTime,
    ) -> Option<EventStream> {
        let key = canonical_type.into();
        let mut shard = self.shard_for(&key);
        match shard.cache.get(&key) {
            Some(entry) if entry.expires > now => {
                let response = entry.response.clone();
                let remote = entry.remote;
                shard.stats.cache_hits += 1;
                if remote {
                    shard.stats.remote_cache_hits += 1;
                }
                Some(response)
            }
            Some(_) => {
                shard.cache.remove(&key);
                shard.stats.cache_expired += 1;
                shard.stats.cache_misses += 1;
                None
            }
            None => {
                shard.stats.cache_misses += 1;
                None
            }
        }
    }

    /// Degraded-mode read: the best *stale* answer the registry still
    /// holds for this type, TTLs ignored. Prefers the cached response
    /// (even one past its TTL, as long as no sweep reclaimed it) and
    /// falls back to synthesizing a response from the most recently
    /// refreshed service record of the type, expired or not. The
    /// synthesized stream carries a short TTL so a requester does not
    /// hold stale knowledge long. Touches no counters and no LRU
    /// recency — the retry state machine accounts the degradation
    /// itself ([`crate::BridgeStats::stale_served`]).
    pub fn stale_response(&self, canonical_type: impl Into<Symbol>) -> Option<EventStream> {
        const STALE_TTL_SECS: u32 = 30;
        let key = canonical_type.into();
        let shard = self.shard_for(&key);
        if let Some(entry) = shard.cache.peek(&key) {
            return Some(entry.response.clone());
        }
        let record = shard.store.of_type(key.clone()).max_by_key(|r| r.refreshed_at())?;
        let mut body = vec![
            Event::ServiceResponse,
            Event::ResOk,
            Event::ServiceType(record.canonical_type_symbol()),
            Event::ResTtl(STALE_TTL_SECS),
        ];
        body.push(Event::ResServUrl(record.endpoint()?.to_owned()));
        Some(EventStream::framed(body))
    }

    /// True when a live cache entry exists for this type (does not touch
    /// recency or counters).
    pub fn cache_contains(&self, canonical_type: impl Into<Symbol>, now: SimTime) -> bool {
        let key = canonical_type.into();
        self.shard_for(&key).cache.peek(&key).is_some_and(|c| c.expires > now)
    }

    /// Number of cache entries currently held (live or pending expiry).
    pub fn cache_len(&self) -> usize {
        self.fold_shards(0usize, |acc, shard| *acc += shard.cache.len())
    }

    /// Canonical types with a live cache entry, in deterministic
    /// shard-then-slab order.
    pub fn cached_types(&self, now: SimTime) -> Vec<Symbol> {
        self.fold_shards(Vec::new(), |acc, shard| {
            acc.extend(shard.cache.iter().filter(|(_, c)| c.expires > now).map(|(k, _)| k.clone()));
        })
    }

    // ------------------------------------------------------------------
    // Negative cache
    // ------------------------------------------------------------------

    /// Remembers that a fan-out on behalf of an `origin`-protocol
    /// request for `canonical_type` found nothing; for the configured
    /// negative TTL, [`ServiceRegistry::cached_negative`] answers "still
    /// nothing" without bothering the units. Scoped to the requesting
    /// protocol: a different origin fans out to a different unit set, so
    /// its first request must still bridge.
    pub fn warm_negative(
        &self,
        origin: SdpProtocol,
        canonical_type: impl Into<Symbol>,
        now: SimTime,
    ) {
        let ty = canonical_type.into();
        let mut shard = self.shard_for(&ty);
        let expires = now + self.shared.config.negative_ttl;
        let (slot, evicted) = shard.negative.insert((origin, ty.clone()), expires);
        if let Some(((old_origin, old_ty), _)) = evicted {
            shard.unindex_negative(old_origin, &old_ty);
        }
        shard.index_negative(origin, ty);
        shard.stats.negative_stored += 1;
        let generation = shard.negative.generation(slot);
        shard.wheel.arm(expires, Target::Negative { slot, generation });
    }

    /// True when a live "nothing found" entry exists for this (origin,
    /// type); counts a negative hit. Expired entries are dropped on
    /// access.
    pub fn cached_negative(
        &self,
        origin: SdpProtocol,
        canonical_type: impl Into<Symbol>,
        now: SimTime,
    ) -> bool {
        let ty = canonical_type.into();
        let mut shard = self.shard_for(&ty);
        let key = (origin, ty.clone());
        match shard.negative.get(&key) {
            Some(expires) if *expires > now => {
                shard.stats.negative_hits += 1;
                true
            }
            Some(_) => {
                shard.negative.remove(&key);
                shard.unindex_negative(origin, &ty);
                false
            }
            None => false,
        }
    }

    /// Number of negative entries currently held (live or pending
    /// expiry).
    pub fn negative_len(&self) -> usize {
        self.fold_shards(0usize, |acc, shard| *acc += shard.negative.len())
    }

    // ------------------------------------------------------------------
    // Suppression window
    // ------------------------------------------------------------------

    /// True while requests for this type are inside the suppression
    /// window armed by [`ServiceRegistry::mark_bridged`].
    pub fn suppression_active(&self, canonical_type: impl Into<Symbol>, now: SimTime) -> bool {
        let key = canonical_type.into();
        self.shard_for(&key).suppression_active_at(&key, now)
    }

    /// Arms the suppression window for this type until `until`.
    pub fn mark_bridged(&self, canonical_type: impl Into<Symbol>, until: SimTime) {
        let key = canonical_type.into();
        self.shard_for(&key).arm_suppression(key, until);
    }

    // ------------------------------------------------------------------
    // Bridge projections
    // ------------------------------------------------------------------

    /// The projection a unit minted for `(protocol, key)`, if any.
    pub fn projection(&self, protocol: SdpProtocol, key: impl Into<Symbol>) -> Option<Projection> {
        let key = key.into();
        self.shard_for(&key).projections.get(&(protocol, key.clone())).cloned()
    }

    /// Stores (or replaces) the projection for `(protocol, key)`.
    pub fn set_projection(
        &self,
        protocol: SdpProtocol,
        key: impl Into<Symbol>,
        projection: Projection,
    ) {
        let key = key.into();
        self.shard_for(&key).projections.insert((protocol, key.clone()), projection);
    }

    // ------------------------------------------------------------------
    // Expiry
    // ------------------------------------------------------------------

    /// Drops everything whose TTL elapsed by `now` and prunes stale
    /// suppression entries, shard by shard. Driven by the runtime's
    /// virtual-time sweep timer; reads also expire lazily, so calling
    /// this is a memory bound, not a correctness requirement.
    pub fn sweep(&self, now: SimTime) -> SweepReport {
        let mut acc = SweepReport::default();
        for idx in 0..self.shared.shards.len() {
            let mut shard = self.lock_shard(idx);
            let report = shard.sweep(now);
            acc.records_expired += report.records_expired;
            acc.cache_expired += report.cache_expired;
            acc.negative_expired += report.negative_expired;
            // Republish under the lock: the sweep may have reaped cache
            // entries and pruned suppression cells, and the rebuild
            // re-creates cells for every still-cached type, so stale
            // snapshots stop being served and memory is released.
            self.shared.epochs[idx].publish(shard.build_snapshot());
        }
        acc
    }

    /// The earliest pending expiry deadline across all shards, if any
    /// (the runtime schedules its next sweep timer here).
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.fold_shards(None::<SimTime>, |acc, shard| {
            if let Some(d) = shard.next_deadline() {
                *acc = Some(acc.map_or(d, |cur| cur.min(d)));
            }
        })
    }

    // ------------------------------------------------------------------
    // Mesh digests
    // ------------------------------------------------------------------

    /// The per-shard content-version vector the mesh gossips as its
    /// registry digest. Reads one counter per shard — never walks a
    /// record store — so building a digest is O(shards) regardless of
    /// how many records are held. Versions advance exactly once per
    /// record mutation (insert, refresh, eviction, removal, expiry).
    pub fn shard_versions(&self) -> Vec<u64> {
        self.fold_shards(Vec::with_capacity(self.shard_count()), |acc, shard| {
            acc.push(shard.content_version);
        })
    }

    /// One shard's content version (see [`ServiceRegistry::shard_versions`]).
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn content_version(&self, shard: usize) -> u64 {
        self.lock_shard(shard).content_version
    }

    /// Order-independent digest of the live record *content* (origin,
    /// canonical type, key, endpoint): two registries that hold the
    /// same services hash identically regardless of shard routing,
    /// insertion order or record provenance. A cold-path walk — tests
    /// and convergence gates use it; the gossip hot path uses
    /// [`ServiceRegistry::shard_versions`] instead.
    pub fn content_digest(&self, now: SimTime) -> u64 {
        fn fnv(h: &mut u64, bytes: &[u8]) {
            for b in bytes {
                *h ^= u64::from(*b);
                *h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            // Field separator so ("ab", "c") and ("a", "bc") differ.
            *h ^= 0xFF;
            *h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.fold_shards(0u64, |acc, shard| {
            for (_, record) in shard.store.iter().filter(|(_, r)| !r.is_expired(now)) {
                let mut h = 0xCBF2_9CE4_8422_2325u64;
                match record.origin() {
                    SdpProtocol::Slp => fnv(&mut h, b"slp"),
                    SdpProtocol::Upnp => fnv(&mut h, b"upnp"),
                    SdpProtocol::Jini => fnv(&mut h, b"jini"),
                    SdpProtocol::Dynamic(id) => {
                        fnv(&mut h, id.name().as_bytes());
                        fnv(&mut h, &id.port().to_le_bytes());
                    }
                }
                fnv(&mut h, record.canonical_type().as_bytes());
                fnv(&mut h, record.key().as_bytes());
                fnv(&mut h, record.endpoint().unwrap_or("").as_bytes());
                // Commutative combine: the digest must not depend on
                // iteration order, which differs per registry.
                *acc = acc.wrapping_add(h | 1);
            }
        })
    }

    /// Live records currently stored on one shard, in slab order (the
    /// mesh serves pull requests from this).
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub(crate) fn shard_records(&self, shard: usize, now: SimTime) -> Vec<ServiceRecord> {
        self.lock_shard(shard)
            .store
            .iter()
            .filter(|(_, r)| !r.is_expired(now))
            .map(|(_, r)| r.clone())
            .collect()
    }

    /// Snapshot of the registry's counters, merged across shards.
    /// Cache hits served lock-free (the epoch-snapshot fast path) are
    /// folded into `cache_hits` here, so totals are exact regardless of
    /// which path answered.
    pub fn stats(&self) -> RegistryStats {
        let mut merged = RegistryStats::default();
        for idx in 0..self.shared.shards.len() {
            merged.merge(&self.lock_shard(idx).stats);
            merged.cache_hits += self.shared.epochs[idx].fast_hits.load(Ordering::Relaxed);
        }
        merged
    }
}

impl std::fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (records, cached, negative, armed) =
            self.fold_shards((0usize, 0usize, 0usize, 0usize), |acc, shard| {
                acc.0 += shard.store.len();
                acc.1 += shard.cache.len();
                acc.2 += shard.negative.len();
                acc.3 += shard.wheel.armed();
            });
        f.debug_struct("ServiceRegistry")
            .field("shards", &self.shared.shards.len())
            .field("records", &records)
            .field("record_capacity", &self.shared.config.advert_capacity)
            .field("cached_responses", &cached)
            .field("cache_capacity", &self.shared.config.cache_capacity)
            .field("negative_entries", &negative)
            .field("armed_deadlines", &armed)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn alive(ty: &str, url: &str, ttl: Option<u32>) -> EventStream {
        let mut body =
            vec![Event::ServiceAlive, Event::ServiceType(ty.into()), Event::ResServUrl(url.into())];
        if let Some(t) = ttl {
            body.push(Event::ResTtl(t));
        }
        EventStream::framed(body)
    }

    fn byebye(ty: &str, url: &str) -> EventStream {
        EventStream::framed(vec![
            Event::ServiceByeBye,
            Event::ServiceType(ty.into()),
            Event::ResServUrl(url.into()),
        ])
    }

    fn response(ty: &str) -> EventStream {
        EventStream::framed(vec![
            Event::ServiceResponse,
            Event::ResOk,
            Event::ServiceType(ty.into()),
            Event::ResServUrl(format!("soap://host/{ty}")),
        ])
    }

    #[test]
    fn advert_lifecycle_recorded_refreshed_removed() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        let t = SimTime::from_secs(1);
        assert_eq!(
            reg.record_advert(SdpProtocol::Slp, &alive("clock", "slp://a", Some(60)), t),
            AdvertDisposition::Recorded
        );
        assert_eq!(
            reg.record_advert(SdpProtocol::Slp, &alive("clock", "slp://a", Some(60)), t),
            AdvertDisposition::Refreshed
        );
        assert_eq!(reg.record_count(), 1);
        assert!(reg.contains_type("clock", t));
        assert_eq!(
            reg.record_advert(SdpProtocol::Slp, &byebye("clock", "slp://a"), t),
            AdvertDisposition::Removed
        );
        assert_eq!(reg.record_count(), 0);
        assert_eq!(reg.stats().records_removed, 1);
        // A second byebye finds nothing but is still acknowledged, so the
        // runtime can forward the retraction in active mode.
        assert_eq!(
            reg.record_advert(SdpProtocol::Slp, &byebye("clock", "slp://a"), t),
            AdvertDisposition::NotPresent
        );
        assert_eq!(reg.stats().records_removed, 1, "nothing double-counted");
    }

    #[test]
    fn ttl_expiry_is_exact_and_swept() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        reg.record_advert(SdpProtocol::Upnp, &alive("clock", "soap://b", Some(10)), SimTime::ZERO);
        assert!(reg.contains_type("clock", SimTime::from_secs(9)));
        // Lazy: reads past the deadline already miss.
        assert!(!reg.contains_type("clock", SimTime::from_secs(10)));
        // Sweep: memory is reclaimed.
        assert_eq!(reg.next_deadline(), Some(SimTime::from_secs(10)));
        let report = reg.sweep(SimTime::from_secs(10));
        assert_eq!(report.records_expired, 1);
        assert_eq!(reg.record_count(), 0);
        assert_eq!(reg.next_deadline(), None);
    }

    #[test]
    fn refresh_extends_ttl_and_stales_old_deadline() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        reg.record_advert(SdpProtocol::Slp, &alive("clock", "slp://a", Some(5)), SimTime::ZERO);
        reg.record_advert(
            SdpProtocol::Slp,
            &alive("clock", "slp://a", Some(60)),
            SimTime::from_secs(4),
        );
        // The old t=5 deadline is stale; sweeping at t=6 must not drop it.
        let report = reg.sweep(SimTime::from_secs(6));
        assert_eq!(report.records_expired, 0);
        assert!(reg.contains_type("clock", SimTime::from_secs(6)));
        assert_eq!(reg.next_deadline(), Some(SimTime::from_secs(64)));
    }

    #[test]
    fn capacity_bound_evicts() {
        let config = RegistryConfig { advert_capacity: 2, ..RegistryConfig::default() };
        let reg = ServiceRegistry::new(config);
        for i in 0..5 {
            reg.record_advert(
                SdpProtocol::Slp,
                &alive(&format!("t{i}"), &format!("u://{i}"), None),
                SimTime::ZERO,
            );
        }
        assert_eq!(reg.record_count(), 2);
        assert_eq!(reg.stats().records_evicted, 3);
        assert!(reg.contains_type("t4", SimTime::ZERO));
        assert!(!reg.contains_type("t0", SimTime::ZERO));
    }

    #[test]
    fn cache_counts_hits_misses_expiry() {
        let config =
            RegistryConfig { cache_ttl: Duration::from_secs(30), ..RegistryConfig::default() };
        let reg = ServiceRegistry::new(config);
        let t = SimTime::from_secs(1);
        assert!(reg.cached_response("clock", t).is_none());
        reg.warm("clock", response("clock"), t);
        assert!(reg.cached_response("clock", SimTime::from_secs(30)).is_some());
        assert!(reg.cached_response("clock", SimTime::from_secs(31)).is_none(), "expired");
        let stats = reg.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.cache_expired, 1);
        assert_eq!(reg.cache_len(), 0, "expired entry dropped on access");
    }

    #[test]
    fn cached_response_shares_the_stored_buffer() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        let stored = response("clock");
        reg.warm("clock", stored.clone(), SimTime::ZERO);
        let hit = reg.cached_response("clock", SimTime::ZERO).expect("warm");
        assert!(hit.shares_buffer(&stored), "cache answers by reference, not copy");
    }

    #[test]
    fn cache_lru_eviction_at_capacity() {
        let config = RegistryConfig { cache_capacity: 2, ..RegistryConfig::default() };
        let reg = ServiceRegistry::new(config);
        let t = SimTime::ZERO;
        reg.warm("a", response("a"), t);
        reg.warm("b", response("b"), t);
        assert!(reg.cached_response("a", t).is_some()); // refresh "a"
        reg.warm("c", response("c"), t);
        assert_eq!(reg.stats().cache_evictions, 1);
        assert!(reg.cache_contains("a", t));
        assert!(!reg.cache_contains("b", t), "LRU victim");
        assert!(reg.cache_contains("c", t));
    }

    #[test]
    fn negative_cache_hits_within_ttl_and_expires() {
        let config =
            RegistryConfig { negative_ttl: Duration::from_secs(2), ..RegistryConfig::default() };
        let reg = ServiceRegistry::new(config);
        let t = SimTime::from_secs(1);
        let slp = SdpProtocol::Slp;
        assert!(!reg.cached_negative(slp, "toaster", t), "nothing remembered yet");
        reg.warm_negative(slp, "toaster", t);
        assert!(reg.cached_negative(slp, "toaster", SimTime::from_secs(2)), "within TTL");
        assert!(
            !reg.cached_negative(SdpProtocol::Upnp, "toaster", SimTime::from_secs(2)),
            "scoped per requesting protocol: a UPnP request fans out differently"
        );
        assert!(!reg.cached_negative(slp, "toaster", SimTime::from_secs(3)), "expired");
        assert_eq!(reg.negative_len(), 0, "expired entry dropped on access");
        let stats = reg.stats();
        assert_eq!(stats.negative_stored, 1);
        assert_eq!(stats.negative_hits, 1);
    }

    #[test]
    fn negative_entries_expire_on_the_wheel_like_positive_ones() {
        let config =
            RegistryConfig { negative_ttl: Duration::from_secs(2), ..RegistryConfig::default() };
        let reg = ServiceRegistry::new(config);
        reg.warm_negative(SdpProtocol::Slp, "toaster", SimTime::ZERO);
        assert_eq!(reg.next_deadline(), Some(SimTime::from_secs(2)));
        let report = reg.sweep(SimTime::from_secs(2));
        assert_eq!(report.negative_expired, 1);
        assert_eq!(reg.negative_len(), 0, "sweep reclaimed the entry");
        assert_eq!(reg.next_deadline(), None);
    }

    #[test]
    fn positive_knowledge_invalidates_negative_entries() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        let t = SimTime::ZERO;
        reg.warm_negative(SdpProtocol::Upnp, "clock", t);
        assert!(reg.cached_negative(SdpProtocol::Upnp, "clock", t));
        // An arriving advert for the type clears the negative memory,
        // whichever protocol's requests armed it.
        reg.record_advert(SdpProtocol::Slp, &alive("clock", "slp://a", Some(60)), t);
        assert!(!reg.cached_negative(SdpProtocol::Upnp, "clock", t), "advert invalidated");
        // Same for a warmed positive response.
        reg.warm_negative(SdpProtocol::Slp, "printer", t);
        reg.warm("printer", response("printer"), t);
        assert!(!reg.cached_negative(SdpProtocol::Slp, "printer", t), "warm invalidated");
    }

    /// The type index behind advert-driven invalidation stays exact
    /// through every removal path: hit-side expiry, wheel expiry,
    /// invalidation and LRU eviction.
    #[test]
    fn negative_type_index_tracks_every_removal_path() {
        let config = RegistryConfig {
            negative_ttl: Duration::from_secs(2),
            cache_capacity: 2,
            ..RegistryConfig::default()
        };
        let reg = ServiceRegistry::new(config);
        let t = SimTime::ZERO;
        // Two origins remember the same absent type.
        reg.warm_negative(SdpProtocol::Slp, "ghost", t);
        reg.warm_negative(SdpProtocol::Upnp, "ghost", t);
        assert_eq!(reg.negative_len(), 2);
        // One advert clears both entries through the index.
        reg.record_advert(SdpProtocol::Jini, &alive("ghost", "jini://g", Some(60)), t);
        assert_eq!(reg.negative_len(), 0, "index-driven invalidation removed both");
        assert!(!reg.cached_negative(SdpProtocol::Slp, "ghost", t));
        assert!(!reg.cached_negative(SdpProtocol::Upnp, "ghost", t));
        // LRU eviction (capacity 2) unindexes the victim: a later advert
        // for the evicted type must be a clean no-op, and the survivor
        // entries must still invalidate correctly.
        reg.warm_negative(SdpProtocol::Slp, "ga", t);
        reg.warm_negative(SdpProtocol::Slp, "gb", t);
        reg.warm_negative(SdpProtocol::Slp, "gc", t); // evicts "ga"
        assert_eq!(reg.negative_len(), 2);
        reg.record_advert(SdpProtocol::Slp, &alive("ga", "slp://ga", Some(60)), t);
        assert_eq!(reg.negative_len(), 2, "evicted entry not double-removed");
        reg.record_advert(SdpProtocol::Slp, &alive("gb", "slp://gb", Some(60)), t);
        assert_eq!(reg.negative_len(), 1, "survivor invalidated via index");
    }

    #[test]
    fn suppression_window_expires_with_time() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        reg.mark_bridged("clock", SimTime::from_millis(600));
        assert!(reg.suppression_active("clock", SimTime::from_millis(599)));
        assert!(!reg.suppression_active("clock", SimTime::from_millis(600)));
        reg.sweep(SimTime::from_secs(1));
        assert!(!reg.suppression_active("clock", SimTime::ZERO), "pruned by sweep");
    }

    #[test]
    fn projections_are_shared_and_bounded() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        assert!(reg.projection(SdpProtocol::Upnp, "clock").is_none());
        reg.set_projection(
            SdpProtocol::Upnp,
            "clock",
            Projection {
                location: Some("http://gw:4104/bridged/1/description.xml".into()),
                usn: Some("uuid:indiss-bridged-1".into()),
                ..Projection::default()
            },
        );
        let p = reg.projection(SdpProtocol::Upnp, "clock").unwrap();
        assert_eq!(p.usn.as_deref(), Some("uuid:indiss-bridged-1"));
        assert!(reg.projection(SdpProtocol::Slp, "clock").is_none(), "scoped per protocol");
    }

    #[test]
    fn adverts_snapshot_is_deterministic_insertion_order() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        for (i, p) in
            [SdpProtocol::Slp, SdpProtocol::Upnp, SdpProtocol::Jini].into_iter().enumerate()
        {
            reg.record_advert(
                p,
                &alive(&format!("t{i}"), &format!("u://{i}"), None),
                SimTime::ZERO,
            );
        }
        let order: Vec<SdpProtocol> =
            reg.adverts(SimTime::ZERO).into_iter().map(|(p, _)| p).collect();
        assert_eq!(order, vec![SdpProtocol::Slp, SdpProtocol::Upnp, SdpProtocol::Jini]);
    }

    /// Sharded mode: every record lands on (and is served from) the
    /// shard its canonical type hashes to, and cross-shard aggregates
    /// see everything.
    #[test]
    fn sharded_registry_routes_by_canonical_type() {
        let config = RegistryConfig { shards: 8, ..RegistryConfig::default() };
        let reg = ServiceRegistry::new(config);
        assert_eq!(reg.shard_count(), 8);
        let t = SimTime::ZERO;
        for i in 0..64 {
            let ty = format!("type-{i}");
            let before = reg.shard_record_count(reg.shard_of(ty.as_str()));
            reg.record_advert(SdpProtocol::Slp, &alive(&ty, &format!("u://{i}"), None), t);
            assert_eq!(
                reg.shard_record_count(reg.shard_of(ty.as_str())),
                before + 1,
                "record stored on its type's shard"
            );
            assert!(reg.contains_type(ty.as_str(), t));
        }
        assert_eq!(reg.record_count(), 64);
        let per_shard: usize = (0..8).map(|i| reg.shard_record_count(i)).sum();
        assert_eq!(per_shard, 64, "shard counts add up to the aggregate");
        // A byebye with the type present routes straight to the shard.
        reg.record_advert(SdpProtocol::Slp, &byebye("type-3", "u://3"), t);
        assert_eq!(reg.record_count(), 63);
        assert!(!reg.contains_type("type-3", t));
        // Stats merge across shards.
        assert_eq!(reg.stats().records_inserted, 64);
        assert_eq!(reg.stats().records_removed, 1);
    }

    /// Satellite: the per-shard content version advances exactly once per
    /// record mutation — insert, refresh, removal, sweep expiry — and
    /// twice for an eviction-plus-insert (two records changed). Cache and
    /// negative-cache traffic never moves it.
    #[test]
    fn content_version_advances_exactly_once_per_mutation() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        let t = SimTime::from_secs(1);
        assert_eq!(reg.shard_versions(), vec![0]);
        reg.record_advert(SdpProtocol::Slp, &alive("clock", "slp://a", Some(60)), t);
        assert_eq!(reg.content_version(0), 1, "insert bumps once");
        reg.record_advert(SdpProtocol::Slp, &alive("clock", "slp://a", Some(60)), t);
        assert_eq!(reg.content_version(0), 2, "refresh bumps once");
        reg.warm("clock", response("clock"), t);
        reg.cached_response("clock", t);
        reg.warm_negative(SdpProtocol::Upnp, "toaster", t);
        assert_eq!(reg.content_version(0), 2, "cache traffic is not a record mutation");
        reg.record_advert(SdpProtocol::Slp, &byebye("clock", "slp://a"), t);
        assert_eq!(reg.content_version(0), 3, "byebye removal bumps once");
        reg.record_advert(SdpProtocol::Slp, &byebye("clock", "slp://a"), t);
        assert_eq!(reg.content_version(0), 3, "byebye of an absent record is not a mutation");
        reg.record_advert(SdpProtocol::Upnp, &alive("fax", "soap://f", Some(5)), t);
        assert_eq!(reg.content_version(0), 4);
        reg.sweep(SimTime::from_secs(10));
        assert_eq!(reg.content_version(0), 5, "sweep expiry bumps once per record");
        reg.sweep(SimTime::from_secs(20));
        assert_eq!(reg.content_version(0), 5, "empty sweep is not a mutation");
    }

    #[test]
    fn content_version_counts_eviction_as_two_mutations() {
        let config = RegistryConfig { advert_capacity: 1, ..RegistryConfig::default() };
        let reg = ServiceRegistry::new(config);
        reg.record_advert(SdpProtocol::Slp, &alive("a", "u://a", None), SimTime::ZERO);
        assert_eq!(reg.content_version(0), 1);
        reg.record_advert(SdpProtocol::Slp, &alive("b", "u://b", None), SimTime::ZERO);
        assert_eq!(reg.content_version(0), 3, "victim left (+1), newcomer landed (+1)");
    }

    #[test]
    fn record_remote_applies_refreshes_and_stales() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        let t = SimTime::from_secs(1);
        let peer = PeerId(7101);
        let stream = alive("clock", "slp://a", Some(60));
        assert_eq!(
            reg.record_remote(SdpProtocol::Slp, &stream, peer, t),
            RemoteDisposition::Applied
        );
        assert_eq!(reg.content_version(0), 1);
        let rec = reg.record(SdpProtocol::Slp, "slp://a", t).expect("landed");
        assert_eq!(rec.provenance(), RecordOrigin::Remote(peer), "remote records are attributed");
        // The identical advert back again (e.g. gossiped by a second
        // peer) is equivalent — no mutation, no version churn.
        assert_eq!(
            reg.record_remote(SdpProtocol::Slp, &stream, PeerId(7102), t),
            RemoteDisposition::Stale
        );
        assert_eq!(reg.content_version(0), 1, "stale pull does not bump the version");
        // A longer-lived copy of the same service is real news.
        let longer = alive("clock", "slp://a", Some(600));
        assert_eq!(
            reg.record_remote(SdpProtocol::Slp, &longer, peer, t),
            RemoteDisposition::Refreshed
        );
        assert_eq!(reg.content_version(0), 2);
        // An unkeyed stream cannot land.
        let unkeyed = EventStream::framed(vec![Event::ServiceAlive]);
        assert_eq!(
            reg.record_remote(SdpProtocol::Slp, &unkeyed, peer, t),
            RemoteDisposition::Ignored
        );
    }

    /// Regression for the anti-entropy fixpoint: the mesh wire carries
    /// remaining TTL in whole seconds rounded up, so an echoed record
    /// rebuilds with an expiry up to one second past the original. That
    /// window must read as covered (`Stale`, no version churn) — or two
    /// peers whose expiries are not whole seconds away from the gossip
    /// ticks re-pull each other forever and TTLs creep every round.
    #[test]
    fn record_remote_tolerates_the_wire_ttl_quantum() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        let peer = PeerId(7101);
        // The original lands at t=1.25 s with a 60 s TTL: expiry 61.25 s.
        let t = SimTime::from_nanos(1_250_000_000);
        reg.record_remote(SdpProtocol::Slp, &alive("clock", "slp://a", Some(60)), peer, t);
        assert_eq!(reg.content_version(0), 1);
        // The echo rebuilt from the wire at t=2 s: ceil(59.25) = 60 s,
        // expiry 62 s — 0.75 s past the original, inside the quantum.
        let echo = alive("clock", "slp://a", Some(60));
        assert_eq!(
            reg.record_remote(SdpProtocol::Slp, &echo, peer, SimTime::from_secs(2)),
            RemoteDisposition::Stale,
            "wire rounding is not news"
        );
        assert_eq!(reg.content_version(0), 1, "no version churn from the quantum");
        // A genuinely refreshed record (the full TTL again, well past
        // the slack) is still real news.
        assert_eq!(
            reg.record_remote(SdpProtocol::Slp, &echo, peer, SimTime::from_secs(30)),
            RemoteDisposition::Refreshed
        );
        assert_eq!(reg.content_version(0), 2);
    }

    #[test]
    fn remote_warm_hits_are_counted_and_stay_off_the_snapshot() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        let t = SimTime::ZERO;
        reg.warm_remote("clock", response("clock"), t);
        reg.warm("fax", response("fax"), t);
        assert!(reg.cached_response("clock", t).is_some());
        assert!(reg.cached_response("fax", t).is_some());
        let stats = reg.stats();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.remote_cache_hits, 1, "only the remote-warmed entry counts");
    }

    #[test]
    fn content_digest_is_order_and_shard_independent() {
        let a = ServiceRegistry::new(RegistryConfig::default());
        let b = ServiceRegistry::new(RegistryConfig { shards: 4, ..RegistryConfig::default() });
        let t = SimTime::ZERO;
        for i in 0..8 {
            a.record_advert(
                SdpProtocol::Slp,
                &alive(&format!("t{i}"), &format!("u://{i}"), None),
                t,
            );
        }
        for i in (0..8).rev() {
            // Reverse insertion order, remote provenance, different shard
            // count — the content digest must still agree.
            b.record_remote(
                SdpProtocol::Slp,
                &alive(&format!("t{i}"), &format!("u://{i}"), None),
                PeerId(9),
                t,
            );
        }
        assert_eq!(a.content_digest(t), b.content_digest(t));
        a.record_advert(SdpProtocol::Slp, &alive("extra", "u://x", None), t);
        assert_ne!(a.content_digest(t), b.content_digest(t), "digest sees new content");
    }
}
