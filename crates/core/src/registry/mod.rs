//! The service registry: the single source of truth for everything INDISS
//! knows about discovered services (paper §2.2/§4.3 — answering bridged
//! requests from "already-held knowledge").
//!
//! One [`ServiceRegistry`] instance sits behind the runtime and all units
//! and unifies what the first prototype scattered across ad-hoc maps:
//!
//! * **service records** ([`ServiceRecord`]) built from advertisements,
//!   indexed by `(origin protocol, identity)` with secondary indexes by
//!   canonical type, origin protocol and endpoint — O(1) lookups instead
//!   of stringly-keyed scans;
//! * a **bounded LRU response cache** for the paper's warm best case
//!   (§4.3, ~0.1 ms answers), with hit/miss/eviction/expiry counters
//!   surfaced through [`crate::BridgeStats`];
//! * a **negative cache** of "nothing found" outcomes per canonical
//!   type, with a short TTL, so request storms for absent types stop
//!   fanning out to every unit;
//! * the **suppression window** that breaks multi-bridge translation
//!   ping-pong;
//! * per-protocol **bridge projections** ([`Projection`]) — the synthetic
//!   artifacts composers mint for foreign services (a UPnP description
//!   URL + USN, SLP attribute lists, Jini service ids) so every unit
//!   shares one view instead of private copies.
//!
//! Every type- and identity-keyed map is keyed on interned [`Symbol`]s,
//! so the hot lookups hash one machine word, and cached event streams
//! are shared buffers — answering from the cache is a reference-count
//! bump, not a deep copy.
//!
//! All stores are capacity-bounded and TTL-bounded. Expiry is exact and
//! deterministic: deadlines live on an [`expiry`] wheel keyed by
//! [`SimTime`], reads apply lazy expiry checks, and the runtime schedules
//! virtual-time sweep timers at the wheel's next deadline, so a seeded
//! simulation replays identically and memory stays bounded under churn.

mod expiry;
mod index;
mod record;

pub use record::ServiceRecord;

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use indiss_net::SimTime;

use crate::event::{EventStream, SdpProtocol, Symbol};
use expiry::{ExpiryWheel, Target};
use index::{InsertOutcome, LruCache, RecordStore};

/// Capacity and TTL knobs for the registry.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryConfig {
    /// Maximum number of service records held (least-recently-updated
    /// records are evicted beyond this).
    pub advert_capacity: usize,
    /// Maximum number of cached responses (LRU eviction beyond this).
    pub cache_capacity: usize,
    /// How long cached responses stay valid.
    pub cache_ttl: Duration,
    /// TTL applied to adverts that do not carry their own `SDP_RES_TTL`;
    /// `None` keeps such records until evicted.
    pub default_advert_ttl: Option<Duration>,
    /// How long a "nothing found" outcome is remembered per canonical
    /// type. Kept short: a service appearing right after a miss must not
    /// stay invisible for long (arriving adverts also invalidate the
    /// entry eagerly).
    pub negative_ttl: Duration,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            advert_capacity: 4096,
            cache_capacity: 256,
            cache_ttl: Duration::from_secs(60),
            default_advert_ttl: Some(Duration::from_secs(1800)),
            negative_ttl: Duration::from_secs(2),
        }
    }
}

/// Counters the registry maintains; folded into [`crate::BridgeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Cache lookups answered from a live entry.
    pub cache_hits: u64,
    /// Cache lookups that found nothing usable.
    pub cache_misses: u64,
    /// Cache entries evicted by the LRU capacity bound.
    pub cache_evictions: u64,
    /// Cache entries dropped because their TTL elapsed.
    pub cache_expired: u64,
    /// Lookups answered by the negative cache ("nothing found" without a
    /// fan-out).
    pub negative_hits: u64,
    /// Negative-cache entries stored.
    pub negative_stored: u64,
    /// Service records newly inserted.
    pub records_inserted: u64,
    /// Service records refreshed by a newer advert.
    pub records_refreshed: u64,
    /// Service records evicted by the capacity bound.
    pub records_evicted: u64,
    /// Service records dropped because their TTL elapsed.
    pub records_expired: u64,
    /// Service records removed by byebye advertisements.
    pub records_removed: u64,
}

/// What [`ServiceRegistry::record_advert`] did with a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvertDisposition {
    /// A new record was stored.
    Recorded,
    /// An existing record was refreshed.
    Refreshed,
    /// A byebye removed the record.
    Removed,
    /// A byebye for a service with no live record (already expired or
    /// evicted); nothing to remove, but the retraction itself is still
    /// meaningful to forward.
    NotPresent,
    /// The stream carried no usable identity; nothing stored.
    Ignored,
}

/// Synthetic artifacts a unit minted for a bridged foreign service,
/// shared through the registry so every layer sees one copy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Projection {
    /// Description-document URL served for the service (UPnP).
    pub location: Option<String>,
    /// Unique service name advertised for the service (UPnP).
    pub usn: Option<String>,
    /// The synthetic description document itself (UPnP); served over
    /// HTTP straight from the projection, so its lifetime is bounded by
    /// the projection store instead of an ever-growing side map.
    pub document: Option<String>,
    /// Attribute list recorded for follow-up attribute queries (SLP).
    pub attrs: Vec<(String, String)>,
    /// Stable service id minted for the service (Jini).
    pub service_id: Option<u64>,
}

/// Report of one expiry sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Service records dropped by this sweep.
    pub records_expired: u64,
    /// Cache entries dropped by this sweep.
    pub cache_expired: u64,
    /// Negative-cache entries dropped by this sweep.
    pub negative_expired: u64,
}

#[derive(Debug, Clone)]
struct CachedResponse {
    response: EventStream,
    expires: SimTime,
}

struct RegistryInner {
    config: RegistryConfig,
    store: RecordStore,
    cache: LruCache<Symbol, CachedResponse>,
    /// "Nothing found" outcomes keyed by (requesting protocol,
    /// canonical type); the value is the entry's expiry deadline. The
    /// origin is part of the key because the fan-out set depends on it:
    /// a miss observed from one protocol says nothing about a fan-out
    /// that would include that protocol's own unit.
    negative: LruCache<(SdpProtocol, Symbol), SimTime>,
    projections: LruCache<(SdpProtocol, Symbol), Projection>,
    /// Per-canonical-type suppression deadline (multi-bridge loop guard).
    suppress: HashMap<Symbol, SimTime>,
    wheel: ExpiryWheel,
    stats: RegistryStats,
}

impl RegistryInner {
    fn target_is_current(&self, target: &Target) -> bool {
        match *target {
            Target::Advert { slot, generation } => self.store.generation(slot) == generation,
            Target::Cache { slot, generation } => self.cache.generation(slot) == generation,
            Target::Negative { slot, generation } => self.negative.generation(slot) == generation,
        }
    }

    fn sweep(&mut self, now: SimTime) -> SweepReport {
        let mut report = SweepReport::default();
        for target in self.wheel.pop_due(now) {
            if !self.target_is_current(&target) {
                continue; // refreshed or replaced since arming
            }
            match target {
                Target::Advert { slot, .. } => {
                    if self.store.get_slot(slot).is_some_and(|r| r.is_expired(now))
                        && self.store.remove_slot(slot).is_some()
                    {
                        report.records_expired += 1;
                    }
                }
                Target::Cache { slot, .. } => {
                    // A current generation means the entry is exactly the
                    // one this deadline was armed for, so it is due.
                    if self.cache.remove_slot(slot).is_some() {
                        report.cache_expired += 1;
                    }
                }
                Target::Negative { slot, .. } => {
                    if self.negative.remove_slot(slot).is_some() {
                        report.negative_expired += 1;
                    }
                }
            }
        }
        self.suppress.retain(|_, until| *until > now);
        self.stats.records_expired += report.records_expired;
        self.stats.cache_expired += report.cache_expired;
        report
    }

    /// Drops any "nothing found" memory for `canonical_type` (for every
    /// requesting protocol, dynamic ones included) — called whenever
    /// positive knowledge (an advert or response) arrives, so a service
    /// appearing right after a miss becomes visible immediately. Scans
    /// the (bounded) negative store rather than enumerating protocols:
    /// the protocol set is open, the store is not.
    fn clear_negative(&mut self, canonical_type: Symbol) {
        if self.negative.len() == 0 {
            return;
        }
        let stale: Vec<(SdpProtocol, Symbol)> = self
            .negative
            .iter()
            .filter(|((_, t), _)| *t == canonical_type)
            .map(|(key, _)| *key)
            .collect();
        for key in stale {
            self.negative.remove(&key);
        }
    }
}

/// Handle to the shared registry. Cloning is cheap and refers to the same
/// store (the codebase-wide `Rc<RefCell<…>>` handle idiom).
#[derive(Clone)]
pub struct ServiceRegistry {
    inner: Rc<RefCell<RegistryInner>>,
}

impl ServiceRegistry {
    /// Creates an empty registry with the given bounds.
    pub fn new(config: RegistryConfig) -> ServiceRegistry {
        ServiceRegistry {
            inner: Rc::new(RefCell::new(RegistryInner {
                store: RecordStore::new(config.advert_capacity),
                cache: LruCache::new(config.cache_capacity),
                negative: LruCache::new(config.cache_capacity),
                projections: LruCache::new(config.advert_capacity),
                suppress: HashMap::new(),
                wheel: ExpiryWheel::new(),
                stats: RegistryStats::default(),
                config,
            })),
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> RegistryConfig {
        self.inner.borrow().config.clone()
    }

    // ------------------------------------------------------------------
    // Advert records
    // ------------------------------------------------------------------

    /// Records an advertisement stream: alive adverts insert or refresh a
    /// [`ServiceRecord`]; byebyes remove it. A stored alive advert also
    /// invalidates any negative-cache entry for its type.
    pub fn record_advert(
        &self,
        origin: SdpProtocol,
        stream: &EventStream,
        now: SimTime,
    ) -> AdvertDisposition {
        let mut inner = self.inner.borrow_mut();
        let Some(key) = record::advert_key(stream) else {
            return AdvertDisposition::Ignored;
        };
        if stream.is_byebye() {
            return match inner.store.remove(origin, key) {
                Some(_) => {
                    inner.stats.records_removed += 1;
                    AdvertDisposition::Removed
                }
                None => AdvertDisposition::NotPresent,
            };
        }
        let default_ttl = inner.config.default_advert_ttl;
        let Some(record) = ServiceRecord::from_advert(origin, stream, now, default_ttl) else {
            return AdvertDisposition::Ignored;
        };
        inner.clear_negative(record.canonical_type_symbol());
        let expires = record.expires_at();
        let (slot, outcome) = inner.store.upsert(record);
        if let Some(at) = expires {
            let generation = inner.store.generation(slot);
            inner.wheel.arm(at, Target::Advert { slot, generation });
        }
        match outcome {
            InsertOutcome::Inserted => {
                inner.stats.records_inserted += 1;
                AdvertDisposition::Recorded
            }
            InsertOutcome::Refreshed => {
                inner.stats.records_refreshed += 1;
                AdvertDisposition::Refreshed
            }
            InsertOutcome::Evicted(_) => {
                inner.stats.records_inserted += 1;
                inner.stats.records_evicted += 1;
                AdvertDisposition::Recorded
            }
        }
    }

    /// Number of live (non-expired) service records.
    pub fn record_count(&self) -> usize {
        self.inner.borrow().store.len()
    }

    /// The live record identified by `(origin, key)`, if any.
    pub fn record(
        &self,
        origin: SdpProtocol,
        key: impl Into<Symbol>,
        now: SimTime,
    ) -> Option<ServiceRecord> {
        self.inner.borrow().store.get(origin, key.into()).filter(|r| !r.is_expired(now)).cloned()
    }

    /// True when a live record of this canonical type exists.
    pub fn contains_type(&self, canonical_type: impl Into<Symbol>, now: SimTime) -> bool {
        self.inner.borrow().store.of_type(canonical_type.into()).any(|r| !r.is_expired(now))
    }

    /// Live records of one canonical type, in insertion order.
    pub fn records_of_type(
        &self,
        canonical_type: impl Into<Symbol>,
        now: SimTime,
    ) -> Vec<ServiceRecord> {
        self.inner
            .borrow()
            .store
            .of_type(canonical_type.into())
            .filter(|r| !r.is_expired(now))
            .cloned()
            .collect()
    }

    /// Number of live records announced by one protocol.
    pub fn record_count_by_origin(&self, origin: SdpProtocol, now: SimTime) -> usize {
        self.inner.borrow().store.of_origin(origin).filter(|r| !r.is_expired(now)).count()
    }

    /// The earliest-registered live record advertising `endpoint`, if
    /// any (several protocols may announce the same endpoint).
    pub fn record_by_endpoint(
        &self,
        endpoint: impl Into<Symbol>,
        now: SimTime,
    ) -> Option<ServiceRecord> {
        self.inner.borrow().store.by_endpoint(endpoint.into()).find(|r| !r.is_expired(now)).cloned()
    }

    /// Every live advert as `(origin, stream)`, in deterministic slab
    /// order (the active mode re-advertises these). The streams are
    /// shared buffers — this snapshot copies reference counts, not
    /// events.
    pub fn adverts(&self, now: SimTime) -> Vec<(SdpProtocol, EventStream)> {
        self.inner
            .borrow()
            .store
            .iter()
            .filter(|(_, r)| !r.is_expired(now))
            .map(|(_, r)| (r.origin(), r.advert().clone()))
            .collect()
    }

    // ------------------------------------------------------------------
    // Response cache
    // ------------------------------------------------------------------

    /// Stores a response stream for `canonical_type` (LRU-bounded; the
    /// entry expires after the configured cache TTL). Positive knowledge
    /// also invalidates any negative-cache entry for the type.
    pub fn warm(&self, canonical_type: impl Into<Symbol>, response: EventStream, now: SimTime) {
        let key = canonical_type.into();
        let mut inner = self.inner.borrow_mut();
        inner.clear_negative(key);
        let expires = now + inner.config.cache_ttl;
        let (slot, evicted) = inner.cache.insert(key, CachedResponse { response, expires });
        if evicted.is_some() {
            inner.stats.cache_evictions += 1;
        }
        let generation = inner.cache.generation(slot);
        inner.wheel.arm(expires, Target::Cache { slot, generation });
    }

    /// Answers a lookup from the cache, counting a hit or a miss. Expired
    /// entries are dropped on access (lazy expiry). A hit returns a cheap
    /// clone of the shared response buffer.
    pub fn cached_response(
        &self,
        canonical_type: impl Into<Symbol>,
        now: SimTime,
    ) -> Option<EventStream> {
        let key = canonical_type.into();
        let mut inner = self.inner.borrow_mut();
        match inner.cache.get(&key) {
            Some(entry) if entry.expires > now => {
                let response = entry.response.clone();
                inner.stats.cache_hits += 1;
                Some(response)
            }
            Some(_) => {
                inner.cache.remove(&key);
                inner.stats.cache_expired += 1;
                inner.stats.cache_misses += 1;
                None
            }
            None => {
                inner.stats.cache_misses += 1;
                None
            }
        }
    }

    /// True when a live cache entry exists for this type (does not touch
    /// recency or counters).
    pub fn cache_contains(&self, canonical_type: impl Into<Symbol>, now: SimTime) -> bool {
        self.inner.borrow().cache.peek(&canonical_type.into()).is_some_and(|c| c.expires > now)
    }

    /// Number of cache entries currently held (live or pending expiry).
    pub fn cache_len(&self) -> usize {
        self.inner.borrow().cache.len()
    }

    /// Canonical types with a live cache entry, in deterministic slab
    /// order.
    pub fn cached_types(&self, now: SimTime) -> Vec<Symbol> {
        self.inner.borrow().cache.iter().filter(|(_, c)| c.expires > now).map(|(k, _)| *k).collect()
    }

    // ------------------------------------------------------------------
    // Negative cache
    // ------------------------------------------------------------------

    /// Remembers that a fan-out on behalf of an `origin`-protocol
    /// request for `canonical_type` found nothing; for the configured
    /// negative TTL, [`ServiceRegistry::cached_negative`] answers "still
    /// nothing" without bothering the units. Scoped to the requesting
    /// protocol: a different origin fans out to a different unit set, so
    /// its first request must still bridge.
    pub fn warm_negative(
        &self,
        origin: SdpProtocol,
        canonical_type: impl Into<Symbol>,
        now: SimTime,
    ) {
        let key = (origin, canonical_type.into());
        let mut inner = self.inner.borrow_mut();
        let expires = now + inner.config.negative_ttl;
        let (slot, _evicted) = inner.negative.insert(key, expires);
        inner.stats.negative_stored += 1;
        let generation = inner.negative.generation(slot);
        inner.wheel.arm(expires, Target::Negative { slot, generation });
    }

    /// True when a live "nothing found" entry exists for this (origin,
    /// type); counts a negative hit. Expired entries are dropped on
    /// access.
    pub fn cached_negative(
        &self,
        origin: SdpProtocol,
        canonical_type: impl Into<Symbol>,
        now: SimTime,
    ) -> bool {
        let key = (origin, canonical_type.into());
        let mut inner = self.inner.borrow_mut();
        match inner.negative.get(&key) {
            Some(expires) if *expires > now => {
                inner.stats.negative_hits += 1;
                true
            }
            Some(_) => {
                inner.negative.remove(&key);
                false
            }
            None => false,
        }
    }

    /// Number of negative entries currently held (live or pending
    /// expiry).
    pub fn negative_len(&self) -> usize {
        self.inner.borrow().negative.len()
    }

    // ------------------------------------------------------------------
    // Suppression window
    // ------------------------------------------------------------------

    /// True while requests for this type are inside the suppression
    /// window armed by [`ServiceRegistry::mark_bridged`].
    pub fn suppression_active(&self, canonical_type: impl Into<Symbol>, now: SimTime) -> bool {
        self.inner.borrow().suppress.get(&canonical_type.into()).is_some_and(|until| *until > now)
    }

    /// Arms the suppression window for this type until `until`.
    pub fn mark_bridged(&self, canonical_type: impl Into<Symbol>, until: SimTime) {
        self.inner.borrow_mut().suppress.insert(canonical_type.into(), until);
    }

    // ------------------------------------------------------------------
    // Bridge projections
    // ------------------------------------------------------------------

    /// The projection a unit minted for `(protocol, key)`, if any.
    pub fn projection(&self, protocol: SdpProtocol, key: impl Into<Symbol>) -> Option<Projection> {
        self.inner.borrow_mut().projections.get(&(protocol, key.into())).cloned()
    }

    /// Stores (or replaces) the projection for `(protocol, key)`.
    pub fn set_projection(
        &self,
        protocol: SdpProtocol,
        key: impl Into<Symbol>,
        projection: Projection,
    ) {
        self.inner.borrow_mut().projections.insert((protocol, key.into()), projection);
    }

    // ------------------------------------------------------------------
    // Expiry
    // ------------------------------------------------------------------

    /// Drops everything whose TTL elapsed by `now` and prunes stale
    /// suppression entries. Driven by the runtime's virtual-time sweep
    /// timer; reads also expire lazily, so calling this is a memory
    /// bound, not a correctness requirement.
    pub fn sweep(&self, now: SimTime) -> SweepReport {
        self.inner.borrow_mut().sweep(now)
    }

    /// The earliest pending expiry deadline, if any (the runtime schedules
    /// its next sweep timer here).
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut inner = self.inner.borrow_mut();
        let RegistryInner { wheel, store, cache, negative, .. } = &mut *inner;
        wheel.next_deadline(|target| match *target {
            Target::Advert { slot, generation } => store.generation(slot) == generation,
            Target::Cache { slot, generation } => cache.generation(slot) == generation,
            Target::Negative { slot, generation } => negative.generation(slot) == generation,
        })
    }

    /// Snapshot of the registry's counters.
    pub fn stats(&self) -> RegistryStats {
        self.inner.borrow().stats
    }
}

impl std::fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("ServiceRegistry")
            .field("records", &inner.store.len())
            .field("record_capacity", &inner.store.capacity())
            .field("cached_responses", &inner.cache.len())
            .field("cache_capacity", &inner.cache.capacity())
            .field("negative_entries", &inner.negative.len())
            .field("armed_deadlines", &inner.wheel.armed())
            .field("stats", &inner.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn alive(ty: &str, url: &str, ttl: Option<u32>) -> EventStream {
        let mut body =
            vec![Event::ServiceAlive, Event::ServiceType(ty.into()), Event::ResServUrl(url.into())];
        if let Some(t) = ttl {
            body.push(Event::ResTtl(t));
        }
        EventStream::framed(body)
    }

    fn byebye(ty: &str, url: &str) -> EventStream {
        EventStream::framed(vec![
            Event::ServiceByeBye,
            Event::ServiceType(ty.into()),
            Event::ResServUrl(url.into()),
        ])
    }

    fn response(ty: &str) -> EventStream {
        EventStream::framed(vec![
            Event::ServiceResponse,
            Event::ResOk,
            Event::ServiceType(ty.into()),
            Event::ResServUrl(format!("soap://host/{ty}")),
        ])
    }

    #[test]
    fn advert_lifecycle_recorded_refreshed_removed() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        let t = SimTime::from_secs(1);
        assert_eq!(
            reg.record_advert(SdpProtocol::Slp, &alive("clock", "slp://a", Some(60)), t),
            AdvertDisposition::Recorded
        );
        assert_eq!(
            reg.record_advert(SdpProtocol::Slp, &alive("clock", "slp://a", Some(60)), t),
            AdvertDisposition::Refreshed
        );
        assert_eq!(reg.record_count(), 1);
        assert!(reg.contains_type("clock", t));
        assert_eq!(
            reg.record_advert(SdpProtocol::Slp, &byebye("clock", "slp://a"), t),
            AdvertDisposition::Removed
        );
        assert_eq!(reg.record_count(), 0);
        assert_eq!(reg.stats().records_removed, 1);
        // A second byebye finds nothing but is still acknowledged, so the
        // runtime can forward the retraction in active mode.
        assert_eq!(
            reg.record_advert(SdpProtocol::Slp, &byebye("clock", "slp://a"), t),
            AdvertDisposition::NotPresent
        );
        assert_eq!(reg.stats().records_removed, 1, "nothing double-counted");
    }

    #[test]
    fn ttl_expiry_is_exact_and_swept() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        reg.record_advert(SdpProtocol::Upnp, &alive("clock", "soap://b", Some(10)), SimTime::ZERO);
        assert!(reg.contains_type("clock", SimTime::from_secs(9)));
        // Lazy: reads past the deadline already miss.
        assert!(!reg.contains_type("clock", SimTime::from_secs(10)));
        // Sweep: memory is reclaimed.
        assert_eq!(reg.next_deadline(), Some(SimTime::from_secs(10)));
        let report = reg.sweep(SimTime::from_secs(10));
        assert_eq!(report.records_expired, 1);
        assert_eq!(reg.record_count(), 0);
        assert_eq!(reg.next_deadline(), None);
    }

    #[test]
    fn refresh_extends_ttl_and_stales_old_deadline() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        reg.record_advert(SdpProtocol::Slp, &alive("clock", "slp://a", Some(5)), SimTime::ZERO);
        reg.record_advert(
            SdpProtocol::Slp,
            &alive("clock", "slp://a", Some(60)),
            SimTime::from_secs(4),
        );
        // The old t=5 deadline is stale; sweeping at t=6 must not drop it.
        let report = reg.sweep(SimTime::from_secs(6));
        assert_eq!(report.records_expired, 0);
        assert!(reg.contains_type("clock", SimTime::from_secs(6)));
        assert_eq!(reg.next_deadline(), Some(SimTime::from_secs(64)));
    }

    #[test]
    fn capacity_bound_evicts() {
        let config = RegistryConfig { advert_capacity: 2, ..RegistryConfig::default() };
        let reg = ServiceRegistry::new(config);
        for i in 0..5 {
            reg.record_advert(
                SdpProtocol::Slp,
                &alive(&format!("t{i}"), &format!("u://{i}"), None),
                SimTime::ZERO,
            );
        }
        assert_eq!(reg.record_count(), 2);
        assert_eq!(reg.stats().records_evicted, 3);
        assert!(reg.contains_type("t4", SimTime::ZERO));
        assert!(!reg.contains_type("t0", SimTime::ZERO));
    }

    #[test]
    fn cache_counts_hits_misses_expiry() {
        let config =
            RegistryConfig { cache_ttl: Duration::from_secs(30), ..RegistryConfig::default() };
        let reg = ServiceRegistry::new(config);
        let t = SimTime::from_secs(1);
        assert!(reg.cached_response("clock", t).is_none());
        reg.warm("clock", response("clock"), t);
        assert!(reg.cached_response("clock", SimTime::from_secs(30)).is_some());
        assert!(reg.cached_response("clock", SimTime::from_secs(31)).is_none(), "expired");
        let stats = reg.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.cache_expired, 1);
        assert_eq!(reg.cache_len(), 0, "expired entry dropped on access");
    }

    #[test]
    fn cached_response_shares_the_stored_buffer() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        let stored = response("clock");
        reg.warm("clock", stored.clone(), SimTime::ZERO);
        let hit = reg.cached_response("clock", SimTime::ZERO).expect("warm");
        assert!(hit.shares_buffer(&stored), "cache answers by reference, not copy");
    }

    #[test]
    fn cache_lru_eviction_at_capacity() {
        let config = RegistryConfig { cache_capacity: 2, ..RegistryConfig::default() };
        let reg = ServiceRegistry::new(config);
        let t = SimTime::ZERO;
        reg.warm("a", response("a"), t);
        reg.warm("b", response("b"), t);
        assert!(reg.cached_response("a", t).is_some()); // refresh "a"
        reg.warm("c", response("c"), t);
        assert_eq!(reg.stats().cache_evictions, 1);
        assert!(reg.cache_contains("a", t));
        assert!(!reg.cache_contains("b", t), "LRU victim");
        assert!(reg.cache_contains("c", t));
    }

    #[test]
    fn negative_cache_hits_within_ttl_and_expires() {
        let config =
            RegistryConfig { negative_ttl: Duration::from_secs(2), ..RegistryConfig::default() };
        let reg = ServiceRegistry::new(config);
        let t = SimTime::from_secs(1);
        let slp = SdpProtocol::Slp;
        assert!(!reg.cached_negative(slp, "toaster", t), "nothing remembered yet");
        reg.warm_negative(slp, "toaster", t);
        assert!(reg.cached_negative(slp, "toaster", SimTime::from_secs(2)), "within TTL");
        assert!(
            !reg.cached_negative(SdpProtocol::Upnp, "toaster", SimTime::from_secs(2)),
            "scoped per requesting protocol: a UPnP request fans out differently"
        );
        assert!(!reg.cached_negative(slp, "toaster", SimTime::from_secs(3)), "expired");
        assert_eq!(reg.negative_len(), 0, "expired entry dropped on access");
        let stats = reg.stats();
        assert_eq!(stats.negative_stored, 1);
        assert_eq!(stats.negative_hits, 1);
    }

    #[test]
    fn negative_entries_expire_on_the_wheel_like_positive_ones() {
        let config =
            RegistryConfig { negative_ttl: Duration::from_secs(2), ..RegistryConfig::default() };
        let reg = ServiceRegistry::new(config);
        reg.warm_negative(SdpProtocol::Slp, "toaster", SimTime::ZERO);
        assert_eq!(reg.next_deadline(), Some(SimTime::from_secs(2)));
        let report = reg.sweep(SimTime::from_secs(2));
        assert_eq!(report.negative_expired, 1);
        assert_eq!(reg.negative_len(), 0, "sweep reclaimed the entry");
        assert_eq!(reg.next_deadline(), None);
    }

    #[test]
    fn positive_knowledge_invalidates_negative_entries() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        let t = SimTime::ZERO;
        reg.warm_negative(SdpProtocol::Upnp, "clock", t);
        assert!(reg.cached_negative(SdpProtocol::Upnp, "clock", t));
        // An arriving advert for the type clears the negative memory,
        // whichever protocol's requests armed it.
        reg.record_advert(SdpProtocol::Slp, &alive("clock", "slp://a", Some(60)), t);
        assert!(!reg.cached_negative(SdpProtocol::Upnp, "clock", t), "advert invalidated");
        // Same for a warmed positive response.
        reg.warm_negative(SdpProtocol::Slp, "printer", t);
        reg.warm("printer", response("printer"), t);
        assert!(!reg.cached_negative(SdpProtocol::Slp, "printer", t), "warm invalidated");
    }

    #[test]
    fn suppression_window_expires_with_time() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        reg.mark_bridged("clock", SimTime::from_millis(600));
        assert!(reg.suppression_active("clock", SimTime::from_millis(599)));
        assert!(!reg.suppression_active("clock", SimTime::from_millis(600)));
        reg.sweep(SimTime::from_secs(1));
        assert!(!reg.suppression_active("clock", SimTime::ZERO), "pruned by sweep");
    }

    #[test]
    fn projections_are_shared_and_bounded() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        assert!(reg.projection(SdpProtocol::Upnp, "clock").is_none());
        reg.set_projection(
            SdpProtocol::Upnp,
            "clock",
            Projection {
                location: Some("http://gw:4104/bridged/1/description.xml".into()),
                usn: Some("uuid:indiss-bridged-1".into()),
                ..Projection::default()
            },
        );
        let p = reg.projection(SdpProtocol::Upnp, "clock").unwrap();
        assert_eq!(p.usn.as_deref(), Some("uuid:indiss-bridged-1"));
        assert!(reg.projection(SdpProtocol::Slp, "clock").is_none(), "scoped per protocol");
    }

    #[test]
    fn adverts_snapshot_is_deterministic_insertion_order() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        for (i, p) in
            [SdpProtocol::Slp, SdpProtocol::Upnp, SdpProtocol::Jini].into_iter().enumerate()
        {
            reg.record_advert(
                p,
                &alive(&format!("t{i}"), &format!("u://{i}"), None),
                SimTime::ZERO,
            );
        }
        let order: Vec<SdpProtocol> =
            reg.adverts(SimTime::ZERO).into_iter().map(|(p, _)| p).collect();
        assert_eq!(order, vec![SdpProtocol::Slp, SdpProtocol::Upnp, SdpProtocol::Jini]);
    }
}
