//! The service registry: the single source of truth for everything INDISS
//! knows about discovered services (paper §2.2/§4.3 — answering bridged
//! requests from "already-held knowledge").
//!
//! One [`ServiceRegistry`] instance sits behind the runtime and all units
//! and unifies what the first prototype scattered across ad-hoc maps:
//!
//! * **service records** ([`ServiceRecord`]) built from advertisements,
//!   indexed by `(origin protocol, identity)` with secondary indexes by
//!   canonical type, origin protocol and endpoint — O(1) lookups instead
//!   of stringly-keyed scans;
//! * a **bounded LRU response cache** for the paper's warm best case
//!   (§4.3, ~0.1 ms answers), with hit/miss/eviction/expiry counters
//!   surfaced through [`crate::BridgeStats`];
//! * the **suppression window** that breaks multi-bridge translation
//!   ping-pong;
//! * per-protocol **bridge projections** ([`Projection`]) — the synthetic
//!   artifacts composers mint for foreign services (a UPnP description
//!   URL + USN, SLP attribute lists, Jini service ids) so every unit
//!   shares one view instead of private copies.
//!
//! Both stores are capacity-bounded and TTL-bounded. Expiry is exact and
//! deterministic: deadlines live on an [`expiry`] wheel keyed by
//! [`SimTime`], reads apply lazy expiry checks, and the runtime schedules
//! virtual-time sweep timers at the wheel's next deadline, so a seeded
//! simulation replays identically and memory stays bounded under churn.

mod expiry;
mod index;
mod record;

pub use record::ServiceRecord;

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use indiss_net::SimTime;

use crate::event::{EventStream, SdpProtocol};
use expiry::{ExpiryWheel, Target};
use index::{InsertOutcome, LruCache, RecordStore};

/// Capacity and TTL knobs for the registry.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryConfig {
    /// Maximum number of service records held (least-recently-updated
    /// records are evicted beyond this).
    pub advert_capacity: usize,
    /// Maximum number of cached responses (LRU eviction beyond this).
    pub cache_capacity: usize,
    /// How long cached responses stay valid.
    pub cache_ttl: Duration,
    /// TTL applied to adverts that do not carry their own `SDP_RES_TTL`;
    /// `None` keeps such records until evicted.
    pub default_advert_ttl: Option<Duration>,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            advert_capacity: 4096,
            cache_capacity: 256,
            cache_ttl: Duration::from_secs(60),
            default_advert_ttl: Some(Duration::from_secs(1800)),
        }
    }
}

/// Counters the registry maintains; folded into [`crate::BridgeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Cache lookups answered from a live entry.
    pub cache_hits: u64,
    /// Cache lookups that found nothing usable.
    pub cache_misses: u64,
    /// Cache entries evicted by the LRU capacity bound.
    pub cache_evictions: u64,
    /// Cache entries dropped because their TTL elapsed.
    pub cache_expired: u64,
    /// Service records newly inserted.
    pub records_inserted: u64,
    /// Service records refreshed by a newer advert.
    pub records_refreshed: u64,
    /// Service records evicted by the capacity bound.
    pub records_evicted: u64,
    /// Service records dropped because their TTL elapsed.
    pub records_expired: u64,
    /// Service records removed by byebye advertisements.
    pub records_removed: u64,
}

/// What [`ServiceRegistry::record_advert`] did with a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvertDisposition {
    /// A new record was stored.
    Recorded,
    /// An existing record was refreshed.
    Refreshed,
    /// A byebye removed the record.
    Removed,
    /// A byebye for a service with no live record (already expired or
    /// evicted); nothing to remove, but the retraction itself is still
    /// meaningful to forward.
    NotPresent,
    /// The stream carried no usable identity; nothing stored.
    Ignored,
}

/// Synthetic artifacts a unit minted for a bridged foreign service,
/// shared through the registry so every layer sees one copy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Projection {
    /// Description-document URL served for the service (UPnP).
    pub location: Option<String>,
    /// Unique service name advertised for the service (UPnP).
    pub usn: Option<String>,
    /// The synthetic description document itself (UPnP); served over
    /// HTTP straight from the projection, so its lifetime is bounded by
    /// the projection store instead of an ever-growing side map.
    pub document: Option<String>,
    /// Attribute list recorded for follow-up attribute queries (SLP).
    pub attrs: Vec<(String, String)>,
    /// Stable service id minted for the service (Jini).
    pub service_id: Option<u64>,
}

/// Report of one expiry sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Service records dropped by this sweep.
    pub records_expired: u64,
    /// Cache entries dropped by this sweep.
    pub cache_expired: u64,
}

#[derive(Debug, Clone)]
struct CachedResponse {
    response: EventStream,
    expires: SimTime,
}

struct RegistryInner {
    config: RegistryConfig,
    store: RecordStore,
    cache: LruCache<String, CachedResponse>,
    projections: LruCache<(SdpProtocol, String), Projection>,
    /// Per-canonical-type suppression deadline (multi-bridge loop guard).
    suppress: HashMap<String, SimTime>,
    wheel: ExpiryWheel,
    stats: RegistryStats,
}

impl RegistryInner {
    fn target_is_current(&self, target: &Target) -> bool {
        match *target {
            Target::Advert { slot, generation } => self.store.generation(slot) == generation,
            Target::Cache { slot, generation } => self.cache.generation(slot) == generation,
        }
    }

    fn sweep(&mut self, now: SimTime) -> SweepReport {
        let mut report = SweepReport::default();
        for target in self.wheel.pop_due(now) {
            if !self.target_is_current(&target) {
                continue; // refreshed or replaced since arming
            }
            match target {
                Target::Advert { slot, .. } => {
                    if self.store.get_slot(slot).is_some_and(|r| r.is_expired(now))
                        && self.store.remove_slot(slot).is_some()
                    {
                        report.records_expired += 1;
                    }
                }
                Target::Cache { slot, .. } => {
                    // A current generation means the entry is exactly the
                    // one this deadline was armed for, so it is due.
                    if self.cache.remove_slot(slot).is_some() {
                        report.cache_expired += 1;
                    }
                }
            }
        }
        self.suppress.retain(|_, until| *until > now);
        self.stats.records_expired += report.records_expired;
        self.stats.cache_expired += report.cache_expired;
        report
    }
}

/// Handle to the shared registry. Cloning is cheap and refers to the same
/// store (the codebase-wide `Rc<RefCell<…>>` handle idiom).
#[derive(Clone)]
pub struct ServiceRegistry {
    inner: Rc<RefCell<RegistryInner>>,
}

impl ServiceRegistry {
    /// Creates an empty registry with the given bounds.
    pub fn new(config: RegistryConfig) -> ServiceRegistry {
        ServiceRegistry {
            inner: Rc::new(RefCell::new(RegistryInner {
                store: RecordStore::new(config.advert_capacity),
                cache: LruCache::new(config.cache_capacity),
                projections: LruCache::new(config.advert_capacity),
                suppress: HashMap::new(),
                wheel: ExpiryWheel::new(),
                stats: RegistryStats::default(),
                config,
            })),
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> RegistryConfig {
        self.inner.borrow().config.clone()
    }

    // ------------------------------------------------------------------
    // Advert records
    // ------------------------------------------------------------------

    /// Records an advertisement stream: alive adverts insert or refresh a
    /// [`ServiceRecord`]; byebyes remove it.
    pub fn record_advert(
        &self,
        origin: SdpProtocol,
        stream: &EventStream,
        now: SimTime,
    ) -> AdvertDisposition {
        let mut inner = self.inner.borrow_mut();
        let Some(key) = record::advert_key(stream) else {
            return AdvertDisposition::Ignored;
        };
        if stream.is_byebye() {
            return match inner.store.remove(origin, &key) {
                Some(_) => {
                    inner.stats.records_removed += 1;
                    AdvertDisposition::Removed
                }
                None => AdvertDisposition::NotPresent,
            };
        }
        let default_ttl = inner.config.default_advert_ttl;
        let Some(record) = ServiceRecord::from_advert(origin, stream, now, default_ttl) else {
            return AdvertDisposition::Ignored;
        };
        let expires = record.expires_at();
        let (slot, outcome) = inner.store.upsert(record);
        if let Some(at) = expires {
            let generation = inner.store.generation(slot);
            inner.wheel.arm(at, Target::Advert { slot, generation });
        }
        match outcome {
            InsertOutcome::Inserted => {
                inner.stats.records_inserted += 1;
                AdvertDisposition::Recorded
            }
            InsertOutcome::Refreshed => {
                inner.stats.records_refreshed += 1;
                AdvertDisposition::Refreshed
            }
            InsertOutcome::Evicted(_) => {
                inner.stats.records_inserted += 1;
                inner.stats.records_evicted += 1;
                AdvertDisposition::Recorded
            }
        }
    }

    /// Number of live (non-expired) service records.
    pub fn record_count(&self) -> usize {
        self.inner.borrow().store.len()
    }

    /// The live record identified by `(origin, key)`, if any.
    pub fn record(&self, origin: SdpProtocol, key: &str, now: SimTime) -> Option<ServiceRecord> {
        self.inner.borrow().store.get(origin, key).filter(|r| !r.is_expired(now)).cloned()
    }

    /// True when a live record of this canonical type exists.
    pub fn contains_type(&self, canonical_type: &str, now: SimTime) -> bool {
        self.inner.borrow().store.of_type(canonical_type).any(|r| !r.is_expired(now))
    }

    /// Live records of one canonical type, in insertion order.
    pub fn records_of_type(&self, canonical_type: &str, now: SimTime) -> Vec<ServiceRecord> {
        self.inner
            .borrow()
            .store
            .of_type(canonical_type)
            .filter(|r| !r.is_expired(now))
            .cloned()
            .collect()
    }

    /// Number of live records announced by one protocol.
    pub fn record_count_by_origin(&self, origin: SdpProtocol, now: SimTime) -> usize {
        self.inner.borrow().store.of_origin(origin).filter(|r| !r.is_expired(now)).count()
    }

    /// The earliest-registered live record advertising `endpoint`, if
    /// any (several protocols may announce the same endpoint).
    pub fn record_by_endpoint(&self, endpoint: &str, now: SimTime) -> Option<ServiceRecord> {
        self.inner.borrow().store.by_endpoint(endpoint).find(|r| !r.is_expired(now)).cloned()
    }

    /// Every live advert as `(origin, stream)`, in deterministic slab
    /// order (the active mode re-advertises these).
    pub fn adverts(&self, now: SimTime) -> Vec<(SdpProtocol, EventStream)> {
        self.inner
            .borrow()
            .store
            .iter()
            .filter(|(_, r)| !r.is_expired(now))
            .map(|(_, r)| (r.origin(), r.advert().clone()))
            .collect()
    }

    // ------------------------------------------------------------------
    // Response cache
    // ------------------------------------------------------------------

    /// Stores a response stream for `canonical_type` (LRU-bounded; the
    /// entry expires after the configured cache TTL).
    pub fn warm(&self, canonical_type: &str, response: EventStream, now: SimTime) {
        let mut inner = self.inner.borrow_mut();
        let expires = now + inner.config.cache_ttl;
        let (slot, evicted) =
            inner.cache.insert(canonical_type.to_owned(), CachedResponse { response, expires });
        if evicted.is_some() {
            inner.stats.cache_evictions += 1;
        }
        let generation = inner.cache.generation(slot);
        inner.wheel.arm(expires, Target::Cache { slot, generation });
    }

    /// Answers a lookup from the cache, counting a hit or a miss. Expired
    /// entries are dropped on access (lazy expiry).
    pub fn cached_response(&self, canonical_type: &str, now: SimTime) -> Option<EventStream> {
        let mut inner = self.inner.borrow_mut();
        let key = canonical_type.to_owned();
        match inner.cache.get(&key) {
            Some(entry) if entry.expires > now => {
                let response = entry.response.clone();
                inner.stats.cache_hits += 1;
                Some(response)
            }
            Some(_) => {
                inner.cache.remove(&key);
                inner.stats.cache_expired += 1;
                inner.stats.cache_misses += 1;
                None
            }
            None => {
                inner.stats.cache_misses += 1;
                None
            }
        }
    }

    /// True when a live cache entry exists for this type (does not touch
    /// recency or counters).
    pub fn cache_contains(&self, canonical_type: &str, now: SimTime) -> bool {
        self.inner.borrow().cache.peek(&canonical_type.to_owned()).is_some_and(|c| c.expires > now)
    }

    /// Number of cache entries currently held (live or pending expiry).
    pub fn cache_len(&self) -> usize {
        self.inner.borrow().cache.len()
    }

    /// Canonical types with a live cache entry, in deterministic slab
    /// order.
    pub fn cached_types(&self, now: SimTime) -> Vec<String> {
        self.inner
            .borrow()
            .cache
            .iter()
            .filter(|(_, c)| c.expires > now)
            .map(|(k, _)| k.clone())
            .collect()
    }

    // ------------------------------------------------------------------
    // Suppression window
    // ------------------------------------------------------------------

    /// True while requests for this type are inside the suppression
    /// window armed by [`ServiceRegistry::mark_bridged`].
    pub fn suppression_active(&self, canonical_type: &str, now: SimTime) -> bool {
        self.inner.borrow().suppress.get(canonical_type).is_some_and(|until| *until > now)
    }

    /// Arms the suppression window for this type until `until`.
    pub fn mark_bridged(&self, canonical_type: &str, until: SimTime) {
        self.inner.borrow_mut().suppress.insert(canonical_type.to_owned(), until);
    }

    // ------------------------------------------------------------------
    // Bridge projections
    // ------------------------------------------------------------------

    /// The projection a unit minted for `(protocol, key)`, if any.
    pub fn projection(&self, protocol: SdpProtocol, key: &str) -> Option<Projection> {
        self.inner.borrow_mut().projections.get(&(protocol, key.to_owned())).cloned()
    }

    /// Stores (or replaces) the projection for `(protocol, key)`.
    pub fn set_projection(&self, protocol: SdpProtocol, key: &str, projection: Projection) {
        self.inner.borrow_mut().projections.insert((protocol, key.to_owned()), projection);
    }

    // ------------------------------------------------------------------
    // Expiry
    // ------------------------------------------------------------------

    /// Drops everything whose TTL elapsed by `now` and prunes stale
    /// suppression entries. Driven by the runtime's virtual-time sweep
    /// timer; reads also expire lazily, so calling this is a memory
    /// bound, not a correctness requirement.
    pub fn sweep(&self, now: SimTime) -> SweepReport {
        self.inner.borrow_mut().sweep(now)
    }

    /// The earliest pending expiry deadline, if any (the runtime schedules
    /// its next sweep timer here).
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut inner = self.inner.borrow_mut();
        let RegistryInner { wheel, store, cache, .. } = &mut *inner;
        wheel.next_deadline(|target| match *target {
            Target::Advert { slot, generation } => store.generation(slot) == generation,
            Target::Cache { slot, generation } => cache.generation(slot) == generation,
        })
    }

    /// Snapshot of the registry's counters.
    pub fn stats(&self) -> RegistryStats {
        self.inner.borrow().stats
    }
}

impl std::fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("ServiceRegistry")
            .field("records", &inner.store.len())
            .field("record_capacity", &inner.store.capacity())
            .field("cached_responses", &inner.cache.len())
            .field("cache_capacity", &inner.cache.capacity())
            .field("armed_deadlines", &inner.wheel.armed())
            .field("stats", &inner.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn alive(ty: &str, url: &str, ttl: Option<u32>) -> EventStream {
        let mut body =
            vec![Event::ServiceAlive, Event::ServiceType(ty.into()), Event::ResServUrl(url.into())];
        if let Some(t) = ttl {
            body.push(Event::ResTtl(t));
        }
        EventStream::framed(body)
    }

    fn byebye(ty: &str, url: &str) -> EventStream {
        EventStream::framed(vec![
            Event::ServiceByeBye,
            Event::ServiceType(ty.into()),
            Event::ResServUrl(url.into()),
        ])
    }

    fn response(ty: &str) -> EventStream {
        EventStream::framed(vec![
            Event::ServiceResponse,
            Event::ResOk,
            Event::ServiceType(ty.into()),
            Event::ResServUrl(format!("soap://host/{ty}")),
        ])
    }

    #[test]
    fn advert_lifecycle_recorded_refreshed_removed() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        let t = SimTime::from_secs(1);
        assert_eq!(
            reg.record_advert(SdpProtocol::Slp, &alive("clock", "slp://a", Some(60)), t),
            AdvertDisposition::Recorded
        );
        assert_eq!(
            reg.record_advert(SdpProtocol::Slp, &alive("clock", "slp://a", Some(60)), t),
            AdvertDisposition::Refreshed
        );
        assert_eq!(reg.record_count(), 1);
        assert!(reg.contains_type("clock", t));
        assert_eq!(
            reg.record_advert(SdpProtocol::Slp, &byebye("clock", "slp://a"), t),
            AdvertDisposition::Removed
        );
        assert_eq!(reg.record_count(), 0);
        assert_eq!(reg.stats().records_removed, 1);
        // A second byebye finds nothing but is still acknowledged, so the
        // runtime can forward the retraction in active mode.
        assert_eq!(
            reg.record_advert(SdpProtocol::Slp, &byebye("clock", "slp://a"), t),
            AdvertDisposition::NotPresent
        );
        assert_eq!(reg.stats().records_removed, 1, "nothing double-counted");
    }

    #[test]
    fn ttl_expiry_is_exact_and_swept() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        reg.record_advert(SdpProtocol::Upnp, &alive("clock", "soap://b", Some(10)), SimTime::ZERO);
        assert!(reg.contains_type("clock", SimTime::from_secs(9)));
        // Lazy: reads past the deadline already miss.
        assert!(!reg.contains_type("clock", SimTime::from_secs(10)));
        // Sweep: memory is reclaimed.
        assert_eq!(reg.next_deadline(), Some(SimTime::from_secs(10)));
        let report = reg.sweep(SimTime::from_secs(10));
        assert_eq!(report.records_expired, 1);
        assert_eq!(reg.record_count(), 0);
        assert_eq!(reg.next_deadline(), None);
    }

    #[test]
    fn refresh_extends_ttl_and_stales_old_deadline() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        reg.record_advert(SdpProtocol::Slp, &alive("clock", "slp://a", Some(5)), SimTime::ZERO);
        reg.record_advert(
            SdpProtocol::Slp,
            &alive("clock", "slp://a", Some(60)),
            SimTime::from_secs(4),
        );
        // The old t=5 deadline is stale; sweeping at t=6 must not drop it.
        let report = reg.sweep(SimTime::from_secs(6));
        assert_eq!(report.records_expired, 0);
        assert!(reg.contains_type("clock", SimTime::from_secs(6)));
        assert_eq!(reg.next_deadline(), Some(SimTime::from_secs(64)));
    }

    #[test]
    fn capacity_bound_evicts() {
        let config = RegistryConfig { advert_capacity: 2, ..RegistryConfig::default() };
        let reg = ServiceRegistry::new(config);
        for i in 0..5 {
            reg.record_advert(
                SdpProtocol::Slp,
                &alive(&format!("t{i}"), &format!("u://{i}"), None),
                SimTime::ZERO,
            );
        }
        assert_eq!(reg.record_count(), 2);
        assert_eq!(reg.stats().records_evicted, 3);
        assert!(reg.contains_type("t4", SimTime::ZERO));
        assert!(!reg.contains_type("t0", SimTime::ZERO));
    }

    #[test]
    fn cache_counts_hits_misses_expiry() {
        let config =
            RegistryConfig { cache_ttl: Duration::from_secs(30), ..RegistryConfig::default() };
        let reg = ServiceRegistry::new(config);
        let t = SimTime::from_secs(1);
        assert!(reg.cached_response("clock", t).is_none());
        reg.warm("clock", response("clock"), t);
        assert!(reg.cached_response("clock", SimTime::from_secs(30)).is_some());
        assert!(reg.cached_response("clock", SimTime::from_secs(31)).is_none(), "expired");
        let stats = reg.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.cache_expired, 1);
        assert_eq!(reg.cache_len(), 0, "expired entry dropped on access");
    }

    #[test]
    fn cache_lru_eviction_at_capacity() {
        let config = RegistryConfig { cache_capacity: 2, ..RegistryConfig::default() };
        let reg = ServiceRegistry::new(config);
        let t = SimTime::ZERO;
        reg.warm("a", response("a"), t);
        reg.warm("b", response("b"), t);
        assert!(reg.cached_response("a", t).is_some()); // refresh "a"
        reg.warm("c", response("c"), t);
        assert_eq!(reg.stats().cache_evictions, 1);
        assert!(reg.cache_contains("a", t));
        assert!(!reg.cache_contains("b", t), "LRU victim");
        assert!(reg.cache_contains("c", t));
    }

    #[test]
    fn suppression_window_expires_with_time() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        reg.mark_bridged("clock", SimTime::from_millis(600));
        assert!(reg.suppression_active("clock", SimTime::from_millis(599)));
        assert!(!reg.suppression_active("clock", SimTime::from_millis(600)));
        reg.sweep(SimTime::from_secs(1));
        assert!(!reg.suppression_active("clock", SimTime::ZERO), "pruned by sweep");
    }

    #[test]
    fn projections_are_shared_and_bounded() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        assert!(reg.projection(SdpProtocol::Upnp, "clock").is_none());
        reg.set_projection(
            SdpProtocol::Upnp,
            "clock",
            Projection {
                location: Some("http://gw:4104/bridged/1/description.xml".into()),
                usn: Some("uuid:indiss-bridged-1".into()),
                ..Projection::default()
            },
        );
        let p = reg.projection(SdpProtocol::Upnp, "clock").unwrap();
        assert_eq!(p.usn.as_deref(), Some("uuid:indiss-bridged-1"));
        assert!(reg.projection(SdpProtocol::Slp, "clock").is_none(), "scoped per protocol");
    }

    #[test]
    fn adverts_snapshot_is_deterministic_insertion_order() {
        let reg = ServiceRegistry::new(RegistryConfig::default());
        for (i, p) in
            [SdpProtocol::Slp, SdpProtocol::Upnp, SdpProtocol::Jini].into_iter().enumerate()
        {
            reg.record_advert(
                p,
                &alive(&format!("t{i}"), &format!("u://{i}"), None),
                SimTime::ZERO,
            );
        }
        let order: Vec<SdpProtocol> =
            reg.adverts(SimTime::ZERO).into_iter().map(|(p, _)| p).collect();
        assert_eq!(order, vec![SdpProtocol::Slp, SdpProtocol::Upnp, SdpProtocol::Jini]);
    }
}
