//! The per-query retry/timeout/backoff state machine for the cold
//! path (the hostile-world robustness layer's bridge-side seam).
//!
//! A bridged request that reaches [`crate::WarmDecision::Bridge`] used
//! to be fire-and-forget: the runtime fanned the query out to every
//! foreign unit once and hoped a reply came back. Under loss (a
//! [`indiss_net::FaultTransport`], a congested LAN), a single dropped
//! native query or reply left the requester hanging forever — and a
//! custom replier (the Jini registrar path) never answered its client.
//!
//! [`QueryTracker`] replaces that with a small deterministic state
//! machine per query:
//!
//! * each fan-out **attempt** arms a virtual-time deadline
//!   ([`crate::IndissConfig::query_timeout`], doubling per attempt and
//!   capped at 8×, plus a deterministic jitter derived from the
//!   service type so co-located gateways do not retransmit in
//!   lockstep);
//! * a deadline that fires with no winner **retries** the fan-out, at
//!   most [`crate::IndissConfig::query_retries`] times
//!   ([`crate::BridgeStats::queries_retried`]);
//! * when the last deadline fires the query **degrades gracefully**
//!   ([`crate::BridgeStats::queries_exhausted`]): a stale registry
//!   answer if one survives
//!   ([`crate::ServiceRegistry::stale_response`], counted in
//!   [`crate::BridgeStats::stale_served`]), a negative `408` reply
//!   otherwise — either way the requester is answered.
//!
//! Determinism: everything here is virtual-time scheduling plus pure
//! arithmetic. The backoff jitter hashes the canonical type and the
//! attempt index (no RNG, no wall clock), so a seeded simulation —
//! including one behind a fault-injecting transport — replays the
//! exact retry schedule.
//!
//! Lock-order rule: the tracker holds **no** lock of its own and never
//! calls back into the runtime's `IndissInner` mutex; it captures the
//! cheap handles it needs (`ServiceRegistry`, `Arc<BridgeCounters>`,
//! unit `Rc`s) at construction, so deadline callbacks can run from the
//! world's event loop regardless of what the runtime is doing.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use indiss_net::{Completion, World};

use crate::event::{Event, EventStream, SdpProtocol};
use crate::gateway::BridgeCounters;
use crate::obs::{Phase, Tracer};
use crate::registry::ServiceRegistry;
use crate::symbol::Symbol;
use crate::units::Unit;

/// Backoff growth stops at `initial × 2^3`: past that, a retry is
/// almost certainly racing the degradation deadline, not the network.
const BACKOFF_CAP_DOUBLINGS: u32 = 3;

/// One in-flight bridged query's retry state machine. Lives on the
/// simulation thread (`Rc`, like the [`Completion`]s it arbitrates);
/// the deterministic wall-clock analogue on the wire front-end is the
/// *requester's* retransmit loop — the gateway side is stateless there.
pub(crate) struct QueryTracker {
    origin: SdpProtocol,
    request: EventStream,
    stype: Option<Symbol>,
    units: Vec<(SdpProtocol, Rc<dyn Unit>)>,
    registry: ServiceRegistry,
    counters: Arc<BridgeCounters>,
    /// First response stream carrying a service URL wins; the
    /// degradation path completes it too, so every query terminates.
    winner: Completion<EventStream>,
    timeout: Duration,
    retries: u32,
    /// Span recorder: each retry lands as a zero-width
    /// [`Phase::Retry`] span at the deadline's virtual time, lane =
    /// the type's registry shard (matching the classify span's lane).
    tracer: Tracer,
}

impl QueryTracker {
    #[allow(clippy::too_many_arguments)] // plain captures, built in one place
    pub(crate) fn new(
        origin: SdpProtocol,
        request: EventStream,
        stype: Option<Symbol>,
        units: Vec<(SdpProtocol, Rc<dyn Unit>)>,
        registry: ServiceRegistry,
        counters: Arc<BridgeCounters>,
        winner: Completion<EventStream>,
        timeout: Duration,
        retries: u32,
        tracer: Tracer,
    ) -> Rc<QueryTracker> {
        Rc::new(QueryTracker {
            origin,
            request,
            stype,
            units,
            registry,
            counters,
            winner,
            timeout,
            retries,
            tracer,
        })
    }

    /// Launches the first fan-out attempt and arms its deadline.
    pub(crate) fn start(self: &Rc<Self>, world: &World) {
        self.attempt(world, 0);
    }

    /// One fan-out attempt: query every foreign unit; the first reply
    /// with a service URL completes the winner, and an all-units-empty
    /// round completes it with the (negative) last reply — that is a
    /// definitive answer, not a timeout, so it is never retried.
    fn attempt(self: &Rc<Self>, world: &World, index: u32) {
        let expected = self.units.len();
        let failures = Rc::new(RefCell::new(0usize));
        for (_, unit) in &self.units {
            let reply: Completion<EventStream> = Completion::new();
            unit.execute_query(world, &self.request, reply.clone());
            let winner = self.winner.clone();
            let failures = Rc::clone(&failures);
            reply.subscribe(move |response| {
                if response.service_url().is_some() {
                    winner.complete(response);
                } else {
                    let mut f = failures.borrow_mut();
                    *f += 1;
                    if *f == expected {
                        winner.complete(response);
                    }
                }
            });
        }
        let tracker = Rc::clone(self);
        world.schedule_in(self.backoff(index), move |w| tracker.deadline(w, index));
    }

    /// A deadline fired. Completed queries make this a no-op (virtual
    /// timers cannot be cancelled); otherwise retry or degrade.
    fn deadline(self: &Rc<Self>, world: &World, index: u32) {
        if self.winner.is_complete() {
            return;
        }
        if index < self.retries {
            self.counters.add_queries_retried();
            if self.tracer.enabled() {
                let lane = self.stype.clone().map_or(0, |t| self.registry.shard_of(t));
                let now = world.now();
                self.tracer.record_at(lane, Phase::Retry, now, now);
            }
            self.attempt(world, index + 1);
            return;
        }
        self.counters.add_queries_exhausted();
        let stale = self.stype.clone().and_then(|t| self.registry.stale_response(t));
        match stale {
            Some(response) => {
                // Serve-stale-under-outage: the winner's subscriber
                // re-warms the cache with this answer, deliberately —
                // a request storm during the outage is then absorbed
                // by the warm path instead of retried per request.
                self.counters.add_stale_served();
                self.winner.complete(response);
            }
            None => {
                self.winner.complete(EventStream::framed(vec![
                    Event::NetType(self.origin),
                    Event::ServiceResponse,
                    Event::ResErr(408),
                ]));
            }
        }
    }

    /// The deadline for attempt `index`: `timeout × 2^index` (capped at
    /// 8×) plus a deterministic jitter in `[0, base/8)` hashed from the
    /// canonical type and the attempt — no RNG, so seeded replays see
    /// the identical schedule, while gateways bridging different types
    /// spread their retransmits.
    fn backoff(&self, index: u32) -> Duration {
        let base = self
            .timeout
            .saturating_mul(1 << index.min(BACKOFF_CAP_DOUBLINGS))
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ u64::from(index);
        if let Some(t) = &self.stype {
            for b in t.as_str().bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        let span = base / 8;
        let jitter = if span == 0 { 0 } else { h % span };
        Duration::from_nanos(base.saturating_add(jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(timeout_ms: u64, stype: Option<&str>) -> Rc<QueryTracker> {
        QueryTracker::new(
            SdpProtocol::Slp,
            EventStream::framed(vec![]),
            stype.map(Symbol::intern),
            Vec::new(),
            ServiceRegistry::new(crate::registry::RegistryConfig::default()),
            Arc::new(BridgeCounters::default()),
            Completion::new(),
            Duration::from_millis(timeout_ms),
            2,
            Tracer::disabled(),
        )
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let t = tracker(100, None);
        let steps: Vec<u128> = (0..6).map(|i| t.backoff(i).as_nanos() / 1_000_000).collect();
        // No type ⇒ jitter is a pure hash of the index; still bounded
        // by base/8, so the doubling shape (and the 8× cap) dominates.
        assert!(steps[0] >= 100 && steps[0] < 113, "attempt 0 ≈ timeout: {steps:?}");
        assert!(steps[1] >= 200 && steps[1] < 225, "attempt 1 ≈ 2×: {steps:?}");
        assert!(steps[3] >= 800 && steps[3] < 900, "attempt 3 ≈ 8×: {steps:?}");
        assert!(steps[5] >= 800 && steps[5] < 900, "capped past 8×: {steps:?}");
    }

    #[test]
    fn backoff_is_deterministic_and_type_spread() {
        let a = tracker(100, Some("clock"));
        let b = tracker(100, Some("clock"));
        let c = tracker(100, Some("printer"));
        assert_eq!(a.backoff(1), b.backoff(1), "same type, same schedule");
        assert_ne!(a.backoff(1), c.backoff(1), "different types spread");
    }
}
