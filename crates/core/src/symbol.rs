//! Interned string symbols for the event pipeline's high-churn payloads.
//!
//! Service types, UPnP search targets and USNs, and SLP scope lists are
//! parsed out of every datagram, cloned into every [`crate::Event`]
//! stream hop, and used as hash keys throughout the registry. Interning
//! them collapses all of that to a cheaply clonable [`Symbol`]: equal
//! strings intern to the *same* symbol, so cloning is a reference-count
//! bump, equality is a pointer compare, and hashing hashes one machine
//! word instead of the string bytes.
//!
//! The interner is process-wide so that symbol identity — and therefore
//! `Eq`/`Hash` — holds across threads: `Symbol` is `Send + Sync`, which
//! is what lets event streams and registry shards move between the
//! multi-threaded runtime's workers. The table itself is split into
//! [`INTERNER_SHARDS`] independently locked shards keyed by a content
//! hash, so concurrent workers interning on the per-datagram parse path
//! do not serialize on one mutex.
//!
//! # Garbage collection
//!
//! Symbols are reference counted (`Arc<str>` underneath). The interner
//! holds one reference per entry; every live `Symbol` holds another.
//! [`Symbol::collect`] drops every entry with no live symbol left, so
//! network-derived identities — fresh USNs under device churn, endpoint
//! URLs, the type names of requests that match nothing — are reclaimed
//! once the registry's TTL/capacity bounds let go of them, instead of
//! leaking for the process lifetime (the PR 2 design this replaces).
//! Collection also runs automatically, amortized: when a shard grows
//! past an adaptive watermark, the *next* intern on that shard sweeps it
//! first. Canonical identity is preserved across collections: an entry
//! is only reclaimed when no symbol references it, so two live symbols
//! for equal contents are always pointer-identical.
//!
//! [`Symbol::interned_count`]/[`Symbol::interned_bytes`] expose the
//! table's size for monitoring; the `registry_churn` bench scenario
//! asserts the bytes stay bounded under advert churn.
//!
//! ## Concurrency audit (sweep vs. concurrent intern)
//!
//! The UDP front-end's recv threads intern network-derived strings
//! while any thread may call [`Symbol::collect`]. This is safe by two
//! invariants, both enforced structurally:
//!
//! 1. **Every intern happens under its shard's lock**, including the
//!    clone that hands the caller its reference — so by the time the
//!    lock is released, any symbol that escaped the interner holds a
//!    reference the sweep can observe.
//! 2. **The sweep reclaims by refcount, not by content**: under the
//!    same shard lock, it drops exactly the entries whose only
//!    remaining reference is the interner's own
//!    (`Arc::strong_count == 1`). An entry some live symbol still
//!    points at is never touched, so canonical identity (equal
//!    contents ⇒ pointer-identical symbols) holds at every instant,
//!    even mid-sweep. A symbol whose last clone is being dropped
//!    concurrently is at worst kept one extra round — never freed
//!    early.
//!
//! The regression test
//! `tests/sharding.rs::interner_collect_races_with_recv_thread_interning`
//! runs recv-thread-shaped intern churn against a `collect()` loop and
//! asserts the identity invariant throughout.

use std::collections::HashSet;
use std::fmt;
use std::hash::{BuildHasher, Hash, Hasher, RandomState};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of independently locked interner shards. A power of two so
/// shard routing is a mask; 16 keeps contention negligible for any
/// plausible worker count while costing a few hundred bytes of table.
const INTERNER_SHARDS: usize = 16;

/// A shard never auto-collects below this many entries (the steady
/// vocabulary easily fits; sweeping tiny tables is pure overhead).
const MIN_WATERMARK: usize = 512;

struct InternerShard {
    table: HashSet<Arc<str>>,
    /// Auto-GC trigger: when `table.len()` reaches this, the next intern
    /// sweeps the shard first and re-arms the watermark at twice the
    /// surviving population (so collection cost is amortized O(1) per
    /// intern even under adversarial churn).
    watermark: usize,
}

struct Interner {
    shards: [Mutex<InternerShard>; INTERNER_SHARDS],
    hasher: RandomState,
}

impl Interner {
    fn shard_for(&self, s: &str) -> &Mutex<InternerShard> {
        let idx = self.hasher.hash_one(s) as usize & (INTERNER_SHARDS - 1);
        &self.shards[idx]
    }
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        shards: std::array::from_fn(|_| {
            Mutex::new(InternerShard { table: HashSet::new(), watermark: MIN_WATERMARK })
        }),
        hasher: RandomState::new(),
    })
}

/// Sweeps one locked shard: drops every entry no live symbol references
/// (the interner's own reference is the only one left) and re-arms the
/// watermark. Returns how many entries were reclaimed.
fn sweep_shard(shard: &mut InternerShard) -> usize {
    let before = shard.table.len();
    shard.table.retain(|entry| Arc::strong_count(entry) > 1);
    shard.watermark = (shard.table.len() * 2).max(MIN_WATERMARK);
    before - shard.table.len()
}

/// An interned, immutable string. Cloning bumps a reference count;
/// equality and hashing are pointer-sized; derefs to `str` for use
/// anywhere a string slice fits. `Send + Sync`: symbols flow freely
/// between the runtime's worker threads.
#[derive(Clone, Eq)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Interns `s`, returning the canonical symbol for its contents.
    /// Repeated interns of equal strings return identical symbols (for
    /// as long as at least one stays live; see [`Symbol::collect`]).
    pub fn intern(s: &str) -> Symbol {
        let mut shard = interner().shard_for(s).lock().expect("interner poisoned");
        if let Some(canonical) = shard.table.get(s) {
            return Symbol(Arc::clone(canonical));
        }
        if shard.table.len() >= shard.watermark {
            sweep_shard(&mut shard);
        }
        let entry: Arc<str> = Arc::from(s);
        shard.table.insert(Arc::clone(&entry));
        Symbol(entry)
    }

    /// Interns an owned string. (The allocation cannot be reused — the
    /// canonical entry is a shared `Arc<str>` — but the owned form is
    /// kept for API compatibility and call-site convenience.)
    pub fn from_owned(s: String) -> Symbol {
        Symbol::intern(&s)
    }

    /// Interns the ASCII-lowercase form of `s`, skipping the lowering
    /// allocation when `s` is already lowercase (the common case on the
    /// per-datagram canonicalization path).
    pub fn intern_lowercase(s: &str) -> Symbol {
        if s.bytes().any(|b| b.is_ascii_uppercase()) {
            Symbol::from_owned(s.to_ascii_lowercase())
        } else {
            Symbol::intern(s)
        }
    }

    /// The interned string, borrowed from this symbol.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Reclaims every interned string no live [`Symbol`] references;
    /// returns how many entries were dropped. Safe to call at any time
    /// from any thread — an entry some symbol still points at is never
    /// touched, so canonical identity is preserved. Collection also
    /// happens automatically as the table grows; this explicit hook
    /// exists for tests, benchmarks and quiesce points.
    pub fn collect() -> usize {
        interner()
            .shards
            .iter()
            .map(|shard| sweep_shard(&mut shard.lock().expect("interner poisoned")))
            .sum()
    }

    /// Number of distinct strings currently interned (process-wide).
    pub fn interned_count() -> usize {
        interner()
            .shards
            .iter()
            .map(|shard| shard.lock().expect("interner poisoned").table.len())
            .sum()
    }

    /// Total bytes of interned string data currently held — bounded
    /// under churn, because unreferenced entries are collected.
    pub fn interned_bytes() -> usize {
        interner()
            .shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .expect("interner poisoned")
                    .table
                    .iter()
                    .map(|s| s.len())
                    .sum::<usize>()
            })
            .sum()
    }
}

impl Default for Symbol {
    /// The empty symbol.
    fn default() -> Symbol {
        Symbol::intern("")
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Symbol) -> bool {
        // Interning guarantees one canonical allocation per live
        // contents, so pointer identity is string equality.
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (Arc::as_ptr(&self.0) as *const u8 as usize).hash(state);
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    /// Orders by contents (not pointer), keeping sorted views
    /// deterministic across runs.
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl std::ops::Deref for Symbol {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::from_owned(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(sym: &Symbol) -> u64 {
        let mut h = DefaultHasher::new();
        sym.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_strings_intern_to_identical_symbols() {
        let a = Symbol::intern("clock");
        let b = Symbol::intern("clock");
        let c = Symbol::from_owned("clock".to_owned());
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert!(std::ptr::eq(a.as_str(), b.as_str()), "one canonical allocation");
    }

    #[test]
    fn distinct_strings_intern_distinct() {
        assert_ne!(Symbol::intern("clock"), Symbol::intern("printer"));
    }

    #[test]
    fn symbols_behave_like_strings() {
        let s = Symbol::intern("service:clock");
        assert_eq!(s, "service:clock");
        assert_eq!(s.len(), 13);
        assert!(s.starts_with("service:"));
        assert_eq!(s.to_string(), "service:clock");
        assert_eq!(format!("{s:?}"), "\"service:clock\"");
    }

    #[test]
    fn ordering_is_by_contents() {
        let mut v = [Symbol::intern("b"), Symbol::intern("a"), Symbol::intern("c")];
        v.sort();
        assert_eq!(v.iter().map(|s| s.as_str()).collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }

    #[test]
    fn symbols_are_identical_across_threads() {
        let here = Symbol::intern("cross-thread-type");
        let there =
            std::thread::spawn(|| Symbol::intern("cross-thread-type")).join().expect("thread");
        assert_eq!(here, there, "process-wide identity");
    }

    /// The GC reclaims entries no live symbol references and keeps the
    /// referenced ones — and a re-intern after collection still yields a
    /// working canonical symbol.
    #[test]
    fn collect_reclaims_dead_symbols_and_keeps_live_ones() {
        let keep = Symbol::intern("gc-test-keep");
        {
            let _transient = Symbol::intern("gc-test-transient");
        }
        Symbol::collect();
        let count_after = {
            // `keep` must have survived: a fresh intern is identical.
            let again = Symbol::intern("gc-test-keep");
            assert_eq!(keep, again);
            Symbol::interned_count()
        };
        // The transient entry is gone: re-interning it grows the table
        // again (it had really been removed, not merely hidden).
        let revived = Symbol::intern("gc-test-transient");
        assert_eq!(revived, "gc-test-transient");
        assert!(Symbol::interned_count() > count_after - 1, "table live again");
    }

    /// Churn through many distinct network-derived strings: the table
    /// stays bounded, both via explicit collection and via the watermark
    /// auto-GC. One test (not two) on purpose: both phases churn the
    /// process-wide interner, and running them on concurrent harness
    /// threads would make each other's byte measurements racy.
    #[test]
    fn interner_is_bounded_under_churn() {
        // Phase 1: explicit collection. Settle the steady vocabulary
        // first.
        Symbol::collect();
        let baseline = Symbol::interned_bytes();
        for i in 0..20_000 {
            let _sym = Symbol::intern(&format!("uuid:churn-device-{i}::urn:service:{i}"));
        }
        let reclaimed = Symbol::collect();
        assert!(reclaimed > 0, "churned symbols were collectable");
        let after = Symbol::interned_bytes();
        // Other tests may intern a handful of (live) symbols
        // concurrently, so allow slack — but nothing near the ~800 KB
        // the 20k churned strings would have leaked.
        assert!(
            after < baseline + 200_000,
            "interner grew from {baseline} to {after} bytes despite collection"
        );
        // Phase 2: the watermark auto-GC bounds an unattended interner
        // too. 50k dead strings of ~16 B would be ≥ 800 KB if leaked;
        // the sweep must fire many times along the way. (The bound is on
        // the high-water mark the watermarks allow, not on perfect
        // emptiness.)
        for i in 0..50_000 {
            let _sym = Symbol::intern(&format!("auto-gc-probe-{i}"));
        }
        assert!(
            Symbol::interned_bytes() < 400_000,
            "auto-GC failed to bound the table: {} bytes",
            Symbol::interned_bytes()
        );
    }
}
