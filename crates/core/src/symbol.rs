//! Interned string symbols for the event pipeline's high-churn payloads.
//!
//! Service types, UPnP search targets and USNs, and SLP scope lists are
//! parsed out of every datagram, cloned into every [`crate::Event`]
//! stream hop, and used as hash keys throughout the registry. Interning
//! them collapses all of that to a copyable [`Symbol`]: equal strings
//! intern to the *same* symbol, so cloning is a pointer copy, equality is
//! a pointer compare, and hashing hashes one machine word instead of the
//! string bytes.
//!
//! The interner is process-wide (a mutex-guarded table) rather than
//! thread-local so that symbol identity — and therefore `Eq`/`Hash` —
//! holds across threads; this pre-paves the ROADMAP's multi-threaded
//! runtime, where event streams move between shards.
//!
//! **Memory tradeoff.** Interned strings are leaked and live for the
//! process lifetime. For the steady vocabulary (canonical types, scope
//! lists, search targets) that is exactly right; but some interned
//! inputs are network-derived and unbounded over time — fresh USNs from
//! device churn, endpoint URLs, and the type names of requests that
//! match nothing. The registry's stores are capacity-bounded, the
//! interner is not: a long-lived gateway on a hostile or high-churn
//! network grows it monotonically (at small per-entry cost, observable
//! via [`Symbol::interned_count`]/[`Symbol::interned_bytes`]). The
//! ROADMAP tracks the follow-on — an epoch/GC interner that drops
//! entries no live `Symbol` references — which can land behind this same
//! API.

use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, OnceLock};

/// An interned, immutable string. `Copy`, pointer-sized equality and
/// hashing; derefs to `str` for use anywhere a string slice fits.
#[derive(Clone, Copy, Eq)]
pub struct Symbol(&'static str);

fn interner() -> &'static Mutex<HashSet<&'static str>> {
    static INTERNER: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(HashSet::new()))
}

impl Symbol {
    /// Interns `s`, returning the canonical symbol for its contents.
    /// Repeated interns of equal strings return identical symbols.
    pub fn intern(s: &str) -> Symbol {
        let mut table = interner().lock().expect("interner poisoned");
        match table.get(s) {
            Some(&canonical) => Symbol(canonical),
            None => {
                let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
                table.insert(leaked);
                Symbol(leaked)
            }
        }
    }

    /// Interns an owned string, reusing its allocation when the symbol is
    /// new.
    pub fn from_owned(s: String) -> Symbol {
        let mut table = interner().lock().expect("interner poisoned");
        match table.get(s.as_str()) {
            Some(&canonical) => Symbol(canonical),
            None => {
                let leaked: &'static str = Box::leak(s.into_boxed_str());
                table.insert(leaked);
                Symbol(leaked)
            }
        }
    }

    /// Interns the ASCII-lowercase form of `s`, skipping the lowering
    /// allocation when `s` is already lowercase (the common case on the
    /// per-datagram canonicalization path).
    pub fn intern_lowercase(s: &str) -> Symbol {
        if s.bytes().any(|b| b.is_ascii_uppercase()) {
            Symbol::from_owned(s.to_ascii_lowercase())
        } else {
            Symbol::intern(s)
        }
    }

    /// The interned string. `'static`: symbols never expire.
    pub fn as_str(self) -> &'static str {
        self.0
    }

    /// Number of distinct strings interned so far (process-wide).
    pub fn interned_count() -> usize {
        interner().lock().expect("interner poisoned").len()
    }

    /// Total bytes of interned string data held for the process
    /// lifetime — the observable cost of the leak-based design.
    pub fn interned_bytes() -> usize {
        interner().lock().expect("interner poisoned").iter().map(|s| s.len()).sum()
    }
}

impl Default for Symbol {
    /// The empty symbol.
    fn default() -> Symbol {
        Symbol::intern("")
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Symbol) -> bool {
        // Interning guarantees one canonical allocation per contents, so
        // pointer identity is string equality.
        std::ptr::eq(self.0, other.0)
    }
}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (self.0.as_ptr() as usize).hash(state);
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    /// Orders by contents (not pointer), keeping sorted views
    /// deterministic across runs.
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        self.0.cmp(other.0)
    }
}

impl std::ops::Deref for Symbol {
    type Target = str;

    fn deref(&self) -> &str {
        self.0
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.0
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::from_owned(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.0, f)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(sym: Symbol) -> u64 {
        let mut h = DefaultHasher::new();
        sym.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_strings_intern_to_identical_symbols() {
        let a = Symbol::intern("clock");
        let b = Symbol::intern("clock");
        let c = Symbol::from_owned("clock".to_owned());
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(hash_of(a), hash_of(b));
        assert!(std::ptr::eq(a.as_str(), b.as_str()), "one canonical allocation");
    }

    #[test]
    fn distinct_strings_intern_distinct() {
        assert_ne!(Symbol::intern("clock"), Symbol::intern("printer"));
    }

    #[test]
    fn symbols_behave_like_strings() {
        let s = Symbol::intern("service:clock");
        assert_eq!(s, "service:clock");
        assert_eq!(s.len(), 13);
        assert!(s.starts_with("service:"));
        assert_eq!(s.to_string(), "service:clock");
        assert_eq!(format!("{s:?}"), "\"service:clock\"");
    }

    #[test]
    fn ordering_is_by_contents() {
        let mut v = [Symbol::intern("b"), Symbol::intern("a"), Symbol::intern("c")];
        v.sort();
        assert_eq!(v.iter().map(|s| s.as_str()).collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }

    #[test]
    fn symbols_are_identical_across_threads() {
        let here = Symbol::intern("cross-thread-type");
        let there =
            std::thread::spawn(|| Symbol::intern("cross-thread-type")).join().expect("thread");
        assert_eq!(here, there, "process-wide identity");
    }
}
