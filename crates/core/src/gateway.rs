//! The thread-safe warm path: one decision tree for "can this request be
//! answered from already-held knowledge?", shared by the deterministic
//! simulation runtime ([`crate::Indiss`]) and the multi-threaded
//! [`ThreadedGateway`].
//!
//! The paper's §4.3 best case — a request answered in ~0.1 ms from the
//! response cache — is a pure function of the [`ServiceRegistry`] plus
//! three checks (positive cache, negative cache, suppression window).
//! [`classify_request`] implements exactly that sequence; `Indiss` calls
//! it inline inside the single-threaded simulation, while
//! `ThreadedGateway` fans the same call out across a [`WorkerPool`]
//! whose lanes are the registry's canonical-type shards, so requests for
//! disjoint types are classified in parallel with no coordination
//! beyond the one shard lock each touch.
//!
//! Bridge statistics are [`BridgeCounters`] — plain atomics — so both
//! runtimes (and any number of worker threads) update one stats block
//! without a lock and without lost updates; the registry's own counters
//! are per-shard and merged on read.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use indiss_net::SimTime;

use crate::config::IndissConfig;
use crate::event::{EventStream, SdpProtocol};
use crate::obs::{Tracer, WallClock};
use crate::pool::WorkerPool;
use crate::registry::{RegistryConfig, ServiceRegistry};
use crate::runtime::BridgeStats;

/// Lock-free bridge-path counters, shared between a runtime handle and
/// its workers. The registry-side numbers (cache/negative/record
/// counters) live per shard in the [`ServiceRegistry`]; a full
/// [`BridgeStats`] snapshot merges both, see
/// [`BridgeCounters::snapshot`].
#[derive(Debug, Default)]
pub struct BridgeCounters {
    pub(crate) requests_bridged: AtomicU64,
    pub(crate) responses_composed: AtomicU64,
    pub(crate) adverts_recorded: AtomicU64,
    pub(crate) adverts_translated: AtomicU64,
    pub(crate) requests_suppressed: AtomicU64,
    pub(crate) queries_retried: AtomicU64,
    pub(crate) queries_exhausted: AtomicU64,
    pub(crate) stale_served: AtomicU64,
}

impl BridgeCounters {
    pub(crate) fn add_requests_bridged(&self) {
        self.requests_bridged.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_responses_composed(&self) {
        self.responses_composed.fetch_add(1, Ordering::Relaxed);
    }

    /// Bulk variant for batched reply flushes (one atomic add per
    /// flushed batch instead of one per reply).
    pub(crate) fn add_responses_composed_n(&self, n: u64) {
        self.responses_composed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_adverts_recorded(&self) {
        self.adverts_recorded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_adverts_translated(&self) {
        self.adverts_translated.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_requests_suppressed(&self) {
        self.requests_suppressed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_queries_retried(&self) {
        self.queries_retried.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_queries_exhausted(&self) {
        self.queries_exhausted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_stale_served(&self) {
        self.stale_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds these counters with `registry`'s per-shard counters into
    /// the public [`BridgeStats`] snapshot.
    pub(crate) fn snapshot(&self, registry: &ServiceRegistry) -> BridgeStats {
        let reg = registry.stats();
        BridgeStats {
            requests_bridged: self.requests_bridged.load(Ordering::Relaxed),
            responses_composed: self.responses_composed.load(Ordering::Relaxed),
            adverts_recorded: self.adverts_recorded.load(Ordering::Relaxed),
            adverts_translated: self.adverts_translated.load(Ordering::Relaxed),
            requests_suppressed: self.requests_suppressed.load(Ordering::Relaxed),
            queries_retried: self.queries_retried.load(Ordering::Relaxed),
            queries_exhausted: self.queries_exhausted.load(Ordering::Relaxed),
            stale_served: self.stale_served.load(Ordering::Relaxed),
            cache_hits: reg.cache_hits,
            remote_cache_hits: reg.remote_cache_hits,
            cache_misses: reg.cache_misses,
            cache_evictions: reg.cache_evictions,
            cache_expired: reg.cache_expired,
            negative_hits: reg.negative_hits,
            records_expired: reg.records_expired,
            records_evicted: reg.records_evicted,
        }
    }
}

/// What the warm path decided about one request.
#[derive(Debug, Clone, PartialEq)]
pub enum WarmDecision {
    /// Answered from the response cache; deliver this stream (a cheap
    /// clone of the shared buffer) to the requester.
    CacheHit(EventStream),
    /// A live "nothing found" memory covers this (origin, type): answer
    /// "still nothing" without fanning out.
    NegativeHit,
    /// Inside the suppression window for this type (likely an echo of
    /// bridged traffic): drop it.
    Suppressed,
    /// Nothing held: fan out to the foreign units. The suppression
    /// window for the type has been armed.
    Bridge,
}

/// Classifies one request against the registry — positive cache first,
/// then negative cache ("a recent fan-out for this (origin, type) found
/// nothing"), then the suppression window (multi-bridge echo guard) —
/// arming the window for answered/bridged requests. The registry runs
/// the whole sequence under the type's single shard lock
/// (`ServiceRegistry::warm_path`), so the decision is atomic even when
/// worker threads race on one type; this function adds the bridge-path
/// counters. This is *the* warm-path implementation: both runtimes call
/// it, so the simulation tests pin the semantics the threaded gateway
/// runs.
pub(crate) fn classify_request(
    registry: &ServiceRegistry,
    counters: &BridgeCounters,
    enable_cache: bool,
    suppress_window: Duration,
    origin: SdpProtocol,
    request: &EventStream,
    now: SimTime,
) -> WarmDecision {
    let stype = request.service_type_symbol();
    let decision = registry.warm_path(origin, stype, now, enable_cache, now + suppress_window);
    match decision {
        WarmDecision::Suppressed => counters.add_requests_suppressed(),
        WarmDecision::NegativeHit => {}
        WarmDecision::CacheHit(_) | WarmDecision::Bridge => counters.add_requests_bridged(),
    }
    decision
}

/// The shareable half of the gateway: registry + counters + warm-path
/// knobs, cheap to clone and `Send + Sync`, so worker jobs and request
/// sources carry one handle instead of four.
#[derive(Debug, Clone)]
pub struct GatewayCore {
    registry: ServiceRegistry,
    counters: Arc<BridgeCounters>,
    enable_cache: bool,
    suppress_window: Duration,
    tracer: Tracer,
}

impl GatewayCore {
    /// The shared registry (cheap clone; usable from any thread, e.g. to
    /// record adverts or pre-warm responses).
    pub fn registry(&self) -> ServiceRegistry {
        self.registry.clone()
    }

    /// The shared bridge-path counters (for in-crate request sources —
    /// the wire front-end — that account composed replies and recorded
    /// adverts exactly like the simulated runtime does).
    pub(crate) fn bridge_counters(&self) -> &BridgeCounters {
        &self.counters
    }

    /// Bridge statistics so far (atomic bridge-path counters merged with
    /// the registry's per-shard counters).
    pub fn stats(&self) -> BridgeStats {
        self.counters.snapshot(&self.registry)
    }

    /// The gateway's span recorder (a disabled no-op unless the config
    /// asked for tracing). Request sources — the wire front-end, the
    /// benches — clone this handle to stamp their own pipeline phases
    /// onto the same rings.
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// Classifies `request` on the calling thread — the warm-path
    /// decision tree shared with [`crate::Indiss`]. Deliberately does
    /// not stamp a span itself: request sources own the clock reads and
    /// record sampled `classify` spans around this call (see
    /// [`crate::NetDriver`]), keeping the uninstrumented path free of
    /// tracing cost.
    pub fn classify(
        &self,
        origin: SdpProtocol,
        request: &EventStream,
        now: SimTime,
    ) -> WarmDecision {
        classify_request(
            &self.registry,
            &self.counters,
            self.enable_cache,
            self.suppress_window,
            origin,
            request,
            now,
        )
    }
}

/// The multi-threaded warm-path runtime: a sharded [`ServiceRegistry`]
/// served by a [`WorkerPool`] whose lanes are the registry's shards.
///
/// This is the handle a production (non-simulated) deployment scales
/// across cores with: adverts and responses warm the shared registry
/// from any thread, and [`ThreadedGateway::submit`] classifies requests
/// on the worker owning the request type's shard, preserving per-type
/// ordering while disjoint types proceed in parallel. The deterministic
/// simulation keeps using [`crate::Indiss`] (the virtual-time event loop
/// is single-threaded by design); both share `classify_request` and
/// the [`ServiceRegistry`], so their warm-path semantics are identical
/// by construction.
///
/// `ThreadedGateway` is `Send + Sync`; clones of
/// [`ThreadedGateway::registry`] and [`ThreadedGateway::core`] may be
/// used concurrently with submissions.
#[derive(Debug)]
pub struct ThreadedGateway {
    core: GatewayCore,
    pool: WorkerPool,
}

impl ThreadedGateway {
    /// Creates a gateway over a fresh registry with `workers` threads.
    ///
    /// `config.shards` should be at least `workers` (ideally a small
    /// multiple) so every worker owns at least one lane; this is not
    /// enforced — fewer shards than workers merely idles the excess
    /// workers.
    pub fn new(config: RegistryConfig, workers: usize) -> ThreadedGateway {
        ThreadedGateway::with_tracer(config, workers, Tracer::disabled())
    }

    /// Creates a gateway whose pipeline records spans into `tracer`:
    /// worker jobs, classifications and whatever the request source
    /// stamps through [`GatewayCore::tracer`].
    pub fn with_tracer(config: RegistryConfig, workers: usize, tracer: Tracer) -> ThreadedGateway {
        ThreadedGateway {
            core: GatewayCore {
                registry: ServiceRegistry::new(config),
                counters: Arc::new(BridgeCounters::default()),
                enable_cache: true,
                suppress_window: Duration::from_millis(600),
                tracer: tracer.clone(),
            },
            pool: WorkerPool::with_tracer(workers, tracer),
        }
    }

    /// Creates a gateway from an [`IndissConfig`], honoring its
    /// `shards`, `workers`, cache, suppression and tracing knobs (a
    /// `trace = true` config gets one span ring per worker, stamped
    /// from a monotonic wall clock).
    pub fn from_config(config: &IndissConfig) -> ThreadedGateway {
        let tracer = if config.trace {
            let ports: Vec<u16> = config.protocols().iter().map(|p| p.port()).collect();
            Tracer::new(config.trace_capacity, config.workers, &ports, Arc::new(WallClock::new()))
        } else {
            Tracer::disabled()
        };
        ThreadedGateway {
            core: GatewayCore {
                registry: ServiceRegistry::new(config.registry_config()),
                counters: Arc::new(BridgeCounters::default()),
                enable_cache: config.enable_cache,
                suppress_window: config.suppress_window,
                tracer: tracer.clone(),
            },
            pool: WorkerPool::with_tracer(config.workers, tracer),
        }
    }

    /// A cheap, `Send + Sync` handle to the gateway's shared state, for
    /// request sources and worker jobs.
    pub fn core(&self) -> GatewayCore {
        self.core.clone()
    }

    /// The shared registry behind this gateway (cheap clone; usable from
    /// any thread, e.g. to record adverts or pre-warm responses).
    pub fn registry(&self) -> ServiceRegistry {
        self.core.registry.clone()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Bridge statistics so far (atomic bridge-path counters merged with
    /// the registry's per-shard counters).
    pub fn stats(&self) -> BridgeStats {
        self.core.stats()
    }

    /// Classifies `request` inline on the calling thread (any thread).
    /// Useful when the caller already sits on the right worker, or for
    /// single-request paths that do not need queueing.
    pub fn classify_now(
        &self,
        origin: SdpProtocol,
        request: &EventStream,
        now: SimTime,
    ) -> WarmDecision {
        self.core.classify(origin, request, now)
    }

    /// The worker lane serving `canonical_type` — its registry shard.
    pub fn lane_of(&self, canonical_type: impl Into<crate::Symbol>) -> usize {
        self.core.registry.shard_of(canonical_type)
    }

    /// Enqueues `request` for classification on the worker owning its
    /// type's shard; `done` runs on that worker with the decision.
    /// Requests for one canonical type are classified in submission
    /// order; requests for types on different lanes run concurrently.
    pub fn submit(
        &self,
        origin: SdpProtocol,
        request: EventStream,
        now: SimTime,
        done: impl FnOnce(WarmDecision) + Send + 'static,
    ) {
        let lane = match request.service_type_symbol() {
            Some(t) => self.core.registry.shard_of(t),
            None => 0,
        };
        let core = self.core.clone();
        self.pool.submit(lane, move || {
            let decision = core.classify(origin, &request, now);
            done(decision);
        });
    }

    /// Enqueues an arbitrary job on `lane` (`lane % workers` picks the
    /// thread). This is the hook request *sources* use to move the whole
    /// per-request pipeline — wire decode, parse, classify, deliver —
    /// onto the owning worker: the submitting thread pays only for the
    /// enqueue. Pair with [`ThreadedGateway::lane_of`] and a
    /// [`GatewayCore`] captured by the job.
    pub fn submit_on_lane(&self, lane: usize, job: impl FnOnce() + Send + 'static) {
        self.pool.submit(lane, job);
    }

    /// Blocks until every submitted request has been classified.
    pub fn join(&self) {
        self.pool.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use std::sync::atomic::AtomicU64;

    fn response(ty: &str) -> EventStream {
        EventStream::framed(vec![
            Event::ServiceResponse,
            Event::ResOk,
            Event::ServiceType(ty.into()),
            Event::ResServUrl(format!("soap://host/{ty}")),
        ])
    }

    fn request(ty: &str) -> EventStream {
        EventStream::framed(vec![Event::ServiceRequest, Event::ServiceType(ty.into())])
    }

    #[test]
    fn classify_prefers_cache_then_negative_then_suppression() {
        let gw = ThreadedGateway::new(RegistryConfig::default(), 1);
        let t = SimTime::from_secs(1);
        // Nothing held: bridge (and the window arms).
        assert_eq!(gw.classify_now(SdpProtocol::Slp, &request("clock"), t), WarmDecision::Bridge);
        // Inside the window: suppressed.
        assert_eq!(
            gw.classify_now(SdpProtocol::Slp, &request("clock"), t),
            WarmDecision::Suppressed
        );
        // Warm: cache hit wins even inside the window.
        gw.registry().warm("clock", response("clock"), t);
        assert!(matches!(
            gw.classify_now(SdpProtocol::Slp, &request("clock"), t),
            WarmDecision::CacheHit(_)
        ));
        // Negative memory answers absent types.
        gw.registry().warm_negative(SdpProtocol::Upnp, "ghost", t);
        assert_eq!(
            gw.classify_now(SdpProtocol::Upnp, &request("ghost"), t),
            WarmDecision::NegativeHit
        );
        let stats = gw.stats();
        // Cache hits count as bridged requests too (the counter tracks
        // requests the bridge accepted, not only fan-outs) — the same
        // accounting `Indiss` has always reported.
        assert_eq!(stats.requests_bridged, 2);
        assert_eq!(stats.requests_suppressed, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.negative_hits, 1);
    }

    #[test]
    fn submitted_requests_classify_on_workers() {
        let config = RegistryConfig { shards: 8, ..RegistryConfig::default() };
        let gw = ThreadedGateway::new(config, 4);
        let t = SimTime::from_secs(1);
        let types: Vec<String> = (0..16).map(|i| format!("warm-{i}")).collect();
        for ty in &types {
            gw.registry().warm(ty.as_str(), response(ty), t);
        }
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            for ty in &types {
                let hits = Arc::clone(&hits);
                gw.submit(SdpProtocol::Slp, request(ty), t, move |decision| {
                    if matches!(decision, WarmDecision::CacheHit(_)) {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        }
        gw.join();
        assert_eq!(hits.load(Ordering::Relaxed), 160, "every warm request answered from cache");
        assert_eq!(gw.stats().cache_hits, 160);
    }

    #[test]
    fn gateway_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ThreadedGateway>();
        assert_send_sync::<GatewayCore>();
        assert_send_sync::<BridgeCounters>();
        assert_send_sync::<WarmDecision>();
    }
}
