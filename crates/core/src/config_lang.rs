//! The paper's textual configuration language (§3).
//!
//! An INDISS instance is *composed*, not compiled: §3 specifies it as
//!
//! ```text
//! System SDP = {
//!   Component Monitor = { ScanPort = { 1900; 4160; 427 } }
//!   Component Unit SLP(port=427);
//!   Component Unit UPnP(port=1900);
//!   Component Unit JINI(port=4160); }
//! ```
//!
//! [`parse_system_sdp`] accepts that text verbatim and yields the
//! equivalent [`IndissConfig`]. The grammar extends the paper's in one
//! direction only: a unit whose name is not a built-in SDP takes a
//! descriptor block, so a brand-new protocol is declared entirely in
//! text —
//!
//! ```text
//! Component Unit DNS-SD(port=5353) = {
//!   Group  = 224.0.0.251;
//!   Ttl    = 120;
//!   Query  = "DNSSD Q PTR _{type}._tcp.local";
//!   Answer = "DNSSD A PTR _{type}._tcp.local SRV {url} TTL {ttl}";
//!   Alive  = "DNSSD ANNOUNCE _{type}._tcp.local SRV {url} TTL {ttl}";
//!   ByeBye = "DNSSD GOODBYE _{type}._tcp.local SRV {url}";
//! }
//! ```
//!
//! — and becomes an [`crate::SdpDescriptor`]-driven unit.
//!
//! The `Component Monitor` section is cross-checked rather than obeyed:
//! declaring a unit already implies monitoring its port (the Rust
//! config's invariant), so a `ScanPort` that belongs to no declared unit
//! is an error, and omitted scan ports are filled in by the units.

use std::net::Ipv4Addr;

use crate::config::IndissConfig;
use crate::error::{CoreError, CoreResult};
use crate::event::SdpProtocol;
use crate::scenario::{LinkCut, MobilityMove, WorldAsserts, WorldFault, WorldSpec};
use crate::units::SdpDescriptor;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(u64),
    Ip(Ipv4Addr),
    Str(String),
    Punct(char),
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "'{s}'"),
            Token::Number(n) => write!(f, "'{n}'"),
            Token::Ip(ip) => write!(f, "'{ip}'"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Punct(c) => write!(f, "'{c}'"),
        }
    }
}

fn lex(text: &str) -> CoreResult<Vec<(usize, Token)>> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut chars = text.char_indices().peekable();
    while let Some(&(at, c)) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '{' | '}' | '(' | ')' | '=' | ';' | ',' => {
                tokens.push((line, Token::Punct(c)));
                chars.next();
            }
            '"' => {
                chars.next();
                let start = at + 1;
                let mut end = None;
                for (i, c) in chars.by_ref() {
                    if c == '"' {
                        end = Some(i);
                        break;
                    }
                    if c == '\n' {
                        break;
                    }
                }
                let end = end.ok_or_else(|| {
                    CoreError::ConfigSyntax(format!("line {line}: unterminated string"))
                })?;
                tokens.push((line, Token::Str(text[start..end].to_owned())));
            }
            c if c.is_ascii_digit() => {
                let start = at;
                let mut end = at;
                while let Some(&(i, c)) = chars.peek() {
                    if c.is_ascii_digit() || c == '.' {
                        end = i + c.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                let word = &text[start..end];
                let token = if word.contains('.') {
                    Token::Ip(word.parse().map_err(|_| {
                        CoreError::ConfigSyntax(format!(
                            "line {line}: '{word}' is not an IPv4 address"
                        ))
                    })?)
                } else {
                    Token::Number(word.parse().map_err(|_| {
                        CoreError::ConfigSyntax(format!("line {line}: '{word}' is not a number"))
                    })?)
                };
                tokens.push((line, token));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = at;
                let mut end = at;
                while let Some(&(i, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        end = i + c.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push((line, Token::Ident(text[start..end].to_owned())));
            }
            other => {
                return Err(CoreError::ConfigSyntax(format!(
                    "line {line}: unexpected character '{other}'"
                )));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    at: usize,
}

impl Parser {
    fn error(&self, msg: &str) -> CoreError {
        match self.tokens.get(self.at) {
            Some((line, token)) => {
                CoreError::ConfigSyntax(format!("line {line}: {msg}, found {token}"))
            }
            None => CoreError::ConfigSyntax(format!("unexpected end of input: {msg}")),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.at).map(|(_, t)| t)
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Token::Punct(c)) {
            self.at += 1;
            return true;
        }
        false
    }

    fn expect_punct(&mut self, c: char) -> CoreResult<()> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            Err(self.error(&format!("expected '{c}'")))
        }
    }

    fn expect_keyword(&mut self, word: &str) -> CoreResult<()> {
        match self.peek() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(word) => {
                self.at += 1;
                Ok(())
            }
            _ => Err(self.error(&format!("expected '{word}'"))),
        }
    }

    fn peek_keyword(&self, word: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(word))
    }

    fn expect_ident(&mut self) -> CoreResult<String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.at += 1;
                Ok(s)
            }
            _ => Err(self.error("expected an identifier")),
        }
    }

    fn expect_number(&mut self) -> CoreResult<u64> {
        match self.peek() {
            Some(Token::Number(n)) => {
                let n = *n;
                self.at += 1;
                Ok(n)
            }
            _ => Err(self.error("expected a number")),
        }
    }

    fn expect_port(&mut self) -> CoreResult<u16> {
        let n = self.expect_number()?;
        u16::try_from(n)
            .map_err(|_| CoreError::ConfigSyntax(format!("'{n}' is not a valid UDP port")))
    }

    fn expect_ip(&mut self) -> CoreResult<Ipv4Addr> {
        match self.peek() {
            Some(Token::Ip(ip)) => {
                let ip = *ip;
                self.at += 1;
                Ok(ip)
            }
            _ => Err(self.error("expected an IPv4 address")),
        }
    }

    fn expect_string(&mut self) -> CoreResult<String> {
        match self.peek() {
            Some(Token::Str(s)) => {
                let s = s.clone();
                self.at += 1;
                Ok(s)
            }
            _ => Err(self.error("expected a quoted string")),
        }
    }
}

/// Parses the `Component Monitor = { ScanPort = { p; p; … } }` section,
/// returning the declared scan ports.
fn parse_monitor(p: &mut Parser) -> CoreResult<Vec<u16>> {
    p.expect_punct('=')?;
    p.expect_punct('{')?;
    p.expect_keyword("ScanPort")?;
    p.expect_punct('=')?;
    p.expect_punct('{')?;
    let mut ports = Vec::new();
    while !p.eat_punct('}') {
        ports.push(p.expect_port()?);
        if !p.eat_punct(';') && !p.eat_punct(',') {
            p.expect_punct('}')?;
            break;
        }
    }
    p.expect_punct('}')?;
    p.eat_punct(';');
    Ok(ports)
}

/// Parses the `Peers = { p; p; … }` federation block: the first port is
/// this gateway's own mesh identity, the rest are the peers it gossips
/// with. A config carrying this block deploys through
/// `Indiss::deploy_mesh` (which starts the mesh plane on the shared
/// peer bus); plain `Indiss::deploy` refuses it so a declared
/// federation can never end up silently inert.
fn parse_peers(p: &mut Parser) -> CoreResult<(u16, Vec<u16>)> {
    p.expect_punct('=')?;
    p.expect_punct('{')?;
    let mut ports = Vec::new();
    while !p.eat_punct('}') {
        ports.push(p.expect_port()?);
        if !p.eat_punct(';') && !p.eat_punct(',') {
            p.expect_punct('}')?;
            break;
        }
    }
    p.eat_punct(';');
    let mut ports = ports.into_iter();
    let own = ports.next().ok_or_else(|| {
        CoreError::ConfigSyntax(
            "a Peers block needs at least this gateway's own peer port".to_owned(),
        )
    })?;
    Ok((own, ports.collect()))
}

impl Parser {
    /// A number that must fit `u32` (the `World` block's field width).
    fn expect_u32(&mut self) -> CoreResult<u32> {
        let n = self.expect_number()?;
        u32::try_from(n)
            .map_err(|_| CoreError::ConfigSyntax(format!("'{n}' is out of range (max 4294967295)")))
    }
}

/// Parses one `{ Key = number; … }` sub-block of a `World` block,
/// dispatching each key through `field`. Shared by the `Fault`, `Cut`,
/// `Move` and `Assert` parsers, which differ only in their key sets.
fn parse_world_numbers(
    p: &mut Parser,
    block: &str,
    field: &mut dyn FnMut(&str, u64) -> bool,
) -> CoreResult<()> {
    p.expect_punct('{')?;
    while !p.eat_punct('}') {
        let key = p.expect_ident()?;
        p.expect_punct('=')?;
        let value = p.expect_number()?;
        if !field(key.to_ascii_lowercase().as_str(), value) {
            return Err(CoreError::ConfigSyntax(format!(
                "unknown {block} key '{key}' in the World block"
            )));
        }
        if !p.eat_punct(';') && !p.eat_punct(',') {
            p.expect_punct('}')?;
            break;
        }
    }
    Ok(())
}

/// Narrows a sub-block value to `u32`, surfacing overflow as syntax.
fn world_u32(value: u64) -> CoreResult<u32> {
    u32::try_from(value)
        .map_err(|_| CoreError::ConfigSyntax(format!("'{value}' is out of range (max 4294967295)")))
}

/// Parses the `World = { … }` scenario block into a validated
/// [`WorldSpec`]. Grammar (every entry optional, defaults from
/// [`WorldSpec::default`]; `Cut` and `Move` may repeat):
///
/// ```text
/// World = {
///   Seed = 42; Gateways = 4; Services = 1200;
///   DurationSecs = 30; TickMillis = 500;
///   ChurnArrivalsPerTick = 40; ChurnDeparturesPerTick = 30;
///   AdvertTtlSecs = 8; InjectPerTick = 5; SoakRecords = 1000000;
///   Fault = { DropPct = 10; CorruptPct = 5; DelayPct = 5;
///             ReorderPct = 5; DuplicatePct = 3 };
///   Cut = { Gateway = 1; FromSecs = 2; ToSecs = 5 };
///   Move = { Service = 7; From = 0; To = 2; AtSecs = 10 };
///   Assert = { MaxInternedBytes = 262144; MinDeliveryPct = 80;
///              MaxRegistryRecords = 4096; MaxCustody = 64;
///              MaxTrackerEntries = 512 };
/// };
/// ```
fn parse_world(p: &mut Parser) -> CoreResult<WorldSpec> {
    p.expect_punct('=')?;
    p.expect_punct('{')?;
    let mut spec = WorldSpec::default();
    while !p.eat_punct('}') {
        let key = p.expect_ident()?;
        match key.to_ascii_lowercase().as_str() {
            "seed" => {
                p.expect_punct('=')?;
                spec.seed = p.expect_number()?;
            }
            "gateways" => {
                p.expect_punct('=')?;
                spec.gateways = p.expect_u32()?;
            }
            "services" => {
                p.expect_punct('=')?;
                spec.services = p.expect_u32()?;
            }
            "durationsecs" => {
                p.expect_punct('=')?;
                spec.duration_secs = p.expect_u32()?;
            }
            "tickmillis" => {
                p.expect_punct('=')?;
                spec.tick_millis = p.expect_u32()?;
            }
            "churnarrivalspertick" => {
                p.expect_punct('=')?;
                spec.churn_arrivals_per_tick = p.expect_u32()?;
            }
            "churndeparturespertick" => {
                p.expect_punct('=')?;
                spec.churn_departures_per_tick = p.expect_u32()?;
            }
            "advertttlsecs" => {
                p.expect_punct('=')?;
                spec.advert_ttl_secs = p.expect_u32()?;
            }
            "injectpertick" => {
                p.expect_punct('=')?;
                spec.inject_per_tick = p.expect_u32()?;
            }
            "soakrecords" => {
                p.expect_punct('=')?;
                spec.soak_records = p.expect_number()?;
            }
            "fault" => {
                p.expect_punct('=')?;
                let mut fault = WorldFault::default();
                let mut bad = Ok(());
                parse_world_numbers(p, "Fault", &mut |key, value| {
                    let narrowed = match world_u32(value) {
                        Ok(v) => v,
                        Err(e) => {
                            bad = Err(e);
                            return true;
                        }
                    };
                    match key {
                        "droppct" => fault.drop_pct = narrowed,
                        "corruptpct" => fault.corrupt_pct = narrowed,
                        "delaypct" => fault.delay_pct = narrowed,
                        "reorderpct" => fault.reorder_pct = narrowed,
                        "duplicatepct" => fault.duplicate_pct = narrowed,
                        _ => return false,
                    }
                    true
                })?;
                bad?;
                spec.fault = fault;
            }
            "cut" => {
                p.expect_punct('=')?;
                let mut cut = LinkCut { gateway: 0, from_secs: 0, to_secs: 0 };
                let mut bad = Ok(());
                parse_world_numbers(p, "Cut", &mut |key, value| {
                    let narrowed = match world_u32(value) {
                        Ok(v) => v,
                        Err(e) => {
                            bad = Err(e);
                            return true;
                        }
                    };
                    match key {
                        "gateway" => cut.gateway = narrowed,
                        "fromsecs" => cut.from_secs = narrowed,
                        "tosecs" => cut.to_secs = narrowed,
                        _ => return false,
                    }
                    true
                })?;
                bad?;
                spec.cuts.push(cut);
            }
            "move" => {
                p.expect_punct('=')?;
                let mut mv =
                    MobilityMove { service: 0, from_gateway: 0, to_gateway: 0, at_secs: 0 };
                let mut bad = Ok(());
                parse_world_numbers(p, "Move", &mut |key, value| {
                    let narrowed = match world_u32(value) {
                        Ok(v) => v,
                        Err(e) => {
                            bad = Err(e);
                            return true;
                        }
                    };
                    match key {
                        "service" => mv.service = narrowed,
                        "from" | "fromgateway" => mv.from_gateway = narrowed,
                        "to" | "togateway" => mv.to_gateway = narrowed,
                        "atsecs" => mv.at_secs = narrowed,
                        _ => return false,
                    }
                    true
                })?;
                bad?;
                spec.moves.push(mv);
            }
            "assert" => {
                p.expect_punct('=')?;
                let mut asserts = WorldAsserts::default();
                let mut bad = Ok(());
                parse_world_numbers(p, "Assert", &mut |key, value| {
                    match key {
                        "maxinternedbytes" => asserts.max_interned_bytes = Some(value),
                        "mindeliverypct" => match world_u32(value) {
                            Ok(v) => asserts.min_delivery_pct = Some(v),
                            Err(e) => bad = Err(e),
                        },
                        "maxregistryrecords" => asserts.max_registry_records = Some(value),
                        "maxcustody" => asserts.max_custody = Some(value),
                        "maxtrackerentries" => asserts.max_tracker_entries = Some(value),
                        _ => return false,
                    }
                    true
                })?;
                bad?;
                spec.asserts = asserts;
            }
            _ => {
                return Err(CoreError::ConfigSyntax(format!(
                    "unknown World key '{key}' (Seed, Gateways, Services, DurationSecs, \
                     TickMillis, ChurnArrivalsPerTick, ChurnDeparturesPerTick, AdvertTtlSecs, \
                     InjectPerTick, SoakRecords, Fault, Cut, Move, Assert)"
                )));
            }
        }
        if !p.eat_punct(';') && !p.eat_punct(',') {
            p.expect_punct('}')?;
            break;
        }
    }
    p.eat_punct(';');
    spec.validate()?;
    Ok(spec)
}

/// Parses the `Trace = { Enabled = 1; Capacity = 4096; StatsPort = 9900 }`
/// observability block. Every key is optional: `Enabled` (0/1) turns
/// span recording on, `Capacity` sizes each per-lane span ring, and
/// `StatsPort` serves the plaintext stats endpoint (0 = ephemeral).
fn parse_trace(p: &mut Parser, config: &mut IndissConfig) -> CoreResult<()> {
    p.expect_punct('=')?;
    p.expect_punct('{')?;
    while !p.eat_punct('}') {
        let key = p.expect_ident()?;
        p.expect_punct('=')?;
        match key.to_ascii_lowercase().as_str() {
            "enabled" => {
                let v = p.expect_number()?;
                if v > 1 {
                    return Err(CoreError::ConfigSyntax(format!(
                        "Trace Enabled must be 0 or 1, not {v}"
                    )));
                }
                config.trace = v == 1;
            }
            "capacity" => {
                let v = p.expect_number()?;
                let v = usize::try_from(v).ok().filter(|v| (1..=1 << 24).contains(v));
                config.trace_capacity = v.ok_or_else(|| {
                    CoreError::ConfigSyntax(
                        "Trace Capacity must be between 1 and 16777216 spans".to_owned(),
                    )
                })?;
            }
            "statsport" => config.stats_port = Some(p.expect_port()?),
            other => {
                return Err(CoreError::ConfigSyntax(format!(
                    "unknown Trace key '{other}' (Enabled, Capacity, StatsPort)"
                )));
            }
        }
        if !p.eat_punct(';') && !p.eat_punct(',') {
            p.expect_punct('}')?;
            break;
        }
    }
    p.eat_punct(';');
    Ok(())
}

/// Parses the `{ Key = value; … }` body of a descriptor unit.
fn parse_descriptor_block(p: &mut Parser, name: &str, port: u16) -> CoreResult<SdpDescriptor> {
    p.expect_punct('{')?;
    let mut group: Option<Ipv4Addr> = None;
    let mut builder_fields: Vec<(String, String)> = Vec::new();
    let mut ttl: Option<u64> = None;
    while !p.eat_punct('}') {
        let key = p.expect_ident()?;
        p.expect_punct('=')?;
        match key.to_ascii_lowercase().as_str() {
            "group" => group = Some(p.expect_ip()?),
            "ttl" => ttl = Some(p.expect_number()?),
            "query" | "answer" | "alive" | "byebye" => {
                builder_fields.push((key.to_ascii_lowercase(), p.expect_string()?));
            }
            other => {
                return Err(CoreError::ConfigSyntax(format!(
                    "unknown descriptor key '{other}' (Group, Ttl, Query, Answer, Alive, ByeBye)"
                )));
            }
        }
        if !p.eat_punct(';') {
            p.expect_punct('}')?;
            break;
        }
    }
    p.eat_punct(';');
    let group = group.ok_or_else(|| {
        CoreError::ConfigSyntax(format!("unit '{name}' needs a 'Group = <ip>' entry"))
    })?;
    let mut builder = SdpDescriptor::define(name, port, group);
    for (key, value) in &builder_fields {
        builder = match key.as_str() {
            "query" => builder.query(value),
            "answer" => builder.answer(value),
            "alive" => builder.alive(value),
            _ => builder.byebye(value),
        };
    }
    if let Some(ttl) = ttl {
        let ttl = u32::try_from(ttl)
            .map_err(|_| CoreError::ConfigSyntax(format!("Ttl {ttl} out of range")))?;
        builder = builder.ttl(ttl);
    }
    builder.build()
}

/// Parses one `Component Unit NAME(port=N)…` declaration into the config.
fn parse_unit(p: &mut Parser, config: IndissConfig) -> CoreResult<IndissConfig> {
    let name = p.expect_ident()?;
    p.expect_punct('(')?;
    p.expect_keyword("port")?;
    p.expect_punct('=')?;
    let port = p.expect_port()?;
    p.expect_punct(')')?;
    let builtin = match name.to_ascii_uppercase().as_str() {
        "SLP" => Some(SdpProtocol::Slp),
        "UPNP" => Some(SdpProtocol::Upnp),
        "JINI" => Some(SdpProtocol::Jini),
        _ => None,
    };
    if let Some(protocol) = builtin {
        if protocol.port() != port {
            return Err(CoreError::ConfigSyntax(format!(
                "unit '{name}' is the built-in {protocol} SDP, whose port is {}, not {port}",
                protocol.port()
            )));
        }
        p.expect_punct(';')?;
        return Ok(match protocol {
            SdpProtocol::Upnp => config.with_upnp(),
            SdpProtocol::Jini => config.with_jini(),
            _ => config.with_slp(),
        });
    }
    // Not a built-in: the unit must be described.
    if !p.eat_punct('=') {
        return Err(CoreError::ConfigSyntax(format!(
            "unit '{name}' is not a built-in SDP; it needs a '= {{ … }}' descriptor block"
        )));
    }
    let descriptor = parse_descriptor_block(p, &name, port)?;
    Ok(config.with_descriptor(descriptor))
}

/// Parses the paper's `System SDP = { … }` language into an
/// [`IndissConfig`]. See the module docs for the grammar.
///
/// # Errors
///
/// [`CoreError::ConfigSyntax`] for malformed input;
/// [`CoreError::BadConfig`] for valid syntax describing an impossible
/// system (descriptor template rules, protocol-registration conflicts).
pub(crate) fn parse_system_sdp(text: &str) -> CoreResult<IndissConfig> {
    let mut p = Parser { tokens: lex(text)?, at: 0 };
    p.expect_keyword("System")?;
    p.expect_keyword("SDP")?;
    p.expect_punct('=')?;
    p.expect_punct('{')?;
    let mut config = IndissConfig::new();
    let mut scan_ports: Vec<u16> = Vec::new();
    while !p.eat_punct('}') {
        if p.peek_keyword("Peers") {
            p.at += 1;
            let (own, peers) = parse_peers(&mut p)?;
            config = config.with_mesh(own, peers);
            continue;
        }
        if p.peek_keyword("World") {
            p.at += 1;
            config.world = Some(parse_world(&mut p)?);
            continue;
        }
        if p.peek_keyword("Trace") {
            p.at += 1;
            parse_trace(&mut p, &mut config)?;
            continue;
        }
        p.expect_keyword("Component")?;
        if p.peek_keyword("Monitor") {
            p.at += 1;
            scan_ports.extend(parse_monitor(&mut p)?);
        } else {
            p.expect_keyword("Unit")?;
            config = parse_unit(&mut p, config)?;
        }
    }
    p.eat_punct(';');
    if let Some(token) = p.peek() {
        return Err(p.error(&format!("trailing input after the system block: {token}")));
    }
    // Cross-check: every declared scan port must belong to a unit
    // (declaring a unit implies monitoring, so extra ports are dangling).
    for port in scan_ports {
        if !config.units.iter().any(|u| u.protocol().port() == port) {
            return Err(CoreError::ConfigSyntax(format!(
                "ScanPort {port} does not belong to any declared unit"
            )));
        }
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §3 example, byte for byte as the paper prints it.
    const PAPER_EXAMPLE: &str = "System SDP = {\n\
         Component Monitor = { ScanPort = { 1900; 4160; 427 } }\n\
         Component Unit SLP(port=427);\n\
         Component Unit UPnP(port=1900);\n\
         Component Unit JINI(port=4160); }";

    #[test]
    fn paper_example_parses_to_slp_upnp_jini() {
        let config = parse_system_sdp(PAPER_EXAMPLE).expect("the paper's own example parses");
        let reference = IndissConfig::slp_upnp_jini();
        assert_eq!(config.protocols(), reference.protocols());
        // Everything else — unit configs, cache knobs, TTLs — must be the
        // library defaults, i.e. the config is *equivalent*, not merely
        // protocol-compatible.
        assert_eq!(format!("{config:?}"), format!("{reference:?}"));
    }

    #[test]
    fn descriptor_units_parse_from_text() {
        let text = r#"
            System SDP = {
              Component Monitor = { ScanPort = { 427; 6400 } }
              Component Unit SLP(port=427);
              Component Unit LANG-PROTO(port=6400) = {
                Group  = 239.6.4.0;
                Ttl    = 45;
                Query  = "LP? {type}";
                Answer = "LP! {type} {url} {ttl}";
                Alive  = "LP+ {type} {url} {ttl}";
                ByeBye = "LP- {type} {url}";
              };
            }
        "#;
        let config = parse_system_sdp(text).expect("descriptor block parses");
        assert_eq!(config.units.len(), 2);
        let protocols = config.protocols();
        assert_eq!(protocols[0], SdpProtocol::Slp);
        let SdpProtocol::Dynamic(id) = protocols[1] else {
            panic!("second unit is dynamic, got {protocols:?}");
        };
        assert_eq!(id.name(), "LANG-PROTO");
        assert_eq!(id.port(), 6400);
        assert_eq!(id.multicast_groups(), &[Ipv4Addr::new(239, 6, 4, 0)]);
    }

    #[test]
    fn builtin_on_wrong_port_is_rejected() {
        let text = "System SDP = { Component Unit SLP(port=1900); }";
        let err = parse_system_sdp(text).unwrap_err();
        assert!(matches!(err, CoreError::ConfigSyntax(_)), "{err}");
        assert!(err.to_string().contains("427"), "{err}");
    }

    #[test]
    fn unknown_unit_without_descriptor_is_rejected() {
        let text = "System SDP = { Component Unit MYSTERY(port=6401); }";
        let err = parse_system_sdp(text).unwrap_err();
        assert!(err.to_string().contains("descriptor block"), "{err}");
    }

    #[test]
    fn dangling_scan_port_is_rejected() {
        let text = "System SDP = {\n\
             Component Monitor = { ScanPort = { 427; 9999 } }\n\
             Component Unit SLP(port=427); }";
        let err = parse_system_sdp(text).unwrap_err();
        assert!(err.to_string().contains("9999"), "{err}");
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let text = "System SDP = {\nComponent Unit SLP port=427); }";
        let err = parse_system_sdp(text).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(parse_system_sdp("").is_err());
        assert!(parse_system_sdp("System SDP = {").is_err(), "unclosed block");
        assert!(parse_system_sdp("System SDP = { } trailing").is_err(), "trailing input rejected");
        assert!(
            parse_system_sdp("System SDP = { Component Unit X(port=6402) = { Group = 1.2.3 } }")
                .is_err(),
            "bad IPv4"
        );
    }

    #[test]
    fn peers_block_joins_the_mesh() {
        let text = "System SDP = {\n\
             Peers = { 7100; 7101; 7102 }\n\
             Component Unit SLP(port=427); }";
        let config = parse_system_sdp(text).expect("peers block parses");
        let mesh = config.mesh_config().expect("mesh on");
        assert_eq!(mesh.port, 7100, "first port is this gateway's own identity");
        assert_eq!(mesh.peers, vec![7101, 7102]);
        // Without a Peers block the mesh plane stays off.
        let solo = parse_system_sdp("System SDP = { Component Unit SLP(port=427); }").unwrap();
        assert!(solo.mesh_config().is_none());
        // An empty block names no identity.
        let err = parse_system_sdp("System SDP = { Peers = { } Component Unit SLP(port=427); }")
            .unwrap_err();
        assert!(err.to_string().contains("own peer port"), "{err}");
    }

    #[test]
    fn trace_block_wires_the_observability_knobs() {
        let text = "System SDP = {\n\
             Trace = { Enabled = 1; Capacity = 512; StatsPort = 9900 }\n\
             Component Unit SLP(port=427); }";
        let config = parse_system_sdp(text).expect("trace block parses");
        assert!(config.trace);
        assert_eq!(config.trace_capacity, 512);
        assert_eq!(config.stats_port, Some(9900));
        // Defaults: no block leaves everything off.
        let solo = parse_system_sdp("System SDP = { Component Unit SLP(port=427); }").unwrap();
        assert!(!solo.trace);
        assert!(solo.stats_port.is_none());
        // Abuse is syntax, not silent clamping.
        for bad in [
            "System SDP = { Trace = { Enabled = 2 } Component Unit SLP(port=427); }",
            "System SDP = { Trace = { Capacity = 0 } Component Unit SLP(port=427); }",
            "System SDP = { Trace = { Capacity = 99999999999 } Component Unit SLP(port=427); }",
            "System SDP = { Trace = { StatsPort = 99999 } Component Unit SLP(port=427); }",
            "System SDP = { Trace = { Blorp = 1 } Component Unit SLP(port=427); }",
        ] {
            let err = parse_system_sdp(bad).unwrap_err();
            assert!(matches!(err, CoreError::ConfigSyntax(_)), "{bad}: {err}");
        }
    }

    #[test]
    fn world_block_parses_to_a_validated_spec() {
        let text = "System SDP = {\n\
             Peers = { 7100; 7101 }\n\
             Component Unit SLP(port=427);\n\
             World = {\n\
               Seed = 42; Gateways = 4; Services = 1200;\n\
               DurationSecs = 30; TickMillis = 500;\n\
               ChurnArrivalsPerTick = 40; ChurnDeparturesPerTick = 30;\n\
               AdvertTtlSecs = 8; InjectPerTick = 5;\n\
               Fault = { DropPct = 10; CorruptPct = 5 };\n\
               Cut = { Gateway = 1; FromSecs = 2; ToSecs = 5 };\n\
               Move = { Service = 7; From = 0; To = 2; AtSecs = 10 };\n\
               Assert = { MaxInternedBytes = 262144; MinDeliveryPct = 80 };\n\
             };\n\
             }";
        let config = parse_system_sdp(text).expect("world block parses");
        let world = config.world.expect("world present");
        assert_eq!(world.seed, 42);
        assert_eq!(world.gateways, 4);
        assert_eq!(world.services, 1200);
        assert_eq!(world.nodes(), 1204);
        assert_eq!(world.duration_secs, 30);
        assert_eq!(world.fault.drop_pct, 10);
        assert_eq!(world.fault.corrupt_pct, 5);
        assert_eq!(world.fault.reorder_pct, 0, "unset rates default to zero");
        assert_eq!(world.cuts, vec![LinkCut { gateway: 1, from_secs: 2, to_secs: 5 }]);
        assert_eq!(
            world.moves,
            vec![MobilityMove { service: 7, from_gateway: 0, to_gateway: 2, at_secs: 10 }]
        );
        assert_eq!(world.asserts.max_interned_bytes, Some(262_144));
        assert_eq!(world.asserts.min_delivery_pct, Some(80));
        assert_eq!(world.asserts.max_custody, None);
        // Without a World block, none is attached.
        let solo = parse_system_sdp("System SDP = { Component Unit SLP(port=427); }").unwrap();
        assert!(solo.world.is_none());
    }

    #[test]
    fn world_numeric_abuse_is_rejected_not_run() {
        // Overflowing a u32 field is a syntax error, not a wrap.
        let overflow = "System SDP = { World = { Gateways = 99999999999999999999 }; }";
        assert!(parse_system_sdp(overflow).is_err(), "number too big for the lexer");
        let too_wide = "System SDP = { World = { Gateways = 4294967296 }; }";
        let err = parse_system_sdp(too_wide).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        // In-range but absurd values die in validate(), as BadConfig.
        for bad in [
            "System SDP = { World = { Gateways = 5000 }; }",
            "System SDP = { World = { Services = 0 }; }",
            "System SDP = { World = { DurationSecs = 4000 }; }",
            "System SDP = { World = { Fault = { DropPct = 700 } }; }",
            "System SDP = { World = { Cut = { Gateway = 0; FromSecs = 9; ToSecs = 2 } }; }",
            "System SDP = { World = { Move = { Service = 0; From = 1; To = 1; AtSecs = 1 } }; }",
            "System SDP = { World = { SoakRecords = 999999999999 }; }",
        ] {
            let err = parse_system_sdp(bad).unwrap_err();
            assert!(matches!(err, CoreError::BadConfig(_)), "{bad}: {err}");
        }
        // Unknown keys are named in the error.
        let err = parse_system_sdp("System SDP = { World = { Blorp = 3 }; }").unwrap_err();
        assert!(err.to_string().contains("Blorp"), "{err}");
        let err = parse_system_sdp("System SDP = { World = { Fault = { NoiseLevel = 3 } }; }")
            .unwrap_err();
        assert!(err.to_string().contains("NoiseLevel"), "{err}");
    }

    #[test]
    fn descriptor_template_errors_surface_from_text() {
        // A descriptor block whose Answer template misses {url} violates
        // the descriptor rules, not the grammar.
        let text = r#"System SDP = {
            Component Unit BAD-TPL(port=6403) = {
              Group = 239.6.4.3;
              Query = "B? {type}";
              Answer = "B! {type}";
            }
        }"#;
        let err = parse_system_sdp(text).unwrap_err();
        assert!(matches!(err, CoreError::BadConfig(_)), "{err}");
    }
}
