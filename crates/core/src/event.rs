//! The INDISS event vocabulary (paper §2.3, Table 1).
//!
//! Parsers translate native SDP messages *to* these events; composers
//! translate *from* them. The **mandatory** set — control, network,
//! service, request and response events — is the greatest common
//! denominator of all SDPs: every parser must emit it and every composer
//! must understand it. Protocol-specific events (the `Slp*`, `Upnp*`,
//! `Jini*` variants) carry the richer features of one SDP; composers
//! "are free to handle or ignore them" (§2.3) — in Rust terms, a match
//! arm or the `_ => {}` fallthrough.

use std::fmt;
use std::net::SocketAddrV4;

/// The discovery protocols INDISS knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SdpProtocol {
    /// Service Location Protocol (RFC 2608).
    Slp,
    /// UPnP (SSDP + description + SOAP).
    Upnp,
    /// Jini (simplified; see `indiss-jini`).
    Jini,
}

impl SdpProtocol {
    /// All protocols, in display order.
    pub const ALL: [SdpProtocol; 3] = [SdpProtocol::Slp, SdpProtocol::Upnp, SdpProtocol::Jini];

    /// The protocol's IANA UDP port (the monitor's detection key, §2.1).
    pub fn port(self) -> u16 {
        match self {
            SdpProtocol::Slp => indiss_slp::SLP_PORT,
            SdpProtocol::Upnp => indiss_ssdp::SSDP_PORT,
            SdpProtocol::Jini => indiss_jini::JINI_PORT,
        }
    }

    /// The protocol's multicast groups.
    ///
    /// Returns a static slice — this sits on the monitor's per-datagram
    /// detection path, which must not allocate.
    pub fn multicast_groups(self) -> &'static [std::net::Ipv4Addr] {
        const SLP_GROUPS: [std::net::Ipv4Addr; 1] = [indiss_slp::SLP_MULTICAST_GROUP];
        const UPNP_GROUPS: [std::net::Ipv4Addr; 1] = [indiss_ssdp::SSDP_MULTICAST_GROUP];
        const JINI_GROUPS: [std::net::Ipv4Addr; 2] =
            [indiss_jini::JINI_REQUEST_GROUP, indiss_jini::JINI_ANNOUNCEMENT_GROUP];
        match self {
            SdpProtocol::Slp => &SLP_GROUPS,
            SdpProtocol::Upnp => &UPNP_GROUPS,
            SdpProtocol::Jini => &JINI_GROUPS,
        }
    }
}

impl fmt::Display for SdpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SdpProtocol::Slp => "SLP",
            SdpProtocol::Upnp => "UPnP",
            SdpProtocol::Jini => "Jini",
        })
    }
}

/// Which parser a unit should switch to (`SDP_C_PARSER_SWITCH` payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParserKind {
    /// The unit's native discovery-message parser (SSDP, SLP wire, …).
    Native,
    /// HTTP message parser.
    Http,
    /// XML document parser.
    Xml,
}

/// One semantic event. Variants group exactly as Table 1 does; the
/// protocol-specific variants are the paper's "specialized sets".
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    // --- SDP Control Events -------------------------------------------
    /// `SDP_C_START`: opens an event stream (one native message or one
    /// translation step).
    Start,
    /// `SDP_C_STOP`: closes the stream.
    Stop,
    /// `SDP_C_PARSER_SWITCH`: the current parser cannot continue (e.g.
    /// SSDP parser hitting an XML body, §2.4) and asks its unit to switch.
    ParserSwitch(ParserKind),
    /// `SDP_C_SOCKET_SWITCH`: the unit must continue on another transport
    /// (UDP → TCP for a description fetch).
    SocketSwitch,

    // --- SDP Network Events --------------------------------------------
    /// `SDP_NET_UNICAST`: the message was unicast.
    NetUnicast,
    /// `SDP_NET_MULTICAST`: the message was multicast.
    NetMulticast,
    /// `SDP_NET_SOURCE_ADDR`: sender address (recorded for the reply path).
    NetSourceAddr(SocketAddrV4),
    /// `SDP_NET_DEST_ADDR`: destination address.
    NetDestAddr(SocketAddrV4),
    /// `SDP_NET_TYPE`: which SDP the message belongs to.
    NetType(SdpProtocol),

    // --- SDP Service Events --------------------------------------------
    /// `SDP_SERVICE_REQUEST`: a service search request.
    ServiceRequest,
    /// `SDP_SERVICE_RESPONSE`: a response to a search.
    ServiceResponse,
    /// `SDP_SERVICE_ALIVE`: an advertisement that a service exists.
    ServiceAlive,
    /// `SDP_SERVICE_BYEBYE`: an advertisement that a service is leaving.
    ServiceByeBye,
    /// `SDP_SERVICE_TYPE`: the *canonical* service type name (`clock`,
    /// `printer`) — each parser maps its native form to this.
    ServiceType(String),
    /// `SDP_SERVICE_ATTR`: one attribute constraint or descriptor.
    ServiceAttr {
        /// Attribute tag.
        tag: String,
        /// Attribute values (may be empty for keyword attributes).
        values: Vec<String>,
    },

    // --- SDP Request Events --------------------------------------------
    /// `SDP_REQ_LANG`: requested language.
    ReqLang(String),

    // --- SDP Response Events -------------------------------------------
    /// `SDP_RES_OK`: success.
    ResOk,
    /// `SDP_RES_ERR`: failure, with a protocol-agnostic code.
    ResErr(u16),
    /// `SDP_RES_TTL`: validity of the answer, seconds.
    ResTtl(u32),
    /// `SDP_RES_SERV_URL`: the service endpoint URL — the event the whole
    /// §2.4 translation works towards.
    ResServUrl(String),
    /// `SDP_RES_ATTR`: one attribute of the discovered service.
    ResAttr {
        /// Attribute tag.
        tag: String,
        /// Attribute value.
        value: String,
    },

    // --- SLP-specific (discarded by non-SLP composers) ------------------
    /// `SDP_REQ_VERSION` (Fig. 4): SLP protocol version.
    SlpReqVersion(u8),
    /// `SDP_REQ_SCOPE` (Fig. 4): SLP scope list.
    SlpReqScope(String),
    /// `SDP_REQ_PREDICATE` (Fig. 4): SLP LDAP predicate.
    SlpReqPredicate(String),
    /// `SDP_REQ_ID` (Fig. 4): SLP transaction id.
    SlpReqId(u16),

    // --- UPnP-specific ---------------------------------------------------
    /// `SDP_DEVICE_URL_DESC` (Fig. 4): the description-document URL from a
    /// discovery response; consumed internally by the UPnP unit to fetch
    /// the description.
    UpnpDeviceUrlDesc(String),
    /// UPnP unique service name.
    UpnpUsn(String),
    /// UPnP server banner.
    UpnpServer(String),
    /// UPnP search MX (response jitter bound).
    UpnpMx(u8),
    /// The raw `ST:` search-target text, preserved so a UPnP composer can
    /// echo it exactly in the search response.
    UpnpSt(String),

    // --- Jini-specific ---------------------------------------------------
    /// Jini discovery groups.
    JiniGroups(Vec<String>),
    /// Jini service id.
    JiniServiceId(u64),
    /// Jini lease duration, seconds.
    JiniLease(u32),
}

/// Discriminant of an [`Event`], used as FSM trigger (the paper's Σ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names mirror Event variants one-to-one
pub enum EventKind {
    Start,
    Stop,
    ParserSwitch,
    SocketSwitch,
    NetUnicast,
    NetMulticast,
    NetSourceAddr,
    NetDestAddr,
    NetType,
    ServiceRequest,
    ServiceResponse,
    ServiceAlive,
    ServiceByeBye,
    ServiceType,
    ServiceAttr,
    ReqLang,
    ResOk,
    ResErr,
    ResTtl,
    ResServUrl,
    ResAttr,
    SlpReqVersion,
    SlpReqScope,
    SlpReqPredicate,
    SlpReqId,
    UpnpDeviceUrlDesc,
    UpnpUsn,
    UpnpServer,
    UpnpMx,
    UpnpSt,
    JiniGroups,
    JiniServiceId,
    JiniLease,
}

impl Event {
    /// The event's discriminant.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Start => EventKind::Start,
            Event::Stop => EventKind::Stop,
            Event::ParserSwitch(_) => EventKind::ParserSwitch,
            Event::SocketSwitch => EventKind::SocketSwitch,
            Event::NetUnicast => EventKind::NetUnicast,
            Event::NetMulticast => EventKind::NetMulticast,
            Event::NetSourceAddr(_) => EventKind::NetSourceAddr,
            Event::NetDestAddr(_) => EventKind::NetDestAddr,
            Event::NetType(_) => EventKind::NetType,
            Event::ServiceRequest => EventKind::ServiceRequest,
            Event::ServiceResponse => EventKind::ServiceResponse,
            Event::ServiceAlive => EventKind::ServiceAlive,
            Event::ServiceByeBye => EventKind::ServiceByeBye,
            Event::ServiceType(_) => EventKind::ServiceType,
            Event::ServiceAttr { .. } => EventKind::ServiceAttr,
            Event::ReqLang(_) => EventKind::ReqLang,
            Event::ResOk => EventKind::ResOk,
            Event::ResErr(_) => EventKind::ResErr,
            Event::ResTtl(_) => EventKind::ResTtl,
            Event::ResServUrl(_) => EventKind::ResServUrl,
            Event::ResAttr { .. } => EventKind::ResAttr,
            Event::SlpReqVersion(_) => EventKind::SlpReqVersion,
            Event::SlpReqScope(_) => EventKind::SlpReqScope,
            Event::SlpReqPredicate(_) => EventKind::SlpReqPredicate,
            Event::SlpReqId(_) => EventKind::SlpReqId,
            Event::UpnpDeviceUrlDesc(_) => EventKind::UpnpDeviceUrlDesc,
            Event::UpnpUsn(_) => EventKind::UpnpUsn,
            Event::UpnpServer(_) => EventKind::UpnpServer,
            Event::UpnpMx(_) => EventKind::UpnpMx,
            Event::UpnpSt(_) => EventKind::UpnpSt,
            Event::JiniGroups(_) => EventKind::JiniGroups,
            Event::JiniServiceId(_) => EventKind::JiniServiceId,
            Event::JiniLease(_) => EventKind::JiniLease,
        }
    }

    /// True for the mandatory (Table 1) events every composer must
    /// understand; false for the protocol-specific extensions.
    pub fn is_mandatory(&self) -> bool {
        self.kind().table1_name().is_some()
    }
}

impl EventKind {
    /// The paper's Table 1 name, for mandatory events.
    pub fn table1_name(self) -> Option<&'static str> {
        Some(match self {
            EventKind::Start => "SDP_C_START",
            EventKind::Stop => "SDP_C_STOP",
            EventKind::ParserSwitch => "SDP_C_PARSER_SWITCH",
            EventKind::SocketSwitch => "SDP_C_SOCKET_SWITCH",
            EventKind::NetUnicast => "SDP_NET_UNICAST",
            EventKind::NetMulticast => "SDP_NET_MULTICAST",
            EventKind::NetSourceAddr => "SDP_NET_SOURCE_ADDR",
            EventKind::NetDestAddr => "SDP_NET_DEST_ADDR",
            EventKind::NetType => "SDP_NET_TYPE",
            EventKind::ServiceRequest => "SDP_SERVICE_REQUEST",
            EventKind::ServiceResponse => "SDP_SERVICE_RESPONSE",
            EventKind::ServiceAlive => "SDP_SERVICE_ALIVE",
            EventKind::ServiceByeBye => "SDP_SERVICE_BYEBYE",
            EventKind::ServiceType => "SDP_SERVICE_TYPE",
            EventKind::ServiceAttr => "SDP_SERVICE_ATTR",
            EventKind::ReqLang => "SDP_REQ_LANG",
            EventKind::ResOk => "SDP_RES_OK",
            EventKind::ResErr => "SDP_RES_ERR",
            EventKind::ResTtl => "SDP_RES_TTL",
            EventKind::ResServUrl => "SDP_RES_SERV_URL",
            EventKind::ResAttr => "SDP_RES_ATTR",
            _ => return None,
        })
    }

    /// A wire-style name for any event kind (Table 1 name when mandatory,
    /// a specific-set name otherwise) — used in traces and tests.
    pub fn name(self) -> &'static str {
        if let Some(n) = self.table1_name() {
            return n;
        }
        match self {
            EventKind::SlpReqVersion => "SDP_REQ_VERSION",
            EventKind::SlpReqScope => "SDP_REQ_SCOPE",
            EventKind::SlpReqPredicate => "SDP_REQ_PREDICATE",
            EventKind::SlpReqId => "SDP_REQ_ID",
            EventKind::UpnpDeviceUrlDesc => "SDP_DEVICE_URL_DESC",
            EventKind::UpnpUsn => "SDP_UPNP_USN",
            EventKind::UpnpServer => "SDP_UPNP_SERVER",
            EventKind::UpnpMx => "SDP_UPNP_MX",
            EventKind::UpnpSt => "SDP_UPNP_ST",
            EventKind::JiniGroups => "SDP_JINI_GROUPS",
            EventKind::JiniServiceId => "SDP_JINI_SERVICE_ID",
            EventKind::JiniLease => "SDP_JINI_LEASE",
            _ => unreachable!("mandatory kinds answered above"),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.kind().name())
    }
}

/// A framed event stream: `SDP_C_START … SDP_C_STOP`, representing one
/// native message (or one internal translation step).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventStream {
    events: Vec<Event>,
}

impl EventStream {
    /// Creates a stream already framed with `Start`/`Stop` around `body`.
    pub fn framed(body: Vec<Event>) -> EventStream {
        let mut events = Vec::with_capacity(body.len() + 2);
        events.push(Event::Start);
        events.extend(body);
        events.push(Event::Stop);
        EventStream { events }
    }

    /// Wraps raw events, validating framing.
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::BadEventFraming`] if the stream does not start
    /// with `Start` and end with `Stop`.
    pub fn from_events(events: Vec<Event>) -> crate::CoreResult<EventStream> {
        let ok = matches!(events.first(), Some(Event::Start))
            && matches!(events.last(), Some(Event::Stop))
            && events.len() >= 2;
        if !ok {
            return Err(crate::CoreError::BadEventFraming);
        }
        Ok(EventStream { events })
    }

    /// All events including the frame.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events between `Start` and `Stop`.
    pub fn body(&self) -> &[Event] {
        &self.events[1..self.events.len() - 1]
    }

    /// The names of all events, for trace assertions (Fig. 4 style).
    pub fn names(&self) -> Vec<&'static str> {
        self.events.iter().map(|e| e.kind().name()).collect()
    }

    /// First `ServiceType` payload, if any.
    pub fn service_type(&self) -> Option<&str> {
        self.events.iter().find_map(|e| match e {
            Event::ServiceType(t) => Some(t.as_str()),
            _ => None,
        })
    }

    /// First `NetSourceAddr` payload, if any.
    pub fn source_addr(&self) -> Option<SocketAddrV4> {
        self.events.iter().find_map(|e| match e {
            Event::NetSourceAddr(a) => Some(*a),
            _ => None,
        })
    }

    /// First `ResServUrl` payload, if any.
    pub fn service_url(&self) -> Option<&str> {
        self.events.iter().find_map(|e| match e {
            Event::ResServUrl(u) => Some(u.as_str()),
            _ => None,
        })
    }

    /// All `ResAttr` pairs.
    pub fn response_attrs(&self) -> Vec<(&str, &str)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::ResAttr { tag, value } => Some((tag.as_str(), value.as_str())),
                _ => None,
            })
            .collect()
    }

    /// True when the stream describes a search request.
    pub fn is_request(&self) -> bool {
        self.events.iter().any(|e| matches!(e, Event::ServiceRequest))
    }

    /// True when the stream describes a response.
    pub fn is_response(&self) -> bool {
        self.events.iter().any(|e| matches!(e, Event::ServiceResponse))
    }

    /// True when the stream describes an (alive) advertisement.
    pub fn is_alive(&self) -> bool {
        self.events.iter().any(|e| matches!(e, Event::ServiceAlive))
    }

    /// True when the stream describes a byebye advertisement.
    pub fn is_byebye(&self) -> bool {
        self.events.iter().any(|e| matches!(e, Event::ServiceByeBye))
    }

    /// Which protocol produced the stream, from `NetType`.
    pub fn net_type(&self) -> Option<SdpProtocol> {
        self.events.iter().find_map(|e| match e {
            Event::NetType(p) => Some(*p),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every event type listed in the paper's Table 1 must exist with its
    /// exact name.
    #[test]
    fn table1_is_complete() {
        let expected = [
            "SDP_C_START",
            "SDP_C_STOP",
            "SDP_C_PARSER_SWITCH",
            "SDP_C_SOCKET_SWITCH",
            "SDP_NET_UNICAST",
            "SDP_NET_MULTICAST",
            "SDP_NET_SOURCE_ADDR",
            "SDP_NET_DEST_ADDR",
            "SDP_NET_TYPE",
            "SDP_SERVICE_REQUEST",
            "SDP_SERVICE_RESPONSE",
            "SDP_SERVICE_ALIVE",
            "SDP_SERVICE_BYEBYE",
            "SDP_SERVICE_TYPE",
            "SDP_SERVICE_ATTR",
            "SDP_REQ_LANG",
            "SDP_RES_OK",
            "SDP_RES_ERR",
            "SDP_RES_TTL",
            "SDP_RES_SERV_URL",
        ];
        let kinds = [
            EventKind::Start,
            EventKind::Stop,
            EventKind::ParserSwitch,
            EventKind::SocketSwitch,
            EventKind::NetUnicast,
            EventKind::NetMulticast,
            EventKind::NetSourceAddr,
            EventKind::NetDestAddr,
            EventKind::NetType,
            EventKind::ServiceRequest,
            EventKind::ServiceResponse,
            EventKind::ServiceAlive,
            EventKind::ServiceByeBye,
            EventKind::ServiceType,
            EventKind::ServiceAttr,
            EventKind::ReqLang,
            EventKind::ResOk,
            EventKind::ResErr,
            EventKind::ResTtl,
            EventKind::ResServUrl,
        ];
        for (kind, name) in kinds.iter().zip(expected.iter()) {
            assert_eq!(kind.table1_name(), Some(*name));
        }
    }

    #[test]
    fn specific_events_are_not_mandatory() {
        assert!(!Event::SlpReqVersion(2).is_mandatory());
        assert!(!Event::UpnpDeviceUrlDesc("http://x".into()).is_mandatory());
        assert!(!Event::JiniLease(60).is_mandatory());
        assert!(Event::ServiceRequest.is_mandatory());
        assert!(Event::ResAttr { tag: "a".into(), value: "b".into() }.is_mandatory());
    }

    #[test]
    fn framing_validates() {
        assert!(EventStream::from_events(vec![Event::Start, Event::Stop]).is_ok());
        assert!(EventStream::from_events(vec![Event::Start]).is_err());
        assert!(EventStream::from_events(vec![Event::ServiceRequest]).is_err());
        assert!(EventStream::from_events(vec![]).is_err());
    }

    #[test]
    fn framed_constructor_brackets() {
        let s = EventStream::framed(vec![Event::ServiceRequest]);
        assert_eq!(s.names(), vec!["SDP_C_START", "SDP_SERVICE_REQUEST", "SDP_C_STOP"]);
        assert_eq!(s.body().len(), 1);
    }

    #[test]
    fn accessors_find_payloads() {
        let addr = "10.0.0.1:40000".parse().unwrap();
        let s = EventStream::framed(vec![
            Event::NetType(SdpProtocol::Slp),
            Event::NetMulticast,
            Event::NetSourceAddr(addr),
            Event::ServiceRequest,
            Event::ServiceType("clock".into()),
        ]);
        assert!(s.is_request());
        assert!(!s.is_response());
        assert_eq!(s.service_type(), Some("clock"));
        assert_eq!(s.source_addr(), Some(addr));
        assert_eq!(s.net_type(), Some(SdpProtocol::Slp));
    }

    #[test]
    fn response_accessors() {
        let s = EventStream::framed(vec![
            Event::ServiceResponse,
            Event::ResOk,
            Event::ResServUrl("service:clock://10.0.0.2".into()),
            Event::ResAttr { tag: "friendlyName".into(), value: "Clock".into() },
        ]);
        assert!(s.is_response());
        assert_eq!(s.service_url(), Some("service:clock://10.0.0.2"));
        assert_eq!(s.response_attrs(), vec![("friendlyName", "Clock")]);
    }

    #[test]
    fn protocol_ports_match_iana() {
        assert_eq!(SdpProtocol::Slp.port(), 427);
        assert_eq!(SdpProtocol::Upnp.port(), 1900);
        assert_eq!(SdpProtocol::Jini.port(), 4160);
    }

    #[test]
    fn display_uses_names() {
        assert_eq!(Event::Start.to_string(), "SDP_C_START");
        assert_eq!(Event::UpnpMx(0).to_string(), "SDP_UPNP_MX");
        assert_eq!(SdpProtocol::Upnp.to_string(), "UPnP");
    }
}
