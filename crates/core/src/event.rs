//! The INDISS event vocabulary (paper §2.3, Table 1).
//!
//! Parsers translate native SDP messages *to* these events; composers
//! translate *from* them. The **mandatory** set — control, network,
//! service, request and response events — is the greatest common
//! denominator of all SDPs: every parser must emit it and every composer
//! must understand it. Protocol-specific events (the `Slp*`, `Upnp*`,
//! `Jini*` variants) carry the richer features of one SDP; composers
//! "are free to handle or ignore them" (§2.3) — in Rust terms, a match
//! arm or the `_ => {}` fallthrough.
//!
//! # Ownership model
//!
//! The pipeline is zero-copy after parse. A parser builds a stream once
//! — through [`EventStream::framed`] or an [`EventStreamBuilder`] — and
//! from then on the stream is an **immutable shared buffer**
//! (`Rc<[Event]>`): every hop that used to deep-clone a `Vec<Event>`
//! (bridging, cache warming, delivery, re-advertising) now bumps a
//! reference count. High-churn string payloads — service types, UPnP
//! search targets and USNs, SLP scopes — are interned [`Symbol`]s, so
//! cloning an [`Event`] copies a pointer and the registry hashes one
//! machine word instead of string bytes. Mutation never happens in
//! place; "editing" a stream means building a new one (see
//! [`EventStream::to_builder`]).

use std::fmt;
use std::net::SocketAddrV4;
use std::sync::Arc;

pub use crate::protocol::ProtocolId;
pub use crate::symbol::Symbol;

/// The discovery protocols INDISS knows about.
///
/// The set is **open**: beyond the three built-in SDPs, any protocol
/// registered through [`ProtocolId::register`] (usually via an
/// [`crate::SdpDescriptor`]) participates as [`SdpProtocol::Dynamic`] —
/// a first-class citizen of the monitor, the registry indexes, the
/// response/negative caches and the bridge statistics, because all of
/// those key on `SdpProtocol` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum SdpProtocol {
    /// Service Location Protocol (RFC 2608).
    Slp,
    /// UPnP (SSDP + description + SOAP).
    Upnp,
    /// Jini (simplified; see `indiss-jini`).
    Jini,
    /// A dynamically registered protocol, bridged by a descriptor-driven
    /// unit (paper §3: units named in the `System SDP = { … }` config).
    Dynamic(ProtocolId),
}

impl SdpProtocol {
    /// The built-in protocols, in display order. Dynamic protocols are
    /// enumerable via [`ProtocolId::registered`].
    pub const ALL: [SdpProtocol; 3] = [SdpProtocol::Slp, SdpProtocol::Upnp, SdpProtocol::Jini];

    /// The protocol's registered UDP port (the monitor's detection key,
    /// §2.1) — IANA-assigned for the built-ins, descriptor-declared for
    /// dynamic protocols.
    pub fn port(self) -> u16 {
        match self {
            SdpProtocol::Slp => indiss_slp::SLP_PORT,
            SdpProtocol::Upnp => indiss_ssdp::SSDP_PORT,
            SdpProtocol::Jini => indiss_jini::JINI_PORT,
            SdpProtocol::Dynamic(id) => id.port(),
        }
    }

    /// The protocol's multicast groups.
    ///
    /// Returns a static slice — this sits on the monitor's per-datagram
    /// detection path, which must not allocate. Dynamic protocols hold
    /// this bound too: their group slice is leaked once at registration.
    pub fn multicast_groups(self) -> &'static [std::net::Ipv4Addr] {
        const SLP_GROUPS: [std::net::Ipv4Addr; 1] = [indiss_slp::SLP_MULTICAST_GROUP];
        const UPNP_GROUPS: [std::net::Ipv4Addr; 1] = [indiss_ssdp::SSDP_MULTICAST_GROUP];
        const JINI_GROUPS: [std::net::Ipv4Addr; 2] =
            [indiss_jini::JINI_REQUEST_GROUP, indiss_jini::JINI_ANNOUNCEMENT_GROUP];
        match self {
            SdpProtocol::Slp => &SLP_GROUPS,
            SdpProtocol::Upnp => &UPNP_GROUPS,
            SdpProtocol::Jini => &JINI_GROUPS,
            SdpProtocol::Dynamic(id) => id.multicast_groups(),
        }
    }
}

impl fmt::Display for SdpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SdpProtocol::Slp => "SLP",
            SdpProtocol::Upnp => "UPnP",
            SdpProtocol::Jini => "Jini",
            SdpProtocol::Dynamic(id) => id.name(),
        })
    }
}

/// Which parser a unit should switch to (`SDP_C_PARSER_SWITCH` payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParserKind {
    /// The unit's native discovery-message parser (SSDP, SLP wire, …).
    Native,
    /// HTTP message parser.
    Http,
    /// XML document parser.
    Xml,
}

/// One semantic event. Variants group exactly as Table 1 does; the
/// protocol-specific variants are the paper's "specialized sets".
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    // --- SDP Control Events -------------------------------------------
    /// `SDP_C_START`: opens an event stream (one native message or one
    /// translation step).
    Start,
    /// `SDP_C_STOP`: closes the stream.
    Stop,
    /// `SDP_C_PARSER_SWITCH`: the current parser cannot continue (e.g.
    /// SSDP parser hitting an XML body, §2.4) and asks its unit to switch.
    ParserSwitch(ParserKind),
    /// `SDP_C_SOCKET_SWITCH`: the unit must continue on another transport
    /// (UDP → TCP for a description fetch).
    SocketSwitch,

    // --- SDP Network Events --------------------------------------------
    /// `SDP_NET_UNICAST`: the message was unicast.
    NetUnicast,
    /// `SDP_NET_MULTICAST`: the message was multicast.
    NetMulticast,
    /// `SDP_NET_SOURCE_ADDR`: sender address (recorded for the reply path).
    NetSourceAddr(SocketAddrV4),
    /// `SDP_NET_DEST_ADDR`: destination address.
    NetDestAddr(SocketAddrV4),
    /// `SDP_NET_TYPE`: which SDP the message belongs to.
    NetType(SdpProtocol),

    // --- SDP Service Events --------------------------------------------
    /// `SDP_SERVICE_REQUEST`: a service search request.
    ServiceRequest,
    /// `SDP_SERVICE_RESPONSE`: a response to a search.
    ServiceResponse,
    /// `SDP_SERVICE_ALIVE`: an advertisement that a service exists.
    ServiceAlive,
    /// `SDP_SERVICE_BYEBYE`: an advertisement that a service is leaving.
    ServiceByeBye,
    /// `SDP_SERVICE_TYPE`: the *canonical* service type name (`clock`,
    /// `printer`) — each parser maps its native form to this. Interned:
    /// the registry keys its type indexes on this symbol.
    ServiceType(Symbol),
    /// `SDP_SERVICE_ATTR`: one attribute constraint or descriptor.
    /// Payloads are boxed to keep `Event` small (see the size test):
    /// the stream buffer is the dominant per-message allocation.
    ServiceAttr {
        /// Attribute tag.
        tag: Box<str>,
        /// Attribute values (may be empty for keyword attributes).
        values: Box<[String]>,
    },

    // --- SDP Request Events --------------------------------------------
    /// `SDP_REQ_LANG`: requested language.
    ReqLang(String),

    // --- SDP Response Events -------------------------------------------
    /// `SDP_RES_OK`: success.
    ResOk,
    /// `SDP_RES_ERR`: failure, with a protocol-agnostic code.
    ResErr(u16),
    /// `SDP_RES_TTL`: validity of the answer, seconds.
    ResTtl(u32),
    /// `SDP_RES_SERV_URL`: the service endpoint URL — the event the whole
    /// §2.4 translation works towards.
    ResServUrl(String),
    /// `SDP_RES_ATTR`: one attribute of the discovered service. Boxed
    /// payloads keep `Event` at 40 bytes (see the size test).
    ResAttr {
        /// Attribute tag.
        tag: Box<str>,
        /// Attribute value.
        value: Box<str>,
    },

    // --- SLP-specific (discarded by non-SLP composers) ------------------
    /// `SDP_REQ_VERSION` (Fig. 4): SLP protocol version.
    SlpReqVersion(u8),
    /// `SDP_REQ_SCOPE` (Fig. 4): SLP scope list (interned — scope lists
    /// repeat across every request on a network).
    SlpReqScope(Symbol),
    /// `SDP_REQ_PREDICATE` (Fig. 4): SLP LDAP predicate.
    SlpReqPredicate(String),
    /// `SDP_REQ_ID` (Fig. 4): SLP transaction id.
    SlpReqId(u16),

    // --- UPnP-specific ---------------------------------------------------
    /// `SDP_DEVICE_URL_DESC` (Fig. 4): the description-document URL from a
    /// discovery response; consumed internally by the UPnP unit to fetch
    /// the description.
    UpnpDeviceUrlDesc(String),
    /// UPnP unique service name (interned — USNs are the registry's
    /// primary record keys).
    UpnpUsn(Symbol),
    /// UPnP server banner.
    UpnpServer(String),
    /// UPnP search MX (response jitter bound).
    UpnpMx(u8),
    /// The raw `ST:` search-target text, preserved so a UPnP composer can
    /// echo it exactly in the search response (interned — a handful of
    /// targets account for nearly all searches).
    UpnpSt(Symbol),

    // --- Jini-specific ---------------------------------------------------
    /// Jini discovery groups.
    JiniGroups(Vec<String>),
    /// Jini service id.
    JiniServiceId(u64),
    /// Jini lease duration, seconds.
    JiniLease(u32),
}

/// Discriminant of an [`Event`], used as FSM trigger (the paper's Σ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names mirror Event variants one-to-one
pub enum EventKind {
    Start,
    Stop,
    ParserSwitch,
    SocketSwitch,
    NetUnicast,
    NetMulticast,
    NetSourceAddr,
    NetDestAddr,
    NetType,
    ServiceRequest,
    ServiceResponse,
    ServiceAlive,
    ServiceByeBye,
    ServiceType,
    ServiceAttr,
    ReqLang,
    ResOk,
    ResErr,
    ResTtl,
    ResServUrl,
    ResAttr,
    SlpReqVersion,
    SlpReqScope,
    SlpReqPredicate,
    SlpReqId,
    UpnpDeviceUrlDesc,
    UpnpUsn,
    UpnpServer,
    UpnpMx,
    UpnpSt,
    JiniGroups,
    JiniServiceId,
    JiniLease,
}

impl Event {
    /// The event's discriminant.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Start => EventKind::Start,
            Event::Stop => EventKind::Stop,
            Event::ParserSwitch(_) => EventKind::ParserSwitch,
            Event::SocketSwitch => EventKind::SocketSwitch,
            Event::NetUnicast => EventKind::NetUnicast,
            Event::NetMulticast => EventKind::NetMulticast,
            Event::NetSourceAddr(_) => EventKind::NetSourceAddr,
            Event::NetDestAddr(_) => EventKind::NetDestAddr,
            Event::NetType(_) => EventKind::NetType,
            Event::ServiceRequest => EventKind::ServiceRequest,
            Event::ServiceResponse => EventKind::ServiceResponse,
            Event::ServiceAlive => EventKind::ServiceAlive,
            Event::ServiceByeBye => EventKind::ServiceByeBye,
            Event::ServiceType(_) => EventKind::ServiceType,
            Event::ServiceAttr { .. } => EventKind::ServiceAttr,
            Event::ReqLang(_) => EventKind::ReqLang,
            Event::ResOk => EventKind::ResOk,
            Event::ResErr(_) => EventKind::ResErr,
            Event::ResTtl(_) => EventKind::ResTtl,
            Event::ResServUrl(_) => EventKind::ResServUrl,
            Event::ResAttr { .. } => EventKind::ResAttr,
            Event::SlpReqVersion(_) => EventKind::SlpReqVersion,
            Event::SlpReqScope(_) => EventKind::SlpReqScope,
            Event::SlpReqPredicate(_) => EventKind::SlpReqPredicate,
            Event::SlpReqId(_) => EventKind::SlpReqId,
            Event::UpnpDeviceUrlDesc(_) => EventKind::UpnpDeviceUrlDesc,
            Event::UpnpUsn(_) => EventKind::UpnpUsn,
            Event::UpnpServer(_) => EventKind::UpnpServer,
            Event::UpnpMx(_) => EventKind::UpnpMx,
            Event::UpnpSt(_) => EventKind::UpnpSt,
            Event::JiniGroups(_) => EventKind::JiniGroups,
            Event::JiniServiceId(_) => EventKind::JiniServiceId,
            Event::JiniLease(_) => EventKind::JiniLease,
        }
    }

    /// True for the mandatory (Table 1) events every composer must
    /// understand; false for the protocol-specific extensions.
    pub fn is_mandatory(&self) -> bool {
        self.kind().table1_name().is_some()
    }
}

impl EventKind {
    /// The paper's Table 1 name, for mandatory events.
    pub fn table1_name(self) -> Option<&'static str> {
        Some(match self {
            EventKind::Start => "SDP_C_START",
            EventKind::Stop => "SDP_C_STOP",
            EventKind::ParserSwitch => "SDP_C_PARSER_SWITCH",
            EventKind::SocketSwitch => "SDP_C_SOCKET_SWITCH",
            EventKind::NetUnicast => "SDP_NET_UNICAST",
            EventKind::NetMulticast => "SDP_NET_MULTICAST",
            EventKind::NetSourceAddr => "SDP_NET_SOURCE_ADDR",
            EventKind::NetDestAddr => "SDP_NET_DEST_ADDR",
            EventKind::NetType => "SDP_NET_TYPE",
            EventKind::ServiceRequest => "SDP_SERVICE_REQUEST",
            EventKind::ServiceResponse => "SDP_SERVICE_RESPONSE",
            EventKind::ServiceAlive => "SDP_SERVICE_ALIVE",
            EventKind::ServiceByeBye => "SDP_SERVICE_BYEBYE",
            EventKind::ServiceType => "SDP_SERVICE_TYPE",
            EventKind::ServiceAttr => "SDP_SERVICE_ATTR",
            EventKind::ReqLang => "SDP_REQ_LANG",
            EventKind::ResOk => "SDP_RES_OK",
            EventKind::ResErr => "SDP_RES_ERR",
            EventKind::ResTtl => "SDP_RES_TTL",
            EventKind::ResServUrl => "SDP_RES_SERV_URL",
            EventKind::ResAttr => "SDP_RES_ATTR",
            _ => return None,
        })
    }

    /// A wire-style name for any event kind (Table 1 name when mandatory,
    /// a specific-set name otherwise) — used in traces and tests.
    pub fn name(self) -> &'static str {
        if let Some(n) = self.table1_name() {
            return n;
        }
        match self {
            EventKind::SlpReqVersion => "SDP_REQ_VERSION",
            EventKind::SlpReqScope => "SDP_REQ_SCOPE",
            EventKind::SlpReqPredicate => "SDP_REQ_PREDICATE",
            EventKind::SlpReqId => "SDP_REQ_ID",
            EventKind::UpnpDeviceUrlDesc => "SDP_DEVICE_URL_DESC",
            EventKind::UpnpUsn => "SDP_UPNP_USN",
            EventKind::UpnpServer => "SDP_UPNP_SERVER",
            EventKind::UpnpMx => "SDP_UPNP_MX",
            EventKind::UpnpSt => "SDP_UPNP_ST",
            EventKind::JiniGroups => "SDP_JINI_GROUPS",
            EventKind::JiniServiceId => "SDP_JINI_SERVICE_ID",
            EventKind::JiniLease => "SDP_JINI_LEASE",
            _ => unreachable!("mandatory kinds answered above"),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.kind().name())
    }
}

/// A framed event stream: `SDP_C_START … SDP_C_STOP`, representing one
/// native message (or one internal translation step).
///
/// Streams are immutable shared buffers: [`Clone`] bumps a reference
/// count instead of copying events, so handing a stream to the bridge,
/// the cache and a composer costs three pointer bumps, not three deep
/// copies. The buffer handle is an `Arc`, so a stream built on one
/// runtime worker can be cached, bridged and delivered on another —
/// `EventStream` is `Send + Sync`, the seam PR 2 prepared for the
/// multi-threaded runtime. Construction sites that accumulate events
/// incrementally use [`EventStreamBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub struct EventStream {
    events: Arc<[Event]>,
}

impl Default for EventStream {
    /// An empty (unframed) stream; useful only as a placeholder.
    fn default() -> EventStream {
        EventStream { events: Arc::from(Vec::new()) }
    }
}

impl EventStream {
    /// Creates a stream already framed with `Start`/`Stop` around `body`.
    ///
    /// The shared buffer is allocated exactly once: the framing iterator
    /// is `TrustedLen`, so collecting into `Arc<[Event]>` writes the
    /// events straight into their final allocation.
    pub fn framed(body: Vec<Event>) -> EventStream {
        let events: Arc<[Event]> =
            std::iter::once(Event::Start).chain(body).chain(std::iter::once(Event::Stop)).collect();
        EventStream { events }
    }

    /// Wraps raw events, validating framing.
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::BadEventFraming`] if the stream does not start
    /// with `Start` and end with `Stop`.
    pub fn from_events(events: Vec<Event>) -> crate::CoreResult<EventStream> {
        let ok = matches!(events.first(), Some(Event::Start))
            && matches!(events.last(), Some(Event::Stop))
            && events.len() >= 2;
        if !ok {
            return Err(crate::CoreError::BadEventFraming);
        }
        Ok(EventStream { events: events.into() })
    }

    /// True when this stream and `other` share one buffer (a cheap-clone
    /// pair). Exposed for tests asserting the zero-copy property.
    pub fn shares_buffer(&self, other: &EventStream) -> bool {
        Arc::ptr_eq(&self.events, &other.events)
    }

    /// All events including the frame.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events between `Start` and `Stop`.
    pub fn body(&self) -> &[Event] {
        if self.events.len() < 2 {
            return &[];
        }
        &self.events[1..self.events.len() - 1]
    }

    /// A builder seeded with this stream's body, for deriving an edited
    /// copy (the original buffer is untouched).
    pub fn to_builder(&self) -> EventStreamBuilder {
        let mut builder = EventStreamBuilder::with_capacity(self.events.len());
        builder.extend_from_slice(self.body());
        builder
    }

    /// The names of all events, in order, for trace assertions (Fig. 4
    /// style). An iterator: the Fig. 4 trace path runs per message and
    /// must not allocate a `Vec` to be inspected.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.events.iter().map(|e| e.kind().name())
    }

    /// First `ServiceType` payload as a symbol, if any.
    pub fn service_type_symbol(&self) -> Option<Symbol> {
        self.events.iter().find_map(|e| match e {
            Event::ServiceType(t) => Some(t.clone()),
            _ => None,
        })
    }

    /// First `ServiceType` payload, if any.
    pub fn service_type(&self) -> Option<&str> {
        self.events.iter().find_map(|e| match e {
            Event::ServiceType(t) => Some(t.as_str()),
            _ => None,
        })
    }

    /// First `NetSourceAddr` payload, if any.
    pub fn source_addr(&self) -> Option<SocketAddrV4> {
        self.events.iter().find_map(|e| match e {
            Event::NetSourceAddr(a) => Some(*a),
            _ => None,
        })
    }

    /// First `ResServUrl` payload, if any.
    pub fn service_url(&self) -> Option<&str> {
        self.events.iter().find_map(|e| match e {
            Event::ResServUrl(u) => Some(u.as_str()),
            _ => None,
        })
    }

    /// All `ResAttr` pairs.
    pub fn response_attrs(&self) -> Vec<(&str, &str)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::ResAttr { tag, value } => Some((&**tag, &**value)),
                _ => None,
            })
            .collect()
    }

    /// True when the stream describes a search request.
    pub fn is_request(&self) -> bool {
        self.events.iter().any(|e| matches!(e, Event::ServiceRequest))
    }

    /// True when the stream describes a response.
    pub fn is_response(&self) -> bool {
        self.events.iter().any(|e| matches!(e, Event::ServiceResponse))
    }

    /// True when the stream describes an (alive) advertisement.
    pub fn is_alive(&self) -> bool {
        self.events.iter().any(|e| matches!(e, Event::ServiceAlive))
    }

    /// True when the stream describes a byebye advertisement.
    pub fn is_byebye(&self) -> bool {
        self.events.iter().any(|e| matches!(e, Event::ServiceByeBye))
    }

    /// Which protocol produced the stream, from `NetType`.
    pub fn net_type(&self) -> Option<SdpProtocol> {
        self.events.iter().find_map(|e| match e {
            Event::NetType(p) => Some(*p),
            _ => None,
        })
    }
}

/// Incremental construction of an [`EventStream`].
///
/// The builder owns the only mutable `Vec<Event>` in the pipeline: a
/// parser (or an enrichment step) pushes body events and [`build`]
/// freezes them — `Start`/`Stop` framing included — into the shared
/// immutable buffer every later hop clones by reference. The scratch
/// `Vec` behind the builder is drawn from a small thread-local pool and
/// handed back on build, so steady-state stream construction performs
/// exactly one allocation: the shared buffer itself.
///
/// [`build`]: EventStreamBuilder::build
#[derive(Debug, Default)]
pub struct EventStreamBuilder {
    body: Vec<Event>,
}

thread_local! {
    /// Recycled builder scratch vectors (bounded; see `return_scratch`).
    static BODY_POOL: std::cell::RefCell<Vec<Vec<Event>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn take_scratch(capacity: usize) -> Vec<Event> {
    BODY_POOL
        .with(|pool| pool.borrow_mut().pop())
        .map(|mut v| {
            v.reserve(capacity);
            v
        })
        .unwrap_or_else(|| Vec::with_capacity(capacity))
}

fn return_scratch(mut scratch: Vec<Event>) {
    scratch.clear();
    BODY_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < 8 {
            pool.push(scratch);
        }
    });
}

impl EventStreamBuilder {
    /// An empty builder.
    pub fn new() -> EventStreamBuilder {
        EventStreamBuilder::with_capacity(0)
    }

    /// An empty builder with room for `capacity` body events.
    pub fn with_capacity(capacity: usize) -> EventStreamBuilder {
        EventStreamBuilder { body: take_scratch(capacity) }
    }

    /// Appends one body event.
    pub fn push(&mut self, event: Event) -> &mut EventStreamBuilder {
        self.body.push(event);
        self
    }

    /// Appends a slice of body events.
    pub fn extend_from_slice(&mut self, events: &[Event]) -> &mut EventStreamBuilder {
        self.body.extend_from_slice(events);
        self
    }

    /// Number of body events so far.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// True when no body events have been pushed.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Frames the accumulated body and freezes it into a stream with a
    /// single allocation (the shared buffer); the scratch vector goes
    /// back to the pool.
    pub fn build(mut self) -> EventStream {
        let events: Arc<[Event]> = std::iter::once(Event::Start)
            .chain(self.body.drain(..))
            .chain(std::iter::once(Event::Stop))
            .collect();
        EventStream { events }
    }
}

impl Drop for EventStreamBuilder {
    fn drop(&mut self) {
        return_scratch(std::mem::take(&mut self.body));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every event type listed in the paper's Table 1 must exist with its
    /// exact name.
    #[test]
    fn table1_is_complete() {
        let expected = [
            "SDP_C_START",
            "SDP_C_STOP",
            "SDP_C_PARSER_SWITCH",
            "SDP_C_SOCKET_SWITCH",
            "SDP_NET_UNICAST",
            "SDP_NET_MULTICAST",
            "SDP_NET_SOURCE_ADDR",
            "SDP_NET_DEST_ADDR",
            "SDP_NET_TYPE",
            "SDP_SERVICE_REQUEST",
            "SDP_SERVICE_RESPONSE",
            "SDP_SERVICE_ALIVE",
            "SDP_SERVICE_BYEBYE",
            "SDP_SERVICE_TYPE",
            "SDP_SERVICE_ATTR",
            "SDP_REQ_LANG",
            "SDP_RES_OK",
            "SDP_RES_ERR",
            "SDP_RES_TTL",
            "SDP_RES_SERV_URL",
        ];
        let kinds = [
            EventKind::Start,
            EventKind::Stop,
            EventKind::ParserSwitch,
            EventKind::SocketSwitch,
            EventKind::NetUnicast,
            EventKind::NetMulticast,
            EventKind::NetSourceAddr,
            EventKind::NetDestAddr,
            EventKind::NetType,
            EventKind::ServiceRequest,
            EventKind::ServiceResponse,
            EventKind::ServiceAlive,
            EventKind::ServiceByeBye,
            EventKind::ServiceType,
            EventKind::ServiceAttr,
            EventKind::ReqLang,
            EventKind::ResOk,
            EventKind::ResErr,
            EventKind::ResTtl,
            EventKind::ResServUrl,
        ];
        for (kind, name) in kinds.iter().zip(expected.iter()) {
            assert_eq!(kind.table1_name(), Some(*name));
        }
    }

    #[test]
    fn specific_events_are_not_mandatory() {
        assert!(!Event::SlpReqVersion(2).is_mandatory());
        assert!(!Event::UpnpDeviceUrlDesc("http://x".into()).is_mandatory());
        assert!(!Event::JiniLease(60).is_mandatory());
        assert!(Event::ServiceRequest.is_mandatory());
        assert!(Event::ResAttr { tag: "a".into(), value: "b".into() }.is_mandatory());
    }

    #[test]
    fn framing_validates() {
        assert!(EventStream::from_events(vec![Event::Start, Event::Stop]).is_ok());
        assert!(EventStream::from_events(vec![Event::Start]).is_err());
        assert!(EventStream::from_events(vec![Event::ServiceRequest]).is_err());
        assert!(EventStream::from_events(vec![]).is_err());
    }

    #[test]
    fn framed_constructor_brackets() {
        let s = EventStream::framed(vec![Event::ServiceRequest]);
        assert_eq!(
            s.names().collect::<Vec<_>>(),
            vec!["SDP_C_START", "SDP_SERVICE_REQUEST", "SDP_C_STOP"]
        );
        assert_eq!(s.body().len(), 1);
    }

    #[test]
    fn builder_frames_and_freezes() {
        let mut b = EventStreamBuilder::with_capacity(2);
        assert!(b.is_empty());
        b.push(Event::ServiceRequest).push(Event::ServiceType("clock".into()));
        assert_eq!(b.len(), 2);
        let s = b.build();
        assert_eq!(
            s,
            EventStream::framed(vec![Event::ServiceRequest, Event::ServiceType("clock".into()),])
        );
    }

    #[test]
    fn clone_is_shared_not_copied() {
        let s = EventStream::framed(vec![Event::ServiceRequest]);
        let t = s.clone();
        assert!(s.shares_buffer(&t));
        assert_eq!(s, t);
        // An equal but independently built stream does not share.
        let u = EventStream::framed(vec![Event::ServiceRequest]);
        assert_eq!(s, u);
        assert!(!s.shares_buffer(&u));
    }

    #[test]
    fn to_builder_derives_without_mutating_original() {
        let s = EventStream::framed(vec![Event::ServiceAlive, Event::ServiceType("clock".into())]);
        let mut b = s.to_builder();
        b.push(Event::ResServUrl("soap://h/ctl".into()));
        let derived = b.build();
        assert_eq!(s.body().len(), 2, "original untouched");
        assert_eq!(derived.body().len(), 3);
        assert_eq!(derived.service_url(), Some("soap://h/ctl"));
    }

    #[test]
    fn accessors_find_payloads() {
        let addr = "10.0.0.1:40000".parse().unwrap();
        let s = EventStream::framed(vec![
            Event::NetType(SdpProtocol::Slp),
            Event::NetMulticast,
            Event::NetSourceAddr(addr),
            Event::ServiceRequest,
            Event::ServiceType("clock".into()),
        ]);
        assert!(s.is_request());
        assert!(!s.is_response());
        assert_eq!(s.service_type(), Some("clock"));
        assert_eq!(s.service_type_symbol(), Some(Symbol::intern("clock")));
        assert_eq!(s.source_addr(), Some(addr));
        assert_eq!(s.net_type(), Some(SdpProtocol::Slp));
    }

    #[test]
    fn response_accessors() {
        let s = EventStream::framed(vec![
            Event::ServiceResponse,
            Event::ResOk,
            Event::ResServUrl("service:clock://10.0.0.2".into()),
            Event::ResAttr { tag: "friendlyName".into(), value: "Clock".into() },
        ]);
        assert!(s.is_response());
        assert_eq!(s.service_url(), Some("service:clock://10.0.0.2"));
        assert_eq!(s.response_attrs(), vec![("friendlyName", "Clock")]);
    }

    #[test]
    fn protocol_ports_match_iana() {
        assert_eq!(SdpProtocol::Slp.port(), 427);
        assert_eq!(SdpProtocol::Upnp.port(), 1900);
        assert_eq!(SdpProtocol::Jini.port(), 4160);
    }

    #[test]
    fn display_uses_names() {
        assert_eq!(Event::Start.to_string(), "SDP_C_START");
        assert_eq!(Event::UpnpMx(0).to_string(), "SDP_UPNP_MX");
        assert_eq!(SdpProtocol::Upnp.to_string(), "UPnP");
    }

    /// A dynamic protocol behaves exactly like a built-in one where the
    /// monitor and the display layer are concerned: port, groups and name
    /// all come from its registration.
    #[test]
    fn dynamic_protocols_carry_their_registration() {
        let group = std::net::Ipv4Addr::new(239, 4, 4, 4);
        let id = ProtocolId::register("event-test-proto", 6200, &[group]).unwrap();
        let p = SdpProtocol::Dynamic(id);
        assert_eq!(p.port(), 6200);
        assert_eq!(p.multicast_groups(), &[group]);
        assert_eq!(p.to_string(), "event-test-proto");
        assert!(!SdpProtocol::ALL.contains(&p), "ALL stays the built-in set");
    }

    /// The stream buffer is the dominant per-message allocation, so
    /// `Event`'s size is a load-bearing property: symbols intern the
    /// high-churn strings and the attr payloads are boxed precisely to
    /// hold this bound. Growing it silently would inflate every stream.
    #[test]
    fn event_stays_small() {
        assert!(
            std::mem::size_of::<Event>() <= 40,
            "Event grew to {} bytes; box the new payload instead",
            std::mem::size_of::<Event>()
        );
    }
}
