//! Declarative hostile worlds: the `World = { … }` scenario layer.
//!
//! PR 7 gave the gateway point faults ([`indiss_net::FaultPlan`]) and
//! PR 8 federation (the mesh plane); this module turns both into
//! *data*. A world — node populations, per-lane fault rates, service
//! churn, mobility scripts, soak length, and the assertions the run
//! must satisfy — is declared inside the §3 `System SDP = { … }`
//! config text and compiled by the scenario engine
//! (`crates/bench/src/worlds.rs`) into a seeded deterministic run.
//!
//! Three contracts live here, shared between the config language, the
//! fuzz harness and the bench engine:
//!
//! - [`WorldSpec`] and its sub-blocks are the parsed form of the
//!   `World` block, plus [`WorldSpec::validate`] — the range rules
//!   that make numeric-field abuse from hostile config text safe by
//!   construction (a parsed world is either rejected or cheap to run).
//! - [`MemoryBudget`] / [`MemorySettlement`] capture the
//!   bounded-memory discipline the `registry_churn` bench pioneered:
//!   snapshot the interner before the storm, collect after, assert
//!   the footprint returned to within a declared budget.
//! - [`MutationSource`] is the PR 7 mutation fuzzer factored into a
//!   reusable generator, so the decoder fuzz loop and the live
//!   adversarial-traffic injector draw malformed datagrams from the
//!   same seeded strategy mix.
//!
//! Everything is deterministic: a [`ScenarioRng`] (SplitMix64) stream
//! from the world's seed, no wall clock, no global state.

use indiss_net::{FaultPlan, SimTime};

use crate::error::{CoreError, CoreResult};
use crate::symbol::Symbol;

/// Deterministic 64-bit generator (SplitMix64): tiny, seedable and
/// allocation-free. Step `n` of a given seed is always the same value,
/// which is the scenario layer's entire reproducibility story.
#[derive(Debug, Clone)]
pub struct ScenarioRng(u64);

impl ScenarioRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        ScenarioRng(seed)
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw uniform in `0..n` (`n == 0` is treated as `1`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Per-lane fault rates for every gateway transport in a world, as
/// integer percentages (the §3 config lexer has no floats). Compiled
/// to a [`FaultPlan`] by [`WorldFault::plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorldFault {
    /// Percent of datagrams silently discarded.
    pub drop_pct: u32,
    /// Percent of datagrams with payload bits flipped.
    pub corrupt_pct: u32,
    /// Percent of datagrams held back behind later arrivals.
    pub delay_pct: u32,
    /// Percent of datagrams swapped with the next arrival.
    pub reorder_pct: u32,
    /// Percent of datagrams delivered twice.
    pub duplicate_pct: u32,
}

impl WorldFault {
    /// True when every rate is zero — the engine skips the fault
    /// wrapper entirely for such worlds.
    pub fn is_quiet(&self) -> bool {
        self.drop_pct == 0
            && self.corrupt_pct == 0
            && self.delay_pct == 0
            && self.reorder_pct == 0
            && self.duplicate_pct == 0
    }

    /// Compiles the rates into a [`FaultPlan`] seeded for one gateway.
    /// Time-partition windows (mobility cuts) are layered on by the
    /// engine per gateway; they are not part of the shared rates.
    pub fn plan(&self, seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop: f64::from(self.drop_pct) / 100.0,
            corrupt: f64::from(self.corrupt_pct) / 100.0,
            delay: f64::from(self.delay_pct) / 100.0,
            delay_slots: if self.delay_pct > 0 { 4 } else { 0 },
            reorder: f64::from(self.reorder_pct) / 100.0,
            duplicate: f64::from(self.duplicate_pct) / 100.0,
            ..FaultPlan::default()
        }
    }
}

/// A scheduled link cut: one gateway's ingress is severed for a
/// half-open virtual-time window (`Cut = { Gateway = 1; FromSecs = 2;
/// ToSecs = 5 }`). Compiled to a [`FaultPlan::time_partitions`] entry
/// on that gateway's transport only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkCut {
    /// Index of the gateway whose ingress is cut (0-based).
    pub gateway: u32,
    /// Window start, inclusive, in virtual seconds.
    pub from_secs: u32,
    /// Window end, exclusive, in virtual seconds.
    pub to_secs: u32,
}

impl LinkCut {
    /// The cut as a `[start, end)` window for
    /// [`FaultPlan::time_partitions`].
    pub fn window(&self) -> (SimTime, SimTime) {
        (SimTime::from_secs(u64::from(self.from_secs)), SimTime::from_secs(u64::from(self.to_secs)))
    }
}

/// A mobility script entry: at `at_secs` a service stops advertising
/// from `from_gateway` and re-originates at `to_gateway` (`Move = {
/// Service = 7; From = 0; To = 2; AtSecs = 10 }`). The handover must
/// converge to a single live record — the mesh's version vectors and
/// the registry's re-advertising guard are what this exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MobilityMove {
    /// Index of the moving service (0-based, within the world's
    /// service population).
    pub service: u32,
    /// Gateway the service leaves.
    pub from_gateway: u32,
    /// Gateway the service re-originates at.
    pub to_gateway: u32,
    /// Virtual second at which the move happens.
    pub at_secs: u32,
}

/// Declarative assertions a world's run must satisfy; `None` leaves a
/// dimension ungated. Checked by the engine after the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorldAsserts {
    /// Interner growth budget in bytes: after a post-run
    /// [`Symbol::collect`], the interned footprint must be within this
    /// many bytes of the pre-run snapshot ([`MemoryBudget`]).
    pub max_interned_bytes: Option<u64>,
    /// Minimum probe delivery rate, percent.
    pub min_delivery_pct: Option<u32>,
    /// Maximum records in any one gateway's registry at run end.
    pub max_registry_records: Option<u64>,
    /// Maximum adverts in any one gateway's custody buffers at run end.
    pub max_custody: Option<u64>,
    /// Maximum in-flight probe-tracker population at any tick.
    pub max_tracker_entries: Option<u64>,
}

/// A parsed `World = { … }` block: the declarative shape of one
/// hostile world. Defaults describe the smallest legal world (two
/// quiet gateways, a handful of services, ten virtual seconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldSpec {
    /// Root seed; every draw in the run derives from it.
    pub seed: u64,
    /// Mesh-federated gateway population.
    pub gateways: u32,
    /// Service population (advert sources churned over the run).
    pub services: u32,
    /// Run length in virtual seconds.
    pub duration_secs: u32,
    /// Engine tick length in virtual milliseconds (gossip rounds,
    /// churn batches and probes are issued per tick).
    pub tick_millis: u32,
    /// Services (re-)announced per tick, drawn seeded from the
    /// population.
    pub churn_arrivals_per_tick: u32,
    /// Services departing per tick (their adverts left to expire).
    pub churn_departures_per_tick: u32,
    /// TTL stamped on churned adverts, in virtual seconds.
    pub advert_ttl_secs: u32,
    /// Shared per-lane fault rates for every gateway transport.
    pub fault: WorldFault,
    /// Scheduled per-gateway link cuts (virtual-time partitions).
    pub cuts: Vec<LinkCut>,
    /// Mobility script: services re-homing between gateways.
    pub moves: Vec<MobilityMove>,
    /// Malformed datagrams injected per tick from the mutation
    /// fuzzer's strategy mix ([`MutationSource`]).
    pub inject_per_tick: u32,
    /// When nonzero, the world is a soak: this many adverts are pushed
    /// through the registries (in addition to churn) with
    /// bounded-memory assertions expected in [`WorldSpec::asserts`].
    pub soak_records: u64,
    /// The assertions gating the run.
    pub asserts: WorldAsserts,
}

impl Default for WorldSpec {
    fn default() -> Self {
        WorldSpec {
            seed: 1,
            gateways: 2,
            services: 8,
            duration_secs: 10,
            tick_millis: 500,
            churn_arrivals_per_tick: 0,
            churn_departures_per_tick: 0,
            advert_ttl_secs: 8,
            fault: WorldFault::default(),
            cuts: Vec::new(),
            moves: Vec::new(),
            inject_per_tick: 0,
            soak_records: 0,
            asserts: WorldAsserts::default(),
        }
    }
}

impl WorldSpec {
    /// Checks every numeric field against the ranges the engine is
    /// sized for. This is the line that makes hostile config text safe
    /// to *run*, not merely to parse: a fuzzer can splice any numbers
    /// it likes into a `World` block, and the outcome is a
    /// [`CoreError::BadConfig`] — never an unbounded allocation or a
    /// runaway loop.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadConfig`] naming the violated rule.
    pub fn validate(&self) -> CoreResult<()> {
        fn rule(ok: bool, why: &'static str) -> CoreResult<()> {
            if ok {
                Ok(())
            } else {
                Err(CoreError::BadConfig(why))
            }
        }
        rule((2..=64).contains(&self.gateways), "World: Gateways must be 2..=64")?;
        rule((1..=2_000_000).contains(&self.services), "World: Services must be 1..=2000000")?;
        rule((1..=3600).contains(&self.duration_secs), "World: DurationSecs must be 1..=3600")?;
        rule((1..=10_000).contains(&self.tick_millis), "World: TickMillis must be 1..=10000")?;
        rule(
            self.churn_arrivals_per_tick <= 100_000,
            "World: ChurnArrivalsPerTick must be <= 100000",
        )?;
        rule(
            self.churn_departures_per_tick <= 100_000,
            "World: ChurnDeparturesPerTick must be <= 100000",
        )?;
        rule(
            (1..=86_400).contains(&self.advert_ttl_secs),
            "World: AdvertTtlSecs must be 1..=86400",
        )?;
        for pct in [
            self.fault.drop_pct,
            self.fault.corrupt_pct,
            self.fault.delay_pct,
            self.fault.reorder_pct,
            self.fault.duplicate_pct,
        ] {
            rule(pct <= 100, "World: Fault percentages must be <= 100")?;
        }
        rule(self.cuts.len() <= 64, "World: at most 64 Cut blocks")?;
        for cut in &self.cuts {
            rule(cut.gateway < self.gateways, "World: Cut Gateway index out of range")?;
            rule(cut.from_secs < cut.to_secs, "World: Cut window must have FromSecs < ToSecs")?;
            rule(
                cut.to_secs <= self.duration_secs,
                "World: Cut window must end within DurationSecs",
            )?;
        }
        rule(self.moves.len() <= 256, "World: at most 256 Move blocks")?;
        for mv in &self.moves {
            rule(mv.service < self.services, "World: Move Service index out of range")?;
            rule(mv.from_gateway < self.gateways, "World: Move From gateway out of range")?;
            rule(mv.to_gateway < self.gateways, "World: Move To gateway out of range")?;
            rule(mv.from_gateway != mv.to_gateway, "World: Move must change gateways")?;
            rule(
                mv.at_secs <= self.duration_secs,
                "World: Move AtSecs must be within DurationSecs",
            )?;
        }
        rule(self.inject_per_tick <= 1000, "World: InjectPerTick must be <= 1000")?;
        rule(self.soak_records <= 10_000_000, "World: SoakRecords must be <= 10000000")?;
        if let Some(pct) = self.asserts.min_delivery_pct {
            rule(pct <= 100, "World: Assert MinDeliveryPct must be <= 100")?;
        }
        Ok(())
    }

    /// Total node population of the world: gateways plus service
    /// hosts. The "≥ 1000-node churn world" in the scenario matrix is
    /// counted on this number.
    pub fn nodes(&self) -> u64 {
        u64::from(self.gateways) + u64::from(self.services)
    }

    /// Number of engine ticks the run spans.
    pub fn ticks(&self) -> u64 {
        u64::from(self.duration_secs)
            .saturating_mul(1000)
            .div_ceil(u64::from(self.tick_millis.max(1)))
    }
}

/// A pre-run snapshot of the symbol interner plus a growth budget:
/// the bounded-memory discipline shared by the `registry_churn` bench
/// and the soak worlds. Capture before the storm, [`settle`] after.
///
/// [`settle`]: MemoryBudget::settle
#[derive(Debug, Clone, Copy)]
pub struct MemoryBudget {
    interned_before: usize,
    limit: usize,
}

impl MemoryBudget {
    /// Collects dead symbols and snapshots the live interned footprint
    /// as the baseline the post-run footprint is measured against.
    /// `limit` is the allowed growth in bytes.
    pub fn capture(limit: usize) -> Self {
        Symbol::collect();
        MemoryBudget { interned_before: Symbol::interned_bytes(), limit }
    }

    /// The baseline footprint in bytes, as captured.
    pub fn interned_before(&self) -> usize {
        self.interned_before
    }

    /// Collects dead symbols and measures the run's residue against
    /// the budget.
    pub fn settle(&self) -> MemorySettlement {
        let reclaimed_entries = Symbol::collect();
        MemorySettlement {
            interned_before: self.interned_before,
            interned_after: Symbol::interned_bytes(),
            reclaimed_entries,
            limit: self.limit,
        }
    }
}

/// The outcome of a [`MemoryBudget::settle`]: footprints before and
/// after, and whether growth stayed within the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemorySettlement {
    /// Live interned bytes before the run.
    pub interned_before: usize,
    /// Live interned bytes after the run and a collection.
    pub interned_after: usize,
    /// Interner entries reclaimed by the settling collection.
    pub reclaimed_entries: usize,
    /// Allowed growth in bytes.
    pub limit: usize,
}

impl MemorySettlement {
    /// True when the post-run footprint is within `limit` bytes of the
    /// baseline. (The bound is on *growth*, not absolute size: other
    /// threads may intern concurrently, so the baseline floats.)
    pub fn within_budget(&self) -> bool {
        self.interned_after <= self.interned_before.saturating_add(self.limit)
    }

    /// Panics with a labelled diagnostic when the budget is exceeded.
    ///
    /// # Panics
    ///
    /// When [`within_budget`](MemorySettlement::within_budget) is false.
    pub fn assert_within(&self, context: &str) {
        assert!(
            self.within_budget(),
            "{context}: interner retained garbage: {} -> {} bytes (budget +{})",
            self.interned_before,
            self.interned_after,
            self.limit
        );
    }
}

/// The PR 7 mutation fuzzer as a reusable generator: raw byte soup and
/// structured mutations (truncations, extensions, splices, length-field
/// abuse, bit flips) of a seed corpus, drawn from a seeded
/// [`ScenarioRng`]. The decoder fuzz loop drives its iterations from
/// this; the scenario engine taps the same source as a live
/// malformed-datagram injector, so a world's adversarial traffic is
/// exactly the fuzzer's distribution.
#[derive(Debug, Clone)]
pub struct MutationSource {
    corpus: Vec<Vec<u8>>,
    rng: ScenarioRng,
}

impl MutationSource {
    /// A source drawing from `corpus`; an empty corpus degenerates to
    /// pure byte soup.
    pub fn new(seed: u64, corpus: Vec<Vec<u8>>) -> Self {
        MutationSource { corpus, rng: ScenarioRng::new(seed) }
    }

    /// The next fuzz input. The strategy mix is weighted toward
    /// mutations — random bytes mostly die in the first length check,
    /// mutated valid frames reach the deep branches.
    pub fn next_input(&mut self) -> Vec<u8> {
        let rng = &mut self.rng;
        let strategy = if self.corpus.is_empty() { 0 } else { rng.below(8) };
        match strategy {
            // Raw soup, length 0..=96: exercises the headers.
            0 => {
                let len = rng.below(97);
                (0..len).map(|_| rng.next_u64() as u8).collect()
            }
            // Truncation: valid prefix of a seed.
            1 => {
                let seed = &self.corpus[rng.below(self.corpus.len())];
                seed[..rng.below(seed.len() + 1)].to_vec()
            }
            // Extension: a seed plus trailing garbage.
            2 => {
                let mut v = self.corpus[rng.below(self.corpus.len())].clone();
                for _ in 0..rng.below(32) {
                    v.push(rng.next_u64() as u8);
                }
                v
            }
            // Splice: head of one seed, tail of another.
            3 => {
                let a = &self.corpus[rng.below(self.corpus.len())];
                let b = &self.corpus[rng.below(self.corpus.len())];
                let mut v = a[..rng.below(a.len() + 1)].to_vec();
                v.extend_from_slice(&b[rng.below(b.len() + 1)..]);
                v
            }
            // Length-field abuse: overwrite two adjacent bytes with an
            // extreme big-endian value (0xFFFF / 0x8000 / small).
            4 => {
                let mut v = self.corpus[rng.below(self.corpus.len())].clone();
                if v.len() >= 2 {
                    let at = rng.below(v.len() - 1);
                    let val: u16 = [0xFFFF, 0x8000, 0x7FFF, 0x0001][rng.below(4)];
                    v[at..at + 2].copy_from_slice(&val.to_be_bytes());
                }
                v
            }
            // Bit flips: 1..=8 single-bit corruptions.
            _ => {
                let mut v = self.corpus[rng.below(self.corpus.len())].clone();
                if !v.is_empty() {
                    for _ in 0..=rng.below(8) {
                        let at = rng.below(v.len());
                        v[at] ^= 1 << rng.below(8);
                    }
                }
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_world_validates() {
        WorldSpec::default().validate().expect("the smallest legal world is legal");
        assert_eq!(WorldSpec::default().nodes(), 10);
        assert_eq!(WorldSpec::default().ticks(), 20);
    }

    #[test]
    fn validate_rejects_out_of_range_numerics() {
        let cases: Vec<(&str, WorldSpec)> = vec![
            ("gateways low", WorldSpec { gateways: 1, ..WorldSpec::default() }),
            ("gateways high", WorldSpec { gateways: 65, ..WorldSpec::default() }),
            ("services zero", WorldSpec { services: 0, ..WorldSpec::default() }),
            ("services huge", WorldSpec { services: 2_000_001, ..WorldSpec::default() }),
            ("duration zero", WorldSpec { duration_secs: 0, ..WorldSpec::default() }),
            ("duration huge", WorldSpec { duration_secs: 3601, ..WorldSpec::default() }),
            ("tick zero", WorldSpec { tick_millis: 0, ..WorldSpec::default() }),
            (
                "fault pct",
                WorldSpec {
                    fault: WorldFault { drop_pct: 101, ..WorldFault::default() },
                    ..WorldSpec::default()
                },
            ),
            (
                "cut backwards",
                WorldSpec {
                    cuts: vec![LinkCut { gateway: 0, from_secs: 5, to_secs: 2 }],
                    ..WorldSpec::default()
                },
            ),
            (
                "cut gateway range",
                WorldSpec {
                    cuts: vec![LinkCut { gateway: 9, from_secs: 1, to_secs: 2 }],
                    ..WorldSpec::default()
                },
            ),
            (
                "move to itself",
                WorldSpec {
                    moves: vec![MobilityMove {
                        service: 0,
                        from_gateway: 1,
                        to_gateway: 1,
                        at_secs: 1,
                    }],
                    ..WorldSpec::default()
                },
            ),
            (
                "move service range",
                WorldSpec {
                    moves: vec![MobilityMove {
                        service: 99,
                        from_gateway: 0,
                        to_gateway: 1,
                        at_secs: 1,
                    }],
                    ..WorldSpec::default()
                },
            ),
            ("inject huge", WorldSpec { inject_per_tick: 1001, ..WorldSpec::default() }),
            ("soak huge", WorldSpec { soak_records: 10_000_001, ..WorldSpec::default() }),
            (
                "assert pct",
                WorldSpec {
                    asserts: WorldAsserts {
                        min_delivery_pct: Some(101),
                        ..WorldAsserts::default()
                    },
                    ..WorldSpec::default()
                },
            ),
        ];
        for (why, spec) in cases {
            let err = spec.validate().expect_err(why);
            assert!(matches!(err, CoreError::BadConfig(_)), "{why}: {err}");
        }
    }

    #[test]
    fn fault_rates_compile_to_a_plan() {
        let fault = WorldFault { drop_pct: 10, corrupt_pct: 5, ..WorldFault::default() };
        assert!(!fault.is_quiet());
        let plan = fault.plan(9);
        assert_eq!(plan.seed, 9);
        assert!((plan.drop - 0.10).abs() < 1e-9);
        assert!((plan.corrupt - 0.05).abs() < 1e-9);
        assert_eq!(plan.delay_slots, 0, "no delay slots without a delay rate");
        assert!(WorldFault::default().is_quiet());
    }

    #[test]
    fn mutation_source_is_deterministic() {
        let corpus = vec![b"HELLO WORLD".to_vec(), vec![0xAA; 64]];
        let mut a = MutationSource::new(7, corpus.clone());
        let mut b = MutationSource::new(7, corpus.clone());
        let xs: Vec<Vec<u8>> = (0..200).map(|_| a.next_input()).collect();
        let ys: Vec<Vec<u8>> = (0..200).map(|_| b.next_input()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        let mut c = MutationSource::new(8, corpus);
        let zs: Vec<Vec<u8>> = (0..200).map(|_| c.next_input()).collect();
        assert_ne!(xs, zs, "different seed, different stream");
        // An empty corpus still produces (soup-only) inputs.
        let mut soup = MutationSource::new(1, Vec::new());
        for _ in 0..50 {
            let _ = soup.next_input();
        }
    }

    #[test]
    fn memory_budget_settles_within_limit() {
        let budget = MemoryBudget::capture(64 * 1024);
        // Transient symbols: interned, dropped, then collected.
        for i in 0..512 {
            let _ = Symbol::intern(&format!("scenario-budget-transient-{i}"));
        }
        let settlement = budget.settle();
        assert!(settlement.within_budget(), "{settlement:?}");
        settlement.assert_within("scenario budget test");
        assert_eq!(settlement.interned_before, budget.interned_before());
    }

    #[test]
    fn link_cut_compiles_to_a_time_window() {
        let cut = LinkCut { gateway: 1, from_secs: 2, to_secs: 5 };
        assert_eq!(cut.window(), (SimTime::from_secs(2), SimTime::from_secs(5)));
    }
}
