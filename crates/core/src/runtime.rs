//! The INDISS runtime: monitor + units + session routing (paper §2.2,
//! Fig. 2/3) plus dynamic composition (§3) and adaptation (§4.2).
//!
//! One [`Indiss`] instance deploys on a node — client, service or gateway
//! side, the mechanics are identical — and from then on:
//!
//! 1. the monitor detects SDPs and hands raw messages to the right unit's
//!    parser;
//! 2. request event streams are bridged: every *other* unit executes its
//!    native query process, the first successful response-event stream
//!    wins and the origin unit composes the native reply;
//! 3. advertisement streams are recorded in the [`ServiceRegistry`] (and
//!    re-advertised in the active mode);
//! 4. response streams warm the registry's bounded response cache, which
//!    yields the paper's §4.3 best case (~0.1 ms answers from
//!    already-held knowledge).
//!
//! All discovered-service state — records, the response cache, the
//! suppression window and the units' bridge projections — lives in the
//! shared [`ServiceRegistry`]; the runtime drives its TTL sweeps from
//! virtual-time timers so expiry stays deterministic.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::{Arc, Mutex, MutexGuard, Weak};

use indiss_net::{Completion, Datagram, Node, SimTime, Transport, World};

use crate::adapt::DiscoveryMode;
use crate::config::{IndissConfig, UnitSpec};
use crate::error::{CoreError, CoreResult};
use crate::event::{Event, EventStream, SdpProtocol};
use crate::gateway::{classify_request, BridgeCounters, WarmDecision};
use crate::mesh::MeshNode;
use crate::monitor::Monitor;
use crate::obs::{Phase, SimClock, Tracer};
use crate::registry::ServiceRegistry;
use crate::units::{ParsedMessage, Unit, UnitContext};

/// Counters exposed for tests and the evaluation harness. The bridge-path
/// counters are maintained by the runtime; the cache and record counters
/// are folded in from the [`ServiceRegistry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BridgeStats {
    /// Requests parsed and dispatched to foreign units.
    pub requests_bridged: u64,
    /// Native responses composed back to requesters.
    pub responses_composed: u64,
    /// Requests answered from the response cache.
    pub cache_hits: u64,
    /// The subset of `cache_hits` served from entries warmed by mesh
    /// gossip ([`crate::RecordOrigin::Remote`]) rather than local SDP
    /// traffic — the federated plane's "remote hit" counter.
    pub remote_cache_hits: u64,
    /// Cache lookups that found nothing usable.
    pub cache_misses: u64,
    /// Requests answered "nothing found" by the negative cache, without
    /// fanning out to the units.
    pub negative_hits: u64,
    /// Cache entries evicted by the LRU capacity bound.
    pub cache_evictions: u64,
    /// Cache entries dropped because their TTL elapsed.
    pub cache_expired: u64,
    /// Advertisements recorded from the environment.
    pub adverts_recorded: u64,
    /// Advertisements re-composed into other SDPs (active mode).
    pub adverts_translated: u64,
    /// Requests dropped by the suppression window (multi-bridge loop
    /// protection).
    pub requests_suppressed: u64,
    /// Fan-out attempts re-issued because the per-query deadline fired
    /// with no unit answer (each retry of one query counts once).
    pub queries_retried: u64,
    /// Queries that exhausted every retry without a unit answer and
    /// were degraded (a stale registry answer or a negative reply).
    pub queries_exhausted: u64,
    /// Exhausted queries answered from stale registry knowledge
    /// ([`crate::ServiceRegistry::stale_response`]) instead of a
    /// negative reply.
    pub stale_served: u64,
    /// Service records dropped because their TTL elapsed.
    pub records_expired: u64,
    /// Service records evicted by the registry capacity bound.
    pub records_evicted: u64,
}

struct IndissInner {
    node: Node,
    config: IndissConfig,
    units: HashMap<SdpProtocol, Rc<dyn Unit>>,
    registry: ServiceRegistry,
    /// Bridge-path counters: atomics shared with the registry snapshot
    /// path, so `stats()` never needs the runtime lock for counting.
    counters: Arc<BridgeCounters>,
    mode: DiscoveryMode,
    mode_log: Vec<(SimTime, DiscoveryMode)>,
    /// Virtual time the next registry sweep is armed for, if any.
    sweep_armed: Option<SimTime>,
    /// The federated mesh plane, when deployed via
    /// [`Indiss::deploy_mesh`]. Gossip rounds and custody expiry are
    /// driven by virtual-time timers (`schedule_mesh_tick`).
    mesh: Option<MeshNode>,
    /// Virtual time the next mesh tick is armed for, if any.
    mesh_tick_armed: Option<SimTime>,
    /// Pipeline span recorder ([`crate::IndissConfig::trace`]). In the
    /// simulated runtime every span is recorded at explicit virtual
    /// times (`record_at`), so same-seed replays export byte-identical
    /// traces.
    tracer: Tracer,
}

/// A deployed INDISS instance.
///
/// The handle is the codebase-wide `Arc<Mutex<…>>` shape (the registry
/// behind it is the fully `Send + Sync` sharded store); the instance
/// itself stays bound to its single-threaded simulation [`World`] — the
/// deterministic event loop is the point of the simulator — while the
/// warm-path semantics it exercises are exactly the ones
/// [`crate::ThreadedGateway`] runs across worker threads, via the shared
/// `classify_request`.
///
/// See the crate-level docs for a full example; the one-liner is
/// `Indiss::deploy(&node, IndissConfig::slp_upnp())`.
#[derive(Clone)]
pub struct Indiss {
    inner: Arc<Mutex<IndissInner>>,
    monitor: Monitor,
}

/// A weak re-entry handle into a deployed runtime's bridge, handed to
/// [`crate::UnitFactory`] builds via [`UnitContext`]: units with their
/// own listening endpoints (the Jini registrar, custom units) use it to
/// feed parsed streams back into the request/advert paths.
///
/// Weak by design — a unit holding its runtime's bridge handle must not
/// keep the runtime alive; once the instance is dropped the handle's
/// methods become no-ops.
#[derive(Clone)]
pub struct BridgeHandle {
    inner: Weak<Mutex<IndissInner>>,
    monitor: Monitor,
}

impl BridgeHandle {
    fn upgrade(&self) -> Option<Indiss> {
        self.inner.upgrade().map(|inner| Indiss { inner, monitor: self.monitor.clone() })
    }

    /// Bridges a request stream that arrived at a unit's own endpoint.
    /// When `reply` is given the response events are handed back on it
    /// instead of being composed by the origin unit.
    pub fn bridge_request(
        &self,
        world: &World,
        origin: SdpProtocol,
        request: EventStream,
        reply: Option<Completion<EventStream>>,
    ) {
        if let Some(instance) = self.upgrade() {
            instance.bridge_request(world, origin, request, reply);
        }
    }

    /// Records an advertisement stream that arrived at a unit's own
    /// endpoint (and re-advertises it in the active mode).
    pub fn record_advert(&self, world: &World, origin: SdpProtocol, advert: EventStream) {
        if let Some(instance) = self.upgrade() {
            instance.record_advert(world, origin, advert);
        }
    }
}

impl Indiss {
    fn inner(&self) -> MutexGuard<'_, IndissInner> {
        self.inner.lock().expect("runtime lock poisoned")
    }

    /// Deploys INDISS on `node` with the given configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadConfig`] when no units are configured, when two
    /// units claim the same protocol (a silent first-wins would make the
    /// losing spec's configuration disappear without a trace), or when
    /// the config names mesh peers — a `Peers = { … }` block or
    /// [`IndissConfig::with_mesh`] deploys through
    /// [`Indiss::deploy_mesh`], so a configured federation can never be
    /// silently dropped; network errors when the monitor or unit sockets
    /// cannot bind.
    pub fn deploy(node: &Node, config: IndissConfig) -> CoreResult<Indiss> {
        if config.mesh_config().is_some() {
            return Err(CoreError::BadConfig(
                "the config names mesh peers; use Indiss::deploy_mesh with the \
                 transport the gateways share as their peer bus",
            ));
        }
        Indiss::deploy_inner(node, config)
    }

    /// Deploys INDISS *and* its federated mesh plane: everything
    /// [`Indiss::deploy`] does, plus a [`MeshNode`] built from the
    /// config's [`IndissConfig::mesh_config`] (a config-language
    /// `Peers = { … }` block or [`IndissConfig::with_mesh`]) is started
    /// on `peer_bus` — the transport every gateway of one mesh must
    /// share. Gossip rounds and custody expiry run on the node's
    /// virtual-time world, and locally recorded adverts are offered to
    /// the mesh for store-and-forward custody automatically.
    ///
    /// # Errors
    ///
    /// Everything [`Indiss::deploy`] rejects, plus
    /// [`CoreError::BadConfig`] when the config names no mesh peers (or
    /// shards the registry beyond what the digest wire carries) and
    /// [`CoreError::Net`] when the peer channel cannot bind.
    pub fn deploy_mesh(
        node: &Node,
        config: IndissConfig,
        peer_bus: Arc<dyn Transport>,
    ) -> CoreResult<Indiss> {
        let Some(mesh_config) = config.mesh_config() else {
            return Err(CoreError::BadConfig(
                "deploy_mesh needs mesh peers (a Peers block or with_mesh)",
            ));
        };
        let instance = Indiss::deploy_inner(node, config)?;
        let mesh = MeshNode::new(instance.registry(), peer_bus, mesh_config);
        mesh.set_tracer(instance.tracer());
        mesh.start()?;
        instance.inner().mesh = Some(mesh);
        instance.schedule_mesh_tick(node.world());
        Ok(instance)
    }

    fn deploy_inner(node: &Node, config: IndissConfig) -> CoreResult<Indiss> {
        if config.units.is_empty() {
            return Err(CoreError::BadConfig("at least one unit is required"));
        }
        let mut claimed = HashSet::new();
        for spec in &config.units {
            if !claimed.insert(spec.protocol()) {
                return Err(CoreError::BadConfig(
                    "duplicate unit: each protocol may be configured at most once",
                ));
            }
        }
        let protocols = config.protocols();
        let monitor = Monitor::start(node, &protocols)?;
        let registry = ServiceRegistry::new(config.registry_config());
        let tracer = if config.trace {
            // One ring: the simulated runtime is single-threaded, so one
            // writer covers every lane, and one ring keeps the exported
            // span order exactly the (virtual-time) write order.
            let ports: Vec<u16> = protocols.iter().map(|p| p.port()).collect();
            Tracer::new(config.trace_capacity, 1, &ports, Arc::new(SimClock::new()))
        } else {
            Tracer::disabled()
        };
        // `IndissInner` is deliberately not `Send`: it holds the
        // simulation `Node` and `Rc<dyn Unit>`s bound to the
        // single-threaded virtual-time world. The handle is still
        // `Arc<Mutex<…>>` so the runtime shape (and `BridgeHandle`'s
        // `Weak`) matches the threaded architecture it shares state
        // with; the `Send + Sync` surface proper is the registry,
        // counters and gateway (see `tests/sharding.rs`).
        #[allow(clippy::arc_with_non_send_sync)]
        let instance = Indiss {
            inner: Arc::new(Mutex::new(IndissInner {
                node: node.clone(),
                config: config.clone(),
                units: HashMap::new(),
                registry,
                counters: Arc::new(BridgeCounters::default()),
                mode: DiscoveryMode::Passive,
                mode_log: vec![(node.world().now(), DiscoveryMode::Passive)],
                sweep_armed: None,
                mesh: None,
                mesh_tick_armed: None,
                tracer,
            })),
            monitor: monitor.clone(),
        };

        if config.lazy_units {
            // Dynamic composition (Fig. 5): instantiate a unit when its
            // protocol is first detected.
            let this = instance.clone();
            monitor.on_detect(move |_, protocol| {
                let _ = this.ensure_unit(protocol);
            });
        } else {
            for spec in &config.units {
                instance.instantiate(spec)?;
            }
        }

        // Wire the message path: monitor → parser → bridge.
        let this = instance.clone();
        monitor.on_message(move |world, protocol, dgram| this.handle(world, protocol, dgram));

        // Adaptation loop.
        if let Some(policy) = config.adaptation.clone() {
            let this = instance.clone();
            node.world().schedule_in(policy.check_interval, move |w| {
                this.adaptation_tick(w, policy.clone());
            });
        }
        Ok(instance)
    }

    /// The monitor (for detection queries).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// The shared service registry behind this instance.
    pub fn registry(&self) -> ServiceRegistry {
        self.inner().registry.clone()
    }

    /// The federated mesh plane, when this instance was deployed via
    /// [`Indiss::deploy_mesh`].
    pub fn mesh(&self) -> Option<MeshNode> {
        self.inner().mesh.clone()
    }

    /// The pipeline span recorder. Disabled (and free) unless the
    /// config set [`crate::IndissConfig::trace`]; enabled, it holds the
    /// virtual-time spans a test or harness exports with
    /// [`crate::chrome_trace_json`].
    pub fn tracer(&self) -> Tracer {
        self.inner().tracer.clone()
    }

    /// Bridge statistics so far (atomic bridge-path counters merged with
    /// the registry's per-shard cache and record counters).
    pub fn stats(&self) -> BridgeStats {
        let (counters, registry) = {
            let inner = self.inner();
            (Arc::clone(&inner.counters), inner.registry.clone())
        };
        counters.snapshot(&registry)
    }

    /// Current interception mode.
    pub fn mode(&self) -> DiscoveryMode {
        self.inner().mode
    }

    /// Mode transitions with their timestamps (Fig. 6 evidence), as an
    /// owned snapshot. Convenience wrapper over
    /// [`Indiss::with_mode_log`]; prefer the borrow-based accessor
    /// anywhere called repeatedly.
    pub fn mode_log(&self) -> Vec<(SimTime, DiscoveryMode)> {
        self.with_mode_log(<[_]>::to_vec)
    }

    /// Runs `f` over the mode-transition log without cloning it.
    pub fn with_mode_log<R>(&self, f: impl FnOnce(&[(SimTime, DiscoveryMode)]) -> R) -> R {
        f(&self.inner().mode_log)
    }

    /// Protocols with an instantiated unit.
    pub fn active_units(&self) -> Vec<SdpProtocol> {
        let mut ps: Vec<SdpProtocol> = self.inner().units.keys().copied().collect();
        ps.sort_by_key(|p| p.port());
        ps
    }

    /// Pre-warms the response cache (used by the evaluation harness to
    /// reproduce the paper's warm best case explicitly).
    pub fn warm_cache(&self, canonical_type: &str, response: EventStream) {
        let (registry, world) = {
            let inner = self.inner();
            (inner.registry.clone(), inner.node.world().clone())
        };
        registry.warm(canonical_type, response, world.now());
        self.schedule_sweep(&world);
    }

    fn ensure_unit(&self, protocol: SdpProtocol) -> CoreResult<()> {
        let spec = {
            let inner = self.inner();
            if inner.units.contains_key(&protocol) {
                return Ok(());
            }
            inner.config.units.iter().find(|s| s.protocol() == protocol).cloned()
        };
        match spec {
            Some(spec) => self.instantiate(&spec),
            None => Ok(()),
        }
    }

    /// Instantiates one unit through its [`crate::UnitFactory`] — the
    /// runtime has no knowledge of unit kinds, so the protocol set stays
    /// open (built-ins, descriptor-driven units and custom factories all
    /// take the same path).
    fn instantiate(&self, spec: &UnitSpec) -> CoreResult<()> {
        let ctx = {
            let inner = self.inner();
            UnitContext {
                node: inner.node.clone(),
                registry: inner.registry.clone(),
                monitor: self.monitor.clone(),
                bridge: BridgeHandle {
                    inner: Arc::downgrade(&self.inner),
                    monitor: self.monitor.clone(),
                },
            }
        };
        let unit = spec.factory().build(&ctx)?;
        unit.bind_registry(&ctx.registry);
        for addr in unit.own_sources() {
            self.monitor.ignore_source(addr);
        }
        self.inner().units.insert(spec.protocol(), unit);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Message path
    // ------------------------------------------------------------------

    fn handle(&self, world: &World, protocol: SdpProtocol, dgram: &Datagram) {
        if self.inner().config.lazy_units {
            let _ = self.ensure_unit(protocol);
        }
        let Some((unit, tracer)) = ({
            let inner = self.inner();
            inner.units.get(&protocol).cloned().map(|u| (u, inner.tracer.clone()))
        }) else {
            return;
        };
        let parsed = unit.parse(world, dgram);
        if tracer.enabled() {
            // Virtual time does not advance inside a synchronous parse,
            // so the span is zero-width at the datagram's arrival time.
            let now = world.now();
            tracer.record_at(0, Phase::Parse, now, now);
        }
        match parsed {
            ParsedMessage::Request(stream) => {
                self.bridge_request(world, protocol, stream, None);
            }
            ParsedMessage::Advert(stream) => {
                self.record_advert(world, protocol, stream);
            }
            ParsedMessage::Response(stream) => {
                self.warm_from_response(world, &stream);
            }
            ParsedMessage::Handled | ParsedMessage::NotRelevant => {}
        }
    }

    /// Bridges a request: registry cache first (positive, then negative),
    /// then fan out to all other units; the first successful response
    /// wins. The cache/negative/suppression decision is
    /// [`classify_request`] — the same function the multi-threaded
    /// gateway runs on its workers. When `custom_reply` is given (Jini
    /// registrar path), the response events are handed back instead of
    /// composed by the origin unit.
    fn bridge_request(
        &self,
        world: &World,
        origin: SdpProtocol,
        request: EventStream,
        custom_reply: Option<Completion<EventStream>>,
    ) {
        let now = world.now();
        let (
            registry,
            counters,
            units,
            enable_cache,
            suppress_window,
            query_timeout,
            query_retries,
            tracer,
        ) = {
            let inner = self.inner();
            let units: Vec<(SdpProtocol, Rc<dyn Unit>)> = inner
                .units
                .iter()
                .filter(|(p, _)| **p != origin)
                .map(|(p, u)| (*p, Rc::clone(u)))
                .collect();
            (
                inner.registry.clone(),
                Arc::clone(&inner.counters),
                units,
                inner.config.enable_cache,
                inner.config.suppress_window,
                inner.config.query_timeout,
                inner.config.query_retries,
                inner.tracer.clone(),
            )
        };

        let stype = request.service_type_symbol();
        let decision = classify_request(
            &registry,
            &counters,
            enable_cache,
            suppress_window,
            origin,
            &request,
            now,
        );
        if let WarmDecision::CacheHit(response) = decision {
            self.deliver(world, origin, &request, &response, custom_reply);
            return;
        }
        if decision != WarmDecision::Bridge || units.is_empty() {
            // "Nothing found" is silence on the multicast protocols, but
            // a custom replier (the Jini registrar path) must still be
            // answered so its client is not left hanging — whichever
            // short-circuit fired.
            if let Some(reply) = custom_reply {
                reply.complete(EventStream::framed(vec![
                    Event::NetType(origin),
                    Event::ServiceResponse,
                    Event::ResErr(404),
                ]));
            }
            return;
        }

        // The winner: first response stream carrying a service URL. The
        // fan-out itself — with its per-attempt deadline, bounded
        // retries and graceful degradation — is the QueryTracker's
        // state machine; this subscriber is the query's single exit.
        let winner: Completion<EventStream> = Completion::new();
        let tracker = crate::tracker::QueryTracker::new(
            origin,
            request.clone(),
            stype.clone(),
            units,
            registry.clone(),
            Arc::clone(&counters),
            winner.clone(),
            query_timeout,
            query_retries,
            tracer,
        );
        tracker.start(world);

        let this = self.clone();
        let world2 = world.clone();
        winner.subscribe(move |response| {
            if enable_cache {
                if response.service_url().is_some() {
                    if let Some(t) = response.service_type_symbol().or(stype.clone()) {
                        registry.warm(t, response.clone(), world2.now());
                        this.schedule_sweep(&world2);
                    }
                } else if let Some(t) = stype.clone() {
                    // Every unit came back empty: remember the miss so a
                    // request storm for this absent type stops fanning
                    // out (short TTL; adverts invalidate eagerly).
                    registry.warm_negative(origin, t, world2.now());
                    this.schedule_sweep(&world2);
                }
            }
            this.deliver(&world2, origin, &request, &response, custom_reply);
        });
    }

    /// Delivers a response stream to the requester, via the origin unit's
    /// composer or the custom reply channel.
    fn deliver(
        &self,
        world: &World,
        origin: SdpProtocol,
        request: &EventStream,
        response: &EventStream,
        custom_reply: Option<Completion<EventStream>>,
    ) {
        let tracer = {
            let inner = self.inner();
            if response.service_url().is_some() {
                inner.counters.add_responses_composed();
            }
            inner.tracer.clone()
        };
        if tracer.enabled() {
            let now = world.now();
            tracer.record_at(0, Phase::Deliver, now, now);
        }
        match custom_reply {
            Some(reply) => reply.complete(response.clone()),
            None => {
                let unit = self.inner().units.get(&origin).cloned();
                if let Some(unit) = unit {
                    unit.compose_response(world, request, response);
                }
            }
        }
    }

    /// Records an advertisement in the registry; in the active mode,
    /// immediately re-advertises it into the other SDPs.
    fn record_advert(&self, world: &World, origin: SdpProtocol, stream: EventStream) {
        let now = world.now();
        let (registry, enable_cache) = {
            let inner = self.inner();
            (inner.registry.clone(), inner.config.enable_cache)
        };
        // Only streams with no identity at all are dropped; a byebye for
        // an already-expired or evicted record is still a retraction
        // worth counting and (in active mode) forwarding.
        if registry.record_advert(origin, &stream, now)
            == crate::registry::AdvertDisposition::Ignored
        {
            return; // no identity to key on
        }
        let active = {
            let inner = self.inner();
            inner.counters.add_adverts_recorded();
            inner.mode == DiscoveryMode::Active
        };
        // A full advert (with endpoint) warms the cache too.
        if enable_cache && stream.is_alive() && stream.service_url().is_some() {
            if let Some(t) = stream.service_type_symbol() {
                registry.warm(t, stream.clone(), now);
            }
        }
        // Offer the advert to the mesh plane: up peers learn it from
        // the next digest via the version bump the record just caused,
        // down peers get it held in custody for replay on reconnect
        // (whose lapse deadline may move the next mesh tick earlier).
        if stream.is_alive() {
            let mesh = self.inner().mesh.clone();
            if let Some(mesh) = mesh {
                mesh.publish(origin, &stream, now);
                self.schedule_mesh_tick(world);
            }
        }
        self.schedule_sweep(world);
        if active {
            self.translate_advert(world, origin, &stream);
        }
    }

    fn warm_from_response(&self, world: &World, stream: &EventStream) {
        let (registry, enable_cache) = {
            let inner = self.inner();
            (inner.registry.clone(), inner.config.enable_cache)
        };
        if !enable_cache || stream.service_url().is_none() {
            return;
        }
        if let Some(t) = stream.service_type_symbol() {
            registry.warm(t, stream.clone(), world.now());
            self.schedule_sweep(world);
        }
    }

    /// Re-composes one advert into every other SDP, enriching it through
    /// the origin unit first (a UPnP advert must have its description
    /// fetched before it carries an endpoint).
    fn translate_advert(&self, world: &World, origin: SdpProtocol, stream: &EventStream) {
        let (origin_unit, units) = {
            let inner = self.inner();
            (
                inner.units.get(&origin).cloned(),
                inner
                    .units
                    .iter()
                    .filter(|(p, _)| **p != origin)
                    .map(|(_, u)| Rc::clone(u))
                    .collect::<Vec<_>>(),
            )
        };
        if units.is_empty() {
            return;
        }
        self.inner().counters.add_adverts_translated();
        let enriched: Completion<EventStream> = Completion::new();
        match origin_unit {
            Some(u) => u.enrich_advert(world, stream, enriched.clone()),
            None => enriched.complete(stream.clone()),
        }
        let world2 = world.clone();
        enriched.subscribe(move |advert| {
            for unit in units {
                unit.compose_advert(&world2, &advert);
            }
        });
    }

    // ------------------------------------------------------------------
    // Registry expiry sweeps
    // ------------------------------------------------------------------

    /// Arms (or re-arms) the virtual-time sweep timer at the registry's
    /// earliest pending deadline. Reads expire lazily regardless; the
    /// timer is what reclaims memory deterministically.
    fn schedule_sweep(&self, world: &World) {
        let registry = self.inner().registry.clone();
        let Some(deadline) = registry.next_deadline() else {
            return;
        };
        {
            let mut inner = self.inner();
            // An earlier (or equal) timer is already pending.
            if inner.sweep_armed.is_some_and(|armed| armed <= deadline) {
                return;
            }
            inner.sweep_armed = Some(deadline);
        }
        let this = self.clone();
        world.schedule_at(deadline, move |w| this.run_sweep(w));
    }

    fn run_sweep(&self, world: &World) {
        let registry = {
            let mut inner = self.inner();
            inner.sweep_armed = None;
            inner.registry.clone()
        };
        registry.sweep(world.now());
        self.schedule_sweep(world);
    }

    // ------------------------------------------------------------------
    // Mesh gossip ticks
    // ------------------------------------------------------------------

    /// Arms (or re-arms) the virtual-time mesh timer at the mesh plane's
    /// next deadline (gossip round or custody lapse). Mirrors
    /// [`Self::schedule_sweep`]: an earlier pending timer wins.
    fn schedule_mesh_tick(&self, world: &World) {
        let deadline = {
            let inner = self.inner();
            let Some(mesh) = inner.mesh.as_ref() else {
                return;
            };
            mesh.next_deadline()
        };
        let Some(deadline) = deadline else { return };
        {
            let mut inner = self.inner();
            if inner.mesh_tick_armed.is_some_and(|armed| armed <= deadline) {
                return;
            }
            inner.mesh_tick_armed = Some(deadline);
        }
        let this = self.clone();
        world.schedule_at(deadline, move |w| this.run_mesh_tick(w));
    }

    fn run_mesh_tick(&self, world: &World) {
        // Clone the mesh handle out so the runtime lock is released
        // before tick sends frames (a SimTransport peer may deliver
        // synchronously and call back into this runtime's registry).
        let mesh = {
            let mut inner = self.inner();
            inner.mesh_tick_armed = None;
            inner.mesh.clone()
        };
        if let Some(mesh) = mesh {
            mesh.tick(world.now());
        }
        self.schedule_mesh_tick(world);
    }

    // ------------------------------------------------------------------
    // Adaptation (§4.2)
    // ------------------------------------------------------------------

    fn adaptation_tick(&self, world: &World, policy: crate::adapt::AdaptationPolicy) {
        let now = world.now();
        let window_start = now.saturating_duration_since(SimTime::ZERO);
        let from = if window_start > policy.window {
            SimTime::from_nanos(
                (now.as_nanos())
                    .saturating_sub(u64::try_from(policy.window.as_nanos()).unwrap_or(u64::MAX)),
            )
        } else {
            SimTime::ZERO
        };
        let rate = world.meter_snapshot().rate_between(from, now);
        let new_mode = policy.decide(rate);
        let go_active = {
            let mut inner = self.inner();
            if new_mode != inner.mode {
                inner.mode = new_mode;
                inner.mode_log.push((now, new_mode));
            }
            new_mode == DiscoveryMode::Active
        };
        if go_active {
            // Re-advertise everything we know (periodic while active).
            let registry = self.inner().registry.clone();
            for (origin, stream) in registry.adverts(now) {
                self.translate_advert(world, origin, &stream);
            }
        }
        let this = self.clone();
        world.schedule_in(policy.check_interval, move |w| {
            this.adaptation_tick(w, policy.clone());
        });
    }
}

impl std::fmt::Debug for Indiss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        let inner = self.inner();
        f.debug_struct("Indiss")
            .field("node", &inner.node.name())
            .field("units", &inner.units.keys().collect::<Vec<_>>())
            .field("mode", &inner.mode)
            .field("stats", &stats)
            .field("registry", &inner.registry)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::AdaptationPolicy;
    use indiss_slp::{SlpConfig, UserAgent};
    use indiss_upnp::{ClockDevice, UpnpConfig};
    use std::time::Duration;

    /// The paper's flagship scenario (§2.4 / Fig. 8a): an SLP client
    /// discovers a UPnP clock through INDISS on the service host.
    #[test]
    fn slp_client_discovers_upnp_clock_service_side() {
        let world = World::new(71);
        let service_node = world.add_node("clock-host");
        let client_node = world.add_node("slp-client");
        let _clock = ClockDevice::start(&service_node, UpnpConfig::default()).unwrap();
        let indiss = Indiss::deploy(&service_node, IndissConfig::slp_upnp()).unwrap();
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();

        let (_first, done) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(2));
        let outcome = done.take().expect("round finished");
        assert_eq!(outcome.urls.len(), 1, "clock visible through INDISS");
        let url = &outcome.urls[0].url;
        assert!(url.starts_with("service:clock:soap://"), "Fig. 4 URL mapping, got {url}");
        assert!(url.ends_with("/service/timer/control"));
        let stats = indiss.stats();
        assert_eq!(stats.requests_bridged, 1);
        assert_eq!(stats.responses_composed, 1);
        assert!(outcome.response_time().unwrap() > Duration::from_millis(30));
    }

    #[test]
    fn client_side_deployment_works_too() {
        // Fig. 9a: INDISS co-located with the SLP client.
        let world = World::new(72);
        let service_node = world.add_node("clock-host");
        let client_node = world.add_node("slp-client");
        let _clock = ClockDevice::start(&service_node, UpnpConfig::default()).unwrap();
        let _indiss = Indiss::deploy(&client_node, IndissConfig::slp_upnp()).unwrap();
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();
        let (_first, done) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(2));
        assert_eq!(done.take().unwrap().urls.len(), 1);
    }

    #[test]
    fn gateway_deployment_bridges_two_foreign_nodes() {
        let world = World::new(73);
        let service_node = world.add_node("clock-host");
        let client_node = world.add_node("slp-client");
        let gateway_node = world.add_node("gateway");
        let _clock = ClockDevice::start(&service_node, UpnpConfig::default()).unwrap();
        let _indiss = Indiss::deploy(&gateway_node, IndissConfig::slp_upnp()).unwrap();
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();
        let (_first, done) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(2));
        assert_eq!(done.take().unwrap().urls.len(), 1);
    }

    #[test]
    fn cache_answers_second_request_fast() {
        let world = World::new(74);
        let service_node = world.add_node("clock-host");
        let client_node = world.add_node("slp-client");
        let _clock = ClockDevice::start(&service_node, UpnpConfig::default()).unwrap();
        let indiss = Indiss::deploy(&service_node, IndissConfig::slp_upnp()).unwrap();
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();

        let (_f1, d1) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(2));
        let cold = d1.take().unwrap().response_time().unwrap();

        let (_f2, d2) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(2));
        let warm = d2.take().unwrap().response_time().unwrap();

        assert_eq!(indiss.stats().cache_hits, 1);
        assert!(warm < cold / 10, "cached answer should be ≫ faster: cold={cold:?} warm={warm:?}");
    }

    #[test]
    fn no_answer_means_silence_not_error() {
        let world = World::new(75);
        let client_node = world.add_node("slp-client");
        let bridge_node = world.add_node("gateway");
        let _indiss = Indiss::deploy(&bridge_node, IndissConfig::slp_upnp()).unwrap();
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();
        let (first, done) = ua.find_services(&world, "service:toaster", "");
        world.run_for(Duration::from_secs(2));
        assert!(!first.is_complete());
        assert!(done.take().unwrap().urls.is_empty());
    }

    /// A storm of requests for an absent type fans out once; while the
    /// negative TTL holds, repeats are answered from the "nothing found"
    /// memory without bridging (and counted as negative hits).
    #[test]
    fn absent_type_storm_is_absorbed_by_the_negative_cache() {
        let world = World::new(80);
        let client_node = world.add_node("slp-client");
        let bridge_node = world.add_node("gateway");
        let indiss = Indiss::deploy(
            &bridge_node,
            IndissConfig::slp_upnp().with_negative_ttl(Duration::from_secs(30)),
        )
        .unwrap();
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();

        // First request: fans out, fails everywhere, arms the negative
        // cache (run past the suppression window between requests).
        let (_f, d) = ua.find_services(&world, "service:toaster", "");
        world.run_for(Duration::from_secs(1));
        assert!(d.take().unwrap().urls.is_empty());
        assert_eq!(indiss.stats().requests_bridged, 1);

        // The storm: each repeat is a negative hit, not a new fan-out.
        for _ in 0..5 {
            let (_f, d) = ua.find_services(&world, "service:toaster", "");
            world.run_for(Duration::from_secs(1));
            assert!(d.take().unwrap().urls.is_empty());
        }
        let stats = indiss.stats();
        assert_eq!(stats.requests_bridged, 1, "no further fan-outs: {stats:?}");
        assert_eq!(stats.negative_hits, 5, "storm absorbed: {stats:?}");
    }

    /// A Jini client whose lookup cannot be bridged (no foreign units
    /// configured) still gets an answer — an empty reply, not a hang:
    /// every bridge short-circuit (cache-negative, suppressed, no units)
    /// completes the custom reply channel.
    #[test]
    fn jini_lookup_with_no_foreign_units_gets_an_empty_reply() {
        let world = World::new(82);
        let gw = world.add_node("gateway");
        let client_node = world.add_node("jini-client");
        let _indiss = Indiss::deploy(&gw, IndissConfig::new().with_jini()).unwrap();
        let client =
            indiss_jini::JiniAgent::start(&client_node, indiss_jini::JiniConfig::default())
                .unwrap();
        let found = client.lookup("clock");
        world.run_for(Duration::from_secs(2));
        let items = found.take().expect("lookup answered, not left hanging");
        assert!(items.is_empty(), "nothing bridged, honest empty reply");
    }

    /// A service appearing right after a negative outcome is visible
    /// immediately: its advert invalidates the negative entry.
    #[test]
    fn advert_invalidates_negative_outcome() {
        let world = World::new(81);
        let client_node = world.add_node("slp-client");
        let host = world.add_node("clock-host");
        let indiss = Indiss::deploy(
            &host,
            IndissConfig::slp_upnp().with_negative_ttl(Duration::from_secs(120)),
        )
        .unwrap();
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();

        let (_f, d) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(1));
        assert!(d.take().unwrap().urls.is_empty(), "nothing there yet");
        assert!(indiss.registry().negative_len() >= 1, "negative outcome remembered");

        // The clock appears and announces itself; the NOTIFY clears the
        // negative memory, so the next request bridges again and wins.
        let _clock = ClockDevice::start(&host, UpnpConfig::default()).unwrap();
        world.run_for(Duration::from_secs(1));
        let (_f, d) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(2));
        assert_eq!(d.take().unwrap().urls.len(), 1, "visible immediately");
    }

    #[test]
    fn lazy_units_instantiate_on_detection() {
        let world = World::new(76);
        let gw = world.add_node("gateway");
        let client_node = world.add_node("client");
        let indiss = Indiss::deploy(&gw, IndissConfig::slp_upnp().with_lazy_units()).unwrap();
        assert!(indiss.active_units().is_empty(), "nothing instantiated yet");
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();
        ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(1));
        assert_eq!(indiss.active_units(), vec![SdpProtocol::Slp]);
    }

    #[test]
    fn adaptation_goes_active_when_quiet() {
        let world = World::new(77);
        let host = world.add_node("service-host");
        let indiss = Indiss::deploy(
            &host,
            IndissConfig::slp_upnp().with_adaptation(AdaptationPolicy {
                threshold_bytes_per_sec: 100.0,
                window: Duration::from_secs(1),
                check_interval: Duration::from_secs(1),
            }),
        )
        .unwrap();
        assert_eq!(indiss.mode(), DiscoveryMode::Passive);
        world.run_for(Duration::from_secs(5));
        assert_eq!(indiss.mode(), DiscoveryMode::Active, "quiet network → active");
        assert!(indiss.mode_log().len() >= 2);
    }

    #[test]
    fn deploy_requires_units() {
        let world = World::new(78);
        let node = world.add_node("x");
        assert!(matches!(Indiss::deploy(&node, IndissConfig::new()), Err(CoreError::BadConfig(_))));
    }

    /// Two specs for the same protocol must be rejected loudly: a silent
    /// first-wins would make the second spec's configuration vanish.
    #[test]
    fn deploy_rejects_duplicate_units_for_one_protocol() {
        let world = World::new(83);
        let node = world.add_node("x");
        let config = IndissConfig::new().with_slp().with_upnp().with_slp();
        let err = Indiss::deploy(&node, config).unwrap_err();
        assert!(matches!(err, CoreError::BadConfig(msg) if msg.contains("duplicate")), "{err}");
        // The builder path hits the same guard.
        let config = IndissConfig::builder()
            .descriptor(crate::SdpDescriptor::dns_sd())
            .descriptor(crate::SdpDescriptor::dns_sd())
            .build();
        let err = Indiss::deploy(&node, config).unwrap_err();
        assert!(matches!(err, CoreError::BadConfig(msg) if msg.contains("duplicate")), "{err}");
    }

    /// Fig. 5 with a descriptor unit: the monitor watches the
    /// descriptor's scan port from deploy time, the unit instantiates on
    /// the first native datagram, and `active_units` reports the dynamic
    /// protocol like any built-in.
    #[test]
    fn lazy_descriptor_unit_instantiates_on_first_traffic() {
        let descriptor = crate::SdpDescriptor::dns_sd();
        let protocol = descriptor.protocol();
        let world = World::new(84);
        let gw = world.add_node("gateway");
        let client_node = world.add_node("dnssd-client");
        let indiss = Indiss::deploy(
            &gw,
            IndissConfig::builder().slp().descriptor(descriptor.clone()).lazy().build(),
        )
        .unwrap();
        assert!(indiss.active_units().is_empty(), "nothing instantiated yet");

        let client = crate::DescriptorClient::start(&client_node, descriptor).unwrap();
        client.query(&world, "clock");
        world.run_for(Duration::from_secs(1));
        assert_eq!(indiss.monitor().detected(), vec![protocol], "scan port detected");
        assert_eq!(indiss.active_units(), vec![protocol], "unit composed dynamically");
    }

    /// Adverts heard from the environment land in the shared registry and
    /// expire deterministically when their TTL elapses.
    #[test]
    fn heard_adverts_land_in_registry_and_expire() {
        let world = World::new(79);
        let host = world.add_node("gateway");
        let dev = world.add_node("device");
        let indiss = Indiss::deploy(
            &host,
            IndissConfig::slp_upnp().with_advert_ttl(Duration::from_secs(120)),
        )
        .unwrap();
        let _clock = ClockDevice::start(&dev, UpnpConfig::default()).unwrap();
        world.run_for(Duration::from_secs(1));

        let registry = indiss.registry();
        assert!(registry.contains_type("clock", world.now()), "NOTIFY recorded");
        assert!(indiss.stats().adverts_recorded >= 1);
        // The clock announces its device type and its timer service type:
        // two distinct USNs, two records.
        assert_eq!(registry.record_count_by_origin(SdpProtocol::Upnp, world.now()), 2);

        // The clock's announcements carry max-age 1800 s; after that (and
        // without re-announcements, which repeat every ~900 s by default,
        // so stop the device first) the record must be gone. ClockDevice
        // keeps announcing while alive, so instead check the sweep keeps
        // the store bounded rather than waiting out the TTL here — the
        // dedicated registry tests cover exact expiry timing.
        assert!(registry.record_count() <= registry.config().advert_capacity);
    }

    /// A mesh-bearing config must go through [`Indiss::deploy_mesh`] —
    /// plain `deploy` refuses it loudly rather than leaving the
    /// federation silently inert — and once deployed, virtual-time
    /// gossip ticks federate the gateways with no manual round driving.
    #[test]
    fn deployed_gateways_federate_over_the_peer_bus() {
        let world = World::new(85);
        let node_a = world.add_node("gw-a");
        let node_b = world.add_node("gw-b");
        let bus: Arc<dyn Transport> = Arc::new(indiss_net::SimTransport::new());

        let cfg_a = IndissConfig::slp_upnp().with_mesh(7100, vec![7101]);
        let cfg_b = IndissConfig::slp_upnp().with_mesh(7101, vec![7100]);

        let err = Indiss::deploy(&node_a, cfg_a.clone()).unwrap_err();
        assert!(matches!(err, CoreError::BadConfig(msg) if msg.contains("deploy_mesh")), "{err}");
        let err =
            Indiss::deploy_mesh(&node_a, IndissConfig::slp_upnp(), Arc::clone(&bus)).unwrap_err();
        assert!(matches!(err, CoreError::BadConfig(msg) if msg.contains("peers")), "{err}");

        let a = Indiss::deploy_mesh(&node_a, cfg_a, Arc::clone(&bus)).unwrap();
        let b = Indiss::deploy_mesh(&node_b, cfg_b, Arc::clone(&bus)).unwrap();

        // Feed the advert through the runtime path (so the mesh custody
        // hook runs), not through a simulated device — every sim node
        // shares one multicast segment, so a real device's NOTIFY would
        // reach gateway B natively and prove nothing about the mesh.
        let advert = EventStream::framed(vec![
            crate::Event::ServiceAlive,
            crate::Event::ServiceType("clock".into()),
            crate::Event::ResServUrl("slp://gw-a/clock".into()),
            crate::Event::ResTtl(600),
        ]);
        a.record_advert(&world, SdpProtocol::Slp, advert);

        // Four default gossip intervals: a digest → pull → records
        // round plus settling digest/ack rounds, all timer-driven.
        world.run_for(Duration::from_secs(2));

        let record = b
            .registry()
            .record(SdpProtocol::Slp, "slp://gw-a/clock", world.now())
            .expect("gossip landed the record at the peer");
        assert_eq!(record.provenance(), crate::RecordOrigin::Remote(crate::PeerId(7100)));
        assert!(
            b.registry().cached_response("clock", world.now()).is_some(),
            "the apply warmed the peer's cache for remote hits"
        );
        let stats = b.mesh().expect("mesh deployed").stats();
        assert!(stats.rounds_run >= 2, "virtual-time ticks drove gossip: {stats:?}");
        assert_eq!(stats.records_applied, 1, "{stats:?}");
        assert!(a.mesh().unwrap().stats().rounds_run >= 2, "both gateways tick independently");
    }

    /// A unit whose native query process never answers — the simulated
    /// stand-in for a hostile network that eats every query or reply.
    struct SilentUnit;

    impl Unit for SilentUnit {
        fn protocol(&self) -> SdpProtocol {
            SdpProtocol::Upnp
        }
        fn parse(&self, _world: &World, _dgram: &Datagram) -> ParsedMessage {
            ParsedMessage::NotRelevant
        }
        fn execute_query(
            &self,
            _world: &World,
            _request: &EventStream,
            _reply: Completion<EventStream>,
        ) {
            // Swallow the query; the reply completion is dropped
            // uncompleted, exactly like a lost datagram.
        }
        fn compose_response(&self, _world: &World, _request: &EventStream, _resp: &EventStream) {}
        fn compose_advert(&self, _world: &World, _advert: &EventStream) {}
        fn own_sources(&self) -> Vec<std::net::SocketAddrV4> {
            Vec::new()
        }
    }

    struct SilentFactory;

    impl crate::units::UnitFactory for SilentFactory {
        fn protocol(&self) -> SdpProtocol {
            SdpProtocol::Upnp
        }
        fn build(&self, _ctx: &crate::units::UnitContext) -> CoreResult<Rc<dyn Unit>> {
            Ok(Rc::new(SilentUnit))
        }
    }

    fn hostile_config(timeout: Duration, retries: u32) -> IndissConfig {
        IndissConfig::builder()
            .slp()
            .custom(Rc::new(SilentFactory))
            .query_timeout(timeout)
            .query_retries(retries)
            // One tracker per test request: keep SLP retransmissions of
            // the same round inside the suppression window.
            .suppress_window(Duration::from_secs(5))
            .build()
    }

    /// The QueryTracker's unhappy path end to end: a fan-out whose only
    /// foreign unit never answers is retried with backoff, exhausts its
    /// budget, and — with nothing stale to fall back on — terminates
    /// with a negative answer instead of hanging. Every stage counted.
    #[test]
    fn silent_fanout_is_retried_then_degrades_to_a_negative_answer() {
        let world = World::new(90);
        let gw = world.add_node("gateway");
        let client_node = world.add_node("slp-client");
        let indiss = Indiss::deploy(&gw, hostile_config(Duration::from_millis(50), 2)).unwrap();
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();

        let (_first, done) = ua.find_services(&world, "service:ghost", "");
        world.run_for(Duration::from_secs(3));
        assert!(done.take().expect("round terminated").urls.is_empty());
        let stats = indiss.stats();
        assert_eq!(stats.requests_bridged, 1, "{stats:?}");
        assert_eq!(stats.queries_retried, 2, "both retries spent: {stats:?}");
        assert_eq!(stats.queries_exhausted, 1, "{stats:?}");
        assert_eq!(stats.stale_served, 0, "nothing stale to serve: {stats:?}");
        // The degraded (negative) outcome still armed the negative
        // cache (swept later, once its TTL lapsed), so a storm during
        // the outage stops fanning out.
        assert!(indiss.registry().stats().negative_stored >= 1, "negative memory armed");
    }

    /// Graceful degradation with stale knowledge: when retries exhaust
    /// but an expired registry record for the type survives, the query
    /// is answered from it — and the answer re-warms the cache so the
    /// next request is a warm hit, not another retry ladder.
    #[test]
    fn exhausted_query_serves_a_stale_record() {
        let world = World::new(91);
        let gw = world.add_node("gateway");
        let client_node = world.add_node("slp-client");
        let indiss = Indiss::deploy(&gw, hostile_config(Duration::from_millis(50), 1)).unwrap();
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();

        // A clock was known once; its record's one-second TTL lapses
        // long before the request (no sweep runs, so the stale record
        // survives in the store).
        indiss.registry().record_advert(
            SdpProtocol::Upnp,
            &EventStream::framed(vec![
                Event::ServiceAlive,
                Event::ServiceType("clock".into()),
                Event::ResServUrl("soap://10.0.0.2:4004/service/timer/control".into()),
                Event::ResTtl(1),
            ]),
            world.now(),
        );
        world.run_for(Duration::from_secs(2));
        assert!(!indiss.registry().contains_type("clock", world.now()), "record is stale");

        let (_first, done) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(3));
        let outcome = done.take().expect("round terminated");
        assert_eq!(outcome.urls.len(), 1, "stale answer delivered");
        assert!(outcome.urls[0].url.ends_with("/service/timer/control"));
        let stats = indiss.stats();
        assert_eq!(stats.queries_exhausted, 1, "{stats:?}");
        assert_eq!(stats.stale_served, 1, "{stats:?}");
        assert_eq!(stats.responses_composed, 1, "{stats:?}");
        assert!(
            indiss.registry().cache_contains("clock", world.now()),
            "serve-stale re-warmed the cache"
        );
    }
}
