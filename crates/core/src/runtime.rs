//! The INDISS runtime: monitor + units + session routing (paper §2.2,
//! Fig. 2/3) plus dynamic composition (§3) and adaptation (§4.2).
//!
//! One [`Indiss`] instance deploys on a node — client, service or gateway
//! side, the mechanics are identical — and from then on:
//!
//! 1. the monitor detects SDPs and hands raw messages to the right unit's
//!    parser;
//! 2. request event streams are bridged: every *other* unit executes its
//!    native query process, the first successful response-event stream
//!    wins and the origin unit composes the native reply;
//! 3. advertisement streams are recorded (and re-advertised in the active
//!    mode);
//! 4. response streams warm a cache, which yields the paper's §4.3 best
//!    case (~0.1 ms answers from already-held knowledge).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use indiss_net::{Completion, Datagram, Node, SimTime, World};

use crate::adapt::DiscoveryMode;
use crate::config::{IndissConfig, UnitSpec};
use crate::error::{CoreError, CoreResult};
use crate::event::{EventStream, SdpProtocol};
use crate::monitor::Monitor;
use crate::units::{JiniUnit, ParsedMessage, SlpUnit, Unit, UpnpUnit};

/// Counters exposed for tests and the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BridgeStats {
    /// Requests parsed and dispatched to foreign units.
    pub requests_bridged: u64,
    /// Native responses composed back to requesters.
    pub responses_composed: u64,
    /// Requests answered from the response cache.
    pub cache_hits: u64,
    /// Advertisements recorded from the environment.
    pub adverts_recorded: u64,
    /// Advertisements re-composed into other SDPs (active mode).
    pub adverts_translated: u64,
    /// Requests dropped by the suppression window (multi-bridge loop
    /// protection).
    pub requests_suppressed: u64,
}

struct CachedResponse {
    response: EventStream,
    expires: SimTime,
}

struct IndissInner {
    node: Node,
    config: IndissConfig,
    units: HashMap<SdpProtocol, Rc<dyn Unit>>,
    cache: HashMap<String, CachedResponse>,
    /// Known alive services: (origin protocol, key) → advert stream.
    adverts: HashMap<(SdpProtocol, String), EventStream>,
    stats: BridgeStats,
    /// Per-canonical-type suppression deadline (loop protection).
    recently_bridged: HashMap<String, SimTime>,
    mode: DiscoveryMode,
    mode_log: Vec<(SimTime, DiscoveryMode)>,
}

/// A deployed INDISS instance.
///
/// See the crate-level docs for a full example; the one-liner is
/// `Indiss::deploy(&node, IndissConfig::slp_upnp())`.
#[derive(Clone)]
pub struct Indiss {
    inner: Rc<RefCell<IndissInner>>,
    monitor: Monitor,
}

impl Indiss {
    /// Deploys INDISS on `node` with the given configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadConfig`] when no units are configured; network
    /// errors when the monitor or unit sockets cannot bind.
    pub fn deploy(node: &Node, config: IndissConfig) -> CoreResult<Indiss> {
        if config.units.is_empty() {
            return Err(CoreError::BadConfig("at least one unit is required"));
        }
        let protocols = config.protocols();
        let monitor = Monitor::start(node, &protocols)?;
        let instance = Indiss {
            inner: Rc::new(RefCell::new(IndissInner {
                node: node.clone(),
                config: config.clone(),
                units: HashMap::new(),
                cache: HashMap::new(),
                adverts: HashMap::new(),
                stats: BridgeStats::default(),
                recently_bridged: HashMap::new(),
                mode: DiscoveryMode::Passive,
                mode_log: vec![(node.world().now(), DiscoveryMode::Passive)],
            })),
            monitor: monitor.clone(),
        };

        if config.lazy_units {
            // Dynamic composition (Fig. 5): instantiate a unit when its
            // protocol is first detected.
            let this = instance.clone();
            monitor.on_detect(move |_, protocol| {
                let _ = this.ensure_unit(protocol);
            });
        } else {
            for spec in &config.units {
                instance.instantiate(spec)?;
            }
        }

        // Wire the message path: monitor → parser → bridge.
        let this = instance.clone();
        monitor.on_message(move |world, protocol, dgram| this.handle(world, protocol, dgram));

        // Adaptation loop.
        if let Some(policy) = config.adaptation.clone() {
            let this = instance.clone();
            node.world().schedule_in(policy.check_interval, move |w| {
                this.adaptation_tick(w, policy.clone());
            });
        }
        Ok(instance)
    }

    /// The monitor (for detection queries).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Bridge statistics so far.
    pub fn stats(&self) -> BridgeStats {
        self.inner.borrow().stats
    }

    /// Current interception mode.
    pub fn mode(&self) -> DiscoveryMode {
        self.inner.borrow().mode
    }

    /// Mode transitions with their timestamps (Fig. 6 evidence).
    pub fn mode_log(&self) -> Vec<(SimTime, DiscoveryMode)> {
        self.inner.borrow().mode_log.clone()
    }

    /// Protocols with an instantiated unit.
    pub fn active_units(&self) -> Vec<SdpProtocol> {
        let mut ps: Vec<SdpProtocol> =
            self.inner.borrow().units.keys().copied().collect();
        ps.sort_by_key(|p| p.port());
        ps
    }

    /// Pre-warms the response cache (used by the evaluation harness to
    /// reproduce the paper's warm best case explicitly).
    pub fn warm_cache(&self, canonical_type: &str, response: EventStream) {
        let mut inner = self.inner.borrow_mut();
        let expires = inner.node.world().now() + inner.config.cache_ttl;
        inner
            .cache
            .insert(canonical_type.to_owned(), CachedResponse { response, expires });
    }

    fn ensure_unit(&self, protocol: SdpProtocol) -> CoreResult<()> {
        let spec = {
            let inner = self.inner.borrow();
            if inner.units.contains_key(&protocol) {
                return Ok(());
            }
            inner
                .config
                .units
                .iter()
                .find(|s| s.protocol() == protocol)
                .cloned()
        };
        match spec {
            Some(spec) => self.instantiate(&spec),
            None => Ok(()),
        }
    }

    fn instantiate(&self, spec: &UnitSpec) -> CoreResult<()> {
        let node = self.inner.borrow().node.clone();
        let monitor = self.monitor.clone();
        let unit: Rc<dyn Unit> = match spec {
            UnitSpec::Slp(cfg) => {
                let u = SlpUnit::new(&node, cfg.clone())?;
                Rc::new(u)
            }
            UnitSpec::Upnp(cfg) => {
                let u = UpnpUnit::new(&node, cfg.clone())?;
                // Session sockets open dynamically; have each report to
                // the monitor's loop filter.
                let m = monitor.clone();
                u.set_loop_filter(Rc::new(move |addr| m.ignore_source(addr)));
                Rc::new(u)
            }
            UnitSpec::Jini(cfg) => {
                let u = JiniUnit::new(&node, cfg.clone())?;
                // Lookups arriving at the unit's registrar endpoint feed
                // back into the runtime.
                let weak = Rc::downgrade(&self.inner);
                let monitor2 = monitor.clone();
                u.set_bridge(Rc::new(move |world, stream, reply| {
                    if let Some(inner) = weak.upgrade() {
                        let instance = Indiss {
                            inner,
                            monitor: monitor2.clone(),
                        };
                        if stream.is_request() {
                            instance.bridge_request(world, SdpProtocol::Jini, stream, Some(reply));
                        } else if stream.is_alive() || stream.is_byebye() {
                            instance.record_advert(world, SdpProtocol::Jini, stream);
                        }
                    }
                }));
                Rc::new(u)
            }
        };
        for addr in unit.own_sources() {
            monitor.ignore_source(addr);
        }
        self.inner.borrow_mut().units.insert(spec.protocol(), unit);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Message path
    // ------------------------------------------------------------------

    fn handle(&self, world: &World, protocol: SdpProtocol, dgram: &Datagram) {
        if self.inner.borrow().config.lazy_units {
            let _ = self.ensure_unit(protocol);
        }
        let Some(unit) = self.inner.borrow().units.get(&protocol).cloned() else {
            return;
        };
        match unit.parse(world, dgram) {
            ParsedMessage::Request(stream) => {
                self.bridge_request(world, protocol, stream, None);
            }
            ParsedMessage::Advert(stream) => {
                self.record_advert(world, protocol, stream);
            }
            ParsedMessage::Response(stream) => {
                self.warm_from_response(world, &stream);
            }
            ParsedMessage::Handled | ParsedMessage::NotRelevant => {}
        }
    }

    /// Bridges a request: cache first, then fan out to all other units;
    /// the first successful response wins. When `custom_reply` is given
    /// (Jini registrar path), the response events are handed back instead
    /// of composed by the origin unit.
    fn bridge_request(
        &self,
        world: &World,
        origin: SdpProtocol,
        request: EventStream,
        custom_reply: Option<Completion<EventStream>>,
    ) {
        let (units, cached, enable_cache, suppressed) = {
            let mut inner = self.inner.borrow_mut();
            let now = world.now();
            let cached = if inner.config.enable_cache {
                request.service_type().and_then(|t| {
                    inner
                        .cache
                        .get(t)
                        .filter(|c| c.expires > now)
                        .map(|c| c.response.clone())
                })
            } else {
                None
            };
            // Loop protection: a request for a type we just bridged is a
            // likely echo of our own (or a sibling bridge's) synthesized
            // traffic; do not re-bridge it unless the cache can answer.
            let suppressed = cached.is_none()
                && request
                    .service_type()
                    .and_then(|t| inner.recently_bridged.get(t))
                    .map(|until| *until > now)
                    .unwrap_or(false);
            if suppressed {
                inner.stats.requests_suppressed += 1;
            } else {
                inner.stats.requests_bridged += 1;
                if let Some(t) = request.service_type() {
                    let until = now + inner.config.suppress_window;
                    inner.recently_bridged.insert(t.to_owned(), until);
                }
            }
            let units: Vec<(SdpProtocol, Rc<dyn Unit>)> = inner
                .units
                .iter()
                .filter(|(p, _)| **p != origin)
                .map(|(p, u)| (*p, Rc::clone(u)))
                .collect();
            (units, cached, inner.config.enable_cache, suppressed)
        };

        if let Some(response) = cached {
            self.inner.borrow_mut().stats.cache_hits += 1;
            self.deliver(world, origin, &request, &response, custom_reply);
            return;
        }
        if suppressed || units.is_empty() {
            return;
        }

        // The winner: first response stream carrying a service URL.
        let winner: Completion<EventStream> = Completion::new();
        let expected = units.len();
        let failures = Rc::new(RefCell::new(0usize));
        for (_, unit) in units {
            let reply: Completion<EventStream> = Completion::new();
            unit.execute_query(world, &request, reply.clone());
            let winner2 = winner.clone();
            let failures2 = Rc::clone(&failures);
            reply.subscribe(move |response| {
                if response.service_url().is_some() {
                    winner2.complete(response);
                } else {
                    let mut f = failures2.borrow_mut();
                    *f += 1;
                    if *f == expected {
                        // All units failed: deliver the error stream so
                        // custom repliers (Jini) can answer "nothing".
                        winner2.complete(response);
                    }
                }
            });
        }

        let this = self.clone();
        let world2 = world.clone();
        winner.subscribe(move |response| {
            if enable_cache && response.service_url().is_some() {
                if let Some(t) = response.service_type().or(request.service_type()) {
                    let expires =
                        world2.now() + this.inner.borrow().config.cache_ttl;
                    this.inner.borrow_mut().cache.insert(
                        t.to_owned(),
                        CachedResponse { response: response.clone(), expires },
                    );
                }
            }
            this.deliver(&world2, origin, &request, &response, custom_reply);
        });
    }

    /// Delivers a response stream to the requester, via the origin unit's
    /// composer or the custom reply channel.
    fn deliver(
        &self,
        world: &World,
        origin: SdpProtocol,
        request: &EventStream,
        response: &EventStream,
        custom_reply: Option<Completion<EventStream>>,
    ) {
        if response.service_url().is_some() {
            self.inner.borrow_mut().stats.responses_composed += 1;
        }
        match custom_reply {
            Some(reply) => reply.complete(response.clone()),
            None => {
                let unit = self.inner.borrow().units.get(&origin).cloned();
                if let Some(unit) = unit {
                    unit.compose_response(world, request, response);
                }
            }
        }
    }

    /// Records an advertisement; in the active mode, immediately
    /// re-advertises it into the other SDPs.
    fn record_advert(&self, world: &World, origin: SdpProtocol, stream: EventStream) {
        let key = stream
            .events()
            .iter()
            .find_map(|e| match e {
                crate::event::Event::UpnpUsn(u) => Some(u.clone()),
                _ => None,
            })
            .or_else(|| stream.service_url().map(str::to_owned))
            .or_else(|| stream.service_type().map(str::to_owned));
        let Some(key) = key else {
            return;
        };
        let active = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.adverts_recorded += 1;
            if stream.is_byebye() {
                inner.adverts.remove(&(origin, key.clone()));
            } else {
                inner.adverts.insert((origin, key.clone()), stream.clone());
            }
            // A full advert (with endpoint) warms the cache too.
            if inner.config.enable_cache && stream.is_alive() && stream.service_url().is_some() {
                if let Some(t) = stream.service_type() {
                    let expires = world.now() + inner.config.cache_ttl;
                    inner.cache.insert(
                        t.to_owned(),
                        CachedResponse { response: stream.clone(), expires },
                    );
                }
            }
            inner.mode == DiscoveryMode::Active
        };
        if active {
            self.translate_advert(world, origin, &stream);
        }
    }

    fn warm_from_response(&self, world: &World, stream: &EventStream) {
        let mut inner = self.inner.borrow_mut();
        if !inner.config.enable_cache || stream.service_url().is_none() {
            return;
        }
        if let Some(t) = stream.service_type() {
            let expires = world.now() + inner.config.cache_ttl;
            inner
                .cache
                .insert(t.to_owned(), CachedResponse { response: stream.clone(), expires });
        }
    }

    /// Re-composes one advert into every other SDP, enriching it through
    /// the origin unit first (a UPnP advert must have its description
    /// fetched before it carries an endpoint).
    fn translate_advert(&self, world: &World, origin: SdpProtocol, stream: &EventStream) {
        let (origin_unit, units): (Option<Rc<dyn Unit>>, Vec<Rc<dyn Unit>>) = {
            let inner = self.inner.borrow();
            (
                inner.units.get(&origin).cloned(),
                inner
                    .units
                    .iter()
                    .filter(|(p, _)| **p != origin)
                    .map(|(_, u)| Rc::clone(u))
                    .collect(),
            )
        };
        if units.is_empty() {
            return;
        }
        self.inner.borrow_mut().stats.adverts_translated += 1;
        let enriched: Completion<EventStream> = Completion::new();
        match origin_unit {
            Some(u) => u.enrich_advert(world, stream, enriched.clone()),
            None => enriched.complete(stream.clone()),
        }
        let world2 = world.clone();
        enriched.subscribe(move |advert| {
            for unit in units {
                unit.compose_advert(&world2, &advert);
            }
        });
    }

    // ------------------------------------------------------------------
    // Adaptation (§4.2)
    // ------------------------------------------------------------------

    fn adaptation_tick(&self, world: &World, policy: crate::adapt::AdaptationPolicy) {
        let now = world.now();
        let window_start = now.saturating_duration_since(SimTime::ZERO);
        let from = if window_start > policy.window {
            SimTime::from_nanos((now.as_nanos()).saturating_sub(
                u64::try_from(policy.window.as_nanos()).unwrap_or(u64::MAX),
            ))
        } else {
            SimTime::ZERO
        };
        let rate = world.meter_snapshot().rate_between(from, now);
        let new_mode = policy.decide(rate);
        let (changed, go_active) = {
            let mut inner = self.inner.borrow_mut();
            let changed = new_mode != inner.mode;
            if changed {
                inner.mode = new_mode;
                inner.mode_log.push((now, new_mode));
            }
            (changed, new_mode == DiscoveryMode::Active)
        };
        let _ = changed;
        if go_active {
            // Re-advertise everything we know (periodic while active).
            let adverts: Vec<(SdpProtocol, EventStream)> = {
                let inner = self.inner.borrow();
                inner
                    .adverts
                    .iter()
                    .map(|((p, _), s)| (*p, s.clone()))
                    .collect()
            };
            for (origin, stream) in adverts {
                self.translate_advert(world, origin, &stream);
            }
        }
        let this = self.clone();
        world.schedule_in(policy.check_interval, move |w| {
            this.adaptation_tick(w, policy.clone());
        });
    }
}

impl std::fmt::Debug for Indiss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Indiss")
            .field("node", &inner.node.name())
            .field("units", &self.active_units())
            .field("mode", &inner.mode)
            .field("stats", &inner.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::AdaptationPolicy;
    use std::time::Duration;
    use indiss_slp::{SlpConfig, UserAgent};
    use indiss_upnp::{ClockDevice, UpnpConfig};

    /// The paper's flagship scenario (§2.4 / Fig. 8a): an SLP client
    /// discovers a UPnP clock through INDISS on the service host.
    #[test]
    fn slp_client_discovers_upnp_clock_service_side() {
        let world = World::new(71);
        let service_node = world.add_node("clock-host");
        let client_node = world.add_node("slp-client");
        let _clock = ClockDevice::start(&service_node, UpnpConfig::default()).unwrap();
        let indiss = Indiss::deploy(&service_node, IndissConfig::slp_upnp()).unwrap();
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();

        let (_first, done) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(2));
        let outcome = done.take().expect("round finished");
        assert_eq!(outcome.urls.len(), 1, "clock visible through INDISS");
        let url = &outcome.urls[0].url;
        assert!(
            url.starts_with("service:clock:soap://"),
            "Fig. 4 URL mapping, got {url}"
        );
        assert!(url.ends_with("/service/timer/control"));
        let stats = indiss.stats();
        assert_eq!(stats.requests_bridged, 1);
        assert_eq!(stats.responses_composed, 1);
        assert!(outcome.response_time().unwrap() > Duration::from_millis(30));
    }

    #[test]
    fn client_side_deployment_works_too() {
        // Fig. 9a: INDISS co-located with the SLP client.
        let world = World::new(72);
        let service_node = world.add_node("clock-host");
        let client_node = world.add_node("slp-client");
        let _clock = ClockDevice::start(&service_node, UpnpConfig::default()).unwrap();
        let _indiss = Indiss::deploy(&client_node, IndissConfig::slp_upnp()).unwrap();
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();
        let (_first, done) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(2));
        assert_eq!(done.take().unwrap().urls.len(), 1);
    }

    #[test]
    fn gateway_deployment_bridges_two_foreign_nodes() {
        let world = World::new(73);
        let service_node = world.add_node("clock-host");
        let client_node = world.add_node("slp-client");
        let gateway_node = world.add_node("gateway");
        let _clock = ClockDevice::start(&service_node, UpnpConfig::default()).unwrap();
        let _indiss = Indiss::deploy(&gateway_node, IndissConfig::slp_upnp()).unwrap();
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();
        let (_first, done) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(2));
        assert_eq!(done.take().unwrap().urls.len(), 1);
    }

    #[test]
    fn cache_answers_second_request_fast() {
        let world = World::new(74);
        let service_node = world.add_node("clock-host");
        let client_node = world.add_node("slp-client");
        let _clock = ClockDevice::start(&service_node, UpnpConfig::default()).unwrap();
        let indiss = Indiss::deploy(&service_node, IndissConfig::slp_upnp()).unwrap();
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();

        let (_f1, d1) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(2));
        let cold = d1.take().unwrap().response_time().unwrap();

        let (_f2, d2) = ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(2));
        let warm = d2.take().unwrap().response_time().unwrap();

        assert_eq!(indiss.stats().cache_hits, 1);
        assert!(
            warm < cold / 10,
            "cached answer should be ≫ faster: cold={cold:?} warm={warm:?}"
        );
    }

    #[test]
    fn no_answer_means_silence_not_error() {
        let world = World::new(75);
        let client_node = world.add_node("slp-client");
        let bridge_node = world.add_node("gateway");
        let _indiss = Indiss::deploy(&bridge_node, IndissConfig::slp_upnp()).unwrap();
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();
        let (first, done) = ua.find_services(&world, "service:toaster", "");
        world.run_for(Duration::from_secs(2));
        assert!(!first.is_complete());
        assert!(done.take().unwrap().urls.is_empty());
    }

    #[test]
    fn lazy_units_instantiate_on_detection() {
        let world = World::new(76);
        let gw = world.add_node("gateway");
        let client_node = world.add_node("client");
        let indiss =
            Indiss::deploy(&gw, IndissConfig::slp_upnp().with_lazy_units()).unwrap();
        assert!(indiss.active_units().is_empty(), "nothing instantiated yet");
        let ua = UserAgent::start(&client_node, SlpConfig::default()).unwrap();
        ua.find_services(&world, "service:clock", "");
        world.run_for(Duration::from_secs(1));
        assert_eq!(indiss.active_units(), vec![SdpProtocol::Slp]);
    }

    #[test]
    fn adaptation_goes_active_when_quiet() {
        let world = World::new(77);
        let host = world.add_node("service-host");
        let indiss = Indiss::deploy(
            &host,
            IndissConfig::slp_upnp().with_adaptation(AdaptationPolicy {
                threshold_bytes_per_sec: 100.0,
                window: Duration::from_secs(1),
                check_interval: Duration::from_secs(1),
            }),
        )
        .unwrap();
        assert_eq!(indiss.mode(), DiscoveryMode::Passive);
        world.run_for(Duration::from_secs(5));
        assert_eq!(indiss.mode(), DiscoveryMode::Active, "quiet network → active");
        assert!(indiss.mode_log().len() >= 2);
    }

    #[test]
    fn deploy_requires_units() {
        let world = World::new(78);
        let node = world.add_node("x");
        assert!(matches!(
            Indiss::deploy(&node, IndissConfig::new()),
            Err(CoreError::BadConfig(_))
        ));
    }
}
