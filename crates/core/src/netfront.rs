//! The network front-end: the gateway's warm path on real (or
//! in-memory) sockets.
//!
//! [`NetDriver`] is the deployable counterpart of the simulated
//! [`crate::Indiss`] runtime for the traffic that dominates a gateway's
//! life: it opens one transport channel per configured protocol —
//! joining the multicast groups declared by the protocol's detection
//! tag, exactly as the monitor does in the simulation — and runs the
//! existing decode → parse → classify → deliver warm path over the
//! lane-routed [`crate::WorkerPool`] of a [`ThreadedGateway`]:
//!
//! * **detection** (paper §2.1) is passive and port-based, through the
//!   transport seam: a [`DetectionRecord`] per protocol from data
//!   arrival alone, with Fig. 5's lazy composition honored — under
//!   `lazy_units`, a protocol's pipeline activates on its first
//!   datagram ([`NetDriver::active_units`]);
//! * **requests** are decoded by the same stateless parser tables the
//!   deployed units use ([`crate::parse_slp_request`] and friends),
//!   classified by the same [`crate::gateway::classify_request`]
//!   decision tree, and answered from the registry's response cache
//!   with natively composed replies written back out the socket that
//!   heard them — the paper's §4.3 best case, end to end on the wire;
//! * **advertisements** are recorded in the shared
//!   [`crate::ServiceRegistry`] (warming the response cache when they
//!   carry an endpoint); a UPnP `NOTIFY`, which only points at a
//!   description document, is enriched through a [`DescriptionFetch`]
//!   — a real HTTP GET over TCP in a live deployment
//!   ([`HttpDescriptionFetch`]), the §2.4 socket switch on actual
//!   sockets;
//! * **responses** observed on the wire warm the cache, as in the
//!   simulation.
//!
//! What the front-end deliberately does *not* do is the cold-path
//! fan-out: a request the registry cannot answer is counted
//! ([`NetFrontStats::cold_misses`]) and its suppression window armed,
//! but driving a foreign protocol's multi-step native query process
//! remains the unit runtime's job. The warm path is one shared
//! implementation, so the deterministic simulation keeps pinning the
//! exact semantics the wire serves.
//!
//! Datagrams arrive in *batches* through [`Transport::bind_batched`]
//! (one `Vec<Datagram>` per reactor wakeup on a batching transport such
//! as [`indiss_net::BatchedTransport`]; singleton batches elsewhere),
//! and each admitted batch becomes one worker-pool job — so a
//! 32-datagram wakeup pays one enqueue, one admission, and one reply
//! flush
//! ([`TransportSocket::send_batch`]) instead of 32 of each.
//!
//! Backpressure is bounded **per worker lane**, the queue that can
//! actually grow: each lane (`channel lane % workers`) admits at most
//! [`NetDriver::BACKPRESSURE`] undelivered datagrams into the pool;
//! beyond that, the tail of the batch is dropped and every dropped
//! datagram counted exactly once
//! ([`NetFrontStats::dropped_backpressure`]) — the honest UDP behavior
//! under overload, applied before the queue can grow without bound. A
//! per-channel bound would let two channels sharing one worker queue
//! 2× the intended budget on it.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::SocketAddrV4;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

use indiss_net::{
    BindSpec, Datagram, FaultStats, SimTime, SimTransport, Transport, TransportKind,
    TransportSocket, UdpTransport,
};
use indiss_upnp::DeviceDescription;

use crate::config::{IndissConfig, UnitSpec};
use crate::error::{CoreError, CoreResult};
use crate::event::{EventStream, SdpProtocol};
use crate::gateway::{GatewayCore, ThreadedGateway, WarmDecision};
use crate::monitor::DetectionRecord;
use crate::obs::{
    render_bridge_stats, render_interner_gauges, render_netfront_stats, render_registry_stats,
    render_tracer, Phase, StatsServer, Tracer,
};
use crate::registry::{AdvertDisposition, ServiceRegistry};
use crate::runtime::BridgeStats;
use crate::units::descriptor::SdpDescriptor;
use crate::units::{slp, upnp, ParsedMessage};

// ---------------------------------------------------------------------
// Description fetching (the §2.4 socket switch, on real sockets)
// ---------------------------------------------------------------------

/// Resolves a UPnP `LOCATION:` URL to its description document, so a
/// `NOTIFY` advert can be enriched with the endpoint and attributes the
/// other SDPs need. Runs on a worker lane; implementations should bound
/// their blocking time.
pub trait DescriptionFetch: Send + Sync {
    /// Fetches the document at `url`, or `None` on any failure (the
    /// advert is then recorded unenriched, exactly like a failed fetch
    /// in the simulation).
    fn fetch(&self, url: &str) -> Option<String>;
}

/// A real HTTP GET over `std::net::TcpStream` — the live deployment's
/// [`DescriptionFetch`]. Timeout-bounded on connect, read and write.
#[derive(Debug, Clone)]
pub struct HttpDescriptionFetch {
    timeout: Duration,
}

impl Default for HttpDescriptionFetch {
    fn default() -> Self {
        HttpDescriptionFetch { timeout: Duration::from_millis(500) }
    }
}

impl HttpDescriptionFetch {
    /// A fetcher with the given per-operation timeout.
    pub fn with_timeout(timeout: Duration) -> HttpDescriptionFetch {
        HttpDescriptionFetch { timeout }
    }
}

impl DescriptionFetch for HttpDescriptionFetch {
    fn fetch(&self, url: &str) -> Option<String> {
        use std::net::ToSocketAddrs;
        let rest = url.strip_prefix("http://")?;
        let (host, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        // Hostnames and port-less authorities are both valid in a
        // LOCATION: header; resolve rather than parse, defaulting to
        // port 80.
        let addr = if host.contains(':') {
            host.to_socket_addrs().ok()?.next()?
        } else {
            (host, 80u16).to_socket_addrs().ok()?.next()?
        };
        let mut stream = std::net::TcpStream::connect_timeout(&addr, self.timeout).ok()?;
        stream.set_read_timeout(Some(self.timeout)).ok()?;
        stream.set_write_timeout(Some(self.timeout)).ok()?;
        let request = format!("GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n");
        stream.write_all(request.as_bytes()).ok()?;
        let mut wire = Vec::new();
        stream.read_to_end(&mut wire).ok()?;
        let response = indiss_http::Response::parse(&wire).ok()?;
        if !response.is_success() {
            return None;
        }
        String::from_utf8(response.body).ok()
    }
}

/// A canned [`DescriptionFetch`] for deterministic tests: URL →
/// document, no sockets.
#[derive(Debug, Default)]
pub struct StaticDescriptions {
    map: Mutex<HashMap<String, String>>,
}

impl StaticDescriptions {
    /// An empty table.
    pub fn new() -> StaticDescriptions {
        StaticDescriptions::default()
    }

    /// Maps `url` to `document`.
    pub fn insert(&self, url: &str, document: &str) {
        self.map.lock().expect("descriptions poisoned").insert(url.to_owned(), document.to_owned());
    }
}

impl DescriptionFetch for StaticDescriptions {
    fn fetch(&self, url: &str) -> Option<String> {
        self.map.lock().expect("descriptions poisoned").get(url).cloned()
    }
}

// ---------------------------------------------------------------------
// Wire codecs: the stateless parser/composer tables per protocol
// ---------------------------------------------------------------------

/// Per-protocol dispatch into the stateless parse/compose functions the
/// deployed units share with the wire front-end.
enum WireCodec {
    Slp,
    Upnp,
    /// Boxed: a descriptor carries its compiled templates, which would
    /// otherwise dominate the enum's size.
    Descriptor(Box<SdpDescriptor>),
}

impl WireCodec {
    fn for_spec(spec: &UnitSpec) -> CoreResult<WireCodec> {
        match spec {
            UnitSpec::Slp(_) => Ok(WireCodec::Slp),
            UnitSpec::Upnp(_) => Ok(WireCodec::Upnp),
            UnitSpec::Descriptor(d) => Ok(WireCodec::Descriptor(Box::new(d.clone()))),
            // The Jini discovery plane is TCP-registrar-shaped; its unit
            // has no stateless datagram codec to share yet.
            UnitSpec::Jini(_) => Err(CoreError::BadConfig(
                "the Jini unit has no wire codec; configure SLP, UPnP or descriptor units \
                 for the network front-end",
            )),
            UnitSpec::Custom(_) => Err(CoreError::BadConfig(
                "custom unit factories are simulation-bound; the network front-end needs a \
                 built-in or descriptor protocol",
            )),
        }
    }

    fn decode(&self, payload: &[u8], src: SocketAddrV4, multicast: bool) -> ParsedMessage {
        match self {
            WireCodec::Slp => slp::decode_slp_wire(payload, src, multicast),
            WireCodec::Upnp => upnp::decode_ssdp_wire(payload, src),
            WireCodec::Descriptor(d) => d.decode_wire(payload, src, multicast),
        }
    }

    /// Composes the native reply answering `request` with `response`;
    /// returns the wire bytes and the requester address. UPnP requests
    /// return `None`: a native SSDP answer points at a synthetic
    /// description document, which only the unit runtime hosts.
    fn compose_reply(
        &self,
        registry: &ServiceRegistry,
        request: &EventStream,
        response: &EventStream,
    ) -> Option<(Vec<u8>, SocketAddrV4)> {
        match self {
            WireCodec::Slp => {
                let (wire, requester, slp_url) = slp::compose_slp_reply(request, response)?;
                // Record the attribute projection, as the unit does, so
                // registry contents match the simulated run.
                registry.set_projection(
                    SdpProtocol::Slp,
                    &slp_url,
                    crate::registry::Projection {
                        attrs: response
                            .response_attrs()
                            .into_iter()
                            .map(|(t, v)| (t.to_owned(), v.to_owned()))
                            .collect(),
                        ..crate::registry::Projection::default()
                    },
                );
                Some((wire, requester))
            }
            WireCodec::Upnp => None,
            WireCodec::Descriptor(d) => d.compose_answer_wire(request, response),
        }
    }
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct FrontCounters {
    datagrams_received: AtomicU64,
    dropped_backpressure: AtomicU64,
    requests_decoded: AtomicU64,
    replies_sent: AtomicU64,
    cold_misses: AtomicU64,
    adverts_seen: AtomicU64,
    descriptions_fetched: AtomicU64,
    decode_rejected: AtomicU64,
    multicast_join_misses: AtomicU64,
}

/// A snapshot of the wire front-end's own counters. Bridge-level
/// accounting (cache hits, suppression, recorded adverts …) is shared
/// with the gateway and read via [`NetDriver::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetFrontStats {
    /// Datagrams the transport delivered to the sinks.
    pub datagrams_received: u64,
    /// Datagrams dropped because a channel's bounded in-flight budget
    /// was full (honest UDP overload behavior).
    pub dropped_backpressure: u64,
    /// Request streams decoded from the wire.
    pub requests_decoded: u64,
    /// Native replies composed and written back out a socket.
    pub replies_sent: u64,
    /// Requests the warm path could not answer (a simulation runtime
    /// would fan these out to the foreign units).
    pub cold_misses: u64,
    /// Advertisement streams decoded from the wire.
    pub adverts_seen: u64,
    /// UPnP description documents fetched to enrich adverts.
    pub descriptions_fetched: u64,
    /// Datagrams no parser table row matched.
    pub decode_rejected: u64,
    /// Reactor wakeups (epoll returns with ≥1 ready channel, or recv
    /// returns on the fallback threads). Zero on transports without a
    /// batching engine — see [`Transport::io_stats`].
    pub reactor_wakeups: u64,
    /// Histogram of datagrams drained per recv batch: buckets
    /// `[≤1, 2–7, 8–31, 32+]`.
    pub recv_batch_hist: [u64; 4],
    /// Batched reply flushes (`sendmmsg` calls, or one per logical
    /// flush on the fallback path).
    pub batch_sends_flushed: u64,
    /// Reads that found the socket drained (`EAGAIN`) — the reactor's
    /// edge-triggered loop terminator.
    pub recv_eagain: u64,
    /// Channels whose socket bound but could not join its protocol's
    /// multicast groups ([`TransportSocket::multicast_ready`] false):
    /// the channel still serves unicast, but passively detecting that
    /// protocol's multicast chatter will not work. Counted (and logged)
    /// once per channel at bind time.
    pub multicast_join_misses: u64,
    /// Faults an [`indiss_net::FaultTransport`] in front of this driver
    /// injected (all-zero when no fault layer is armed).
    pub faults: FaultStats,
}

// ---------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------

struct Channel {
    protocol: SdpProtocol,
    codec: WireCodec,
    lane: usize,
    socket: OnceLock<Arc<dyn TransportSocket>>,
    // Detection bookkeeping is per-channel atomics, not a shared map:
    // the sink runs on the transport's delivery thread, and a
    // process-wide lock there would serialize all channels at the front
    // door. (Backpressure budgets live per worker lane on the driver —
    // see `NetDriverInner::lane_in_flight`.)
    // `first_seen_nanos == 0` means "never" (driver time starts at 1 s).
    first_seen_nanos: AtomicU64,
    last_seen_nanos: AtomicU64,
    message_count: AtomicU64,
    /// Whether this protocol's pipeline is live (always for eager
    /// configs; flipped by first traffic under `lazy_units`, Fig. 5).
    active: std::sync::atomic::AtomicBool,
}

struct NetDriverInner {
    gateway: ThreadedGateway,
    core: GatewayCore,
    transport: Arc<dyn Transport>,
    channels: Vec<Arc<Channel>>,
    /// In-flight datagram budget per *worker lane* (index
    /// `channel.lane % len`): the worker queues are what backpressure
    /// actually bounds, and two channels can share one worker.
    lane_in_flight: Box<[AtomicUsize]>,
    epoch: Instant,
    lazy: bool,
    counters: FrontCounters,
    fetcher: Option<Arc<dyn DescriptionFetch>>,
    /// The gateway's span recorder (disabled unless
    /// [`IndissConfig::trace`]); shared with the pool and the classify
    /// path so one snapshot covers the whole pipeline.
    tracer: Tracer,
    /// The scrape endpoint, when [`IndissConfig::stats_port`] asked for
    /// one. Stopped on [`NetDriver::shutdown`] and on drop.
    stats_server: Mutex<Option<StatsServer>>,
}

impl NetDriverInner {
    fn lane_slot(&self, lane: usize) -> &AtomicUsize {
        &self.lane_in_flight[lane % self.lane_in_flight.len()]
    }
}

/// Configures and starts a [`NetDriver`]; obtained from
/// [`NetDriver::builder`].
pub struct NetDriverBuilder {
    config: IndissConfig,
    transport: Option<Arc<dyn Transport>>,
    fetcher: Option<Arc<dyn DescriptionFetch>>,
}

impl NetDriverBuilder {
    /// Runs the driver on an explicit transport (e.g. a [`SimTransport`]
    /// shared with scripted native peers, or a [`UdpTransport`] with a
    /// port offset). Without this, the transport comes from
    /// `config.transport` / `config.port_offset`.
    pub fn transport(mut self, transport: Arc<dyn Transport>) -> NetDriverBuilder {
        self.transport = Some(transport);
        self
    }

    /// Sets the description fetcher UPnP advert enrichment uses. The
    /// default for a [`TransportKind::Udp`] driver is a real
    /// [`HttpDescriptionFetch`]; for [`TransportKind::Sim`] there is no
    /// default (supply [`StaticDescriptions`] for deterministic tests).
    pub fn describe(mut self, fetcher: Arc<dyn DescriptionFetch>) -> NetDriverBuilder {
        self.fetcher = Some(fetcher);
        self
    }

    /// Binds every channel and starts serving.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadConfig`] for configs the wire front cannot serve
    /// (no units, duplicate protocols, units without a wire codec);
    /// [`CoreError::Net`] for bind failures — a privileged port without
    /// the capability, a port already in use.
    pub fn start(self) -> CoreResult<NetDriver> {
        NetDriver::start_inner(self.config, self.transport, self.fetcher)
    }
}

/// Reserves up to `want` slots of a lane's in-flight budget, returning
/// how many were admitted (the rest is the caller's to drop and count).
/// Optimistic reserve-then-correct: one `fetch_add`, and a `fetch_sub`
/// refund only on the contended overflow path. Concurrent callers can
/// transiently observe the counter above `limit`, but admissions never
/// exceed it — the refund precedes the caller acting on the admission.
fn admit(in_flight: &AtomicUsize, limit: usize, want: usize) -> usize {
    let prev = in_flight.fetch_add(want, Ordering::AcqRel);
    let admitted = limit.saturating_sub(prev).min(want);
    if admitted < want {
        in_flight.fetch_sub(want - admitted, Ordering::AcqRel);
    }
    admitted
}

/// The wire front-end driver. See the module docs; constructed via
/// [`NetDriver::builder`] or [`NetDriver::start`].
///
/// Cheap to clone (all clones drive one gateway); [`NetDriver::shutdown`]
/// stops the transport's recv threads and drains the worker pool.
#[derive(Clone)]
pub struct NetDriver {
    inner: Arc<NetDriverInner>,
}

impl NetDriver {
    /// Per-*lane* bound on datagrams admitted into the worker pool and
    /// not yet processed; arrivals beyond it are dropped (tail of the
    /// offending batch first) and counted, exactly once per datagram.
    pub const BACKPRESSURE: usize = 1024;

    /// Starts a driver for `config` on the transport `config.transport`
    /// names.
    ///
    /// # Errors
    ///
    /// See [`NetDriverBuilder::start`].
    pub fn start(config: IndissConfig) -> CoreResult<NetDriver> {
        NetDriver::builder(config).start()
    }

    /// Starts configuring a driver.
    pub fn builder(config: IndissConfig) -> NetDriverBuilder {
        NetDriverBuilder { config, transport: None, fetcher: None }
    }

    fn start_inner(
        config: IndissConfig,
        transport: Option<Arc<dyn Transport>>,
        fetcher: Option<Arc<dyn DescriptionFetch>>,
    ) -> CoreResult<NetDriver> {
        if config.units.is_empty() {
            return Err(CoreError::BadConfig("at least one unit is required"));
        }
        let transport: Arc<dyn Transport> = match transport {
            Some(t) => t,
            None => match config.transport {
                TransportKind::Sim => Arc::new(SimTransport::new()),
                TransportKind::Udp => Arc::new(UdpTransport::new(config.bind, config.port_offset)),
            },
        };
        let fetcher = fetcher.or_else(|| match transport.kind() {
            TransportKind::Udp => {
                Some(Arc::new(HttpDescriptionFetch::default()) as Arc<dyn DescriptionFetch>)
            }
            TransportKind::Sim => None,
        });

        let gateway = ThreadedGateway::from_config(&config);
        let core = gateway.core();
        let tracer = core.tracer();
        let mut channels = Vec::with_capacity(config.units.len());
        for (lane, spec) in config.units.iter().enumerate() {
            let protocol = spec.protocol();
            if channels.iter().any(|c: &Arc<Channel>| c.protocol == protocol) {
                return Err(CoreError::BadConfig(
                    "duplicate unit: each protocol may be configured at most once",
                ));
            }
            channels.push(Arc::new(Channel {
                protocol,
                codec: WireCodec::for_spec(spec)?,
                lane,
                socket: OnceLock::new(),
                first_seen_nanos: AtomicU64::new(0),
                last_seen_nanos: AtomicU64::new(0),
                message_count: AtomicU64::new(0),
                active: std::sync::atomic::AtomicBool::new(!config.lazy_units),
            }));
        }
        let workers = gateway.workers();
        let inner = Arc::new(NetDriverInner {
            gateway,
            core,
            transport: Arc::clone(&transport),
            channels,
            lane_in_flight: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
            epoch: Instant::now(),
            lazy: config.lazy_units,
            counters: FrontCounters::default(),
            fetcher,
            tracer,
            stats_server: Mutex::new(None),
        });

        for channel in &inner.channels {
            let spec = BindSpec {
                port: channel.protocol.port(),
                groups: channel.protocol.multicast_groups().to_vec(),
            };
            let weak: Weak<NetDriverInner> = Arc::downgrade(&inner);
            let chan = Arc::clone(channel);
            let socket = transport.bind_batched(
                &spec,
                Arc::new(move |batch: Vec<Datagram>| {
                    if let Some(inner) = weak.upgrade() {
                        NetDriver::sink_batch(&inner, &chan, batch);
                    }
                }),
            );
            let socket = match socket {
                Ok(s) => s,
                Err(e) => {
                    // A partial start must not strand recv threads (or
                    // keep earlier channels' ports bound): tear down
                    // what was already bound before reporting.
                    transport.shutdown();
                    return Err(e.into());
                }
            };
            if !spec.groups.is_empty() && !socket.multicast_ready() {
                // Once per channel, at bind time: the socket serves
                // unicast, but this protocol's multicast detection is
                // blind — worth a counter *and* a line in the log,
                // because the symptom (a silent channel) shows up far
                // from the cause (a host without multicast routes).
                inner.counters.multicast_join_misses.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "indiss-net-front: channel {:?} bound {} but joined no multicast group; \
                     passive detection of multicast traffic is disabled for it",
                    channel.protocol,
                    socket.local_addr(),
                );
            }
            channel.socket.set(socket).ok().expect("channel socket set once");
        }
        if let Some(port) = config.stats_port {
            let weak: Weak<NetDriverInner> = Arc::downgrade(&inner);
            let render: Arc<dyn Fn() -> String + Send + Sync> = Arc::new(move || {
                let Some(inner) = weak.upgrade() else {
                    return String::new();
                };
                let driver = NetDriver { inner };
                let mut out = String::new();
                render_bridge_stats(&mut out, &driver.stats());
                render_netfront_stats(&mut out, &driver.front_stats());
                render_registry_stats(&mut out, &driver.registry().stats());
                render_interner_gauges(&mut out);
                render_tracer(&mut out, &driver.inner.tracer);
                out
            });
            let server = match StatsServer::start(port, render) {
                Ok(s) => s,
                Err(e) => {
                    // Same teardown discipline as a channel bind failure:
                    // no recv thread survives a partial start.
                    transport.shutdown();
                    return Err(e);
                }
            };
            *inner.stats_server.lock().expect("stats server lock") = Some(server);
        }
        Ok(NetDriver { inner })
    }

    /// The transport-seam entry point: runs on the transport's delivery
    /// thread (one call per reactor wakeup on a batching transport), so
    /// it only does detection bookkeeping and the bounded hand-off of
    /// the whole batch — one pool job — to the worker lane.
    fn sink_batch(inner: &Arc<NetDriverInner>, channel: &Arc<Channel>, mut batch: Vec<Datagram>) {
        if batch.is_empty() {
            return;
        }
        let arrived = batch.len();
        inner.counters.datagrams_received.fetch_add(arrived as u64, Ordering::Relaxed);
        let now = inner.now();
        // Passive port-based detection (§2.1), through the seam: the
        // record exists because data arrived, not because anything was
        // parsed. Per-channel atomics — no lock on the recv path.
        let nanos = now.as_nanos().max(1);
        let _ = channel.first_seen_nanos.compare_exchange(
            0,
            nanos,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        channel.last_seen_nanos.store(nanos, Ordering::Relaxed);
        channel.message_count.fetch_add(arrived as u64, Ordering::Relaxed);
        if inner.lazy {
            // Fig. 5's lazy composition: first traffic activates the
            // protocol's pipeline (idempotent store).
            channel.active.store(true, Ordering::Relaxed);
        }
        // Bounded backpressure into the pool, per worker lane: the
        // batch's admission is reserved here, released when the worker
        // finishes it. The unadmitted tail is dropped, each datagram
        // counted exactly once.
        let admitted = admit(inner.lane_slot(channel.lane), NetDriver::BACKPRESSURE, arrived);
        if admitted < arrived {
            inner
                .counters
                .dropped_backpressure
                .fetch_add((arrived - admitted) as u64, Ordering::Relaxed);
            batch.truncate(admitted);
        }
        if batch.is_empty() {
            return;
        }
        let inner2 = Arc::clone(inner);
        let channel2 = Arc::clone(channel);
        inner.gateway.submit_on_lane(channel.lane, move || {
            let release = batch.len();
            NetDriver::process_batch(&inner2, &channel2, batch);
            inner2.lane_slot(channel2.lane).fetch_sub(release, Ordering::AcqRel);
        });
    }

    /// The per-batch pipeline, on the channel's worker lane: decode →
    /// parse → classify each datagram, collecting composed replies, then
    /// flush them in one [`TransportSocket::send_batch`] call.
    fn process_batch(inner: &NetDriverInner, channel: &Channel, batch: Vec<Datagram>) {
        let mut replies: Vec<(Vec<u8>, SocketAddrV4)> = Vec::new();
        // Tracing is sampled one datagram per batch: the first datagram
        // gets per-phase spans plus the end-to-end histogram sample,
        // the rest pay only an untaken branch. The batch is the natural
        // stride — adaptive batching shrinks it to 1 under light load
        // (every datagram traced) and grows it under pressure, so the
        // sampling rate backs off exactly when clock reads would hurt
        // (the CI smoke gate pins the tracing-on overhead).
        for (i, dgram) in batch.into_iter().enumerate() {
            NetDriver::process(inner, channel, dgram, &mut replies, i == 0);
        }
        if replies.is_empty() {
            return;
        }
        let socket = channel.socket.get().expect("bound before traffic");
        let reply_start = inner.tracer.stamp();
        let sent = socket.send_batch(&replies);
        inner.tracer.record(channel.lane, Phase::Reply, reply_start);
        if sent > 0 {
            inner.counters.replies_sent.fetch_add(sent as u64, Ordering::Relaxed);
            inner.core.bridge_counters().add_responses_composed_n(sent as u64);
        }
    }

    /// The per-datagram pipeline: decode → parse → classify → deliver.
    /// Composed replies are pushed onto `replies` for the caller's
    /// batched flush (accounting happens there, after the send). When
    /// `trace_phases` is set (first datagram of a batch) each phase is
    /// stamped into the span ring and the datagram feeds the
    /// per-protocol end-to-end histogram; unsampled datagrams pay no
    /// clock reads at all.
    fn process(
        inner: &NetDriverInner,
        channel: &Channel,
        dgram: Datagram,
        replies: &mut Vec<(Vec<u8>, SocketAddrV4)>,
        trace_phases: bool,
    ) {
        let registry = inner.core.registry();
        let now = inner.now();
        // Span bookkeeping: `stamp()` is `SimTime::ZERO` and every
        // `record*` a single branch while tracing is off, so the hot
        // path pays nothing measurable (the CI smoke gate pins the
        // tracing-ON overhead too).
        let e2e_start = if trace_phases { inner.tracer.stamp() } else { SimTime::ZERO };
        let decoded = channel.codec.decode(&dgram.payload, dgram.src, dgram.is_multicast());
        if trace_phases {
            inner.tracer.record(channel.lane, Phase::Decode, e2e_start);
        }
        match decoded {
            ParsedMessage::Request(request) => {
                inner.counters.requests_decoded.fetch_add(1, Ordering::Relaxed);
                let classify_start =
                    if trace_phases { inner.tracer.stamp() } else { SimTime::ZERO };
                let decision = inner.core.classify(channel.protocol, &request, now);
                if trace_phases {
                    inner.tracer.record(channel.lane, Phase::Classify, classify_start);
                }
                match decision {
                    WarmDecision::CacheHit(response) => {
                        let deliver_start =
                            if trace_phases { inner.tracer.stamp() } else { SimTime::ZERO };
                        if let Some((wire, requester)) =
                            channel.codec.compose_reply(&registry, &request, &response)
                        {
                            replies.push((wire, requester));
                        }
                        if trace_phases {
                            inner.tracer.record(channel.lane, Phase::Deliver, deliver_start);
                        }
                    }
                    // "Nothing found" is silence on multicast SDPs; the
                    // negative/suppression accounting lives in the
                    // shared classify path.
                    WarmDecision::NegativeHit | WarmDecision::Suppressed => {}
                    WarmDecision::Bridge => {
                        inner.counters.cold_misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            ParsedMessage::Advert(stream) => {
                inner.counters.adverts_seen.fetch_add(1, Ordering::Relaxed);
                let stream = inner.maybe_enrich(stream);
                // Adverts with no identity to key on are ignored; the
                // rest are recorded (and warm the cache when alive).
                if registry.record_advert(channel.protocol, &stream, now)
                    != AdvertDisposition::Ignored
                {
                    inner.core.bridge_counters().add_adverts_recorded();
                    if stream.is_alive() && stream.service_url().is_some() {
                        if let Some(t) = stream.service_type_symbol() {
                            registry.warm(t, stream.clone(), now);
                        }
                    }
                    inner.opportunistic_sweep(&registry, now);
                }
            }
            ParsedMessage::Response(stream) => {
                if stream.service_url().is_some() {
                    if let Some(t) = stream.service_type_symbol() {
                        registry.warm(t, stream.clone(), now);
                        inner.opportunistic_sweep(&registry, now);
                    }
                }
            }
            ParsedMessage::Handled => {}
            ParsedMessage::NotRelevant => {
                inner.counters.decode_rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
        // End-to-end datagram latency, bucketed per protocol port on
        // this lane's ring (no cross-worker histogram contention).
        if trace_phases {
            let e2e_end = inner.tracer.stamp();
            inner.tracer.record_protocol(channel.lane, channel.protocol.port(), e2e_start, e2e_end);
        }
    }

    /// Wall-clock time mapped onto the registry's [`SimTime`] axis.
    pub fn now(&self) -> SimTime {
        self.inner.now()
    }

    /// The shared registry behind the gateway.
    pub fn registry(&self) -> ServiceRegistry {
        self.inner.core.registry()
    }

    /// Bridge statistics (shared accounting with the gateway: cache and
    /// negative hits, suppression, recorded adverts, composed replies).
    pub fn stats(&self) -> BridgeStats {
        self.inner.core.stats()
    }

    /// The front-end's own wire-level counters, merged with the
    /// transport's reactor/batch-I/O counters (zeros on transports
    /// without a batching engine).
    pub fn front_stats(&self) -> NetFrontStats {
        let c = &self.inner.counters;
        let io = self.inner.transport.io_stats().unwrap_or_default();
        NetFrontStats {
            datagrams_received: c.datagrams_received.load(Ordering::Relaxed),
            dropped_backpressure: c.dropped_backpressure.load(Ordering::Relaxed),
            requests_decoded: c.requests_decoded.load(Ordering::Relaxed),
            replies_sent: c.replies_sent.load(Ordering::Relaxed),
            cold_misses: c.cold_misses.load(Ordering::Relaxed),
            adverts_seen: c.adverts_seen.load(Ordering::Relaxed),
            descriptions_fetched: c.descriptions_fetched.load(Ordering::Relaxed),
            decode_rejected: c.decode_rejected.load(Ordering::Relaxed),
            reactor_wakeups: io.reactor_wakeups,
            recv_batch_hist: io.recv_batch_hist,
            batch_sends_flushed: io.batch_sends_flushed,
            recv_eagain: io.recv_eagain,
            multicast_join_misses: c.multicast_join_misses.load(Ordering::Relaxed),
            faults: io.faults,
        }
    }

    /// Protocols seen so far, in first-detection order — the monitor's
    /// §2.1 view, served by the transport seam.
    pub fn detected(&self) -> Vec<SdpProtocol> {
        let mut seen: Vec<(u64, SdpProtocol)> = self
            .inner
            .channels
            .iter()
            .filter_map(|c| {
                let first = c.first_seen_nanos.load(Ordering::Relaxed);
                (first != 0).then_some((first, c.protocol))
            })
            .collect();
        seen.sort();
        seen.into_iter().map(|(_, p)| p).collect()
    }

    /// Detection statistics for one protocol.
    pub fn detection(&self, protocol: SdpProtocol) -> Option<DetectionRecord> {
        let channel = self.inner.channels.iter().find(|c| c.protocol == protocol)?;
        let first = channel.first_seen_nanos.load(Ordering::Relaxed);
        if first == 0 {
            return None;
        }
        Some(DetectionRecord {
            first_seen: SimTime::from_nanos(first),
            last_seen: SimTime::from_nanos(channel.last_seen_nanos.load(Ordering::Relaxed)),
            message_count: channel.message_count.load(Ordering::Relaxed),
        })
    }

    /// Protocols with an active pipeline: everything configured when
    /// eager, first-traffic protocols when `lazy_units` (Fig. 5).
    pub fn active_units(&self) -> Vec<SdpProtocol> {
        let mut ps: Vec<SdpProtocol> = self
            .inner
            .channels
            .iter()
            .filter(|c| c.active.load(Ordering::Relaxed))
            .map(|c| c.protocol)
            .collect();
        ps.sort_by_key(|p| p.port());
        ps
    }

    /// The transport this driver serves (e.g. to bind scripted client
    /// channels on the same bus, or to map protocol ports).
    pub fn transport(&self) -> Arc<dyn Transport> {
        Arc::clone(&self.inner.transport)
    }

    /// The channel socket bound for `protocol`, if configured (exposed
    /// so harnesses can address the gateway without re-deriving the
    /// mapped port).
    pub fn channel_addr(&self, protocol: SdpProtocol) -> Option<SocketAddrV4> {
        self.inner
            .channels
            .iter()
            .find(|c| c.protocol == protocol)
            .and_then(|c| c.socket.get())
            .map(|s| s.local_addr())
    }

    /// The gateway's pipeline span recorder — disabled (all no-ops)
    /// unless the config set [`IndissConfig::trace`].
    pub fn tracer(&self) -> Tracer {
        self.inner.tracer.clone()
    }

    /// The scrape endpoint's bound address, when
    /// [`IndissConfig::stats_port`] asked for one (the real port even
    /// when configured with port 0).
    pub fn stats_addr(&self) -> Option<std::net::SocketAddr> {
        self.inner.stats_server.lock().expect("stats server lock").as_ref().map(StatsServer::addr)
    }

    /// Blocks until every admitted datagram has been processed.
    pub fn join(&self) {
        self.inner.gateway.join();
    }

    /// Stops the transport's recv threads, drains the pool and stops
    /// the stats endpoint (when one was configured).
    pub fn shutdown(&self) {
        if let Some(mut server) = self.inner.stats_server.lock().expect("stats server lock").take()
        {
            server.stop();
        }
        self.inner.transport.shutdown();
        self.inner.gateway.join();
    }
}

impl NetDriverInner {
    fn now(&self) -> SimTime {
        // Offset by one virtual second so "time zero" artifacts (e.g. a
        // suppression window armed exactly at epoch) cannot occur.
        let nanos = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        SimTime::from_nanos(nanos.saturating_add(1_000_000_000))
    }

    /// Enriches a UPnP advert that only points at a description (no
    /// endpoint) by fetching and parsing the document — the §2.4
    /// recursive process on the advert path.
    fn maybe_enrich(&self, stream: EventStream) -> EventStream {
        if !stream.is_alive() || stream.service_url().is_some() {
            return stream;
        }
        let Some(fetcher) = &self.fetcher else {
            return stream;
        };
        let location = stream.events().iter().find_map(|e| match e {
            crate::event::Event::UpnpDeviceUrlDesc(url) => Some(url.clone()),
            _ => None,
        });
        let Some(location) = location else {
            return stream;
        };
        let Some(desc) =
            fetcher.fetch(&location).and_then(|xml| DeviceDescription::from_xml(&xml).ok())
        else {
            return stream;
        };
        self.counters.descriptions_fetched.fetch_add(1, Ordering::Relaxed);
        upnp::enrich_advert_with_description(&stream, &desc, &location)
    }

    /// Runs a registry sweep when a TTL deadline has passed — the
    /// wall-clock analogue of the simulation's virtual-time sweep
    /// timers (reads expire lazily regardless; this reclaims memory).
    fn opportunistic_sweep(&self, registry: &ServiceRegistry, now: SimTime) {
        if registry.next_deadline().is_some_and(|d| d <= now) {
            registry.sweep(now);
        }
    }
}

impl std::fmt::Debug for NetDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetDriver")
            .field("transport", &self.inner.transport.kind())
            .field("protocols", &self.inner.channels.iter().map(|c| c.protocol).collect::<Vec<_>>())
            .field("front_stats", &self.front_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndissConfig;
    use crate::event::Event;
    use std::sync::mpsc;
    use std::time::Duration;

    fn slp_request(service_type: &str, xid: u16) -> Vec<u8> {
        indiss_slp::Message::new(
            indiss_slp::Header::new(indiss_slp::FunctionId::SrvRqst, xid, "en"),
            indiss_slp::Body::SrvRqst(indiss_slp::SrvRqst {
                prlist: String::new(),
                service_type: service_type.to_owned(),
                scopes: "DEFAULT".into(),
                predicate: String::new(),
                spi: String::new(),
            }),
        )
        .encode()
        .expect("encodable")
    }

    fn client_on(
        transport: &Arc<dyn Transport>,
    ) -> (Arc<dyn TransportSocket>, mpsc::Receiver<Datagram>) {
        let (tx, rx) = mpsc::channel();
        let socket = transport
            .bind_client(Arc::new(move |d| {
                let _ = tx.send(d);
            }))
            .expect("client bind");
        (socket, rx)
    }

    /// A warm SLP request over the sim bus is answered with a composed
    /// SrvRply on the requester's socket — the §4.3 best case end to
    /// end through the transport seam.
    #[test]
    fn warm_slp_request_is_answered_on_the_wire() {
        let driver = NetDriver::builder(IndissConfig::slp_upnp()).start().expect("driver");
        let transport = driver.transport();
        driver.registry().warm(
            "clock",
            EventStream::framed(vec![
                Event::ServiceResponse,
                Event::ResOk,
                Event::ServiceType("clock".into()),
                Event::ResTtl(1800),
                Event::ResServUrl("soap://10.0.0.2:4004/service/timer/control".into()),
            ]),
            driver.now(),
        );
        let (client, replies) = client_on(&transport);
        let slp_addr = driver.channel_addr(SdpProtocol::Slp).expect("slp channel");
        client.send_to(&slp_request("service:clock", 0xBEEF), slp_addr).expect("send");
        driver.join();
        let reply = replies.recv_timeout(Duration::from_secs(2)).expect("reply on the wire");
        let msg = indiss_slp::Message::decode(&reply.payload).expect("valid SLP");
        assert_eq!(msg.header.xid, 0xBEEF);
        match msg.body {
            indiss_slp::Body::SrvRply(rply) => {
                assert_eq!(
                    rply.urls[0].url,
                    "service:clock:soap://10.0.0.2:4004/service/timer/control"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = driver.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.responses_composed, 1);
        assert_eq!(driver.front_stats().replies_sent, 1);
        driver.shutdown();
    }

    /// An SLP SrvReg advert heard on the wire lands in the registry,
    /// warms the cache, and the next request is answered — and a cold
    /// request is counted as a miss, not answered.
    #[test]
    fn adverts_warm_and_cold_requests_count() {
        let driver = NetDriver::builder(IndissConfig::slp_upnp()).start().expect("driver");
        let transport = driver.transport();
        let (client, replies) = client_on(&transport);
        let slp_addr = driver.channel_addr(SdpProtocol::Slp).expect("slp channel");

        // Cold: nothing known.
        client.send_to(&slp_request("service:printer", 1), slp_addr).expect("send");
        driver.join();
        assert_eq!(driver.front_stats().cold_misses, 1);
        assert!(replies.try_recv().is_err(), "cold request is silence");

        // Advert → record + warm.
        let reg = indiss_slp::Message::new(
            indiss_slp::Header::new(indiss_slp::FunctionId::SrvReg, 2, "en"),
            indiss_slp::Body::SrvReg(indiss_slp::SrvReg {
                entry: indiss_slp::UrlEntry::new("service:printer:lpr://10.0.3.1:515", 1800),
                service_type: "service:printer".into(),
                scopes: "DEFAULT".into(),
                attrs: "(location=office)".into(),
            }),
        )
        .encode()
        .expect("encodable");
        client.send_to(&reg, slp_addr).expect("send");
        driver.join();
        assert!(driver.registry().contains_type("printer", driver.now()));
        assert_eq!(driver.stats().adverts_recorded, 1);

        client.send_to(&slp_request("service:printer", 3), slp_addr).expect("send");
        driver.join();
        let reply = replies.recv_timeout(Duration::from_secs(2)).expect("warm reply");
        assert!(indiss_slp::Message::decode(&reply.payload).is_ok());
        driver.shutdown();
    }

    /// Passive port detection through the seam, with Fig. 5 lazy
    /// activation: nothing active until traffic arrives.
    #[test]
    fn detection_and_lazy_activation_through_the_seam() {
        let descriptor = SdpDescriptor::dns_sd();
        let config = IndissConfig::builder().slp().descriptor(descriptor.clone()).lazy().build();
        let driver = NetDriver::builder(config).start().expect("driver");
        let transport = driver.transport();
        assert!(driver.detected().is_empty());
        assert!(driver.active_units().is_empty(), "lazy: nothing active yet");

        let (client, _replies) = client_on(&transport);
        let dnssd_addr = driver.channel_addr(descriptor.protocol()).expect("channel");
        client.send_to(b"DNSSD Q PTR _clock._tcp.local", dnssd_addr).expect("send");
        driver.join();
        assert_eq!(driver.detected(), vec![descriptor.protocol()]);
        assert_eq!(driver.active_units(), vec![descriptor.protocol()]);
        assert_eq!(driver.detection(descriptor.protocol()).expect("record").message_count, 1);
        driver.shutdown();
    }

    /// A descriptor protocol's warm path composes its native answer
    /// line from the same template table the unit uses.
    #[test]
    fn descriptor_protocol_answers_natively() {
        let descriptor = SdpDescriptor::dns_sd();
        let config = IndissConfig::builder().descriptor(descriptor.clone()).build();
        let driver = NetDriver::builder(config).start().expect("driver");
        driver.registry().warm(
            "scanner",
            EventStream::framed(vec![
                Event::ServiceResponse,
                Event::ResOk,
                Event::ServiceType("scanner".into()),
                Event::ResTtl(120),
                Event::ResServUrl("scan://10.0.4.1:6566/sane".into()),
            ]),
            driver.now(),
        );
        let transport = driver.transport();
        let (client, replies) = client_on(&transport);
        let addr = driver.channel_addr(descriptor.protocol()).expect("channel");
        client.send_to(b"DNSSD Q PTR _scanner._tcp.local", addr).expect("send");
        driver.join();
        let reply = replies.recv_timeout(Duration::from_secs(2)).expect("native answer");
        assert_eq!(
            String::from_utf8(reply.payload).expect("utf8"),
            "DNSSD A PTR _scanner._tcp.local SRV scan://10.0.4.1:6566/sane TTL 120"
        );
        driver.shutdown();
    }

    /// A UPnP NOTIFY that only points at a description document is
    /// enriched through the DescriptionFetch seam and warms the cache
    /// with the real control endpoint.
    #[test]
    fn upnp_notify_enriched_via_description_fetch() {
        let descriptions = Arc::new(StaticDescriptions::new());
        let desc = DeviceDescription {
            device_type: "urn:schemas-upnp-org:device:clock:1".into(),
            friendly_name: "CyberGarage Clock Device".into(),
            manufacturer: "CyberGarage".into(),
            manufacturer_url: "http://www.cybergarage.org".into(),
            model_description: "CyberUPnP Clock Device".into(),
            model_name: "Clock".into(),
            model_number: "1.0".into(),
            model_url: "http://www.cybergarage.org".into(),
            udn: "uuid:ClockDevice".into(),
            services: vec![indiss_upnp::ServiceDescription::conventional("timer", 1)],
        };
        descriptions.insert("http://10.0.0.2:4004/description.xml", &desc.to_xml());

        let driver = NetDriver::builder(IndissConfig::slp_upnp())
            .describe(descriptions)
            .start()
            .expect("driver");
        let transport = driver.transport();
        let (client, replies) = client_on(&transport);
        let notify = indiss_ssdp::Notify {
            nt: indiss_ssdp::SearchTarget::device_urn("clock", 1),
            nts: indiss_ssdp::NotifySubType::Alive,
            usn: "uuid:ClockDevice::urn:schemas-upnp-org:device:clock:1".into(),
            location: Some("http://10.0.0.2:4004/description.xml".into()),
            server: "test/1.0".into(),
            max_age: 1800,
        };
        let upnp_addr = driver.channel_addr(SdpProtocol::Upnp).expect("upnp channel");
        client.send_to(&notify.to_bytes(), upnp_addr).expect("send");
        driver.join();
        assert_eq!(driver.front_stats().descriptions_fetched, 1);
        assert!(driver.registry().contains_type("clock", driver.now()));

        // The enriched advert warmed the cache: an SLP request is now a
        // warm hit answered with the *control* endpoint from the
        // description, not the description URL.
        let slp_addr = driver.channel_addr(SdpProtocol::Slp).expect("slp channel");
        client.send_to(&slp_request("service:clock", 7), slp_addr).expect("send");
        driver.join();
        let reply = replies.recv_timeout(Duration::from_secs(2)).expect("bridged reply");
        let msg = indiss_slp::Message::decode(&reply.payload).expect("valid SLP");
        match msg.body {
            indiss_slp::Body::SrvRply(rply) => {
                assert_eq!(
                    rply.urls[0].url,
                    "service:clock:soap://10.0.0.2:4004/service/timer/control"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        driver.shutdown();
    }

    #[test]
    fn jini_and_empty_configs_are_rejected() {
        assert!(matches!(NetDriver::start(IndissConfig::new()), Err(CoreError::BadConfig(_))));
        assert!(matches!(
            NetDriver::start(IndissConfig::new().with_jini()),
            Err(CoreError::BadConfig(_))
        ));
        assert!(matches!(
            NetDriver::start(IndissConfig::new().with_slp().with_slp()),
            Err(CoreError::BadConfig(_))
        ));
    }

    #[test]
    fn admit_reserves_and_refunds_exactly() {
        let slot = AtomicUsize::new(0);
        // Under budget: everything admitted, counter tracks it.
        assert_eq!(admit(&slot, 10, 6), 6);
        assert_eq!(slot.load(Ordering::Relaxed), 6);
        // Partial overflow: only the remaining budget admitted, the
        // refused tail refunded (counter lands exactly on the limit).
        assert_eq!(admit(&slot, 10, 6), 4);
        assert_eq!(slot.load(Ordering::Relaxed), 10);
        // At the limit: nothing admitted, counter unchanged.
        assert_eq!(admit(&slot, 10, 3), 0);
        assert_eq!(slot.load(Ordering::Relaxed), 10);
        // Release makes room again.
        slot.fetch_sub(7, Ordering::Relaxed);
        assert_eq!(admit(&slot, 10, 9), 7);
        assert_eq!(slot.load(Ordering::Relaxed), 10);
    }

    /// Satellite regression: the backpressure budget is per worker
    /// *lane*, shared by every channel the lane serves, and overflow
    /// under batch ingestion drops the batch tail with each dropped
    /// datagram counted exactly once — no double counts, no misses.
    #[test]
    fn backpressure_bounds_the_lane_and_counts_drops_exactly_once() {
        // One worker ⇒ both channels (lanes 0 and 1) share lane slot 0.
        let driver = NetDriver::builder(IndissConfig::slp_upnp()).start().expect("driver");
        assert_eq!(driver.inner.lane_in_flight.len(), 1);
        let slp = Arc::clone(&driver.inner.channels[0]);
        let upnp = Arc::clone(&driver.inner.channels[1]);

        // Stall the only worker so admissions accumulate.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (stalled_tx, stalled_rx) = mpsc::channel::<()>();
        driver.inner.gateway.submit_on_lane(0, move || {
            stalled_tx.send(()).expect("test alive");
            release_rx.recv().expect("released");
        });
        stalled_rx.recv_timeout(Duration::from_secs(2)).expect("worker stalled");

        let batch = |n: usize| -> Vec<Datagram> {
            let addr = SocketAddrV4::new(std::net::Ipv4Addr::LOCALHOST, 9999);
            (0..n).map(|_| Datagram { src: addr, dst: addr, payload: b"junk".to_vec() }).collect()
        };
        // 600 on the SLP channel: all admitted.
        NetDriver::sink_batch(&driver.inner, &slp, batch(600));
        assert_eq!(driver.front_stats().dropped_backpressure, 0);
        // 600 more on the *UPnP* channel: the shared lane budget has
        // only 424 slots left — the 176-datagram tail drops, each
        // counted once.
        NetDriver::sink_batch(&driver.inner, &upnp, batch(600));
        let stats = driver.front_stats();
        assert_eq!(stats.datagrams_received, 1200);
        assert_eq!(stats.dropped_backpressure, 176);
        assert_eq!(driver.inner.lane_in_flight[0].load(Ordering::Relaxed), NetDriver::BACKPRESSURE);

        // Release the worker; every admitted datagram processes and the
        // budget frees completely.
        release_tx.send(()).expect("worker alive");
        driver.join();
        assert_eq!(driver.inner.lane_in_flight[0].load(Ordering::Relaxed), 0);
        let stats = driver.front_stats();
        assert_eq!(stats.dropped_backpressure, 176, "drops are not re-counted");
        // The junk payloads decoded to nothing, once per admitted
        // datagram.
        assert_eq!(stats.decode_rejected, 1024);
        // With the budget free, a fresh batch is admitted in full.
        NetDriver::sink_batch(&driver.inner, &slp, batch(100));
        driver.join();
        let stats = driver.front_stats();
        assert_eq!(stats.datagrams_received, 1300);
        assert_eq!(stats.dropped_backpressure, 176);
        assert_eq!(stats.decode_rejected, 1124);
        driver.shutdown();
    }

    /// On a transport without a batching engine the reactor counters
    /// read as zeros — present, not absent, so dashboards need no
    /// special case.
    #[test]
    fn sim_transport_reports_zero_reactor_stats() {
        let driver = NetDriver::builder(IndissConfig::slp_upnp()).start().expect("driver");
        let stats = driver.front_stats();
        assert_eq!(stats.reactor_wakeups, 0);
        assert_eq!(stats.recv_batch_hist, [0; 4]);
        assert_eq!(stats.batch_sends_flushed, 0);
        assert_eq!(stats.recv_eagain, 0);
        assert_eq!(stats.faults.total(), 0, "no fault layer armed");
        assert_eq!(stats.multicast_join_misses, 0, "sim sockets always join");
        driver.shutdown();
    }

    #[test]
    fn driver_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetDriver>();
        assert_send_sync::<NetFrontStats>();
        assert_send_sync::<StaticDescriptions>();
        assert_send_sync::<HttpDescriptionFetch>();
    }
}
