//! # indiss-core — the INDISS interoperability system
//!
//! The primary contribution of *Bromberg & Issarny, "INDISS: Interoperable
//! Discovery System for Networked Services" (Middleware 2005)*,
//! implemented in full:
//!
//! * [`Monitor`] — passive SDP **detection** from IANA group/port
//!   activity alone (§2.1);
//! * [`Event`] / [`EventStream`] — the semantic event vocabulary of
//!   Table 1, mandatory sets plus protocol-specific extensions (§2.3);
//! * [`Fsm`] — the DFA coordination engine with the paper's
//!   `AddTuple(state, trigger, guard, state', actions)` declaration style;
//! * [`SlpUnit`] / [`UpnpUnit`] / [`JiniUnit`] — parser+composer pairs
//!   that translate whole discovery *processes*, including the UPnP
//!   unit's recursive description fetch with parser switching (§2.4);
//! * the **open protocol API** (§3): the set of SDPs is not closed over
//!   the three built-ins. A [`ProtocolId`] registers any protocol's
//!   detection tag (port + multicast groups) process-wide and flows
//!   through every registry index, cache key and statistic as
//!   [`SdpProtocol::Dynamic`]; an [`SdpDescriptor`] defines a whole
//!   line-oriented SDP as data (parser table + composer templates) that
//!   [`DescriptorUnit`] interprets; the runtime instantiates *all* units
//!   through the object-safe [`UnitFactory`] registry, so custom units
//!   plug in without touching the runtime; and
//!   [`IndissConfig::from_system_sdp`] parses the paper's own textual
//!   `System SDP = { … }` composition language — §3's example verbatim,
//!   plus descriptor blocks for brand-new protocols;
//! * [`ServiceRegistry`] — the single source of truth for discovered
//!   services: canonical [`ServiceRecord`]s indexed by type / origin /
//!   endpoint, a bounded LRU response cache (the §4.3 warm best case),
//!   the multi-bridge suppression window, and the units' bridge
//!   projections — all capacity-bounded, with deterministic
//!   virtual-time TTL expiry;
//! * [`Indiss`] — the deployable runtime: dynamic unit composition
//!   (Fig. 5), registry-backed response caching, and traffic-threshold
//!   self-adaptation between passive and active modes (§4.2, Fig. 6).
//!
//! Interoperability is transparent: native clients and services from
//! `indiss-slp`, `indiss-upnp` and `indiss-jini` are *unmodified* — they
//! simply start seeing services from other middleware.
//!
//! # Concurrency architecture
//!
//! The gateway scales across cores by sharding its state, not by
//! locking it globally:
//!
//! * **Shard ownership.** [`ServiceRegistry`] splits every store —
//!   records, response cache, negative cache (plus its by-type
//!   invalidation index), projections, suppression windows, expiry
//!   wheel and counters — into [`RegistryConfig::shards`] independently
//!   locked shards, routed by canonical-type hash. Everything keyed by
//!   one canonical type lives behind exactly one shard `Mutex`, so the
//!   warm path (cache hit → deliver) for disjoint types never contends.
//!   [`ThreadedGateway`] maps shards onto [`WorkerPool`] lanes
//!   (`shard % workers`), preserving per-type FIFO order while disjoint
//!   types proceed in parallel.
//! * **Lock order.** At most one shard lock is ever held at a time.
//!   Cross-shard views (aggregate counts, full snapshots,
//!   [`ServiceRegistry::stats`]) lock shards one at a time in ascending
//!   index order and merge on read; per-shard [`RegistryStats`] blocks
//!   plus the atomic bridge counters ([`BridgeStats`] is their merged
//!   snapshot) mean no counter is ever shared between locks — and no
//!   update is ever lost. Nothing calls back into the registry while
//!   holding a shard lock, so the system is deadlock-free by
//!   construction.
//! * **`Send + Sync` surface.** [`ServiceRegistry`], [`EventStream`]
//!   (`Arc<[Event]>` buffers), [`Symbol`] (refcounted, GC'd interner),
//!   [`ProtocolId`], [`ServiceRecord`], [`GatewayCore`],
//!   [`ThreadedGateway`] and [`WorkerPool`] are all `Send + Sync`
//!   (compile-asserted in `tests/sharding.rs`). The simulated
//!   [`Indiss`] runtime deliberately is *not*: it is bound to the
//!   deterministic single-threaded [`indiss_net::World`] event loop,
//!   but it drives the same sharded registry and the same warm-path
//!   decision tree ([`WarmDecision`]) the threaded gateway runs, so the
//!   simulation tests pin the semantics the workers execute.
//!
//! ```
//! use indiss_core::{Indiss, IndissConfig};
//! use indiss_net::World;
//! use indiss_slp::{SlpConfig, UserAgent};
//! use indiss_upnp::{ClockDevice, UpnpConfig};
//! use std::time::Duration;
//!
//! let world = World::new(7);
//! let service_node = world.add_node("clock-host");
//! let client_node = world.add_node("slp-client");
//!
//! let _clock = ClockDevice::start(&service_node, UpnpConfig::default())?;
//! let _indiss = Indiss::deploy(&service_node, IndissConfig::slp_upnp())?;
//! let ua = UserAgent::start(&client_node, SlpConfig::default())?;
//!
//! let (_first, done) = ua.find_services(&world, "service:clock", "");
//! world.run_for(Duration::from_secs(2));
//! assert_eq!(done.take().unwrap().urls.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapt;
mod config;
mod config_lang;
mod error;
mod event;
mod fsm;
#[cfg(test)]
mod fuzz_tests;
mod gateway;
mod mesh;
mod monitor;
mod netfront;
mod obs;
mod pool;
mod protocol;
mod registry;
mod runtime;
mod scenario;
mod symbol;
mod tracker;
mod units;

pub use adapt::{AdaptationPolicy, DiscoveryMode};
pub use config::{IndissConfig, IndissConfigBuilder, UnitSpec};
pub use error::{CoreError, CoreResult};
pub use event::{Event, EventKind, EventStream, EventStreamBuilder, ParserKind, SdpProtocol};
pub use fsm::{Action, Fsm, FsmBuilder, Guard, Trigger};
pub use gateway::{GatewayCore, ThreadedGateway, WarmDecision};
pub use mesh::{MeshConfig, MeshNode, MeshStats};
pub use monitor::{DetectionRecord, Monitor};
pub use netfront::{
    DescriptionFetch, HttpDescriptionFetch, NetDriver, NetDriverBuilder, NetFrontStats,
    StaticDescriptions,
};
pub use obs::{
    bucket_floor, bucket_of, chrome_trace_json, render_bridge_stats, render_interner_gauges,
    render_mesh_stats, render_netfront_stats, render_registry_stats, render_tracer,
    validate_chrome_trace, AtomicHistogram, Clock, LatencyHistogram, Phase, SimClock, SpanSnapshot,
    StatsServer, Tracer, WallClock, HIST_BUCKETS, PHASES,
};
pub use pool::WorkerPool;
pub use protocol::ProtocolId;
pub use registry::{
    AdvertDisposition, PeerId, Projection, RecordOrigin, RegistryConfig, RegistryStats,
    RemoteDisposition, ServiceRecord, ServiceRegistry, SweepReport,
};
pub use runtime::{BridgeHandle, BridgeStats, Indiss};
pub use scenario::{
    LinkCut, MemoryBudget, MemorySettlement, MobilityMove, MutationSource, ScenarioRng,
    WorldAsserts, WorldFault, WorldSpec,
};
pub use symbol::Symbol;
pub use units::{
    parse_slp_request, BridgeRequestFn, DescriptorClient, DescriptorService, DescriptorUnit,
    JiniUnit, JiniUnitConfig, ParsedMessage, SdpDescriptor, SdpDescriptorBuilder, SlpUnit,
    SlpUnitConfig, Unit, UnitContext, UnitFactory, UpnpUnit, UpnpUnitConfig,
};
