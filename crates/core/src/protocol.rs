//! Open protocol identities (paper §3).
//!
//! The three built-in SDPs are compiled-in variants of
//! [`crate::SdpProtocol`]; everything else enters the system through a
//! [`ProtocolId`] — an interned protocol name bound, process-wide, to the
//! IANA-style "permanent identification tag" the monitor detects by: a
//! UDP port plus its multicast groups. A `ProtocolId` is a pointer to its
//! (leaked, process-lifetime) registration record underneath, so it is
//! `Copy`, `Send + Sync`, hashes one machine word, reads its port and
//! groups without locking, and flows through every registry index, cache
//! key, suppression key and stats counter exactly like a built-in
//! protocol does.
//!
//! Registration is process-wide (identity must hold across threads,
//! worker shards and instances) and entries live for the process
//! lifetime — unlike general [`Symbol`]s, protocol registrations are a
//! closed, operator-controlled set, so leaking them is the right
//! tradeoff. Re-registering the same name with identical parameters is
//! idempotent — descriptors, the config language and tests can all name
//! the same protocol freely — while a conflicting re-registration is
//! rejected, because two meanings for one detection tag would make the
//! monitor's port-based dispatch ambiguous.

use std::fmt;
use std::net::Ipv4Addr;
use std::sync::{Mutex, OnceLock};

use crate::error::{CoreError, CoreResult};
use crate::event::SdpProtocol;
use crate::symbol::Symbol;

/// The identity of a dynamically registered discovery protocol.
///
/// Obtainable only through [`ProtocolId::register`] (or
/// [`ProtocolId::lookup`] of an already-registered name), so every value
/// in circulation has a port and multicast-group binding behind it.
#[derive(Clone, Copy)]
pub struct ProtocolId(&'static ProtocolInfo);

#[derive(Debug)]
struct ProtocolInfo {
    name: &'static str,
    port: u16,
    groups: &'static [Ipv4Addr],
}

fn table() -> &'static Mutex<Vec<&'static ProtocolInfo>> {
    static TABLE: OnceLock<Mutex<Vec<&'static ProtocolInfo>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

impl ProtocolId {
    /// Registers (or re-finds) the protocol `name`, detected on `port`
    /// within `groups`.
    ///
    /// Idempotent for identical parameters: the same name registered
    /// twice with the same port and groups yields the same id.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadConfig`] when the name or port collides with a
    /// built-in SDP, when the name is already bound to different
    /// parameters, or when the port is already owned by another dynamic
    /// protocol.
    pub fn register(name: &str, port: u16, groups: &[Ipv4Addr]) -> CoreResult<ProtocolId> {
        if name.is_empty() {
            return Err(CoreError::BadConfig("protocol name must not be empty"));
        }
        let lower = name.to_ascii_lowercase();
        if ["slp", "upnp", "jini"].contains(&lower.as_str()) {
            return Err(CoreError::BadConfig("protocol name is reserved by a built-in SDP"));
        }
        if SdpProtocol::ALL.iter().any(|p| p.port() == port) {
            return Err(CoreError::BadConfig("protocol port is owned by a built-in SDP"));
        }
        let mut table = table().lock().expect("protocol table poisoned");
        // Find an existing binding by string scan — the table is tiny
        // (one entry per registered protocol), and nothing is leaked for
        // a registration that fails the checks.
        if let Some(&info) = table.iter().find(|info| info.name == name) {
            if info.port == port && info.groups == groups {
                return Ok(ProtocolId(info));
            }
            return Err(CoreError::BadConfig(
                "protocol name already registered with different parameters",
            ));
        }
        if table.iter().any(|info| info.port == port) {
            return Err(CoreError::BadConfig(
                "protocol port already registered to another dynamic protocol",
            ));
        }
        let info: &'static ProtocolInfo = Box::leak(Box::new(ProtocolInfo {
            name: Box::leak(name.to_owned().into_boxed_str()),
            port,
            groups: Box::leak(groups.to_vec().into_boxed_slice()),
        }));
        table.push(info);
        Ok(ProtocolId(info))
    }

    /// The id registered under `name` (exact match), if any. Probing an
    /// unregistered name allocates nothing permanent, so lookups with
    /// network-derived names cannot grow the table.
    pub fn lookup(name: &str) -> Option<ProtocolId> {
        table()
            .lock()
            .expect("protocol table poisoned")
            .iter()
            .find(|info| info.name == name)
            .map(|&info| ProtocolId(info))
    }

    /// The protocol's registered name, as given at registration.
    pub fn name(self) -> &'static str {
        self.0.name
    }

    /// The protocol name as an interned symbol.
    pub fn symbol(self) -> Symbol {
        Symbol::intern(self.0.name)
    }

    /// The UDP port the monitor detects this protocol on.
    pub fn port(self) -> u16 {
        self.0.port
    }

    /// The multicast groups the monitor joins for this protocol.
    ///
    /// Static, like [`SdpProtocol::multicast_groups`]: the slice is
    /// leaked once at registration so the per-datagram detection path
    /// never allocates (or locks — the id carries its record).
    pub fn multicast_groups(self) -> &'static [Ipv4Addr] {
        self.0.groups
    }

    /// All dynamically registered protocols, sorted by name (a
    /// deterministic debugging/monitoring view).
    pub fn registered() -> Vec<ProtocolId> {
        let mut ids: Vec<ProtocolId> = table()
            .lock()
            .expect("protocol table poisoned")
            .iter()
            .map(|&i| ProtocolId(i))
            .collect();
        ids.sort();
        ids
    }
}

impl PartialEq for ProtocolId {
    fn eq(&self, other: &ProtocolId) -> bool {
        // One leaked record per registered name, so pointer identity is
        // name identity.
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for ProtocolId {}

impl std::hash::Hash for ProtocolId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.0 as *const ProtocolInfo as usize).hash(state);
    }
}

impl PartialOrd for ProtocolId {
    fn partial_cmp(&self, other: &ProtocolId) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ProtocolId {
    /// Orders by name, keeping sorted views deterministic across runs.
    fn cmp(&self, other: &ProtocolId) -> std::cmp::Ordering {
        self.0.name.cmp(other.0.name)
    }
}

impl fmt::Debug for ProtocolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProtocolId({:?})", self.0.name)
    }
}

impl fmt::Display for ProtocolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_for_identical_parameters() {
        let groups = [Ipv4Addr::new(239, 1, 1, 1)];
        let a = ProtocolId::register("idem-proto", 6100, &groups).unwrap();
        let b = ProtocolId::register("idem-proto", 6100, &groups).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.name(), "idem-proto");
        assert_eq!(a.port(), 6100);
        assert_eq!(a.multicast_groups(), &groups);
        assert_eq!(ProtocolId::lookup("idem-proto"), Some(a));
    }

    #[test]
    fn conflicting_reregistration_is_rejected() {
        let groups = [Ipv4Addr::new(239, 1, 1, 2)];
        ProtocolId::register("conflict-proto", 6101, &groups).unwrap();
        assert!(ProtocolId::register("conflict-proto", 6102, &groups).is_err());
        assert!(
            ProtocolId::register("conflict-proto", 6101, &[Ipv4Addr::new(239, 9, 9, 9)]).is_err()
        );
        // A second protocol cannot squat the same detection port either.
        assert!(ProtocolId::register("conflict-proto-2", 6101, &groups).is_err());
    }

    #[test]
    fn builtin_tags_are_protected() {
        let groups = [Ipv4Addr::new(239, 1, 1, 3)];
        for name in ["slp", "SLP", "UPnP", "jini"] {
            assert!(ProtocolId::register(name, 6103, &groups).is_err(), "{name} reserved");
        }
        for port in [427, 1900, 4160] {
            assert!(ProtocolId::register("port-squatter", port, &groups).is_err(), "{port} owned");
        }
        assert!(ProtocolId::register("", 6104, &groups).is_err());
    }

    #[test]
    fn unknown_names_do_not_resolve() {
        assert_eq!(ProtocolId::lookup("never-registered-proto"), None);
    }

    #[test]
    fn registered_view_is_sorted_and_contains_new_entries() {
        let groups = [Ipv4Addr::new(239, 1, 1, 4)];
        let id = ProtocolId::register("aaa-sorted-proto", 6105, &groups).unwrap();
        let all = ProtocolId::registered();
        assert!(all.contains(&id));
        let names: Vec<&str> = all.iter().map(|p| p.name()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn protocol_ids_are_send_sync_copy() {
        fn assert_send_sync_copy<T: Send + Sync + Copy>() {}
        assert_send_sync_copy::<ProtocolId>();
    }
}
