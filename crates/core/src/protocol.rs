//! Open protocol identities (paper §3).
//!
//! The three built-in SDPs are compiled-in variants of
//! [`crate::SdpProtocol`]; everything else enters the system through a
//! [`ProtocolId`] — an interned protocol name bound, process-wide, to the
//! IANA-style "permanent identification tag" the monitor detects by: a
//! UDP port plus its multicast groups. A `ProtocolId` is a [`Symbol`]
//! underneath, so it is `Copy`, hashes one machine word, and flows
//! through every registry index, cache key, suppression key and stats
//! counter exactly like a built-in protocol does.
//!
//! Registration follows the symbol interner's model: the binding table is
//! process-wide (identity must hold across threads and instances) and
//! entries live for the process lifetime. Re-registering the same name
//! with identical parameters is idempotent — descriptors, the config
//! language and tests can all name the same protocol freely — while a
//! conflicting re-registration is rejected, because two meanings for one
//! detection tag would make the monitor's port-based dispatch ambiguous.

use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::{Mutex, OnceLock};

use crate::error::{CoreError, CoreResult};
use crate::event::SdpProtocol;
use crate::symbol::Symbol;

/// The identity of a dynamically registered discovery protocol.
///
/// Obtainable only through [`ProtocolId::register`] (or
/// [`ProtocolId::lookup`] of an already-registered name), so every value
/// in circulation has a port and multicast-group binding behind it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProtocolId(Symbol);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ProtocolInfo {
    port: u16,
    groups: &'static [Ipv4Addr],
}

fn table() -> &'static Mutex<HashMap<Symbol, ProtocolInfo>> {
    static TABLE: OnceLock<Mutex<HashMap<Symbol, ProtocolInfo>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

impl ProtocolId {
    /// Registers (or re-finds) the protocol `name`, detected on `port`
    /// within `groups`.
    ///
    /// Idempotent for identical parameters: the same name registered
    /// twice with the same port and groups yields the same id.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadConfig`] when the name or port collides with a
    /// built-in SDP, when the name is already bound to different
    /// parameters, or when the port is already owned by another dynamic
    /// protocol.
    pub fn register(name: &str, port: u16, groups: &[Ipv4Addr]) -> CoreResult<ProtocolId> {
        if name.is_empty() {
            return Err(CoreError::BadConfig("protocol name must not be empty"));
        }
        let lower = name.to_ascii_lowercase();
        if ["slp", "upnp", "jini"].contains(&lower.as_str()) {
            return Err(CoreError::BadConfig("protocol name is reserved by a built-in SDP"));
        }
        if SdpProtocol::ALL.iter().any(|p| p.port() == port) {
            return Err(CoreError::BadConfig("protocol port is owned by a built-in SDP"));
        }
        let mut table = table().lock().expect("protocol table poisoned");
        // Find an existing binding by string scan — the table is tiny
        // (one entry per registered protocol) and interning the name
        // before all checks pass would leak every *failed* registration
        // into the process-lifetime interner.
        if let Some((&sym, info)) = table.iter().find(|(sym, _)| sym.as_str() == name) {
            if info.port == port && info.groups == groups {
                return Ok(ProtocolId(sym));
            }
            return Err(CoreError::BadConfig(
                "protocol name already registered with different parameters",
            ));
        }
        if table.values().any(|info| info.port == port) {
            return Err(CoreError::BadConfig(
                "protocol port already registered to another dynamic protocol",
            ));
        }
        let sym = Symbol::intern(name);
        let groups: &'static [Ipv4Addr] = Box::leak(groups.to_vec().into_boxed_slice());
        table.insert(sym, ProtocolInfo { port, groups });
        Ok(ProtocolId(sym))
    }

    /// The id registered under `name` (exact match), if any. Probing an
    /// unregistered name interns nothing (the table is scanned by
    /// string), so lookups with network-derived names cannot grow the
    /// interner.
    pub fn lookup(name: &str) -> Option<ProtocolId> {
        table()
            .lock()
            .expect("protocol table poisoned")
            .keys()
            .find(|sym| sym.as_str() == name)
            .map(|&sym| ProtocolId(sym))
    }

    /// The protocol's registered name, as given at registration.
    pub fn name(self) -> &'static str {
        self.0.as_str()
    }

    /// The protocol name as its interned symbol.
    pub fn symbol(self) -> Symbol {
        self.0
    }

    /// The UDP port the monitor detects this protocol on.
    pub fn port(self) -> u16 {
        self.info().port
    }

    /// The multicast groups the monitor joins for this protocol.
    ///
    /// Static, like [`SdpProtocol::multicast_groups`]: the slice is
    /// leaked once at registration so the per-datagram detection path
    /// never allocates.
    pub fn multicast_groups(self) -> &'static [Ipv4Addr] {
        self.info().groups
    }

    /// All dynamically registered protocols, sorted by name (a
    /// deterministic debugging/monitoring view).
    pub fn registered() -> Vec<ProtocolId> {
        let mut ids: Vec<ProtocolId> = table()
            .lock()
            .expect("protocol table poisoned")
            .keys()
            .map(|&sym| ProtocolId(sym))
            .collect();
        ids.sort();
        ids
    }

    fn info(self) -> ProtocolInfo {
        *table()
            .lock()
            .expect("protocol table poisoned")
            .get(&self.0)
            .expect("ProtocolId values only exist for registered protocols")
    }
}

impl fmt::Debug for ProtocolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProtocolId({:?})", self.0)
    }
}

impl fmt::Display for ProtocolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_for_identical_parameters() {
        let groups = [Ipv4Addr::new(239, 1, 1, 1)];
        let a = ProtocolId::register("idem-proto", 6100, &groups).unwrap();
        let b = ProtocolId::register("idem-proto", 6100, &groups).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.name(), "idem-proto");
        assert_eq!(a.port(), 6100);
        assert_eq!(a.multicast_groups(), &groups);
        assert_eq!(ProtocolId::lookup("idem-proto"), Some(a));
    }

    #[test]
    fn conflicting_reregistration_is_rejected() {
        let groups = [Ipv4Addr::new(239, 1, 1, 2)];
        ProtocolId::register("conflict-proto", 6101, &groups).unwrap();
        assert!(ProtocolId::register("conflict-proto", 6102, &groups).is_err());
        assert!(
            ProtocolId::register("conflict-proto", 6101, &[Ipv4Addr::new(239, 9, 9, 9)]).is_err()
        );
        // A second protocol cannot squat the same detection port either.
        assert!(ProtocolId::register("conflict-proto-2", 6101, &groups).is_err());
    }

    #[test]
    fn builtin_tags_are_protected() {
        let groups = [Ipv4Addr::new(239, 1, 1, 3)];
        for name in ["slp", "SLP", "UPnP", "jini"] {
            assert!(ProtocolId::register(name, 6103, &groups).is_err(), "{name} reserved");
        }
        for port in [427, 1900, 4160] {
            assert!(ProtocolId::register("port-squatter", port, &groups).is_err(), "{port} owned");
        }
        assert!(ProtocolId::register("", 6104, &groups).is_err());
    }

    #[test]
    fn unknown_names_do_not_resolve() {
        assert_eq!(ProtocolId::lookup("never-registered-proto"), None);
    }

    #[test]
    fn registered_view_is_sorted_and_contains_new_entries() {
        let groups = [Ipv4Addr::new(239, 1, 1, 4)];
        let id = ProtocolId::register("aaa-sorted-proto", 6105, &groups).unwrap();
        let all = ProtocolId::registered();
        assert!(all.contains(&id));
        let names: Vec<&str> = all.iter().map(|p| p.name()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
