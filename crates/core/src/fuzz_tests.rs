//! Decoder fuzz hardening: deterministic mutation fuzzing over every
//! wire decoder the gateway exposes to untrusted datagrams.
//!
//! A gateway on a hostile LAN parses whatever arrives on its SDP
//! ports; a decoder panic is a remote crash and an attacker-sized
//! allocation is a remote OOM. This module drives every stateless
//! datagram codec — [`crate::units::slp::decode_slp_wire`],
//! [`crate::units::upnp::decode_ssdp_wire`],
//! [`SdpDescriptor::decode_wire`], plus the underlying protocol
//! parsers (`indiss_slp::Message::decode`,
//! `indiss_ssdp::SsdpMessage::parse`, `indiss_jini::JiniPacket::decode`)
//! — with seeded-random inputs: raw byte soup and structured mutations
//! (bit flips, truncations, splices, length-field abuse) of valid
//! encodings.
//!
//! Everything is deterministic: a SplitMix64 stream from a fixed seed,
//! so a failure reproduces by iteration number. `FUZZ_ITERS` scales
//! the run — default 10 000 (the CI smoke bar); the full local bar is
//! one run at 1 000 000.
//!
//! Inputs that once exposed a weakness (or pin a nasty edge) are
//! committed below in [`corpus`] as plain regression tests, so the
//! full fuzz run is not needed to keep the fixes honest.

use std::net::{Ipv4Addr, SocketAddrV4};

use crate::config::IndissConfig;
use crate::mesh::wire as mesh_wire;
use crate::scenario::MutationSource;
use crate::symbol::Symbol;
use crate::units::{slp, upnp, SdpDescriptor};

/// The mesh key the fuzz loop decodes with — matches the key the mesh
/// frame seeds below are signed with, so mutated frames reach the body
/// parsers through the signed path too.
const MESH_KEY: u64 = 0x1D15_5000_0000_4EED;

fn src() -> SocketAddrV4 {
    SocketAddrV4::new(Ipv4Addr::new(10, 66, 0, 99), 41_000)
}

/// Valid encodings of every protocol the gateway decodes — the corpus
/// the mutators start from, so the fuzz walk spends its budget just
/// past the "well-formed" boundary where parser bugs live.
fn seeds() -> Vec<Vec<u8>> {
    use indiss_slp::{Body, FunctionId, Header, Message};
    let slp = |function: FunctionId, body: Body| {
        Message::new(Header::new(function, 0x0F00, "en"), body).encode().expect("encodable seed")
    };
    let mut out = vec![
        slp(
            FunctionId::SrvRqst,
            Body::SrvRqst(indiss_slp::SrvRqst {
                prlist: String::new(),
                service_type: "service:clock".into(),
                scopes: "DEFAULT".into(),
                predicate: "(room=42)".into(),
                spi: String::new(),
            }),
        ),
        slp(
            FunctionId::SrvRply,
            Body::SrvRply(indiss_slp::SrvRply {
                error: 0,
                urls: vec![indiss_slp::UrlEntry::new(
                    "service:clock:soap://10.0.0.2:4004/control",
                    1800,
                )],
            }),
        ),
        slp(
            FunctionId::SrvReg,
            Body::SrvReg(indiss_slp::SrvReg {
                entry: indiss_slp::UrlEntry::new("service:printer://10.0.0.3:515/lpr", 600),
                service_type: "service:printer".into(),
                scopes: "DEFAULT".into(),
                attrs: "(paper=a4),(duplex=true)".into(),
            }),
        ),
        slp(
            FunctionId::SrvTypeRqst,
            Body::SrvTypeRqst(indiss_slp::SrvTypeRqst {
                prlist: String::new(),
                naming_authority: Some("iana".into()),
                scopes: "DEFAULT".into(),
            }),
        ),
        indiss_ssdp::Notify {
            nt: indiss_ssdp::SearchTarget::device_urn("clock", 1),
            nts: indiss_ssdp::NotifySubType::Alive,
            usn: "uuid:FuzzClock::urn:schemas-upnp-org:device:clock:1".into(),
            location: Some("http://10.66.0.2:4004/description.xml".into()),
            server: "fuzz/1.0".into(),
            max_age: 1800,
        }
        .to_bytes(),
        b"M-SEARCH * HTTP/1.1\r\nHOST: 239.255.255.250:1900\r\nMAN: \"ssdp:discover\"\r\n\
          MX: 2\r\nST: urn:schemas-upnp-org:device:clock:1\r\n\r\n"
            .to_vec(),
        b"HTTP/1.1 200 OK\r\nST: urn:schemas-upnp-org:device:clock:1\r\nUSN: uuid:FuzzClock\r\n\
          LOCATION: http://10.66.0.2:4004/d.xml\r\nCACHE-CONTROL: max-age=1800\r\n\r\n"
            .to_vec(),
        b"DNSSD Q PTR _scanner._tcp.local".to_vec(),
        b"DNSSD A PTR _scanner._tcp.local SRV scan://10.0.4.1:6566/sane TTL 120".to_vec(),
        indiss_jini::JiniPacket::Announcement {
            host: "10.66.0.7".into(),
            port: 4160,
            groups: vec!["public".into()],
        }
        .encode(),
        indiss_jini::JiniPacket::Register {
            item: indiss_jini::ServiceItem {
                service_id: 0xF00D,
                service_type: "clock".into(),
                endpoint: "10.66.0.7:4161".into(),
                attributes: vec![("room".into(), "42".into())],
            },
            lease_secs: 300,
        }
        .encode(),
        indiss_jini::JiniPacket::Lookup { service_type: "clock".into() }.encode(),
        mesh_wire::encode_frame(
            &mesh_wire::Frame::Digest { from: 7100, round: 3, versions: vec![0, 4, 17, 9] },
            MESH_KEY,
        ),
        mesh_wire::encode_frame(
            &mesh_wire::Frame::Records {
                from: 7100,
                shard: 1,
                version: 4,
                records: vec![
                    mesh_wire::WireRecord {
                        origin: mesh_wire::WireOrigin::Builtin(crate::event::SdpProtocol::Upnp),
                        canonical_type: "clock".into(),
                        key: "uuid:FuzzClock::urn:clock".into(),
                        url: Some("soap://10.66.0.2:4004/ctl".into()),
                        ttl_secs: Some(1800),
                    },
                    mesh_wire::WireRecord {
                        origin: mesh_wire::WireOrigin::Dynamic {
                            name: "dns-sd".into(),
                            port: 5353,
                        },
                        canonical_type: "printer".into(),
                        key: "printer".into(),
                        url: None,
                        ttl_secs: None,
                    },
                ],
            },
            MESH_KEY,
        ),
        mesh_wire::encode_frame(
            &mesh_wire::Frame::Pull { from: 7101, round: 3, shards: vec![1, 2, 3] },
            MESH_KEY,
        ),
    ];
    // A maximal-ish datagram keeps the mutators honest about length
    // handling without slowing the loop.
    out.push(vec![0x41; 1472]);
    out
}

/// Valid `System SDP = { … }` texts — the corpus the config-language
/// fuzz walk mutates. Includes `World` blocks with every key, numeric
/// extremes at the validation boundaries, and the paper's own example,
/// so splices land just past the "well-formed" edge where parser bugs
/// live.
fn config_seeds() -> Vec<Vec<u8>> {
    [
        "System SDP = {\n\
         Component Monitor = { ScanPort = { 1900; 4160; 427 } }\n\
         Component Unit SLP(port=427);\n\
         Component Unit UPnP(port=1900);\n\
         Component Unit JINI(port=4160); }",
        "System SDP = {\n\
         Peers = { 7100; 7101; 7102 }\n\
         Component Unit SLP(port=427);\n\
         World = {\n\
           Seed = 42; Gateways = 4; Services = 1200;\n\
           DurationSecs = 30; TickMillis = 500;\n\
           ChurnArrivalsPerTick = 40; ChurnDeparturesPerTick = 30;\n\
           AdvertTtlSecs = 8; InjectPerTick = 5; SoakRecords = 1000000;\n\
           Fault = { DropPct = 10; CorruptPct = 5; DelayPct = 5; ReorderPct = 5; DuplicatePct = 3 };\n\
           Cut = { Gateway = 1; FromSecs = 2; ToSecs = 5 };\n\
           Move = { Service = 7; From = 0; To = 2; AtSecs = 10 };\n\
           Assert = { MaxInternedBytes = 262144; MinDeliveryPct = 80;\n\
                      MaxRegistryRecords = 4096; MaxCustody = 64; MaxTrackerEntries = 512 };\n\
         }; }",
        "System SDP = {\n\
         Component Unit DNS-SD(port=5353) = {\n\
           Group  = 224.0.0.251;\n\
           Ttl    = 120;\n\
           Query  = \"DNSSD Q PTR _{type}._tcp.local\";\n\
           Answer = \"DNSSD A PTR _{type}._tcp.local SRV {url} TTL {ttl}\";\n\
         }; }",
        // Numbers parked on the validation boundaries — one bit flip or
        // splice away from every off-by-one.
        "System SDP = { World = { Gateways = 64; Services = 2000000; DurationSecs = 3600;\n\
           TickMillis = 10000; SoakRecords = 10000000; InjectPerTick = 1000;\n\
           Fault = { DropPct = 100 }; }; }",
        "System SDP = { World = { Seed = 18446744073709551615; Gateways = 2; Services = 1;\n\
           DurationSecs = 1; TickMillis = 1; AdvertTtlSecs = 86400; }; }",
    ]
    .iter()
    .map(|text| text.as_bytes().to_vec())
    .collect()
}

/// Every decoder sees every input — including each other's traffic
/// (cross-protocol confusion is exactly what a shared-port hostile LAN
/// serves up). Panics propagate and fail the test; all `Result`s and
/// `ParsedMessage`s are intentionally discarded.
fn decode_all(descriptor: &SdpDescriptor, payload: &[u8]) {
    let at = src();
    let _ = slp::decode_slp_wire(payload, at, true);
    let _ = slp::decode_slp_wire(payload, at, false);
    let _ = upnp::decode_ssdp_wire(payload, at);
    let _ = descriptor.decode_wire(payload, at, true);
    let _ = descriptor.decode_wire(payload, at, false);
    let _ = indiss_slp::Message::decode(payload);
    let _ = indiss_ssdp::SsdpMessage::parse(payload);
    let _ = indiss_jini::JiniPacket::decode(payload);
    // Mesh peer frames: the signed path (signature verification plus
    // body decode) and the unchecked body parsers, which mutated
    // signatures would otherwise shield from coverage.
    let _ = mesh_wire::decode_frame(payload, MESH_KEY);
    let _ = mesh_wire::decode_unchecked(payload);
}

/// The fuzz loop. `FUZZ_ITERS` (default 10 000) scales the walk;
/// failures print the offending iteration and input so they can be
/// frozen into [`corpus`]. Inputs come from
/// [`crate::scenario::MutationSource`] — the same generator the
/// scenario engine's live adversarial injector draws from.
#[test]
fn fuzz_all_wire_decoders() {
    let iters: u64 =
        std::env::var("FUZZ_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(10_000);
    let descriptor = SdpDescriptor::dns_sd();
    // Pre-fuzz live-symbol footprint, for the growth bound below.
    Symbol::collect();
    let baseline = Symbol::interned_bytes();

    let mut source = MutationSource::new(0x1D15_5F00_D5EE_D001, seeds());
    for i in 0..iters {
        let payload = source.next_input();
        let guard = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            decode_all(&descriptor, &payload);
        }));
        if let Err(panic) = guard {
            eprintln!("fuzz crasher at iteration {i}: {payload:02X?}");
            std::panic::resume_unwind(panic);
        }
    }

    // Unbounded-allocation guard: hostile type names are interned
    // transiently, so after a collection the table must be back near
    // its pre-fuzz footprint — not scaled by the iteration count.
    // (Other tests intern concurrently, hence the slack.)
    Symbol::collect();
    let after = Symbol::interned_bytes();
    assert!(
        after < baseline + 64 * 1024,
        "interner retained fuzz garbage: {baseline} -> {after} bytes"
    );
}

/// The scenario/`World` parser as a fuzz entry point: config soup,
/// line splices between valid system texts, and numeric-field abuse
/// (the boundary-value seeds above, mutated). The parser must reject
/// or accept — never panic, and never hand back a `World` that fails
/// its own validation (a parsed world is safe to *run* by contract).
#[test]
fn fuzz_config_language() {
    let iters: u64 = std::env::var("FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(4_000, |n: u64| (n / 2).max(1_000));
    Symbol::collect();
    let baseline = Symbol::interned_bytes();

    let mut source = MutationSource::new(0x1D15_5F00_D5EE_D002, config_seeds());
    for i in 0..iters {
        let payload = source.next_input();
        let text = String::from_utf8_lossy(&payload).into_owned();
        let guard = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Ok(config) = IndissConfig::from_system_sdp(&text) {
                if let Some(world) = config.world {
                    world.validate().expect("parsed worlds are pre-validated");
                }
            }
        }));
        if let Err(panic) = guard {
            eprintln!("config fuzz crasher at iteration {i}: {text:?}");
            std::panic::resume_unwind(panic);
        }
    }

    Symbol::collect();
    let after = Symbol::interned_bytes();
    assert!(
        after < baseline + 64 * 1024,
        "config parsing retained interner garbage: {baseline} -> {after} bytes"
    );
}

/// The committed corpus: inputs that pin decoder hardening decisions.
/// Each runs through every decoder (panic = regression) and then
/// asserts the specific property the input was frozen for.
mod corpus {
    use super::*;

    /// Empty and sub-header datagrams: the first length check.
    #[test]
    fn sub_header_datagrams() {
        let descriptor = SdpDescriptor::dns_sd();
        for payload in [&b""[..], &[0x02][..], &[0x02, 0x01][..], &b"\r\n\r\n"[..]] {
            decode_all(&descriptor, payload);
        }
    }

    /// An SLP header whose declared length field exceeds the datagram:
    /// must reject as truncated, not read past the buffer or
    /// preallocate the declared size.
    #[test]
    fn slp_length_overrun_rejected() {
        let mut wire = indiss_slp::Header::new(indiss_slp::FunctionId::SrvRqst, 7, "en")
            .encode_with_body(&[0u8; 8])
            .expect("encodable");
        wire[2] = 0xFF;
        wire[3] = 0xFF;
        wire[4] = 0xFF; // declared length 16 MiB
        assert!(indiss_slp::Message::decode(&wire).is_err(), "overrun length must not decode");
        decode_all(&SdpDescriptor::dns_sd(), &wire);
    }

    /// A `SrvTypeRqst` declaring a 0xFFFE-byte naming authority in a
    /// tiny datagram: the decode must fail on truncation without
    /// allocating the declared 64 KiB up front (the preallocation is
    /// capped — this input is why).
    #[test]
    fn slp_naming_authority_length_abuse() {
        let mut body = Vec::new();
        body.extend_from_slice(&[0x00, 0x00]); // empty prlist
        body.extend_from_slice(&[0xFF, 0xFE]); // naming authority "length"
        body.extend_from_slice(b"ab"); // ...but only 2 bytes follow
        let wire = indiss_slp::Header::new(indiss_slp::FunctionId::SrvTypeRqst, 9, "en")
            .encode_with_body(&body)
            .expect("encodable");
        assert!(indiss_slp::Message::decode(&wire).is_err(), "truncated authority must fail");
        decode_all(&SdpDescriptor::dns_sd(), &wire);
    }

    /// A Jini `LookupReply` claiming 65 535 items with no bodies: the
    /// reader's capped preallocation plus truncation error, not a
    /// 65 535-element reserve.
    #[test]
    fn jini_item_count_abuse() {
        let mut wire = indiss_jini::JiniPacket::LookupReply { items: vec![] }.encode();
        let n = wire.len();
        wire[n - 2] = 0xFF;
        wire[n - 1] = 0xFF;
        assert!(indiss_jini::JiniPacket::decode(&wire).is_err(), "item-count lie must fail");
        decode_all(&SdpDescriptor::dns_sd(), &wire);
    }

    /// Non-UTF-8 bytes inside SSDP headers and descriptor lines: the
    /// text-shaped decoders must reject or ignore, never panic on a
    /// char boundary.
    #[test]
    fn non_utf8_text_frames() {
        let descriptor = SdpDescriptor::dns_sd();
        let mut ssdp = b"NOTIFY * HTTP/1.1\r\nNT: ".to_vec();
        ssdp.extend_from_slice(&[0xC3, 0x28, 0xFF, 0xFE]); // invalid UTF-8
        ssdp.extend_from_slice(b"\r\nNTS: ssdp:alive\r\n\r\n");
        decode_all(&descriptor, &ssdp);

        let mut dnssd = b"DNSSD Q PTR ".to_vec();
        dnssd.extend_from_slice(&[0xF0, 0x9F, 0x00, 0x80]);
        decode_all(&descriptor, &dnssd);
    }

    /// A descriptor line of maximal datagram size with no terminator,
    /// and one that is all newlines: line-splitting edge cases.
    #[test]
    fn descriptor_line_extremes() {
        let descriptor = SdpDescriptor::dns_sd();
        decode_all(&descriptor, &[b'A'; 1472]);
        decode_all(&descriptor, &[b'\n'; 64]);
        let mut long_query = b"DNSSD Q PTR ".to_vec();
        long_query.extend(std::iter::repeat_n(b'x', 1400));
        decode_all(&descriptor, &long_query);
    }

    /// A mesh Records frame claiming the maximum record count with no
    /// bytes behind it: the count floor must refuse before any
    /// preallocation, through both the signed and unchecked paths.
    #[test]
    fn mesh_record_count_abuse() {
        // Body: from(2) + shard(2) + version(8) + count(2) = 14 bytes,
        // count says 512 records follow; none do.
        let mut wire = b"IMSH".to_vec();
        wire.push(1); // wire version
        wire.push(3); // Records
        wire.extend_from_slice(&[0u8; 8]); // bogus signature
        wire.extend_from_slice(&7100u16.to_le_bytes());
        wire.extend_from_slice(&0u16.to_le_bytes());
        wire.extend_from_slice(&1u64.to_le_bytes());
        wire.extend_from_slice(&512u16.to_le_bytes());
        assert!(mesh_wire::decode_unchecked(&wire).is_err(), "count lie must not decode");
        decode_all(&SdpDescriptor::dns_sd(), &wire);
    }

    /// A signed mesh frame truncated at every length, and with every
    /// byte corrupted one at a time: decode must reject (the signature
    /// catches the flips) and never panic.
    #[test]
    fn mesh_frame_truncation_and_flips() {
        let descriptor = SdpDescriptor::dns_sd();
        let good = mesh_wire::encode_frame(
            &mesh_wire::Frame::Digest { from: 7100, round: 1, versions: vec![2, 2] },
            MESH_KEY,
        );
        for len in 0..good.len() {
            assert!(mesh_wire::decode_frame(&good[..len], MESH_KEY).is_err());
            decode_all(&descriptor, &good[..len]);
        }
        for at in 0..good.len() {
            let mut bad = good.clone();
            bad[at] ^= 0xFF;
            assert!(mesh_wire::decode_frame(&bad, MESH_KEY).is_err());
            decode_all(&descriptor, &bad);
        }
    }

    /// Non-UTF-8 bytes inside a mesh record string: rejected as
    /// `BadString`, never sliced on a char boundary.
    #[test]
    fn mesh_non_utf8_record_strings() {
        // Relay body: from(2) + count(2) + one record whose type string
        // claims 4 bytes of invalid UTF-8.
        let mut wire = b"IMSH".to_vec();
        wire.push(1);
        wire.push(5); // Relay
        wire.extend_from_slice(&[0u8; 8]);
        wire.extend_from_slice(&7100u16.to_le_bytes());
        wire.extend_from_slice(&1u16.to_le_bytes());
        wire.push(0); // origin: SLP
        wire.extend_from_slice(&4u16.to_le_bytes());
        wire.extend_from_slice(&[0xC3, 0x28, 0xFF, 0xFE]);
        assert!(mesh_wire::decode_unchecked(&wire).is_err(), "invalid UTF-8 must not decode");
        decode_all(&SdpDescriptor::dns_sd(), &wire);
    }

    /// Config-language inputs the fuzz walk is prone to producing:
    /// each must come back as a clean `Err`, never a panic. The
    /// numeric-abuse lines pin the lexer's checked `u64` parse, the
    /// `u32` narrowing in the `World` parser, and `validate()` as the
    /// last line of defence for in-range-but-absurd values.
    #[test]
    fn config_numeric_field_abuse() {
        for text in [
            // Lexer-level overflow: too many digits for u64.
            "System SDP = { World = { Seed = 99999999999999999999999999 }; }",
            // Field-level overflow: fits u64, not u32.
            "System SDP = { World = { Gateways = 4294967296 }; }",
            "System SDP = { World = { TickMillis = 18446744073709551615 }; }",
            // In-range but absurd: validate() must refuse to hand these
            // to the engine.
            "System SDP = { World = { Gateways = 63000 }; }",
            "System SDP = { World = { SoakRecords = 18446744073709551615 }; }",
            "System SDP = { World = { InjectPerTick = 1000000 }; }",
            // A port that is also a World field width.
            "System SDP = { Peers = { 4294967295 } }",
        ] {
            assert!(
                IndissConfig::from_system_sdp(text).is_err(),
                "numeric abuse must be rejected: {text}"
            );
        }
    }

    /// Structural config soup: splices, truncations and repetitions of
    /// valid blocks. Accept or reject — never panic, and any accepted
    /// `World` is validated.
    #[test]
    fn config_soup_and_splices() {
        for text in [
            // A World block truncated mid-key, mid-number, mid-block.
            "System SDP = { World = { Ga",
            "System SDP = { World = { Gateways = 4",
            "System SDP = { World = { Fault = { DropPct = ",
            // The Monitor block spliced into a World block.
            "System SDP = { World = { ScanPort = { 1900; 427 } }; }",
            // A World block where a unit should be.
            "System SDP = { Component Unit World(port=1); }",
            // Two World blocks: last one wins, no panic.
            "System SDP = { World = { Seed = 1 }; World = { Seed = 2 }; \
             Component Unit SLP(port=427); }",
            // Unterminated string from a spliced descriptor.
            "System SDP = { Component Unit X(port=6400) = { Query = \"LP? {type}",
            // Deep brace nesting with no content.
            "System SDP = { World = { { { { { } } } } }; }",
        ] {
            if let Ok(config) = IndissConfig::from_system_sdp(text) {
                if let Some(world) = config.world {
                    world.validate().expect("accepted worlds validate");
                }
            }
        }
        // The two-World splice specifically: last block wins.
        let config = IndissConfig::from_system_sdp(
            "System SDP = { World = { Seed = 1 }; World = { Seed = 2 }; \
             Component Unit SLP(port=427); }",
        )
        .expect("repeated World blocks parse");
        assert_eq!(config.world.expect("world kept").seed, 2);
    }

    /// An SLP URL entry whose lifetime/URL-length fields lie about the
    /// remaining bytes (the classic SrvRply parse trap).
    #[test]
    fn slp_url_entry_length_lie() {
        let reply = indiss_slp::Message::new(
            indiss_slp::Header::new(indiss_slp::FunctionId::SrvRply, 11, "en"),
            indiss_slp::Body::SrvRply(indiss_slp::SrvRply {
                error: 0,
                urls: vec![indiss_slp::UrlEntry::new("service:clock://10.0.0.2:4004", 1800)],
            }),
        )
        .encode()
        .expect("encodable");
        // Flip every possible two-byte window to 0xFFFF, one at a time:
        // whatever field that hits (count, lifetime, URL length), decode
        // must return, not panic.
        for at in 0..reply.len() - 1 {
            let mut wire = reply.clone();
            wire[at] = 0xFF;
            wire[at + 1] = 0xFF;
            let _ = indiss_slp::Message::decode(&wire);
            decode_all(&SdpDescriptor::dns_sd(), &wire);
        }
    }
}
