//! INDISS core errors.

use std::fmt;

/// Errors from the INDISS runtime and units.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A unit was asked to parse a message that is not its protocol.
    NotMyProtocol,
    /// A message was syntactically valid but not translatable (e.g. a
    /// fragment the unit's FSM has no transition for).
    NotTranslatable(&'static str),
    /// The event stream violated framing (missing `SDP_C_START`/`STOP`).
    BadEventFraming,
    /// A composer was missing events it cannot default (e.g. no
    /// `SDP_SERVICE_TYPE` in a request stream).
    MissingEvent(&'static str),
    /// Underlying network failure.
    Net(indiss_net::NetError),
    /// The configuration is invalid (e.g. no units).
    BadConfig(&'static str),
    /// The textual `System SDP = { … }` configuration failed to parse.
    ConfigSyntax(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotMyProtocol => {
                write!(f, "message does not belong to this unit's protocol")
            }
            CoreError::NotTranslatable(why) => write!(f, "message not translatable: {why}"),
            CoreError::BadEventFraming => {
                write!(f, "event stream not framed by SDP_C_START/SDP_C_STOP")
            }
            CoreError::MissingEvent(which) => write!(f, "required event missing: {which}"),
            CoreError::Net(e) => write!(f, "network error: {e}"),
            CoreError::BadConfig(why) => write!(f, "invalid configuration: {why}"),
            CoreError::ConfigSyntax(why) => write!(f, "system config syntax error: {why}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<indiss_net::NetError> for CoreError {
    fn from(e: indiss_net::NetError) -> Self {
        CoreError::Net(e)
    }
}

/// Convenience alias for INDISS results.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        for e in [
            CoreError::NotMyProtocol,
            CoreError::NotTranslatable("x"),
            CoreError::BadEventFraming,
            CoreError::MissingEvent("SDP_SERVICE_TYPE"),
            CoreError::BadConfig("no units"),
            CoreError::ConfigSyntax("line 3: expected '='".to_owned()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn net_error_chains_source() {
        use std::error::Error;
        let e = CoreError::from(indiss_net::NetError::SocketClosed);
        assert!(e.source().is_some());
    }
}
