//! INDISS system configuration (paper §3).
//!
//! The paper specifies an instance as a set of units plus the monitor's
//! scan ports:
//!
//! ```text
//! System SDP = {
//!   Component Monitor = { ScanPort = { 1900; 4160; 427 } }
//!   Component Unit SLP(port=427);
//!   Component Unit UPnP(port=1900);
//!   Component Unit JINI(port=4160); }
//! ```
//!
//! [`IndissConfig`] is the Rust equivalent: declaring a unit implies
//! monitoring its IANA port. Composition happens dynamically at run time
//! (Fig. 5) — the config only says what *can* be instantiated.

use std::fmt;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::time::Duration;

use indiss_net::TransportKind;

use crate::adapt::AdaptationPolicy;
use crate::error::CoreResult;
use crate::event::SdpProtocol;
use crate::mesh::MeshConfig;
use crate::registry::RegistryConfig;
use crate::units::{
    DescriptorFactory, JiniFactory, JiniUnitConfig, SdpDescriptor, SlpFactory, SlpUnitConfig,
    UnitFactory, UpnpFactory, UpnpUnitConfig,
};

/// Specification of one unit to embed.
///
/// The set is open: beyond the three built-in kinds, a protocol enters
/// the system declaratively through [`UnitSpec::Descriptor`] or — for
/// hand-written units the workspace does not know about — through
/// [`UnitSpec::Custom`] with any [`UnitFactory`].
#[derive(Clone)]
#[non_exhaustive]
pub enum UnitSpec {
    /// An SLP unit.
    Slp(SlpUnitConfig),
    /// A UPnP unit.
    Upnp(UpnpUnitConfig),
    /// A Jini unit.
    Jini(JiniUnitConfig),
    /// A descriptor-driven unit: the protocol is defined by data
    /// (paper §3), not a `Unit` implementation.
    Descriptor(SdpDescriptor),
    /// An arbitrary unit factory supplied by the embedder.
    Custom(Rc<dyn UnitFactory>),
}

impl UnitSpec {
    /// The protocol this spec instantiates.
    pub fn protocol(&self) -> SdpProtocol {
        match self {
            UnitSpec::Slp(_) => SdpProtocol::Slp,
            UnitSpec::Upnp(_) => SdpProtocol::Upnp,
            UnitSpec::Jini(_) => SdpProtocol::Jini,
            UnitSpec::Descriptor(d) => d.protocol(),
            UnitSpec::Custom(f) => f.protocol(),
        }
    }

    /// The factory the runtime instantiates this spec through — the
    /// single dispatch point that replaced the runtime's closed `match`
    /// over unit kinds.
    pub fn factory(&self) -> Rc<dyn UnitFactory> {
        match self {
            UnitSpec::Slp(cfg) => Rc::new(SlpFactory(cfg.clone())),
            UnitSpec::Upnp(cfg) => Rc::new(UpnpFactory(cfg.clone())),
            UnitSpec::Jini(cfg) => Rc::new(JiniFactory(cfg.clone())),
            UnitSpec::Descriptor(d) => Rc::new(DescriptorFactory(d.clone())),
            UnitSpec::Custom(f) => Rc::clone(f),
        }
    }
}

impl fmt::Debug for UnitSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitSpec::Slp(cfg) => f.debug_tuple("Slp").field(cfg).finish(),
            UnitSpec::Upnp(cfg) => f.debug_tuple("Upnp").field(cfg).finish(),
            UnitSpec::Jini(cfg) => f.debug_tuple("Jini").field(cfg).finish(),
            UnitSpec::Descriptor(d) => f.debug_tuple("Descriptor").field(d).finish(),
            UnitSpec::Custom(factory) => {
                f.debug_tuple("Custom").field(&factory.protocol()).finish()
            }
        }
    }
}

/// Configuration of an INDISS instance.
#[derive(Debug, Clone)]
pub struct IndissConfig {
    /// Units to embed (each implies monitoring its protocol).
    pub units: Vec<UnitSpec>,
    /// Whether bridged responses are cached. Caching yields the paper's
    /// §4.3 best case (a UPnP client answered in ~0.1 ms from knowledge
    /// INDISS already holds).
    pub enable_cache: bool,
    /// How long cached responses stay valid.
    pub cache_ttl: Duration,
    /// Traffic-threshold adaptation (§4.2, Fig. 6); `None` disables the
    /// active mode.
    pub adaptation: Option<AdaptationPolicy>,
    /// Whether units are instantiated only once the monitor detects their
    /// protocol (the paper's dynamic composition, Fig. 5) or eagerly at
    /// deploy time.
    pub lazy_units: bool,
    /// After bridging a request for a service type, further requests for
    /// the same type are ignored for this long (unless served from
    /// cache). This breaks translation ping-pong between multiple INDISS
    /// instances on one network: each instance refuses to re-bridge the
    /// storm of requests the others synthesize.
    pub suppress_window: Duration,
    /// Maximum number of service records the registry holds; the least
    /// recently updated record is evicted beyond this bound.
    pub registry_capacity: usize,
    /// Maximum number of cached responses (LRU-evicted beyond this).
    pub cache_capacity: usize,
    /// TTL applied to recorded adverts that carry no `SDP_RES_TTL` of
    /// their own; `None` keeps them until evicted by capacity.
    pub advert_ttl: Option<Duration>,
    /// How long a "nothing found" outcome is remembered per canonical
    /// type (the registry's negative cache): request storms for absent
    /// types are answered from this memory instead of fanning out to
    /// every unit. Kept short — arriving adverts also invalidate entries
    /// eagerly, so a freshly appeared service is visible at once.
    pub negative_ttl: Duration,
    /// Number of independently locked registry shards, routed by
    /// canonical-type hash. One shard (the default) preserves global LRU
    /// semantics exactly — what the deterministic simulation pins down;
    /// more shards let worker threads serve disjoint types in parallel.
    pub shards: usize,
    /// Worker threads a [`crate::ThreadedGateway`] built from this
    /// config runs. The simulated [`crate::Indiss`] runtime ignores it
    /// (the virtual-time event loop is single-threaded by design).
    pub workers: usize,
    /// Which transport a [`crate::NetDriver`] built from this config
    /// serves: the deterministic in-memory bus (the default) or real
    /// UDP sockets. The simulated [`crate::Indiss`] runtime ignores it
    /// (it runs on the virtual-time [`indiss_net::World`]).
    pub transport: TransportKind,
    /// Interface the UDP transport binds — loopback by default, so CI
    /// can run a live gateway without touching the LAN.
    pub bind: Ipv4Addr,
    /// Offset added to every protocol port by the UDP transport
    /// (SLP 427 → 427+offset, …): lets unprivileged processes bind the
    /// privileged discovery ports and parallel tests avoid colliding.
    /// Zero (the default) serves the real IANA ports.
    pub port_offset: u16,
    /// How long a bridged cold-path query waits for the first unit
    /// answer before the runtime retries the fan-out. Each retry
    /// doubles the wait (capped at 8× the initial timeout), with a
    /// small deterministic jitter so synchronized gateways do not
    /// retransmit in lockstep.
    pub query_timeout: Duration,
    /// How many times an unanswered fan-out is retried before the
    /// runtime degrades gracefully (a stale registry answer when one
    /// exists, a negative reply otherwise). Zero disables retries:
    /// the deadline then only bounds how long the requester waits.
    pub query_retries: u32,
    /// This gateway's own mesh peer port. `None` (the default) leaves
    /// the federated mesh plane off; `Some(port)` makes
    /// [`IndissConfig::mesh_config`] yield a [`MeshConfig`] a
    /// [`crate::MeshNode`] can be started from — and makes the config
    /// deployable only through `Indiss::deploy_mesh`, which does that
    /// wiring (plain `Indiss::deploy` refuses it rather than leaving
    /// the federation silently inert).
    pub peer_port: Option<u16>,
    /// Peer gateways (by their mesh peer ports) to gossip with.
    pub peers: Vec<u16>,
    /// Virtual time between mesh gossip rounds.
    pub gossip_interval: Duration,
    /// Most adverts held in store-and-forward custody per down peer.
    pub custody_capacity: usize,
    /// A declarative hostile world parsed from a `World = { … }` block
    /// in the §3 config text, if one was declared. The deployable
    /// runtime ignores it; the scenario engine
    /// (`crates/bench/src/worlds.rs`) compiles it into a seeded
    /// deterministic run. Always pre-validated by
    /// [`crate::WorldSpec::validate`].
    pub world: Option<crate::scenario::WorldSpec>,
    /// Whether the runtimes record pipeline trace spans and latency
    /// histograms ([`crate::Tracer`]). Off by default: a disabled
    /// tracer costs one branch per record site.
    pub trace: bool,
    /// Capacity of each per-lane span ring when tracing is on. The ring
    /// overwrites its oldest span (counted in `spans_dropped`) rather
    /// than growing or blocking.
    pub trace_capacity: usize,
    /// Port for the scrapeable plaintext stats endpoint
    /// ([`crate::StatsServer`], `GET /metrics` on loopback). `None`
    /// (the default) serves no endpoint; `Some(0)` binds an ephemeral
    /// port (tests read the real one from `NetDriver::stats_addr`).
    pub stats_port: Option<u16>,
}

impl IndissConfig {
    /// An empty configuration (add units with the builder methods).
    pub fn new() -> Self {
        IndissConfig {
            units: Vec::new(),
            enable_cache: true,
            cache_ttl: Duration::from_secs(60),
            adaptation: None,
            lazy_units: false,
            suppress_window: Duration::from_millis(600),
            registry_capacity: 4096,
            cache_capacity: 256,
            advert_ttl: Some(Duration::from_secs(1800)),
            negative_ttl: Duration::from_secs(2),
            shards: 1,
            workers: 1,
            transport: TransportKind::Sim,
            bind: Ipv4Addr::LOCALHOST,
            port_offset: 0,
            query_timeout: Duration::from_millis(500),
            query_retries: 2,
            peer_port: None,
            peers: Vec::new(),
            gossip_interval: MeshConfig::default().gossip_interval,
            custody_capacity: MeshConfig::default().custody_capacity,
            world: None,
            trace: false,
            trace_capacity: 4096,
            stats_port: None,
        }
    }

    /// Starts a fluent builder over an empty configuration.
    pub fn builder() -> IndissConfigBuilder {
        IndissConfigBuilder { config: IndissConfig::new() }
    }

    /// Parses the paper's textual `System SDP = { … }` configuration
    /// language (§3) into a config, descriptor units included. The §3
    /// example parses verbatim; a non-built-in unit takes a `= { Group =
    /// …; Query = "…"; Answer = "…"; … }` descriptor block.
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::ConfigSyntax`] for malformed input,
    /// [`crate::CoreError::BadConfig`] for well-formed input that names
    /// an impossible system (e.g. a built-in unit on the wrong port).
    pub fn from_system_sdp(text: &str) -> CoreResult<IndissConfig> {
        crate::config_lang::parse_system_sdp(text)
    }

    /// Adds an SLP unit with defaults.
    pub fn with_slp(mut self) -> Self {
        self.units.push(UnitSpec::Slp(SlpUnitConfig::default()));
        self
    }

    /// Adds a UPnP unit with defaults.
    pub fn with_upnp(mut self) -> Self {
        self.units.push(UnitSpec::Upnp(UpnpUnitConfig::default()));
        self
    }

    /// Adds a Jini unit with defaults.
    pub fn with_jini(mut self) -> Self {
        self.units.push(UnitSpec::Jini(JiniUnitConfig::default()));
        self
    }

    /// Adds a descriptor-driven unit (paper §3: a new SDP from data).
    pub fn with_descriptor(mut self, descriptor: SdpDescriptor) -> Self {
        self.units.push(UnitSpec::Descriptor(descriptor));
        self
    }

    /// Adds a unit from an explicit spec.
    pub fn with_unit(mut self, spec: UnitSpec) -> Self {
        self.units.push(spec);
        self
    }

    /// Disables the response cache.
    pub fn without_cache(mut self) -> Self {
        self.enable_cache = false;
        self
    }

    /// Enables traffic-threshold adaptation.
    pub fn with_adaptation(mut self, policy: AdaptationPolicy) -> Self {
        self.adaptation = Some(policy);
        self
    }

    /// Instantiates units lazily, on first detection of their protocol.
    pub fn with_lazy_units(mut self) -> Self {
        self.lazy_units = true;
        self
    }

    /// Bounds the registry's service-record store.
    pub fn with_registry_capacity(mut self, records: usize) -> Self {
        self.registry_capacity = records;
        self
    }

    /// Bounds the registry's response cache.
    pub fn with_cache_capacity(mut self, responses: usize) -> Self {
        self.cache_capacity = responses;
        self
    }

    /// Sets the fallback TTL for adverts without their own `SDP_RES_TTL`.
    pub fn with_advert_ttl(mut self, ttl: Duration) -> Self {
        self.advert_ttl = Some(ttl);
        self
    }

    /// Sets the cache entry TTL.
    pub fn with_cache_ttl(mut self, ttl: Duration) -> Self {
        self.cache_ttl = ttl;
        self
    }

    /// Sets the negative-cache ("nothing found") TTL.
    pub fn with_negative_ttl(mut self, ttl: Duration) -> Self {
        self.negative_ttl = ttl;
        self
    }

    /// Splits the registry into `shards` independently locked shards
    /// (canonical-type-hash routed).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the worker-thread count for [`crate::ThreadedGateway`]s
    /// built from this config.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Selects the transport a [`crate::NetDriver`] serves.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the interface the UDP transport binds.
    pub fn with_bind(mut self, bind: Ipv4Addr) -> Self {
        self.bind = bind;
        self
    }

    /// Shifts every protocol port served by the UDP transport.
    pub fn with_port_offset(mut self, offset: u16) -> Self {
        self.port_offset = offset;
        self
    }

    /// Sets the cold-path query timeout (the per-attempt deadline the
    /// retry state machine arms).
    pub fn with_query_timeout(mut self, timeout: Duration) -> Self {
        self.query_timeout = timeout;
        self
    }

    /// Sets how many times an unanswered fan-out is retried before
    /// degrading.
    pub fn with_query_retries(mut self, retries: u32) -> Self {
        self.query_retries = retries;
        self
    }

    /// Joins the federated mesh: this gateway binds `port` as its peer
    /// identity and gossips with `peers`. Deploy the result through
    /// `Indiss::deploy_mesh` with the transport the gateways share.
    pub fn with_mesh(mut self, port: u16, peers: impl Into<Vec<u16>>) -> Self {
        self.peer_port = Some(port);
        self.peers = peers.into();
        self
    }

    /// Sets the virtual time between mesh gossip rounds.
    pub fn with_gossip_interval(mut self, interval: Duration) -> Self {
        self.gossip_interval = interval;
        self
    }

    /// Bounds the per-down-peer store-and-forward custody queue.
    pub fn with_custody_capacity(mut self, adverts: usize) -> Self {
        self.custody_capacity = adverts;
        self
    }

    /// Turns on pipeline trace spans and latency histograms.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Sets the per-lane span-ring capacity (implies nothing about
    /// enablement; pair with [`IndissConfig::with_trace`]).
    pub fn with_trace_capacity(mut self, spans: usize) -> Self {
        self.trace_capacity = spans;
        self
    }

    /// Serves the plaintext stats endpoint on `127.0.0.1:port`
    /// (0 = ephemeral).
    pub fn with_stats_port(mut self, port: u16) -> Self {
        self.stats_port = Some(port);
        self
    }

    /// The mesh plane this configuration implies: `None` until
    /// [`IndissConfig::with_mesh`] (or a config-language `Peers` block)
    /// named a peer port.
    pub fn mesh_config(&self) -> Option<MeshConfig> {
        let port = self.peer_port?;
        Some(MeshConfig {
            port,
            peers: self.peers.clone(),
            gossip_interval: self.gossip_interval,
            custody_capacity: self.custody_capacity,
            ..MeshConfig::default()
        })
    }

    /// The registry bounds this configuration implies.
    pub fn registry_config(&self) -> RegistryConfig {
        RegistryConfig {
            advert_capacity: self.registry_capacity,
            cache_capacity: self.cache_capacity,
            cache_ttl: self.cache_ttl,
            default_advert_ttl: self.advert_ttl,
            negative_ttl: self.negative_ttl,
            shards: self.shards,
        }
    }

    /// The paper's prototype configuration: a UPnP unit and an SLP unit.
    /// A thin wrapper over the builder.
    pub fn slp_upnp() -> Self {
        IndissConfig::builder().slp().upnp().build()
    }

    /// The Fig. 5 configuration: SLP + UPnP + Jini. A thin wrapper over
    /// the builder.
    pub fn slp_upnp_jini() -> Self {
        IndissConfig::builder().slp().upnp().jini().build()
    }

    /// Alias for [`IndissConfig::slp_upnp_jini`], kept for the evaluation
    /// harness's vocabulary.
    pub fn all_protocols() -> Self {
        IndissConfig::slp_upnp_jini()
    }

    /// Protocols covered by the configured units.
    pub fn protocols(&self) -> Vec<SdpProtocol> {
        self.units.iter().map(UnitSpec::protocol).collect()
    }
}

impl Default for IndissConfig {
    /// Defaults to the paper's prototype (SLP + UPnP).
    fn default() -> Self {
        IndissConfig::slp_upnp()
    }
}

/// Fluent builder over [`IndissConfig`] — the §3 composition surface:
/// `IndissConfig::builder().slp().descriptor(dns_sd).lazy().build()`.
///
/// The named constructors ([`IndissConfig::slp_upnp`] and friends) are
/// thin wrappers over this builder.
#[derive(Debug, Clone)]
pub struct IndissConfigBuilder {
    config: IndissConfig,
}

impl IndissConfigBuilder {
    /// Adds a unit from an explicit spec.
    pub fn unit(mut self, spec: UnitSpec) -> Self {
        self.config.units.push(spec);
        self
    }

    /// Adds an SLP unit with defaults.
    pub fn slp(self) -> Self {
        self.unit(UnitSpec::Slp(SlpUnitConfig::default()))
    }

    /// Adds a UPnP unit with defaults.
    pub fn upnp(self) -> Self {
        self.unit(UnitSpec::Upnp(UpnpUnitConfig::default()))
    }

    /// Adds a Jini unit with defaults.
    pub fn jini(self) -> Self {
        self.unit(UnitSpec::Jini(JiniUnitConfig::default()))
    }

    /// Adds a descriptor-driven unit.
    pub fn descriptor(self, descriptor: SdpDescriptor) -> Self {
        self.unit(UnitSpec::Descriptor(descriptor))
    }

    /// Adds a unit built by an arbitrary [`UnitFactory`].
    pub fn custom(self, factory: Rc<dyn UnitFactory>) -> Self {
        self.unit(UnitSpec::Custom(factory))
    }

    /// Instantiates units lazily, on first detection of their protocol
    /// (Fig. 5's dynamic composition).
    pub fn lazy(mut self) -> Self {
        self.config.lazy_units = true;
        self
    }

    /// Enables or disables the response cache.
    pub fn cache(mut self, enabled: bool) -> Self {
        self.config.enable_cache = enabled;
        self
    }

    /// Enables traffic-threshold adaptation.
    pub fn adaptation(mut self, policy: AdaptationPolicy) -> Self {
        self.config.adaptation = Some(policy);
        self
    }

    /// Sets the multi-bridge suppression window.
    pub fn suppress_window(mut self, window: Duration) -> Self {
        self.config.suppress_window = window;
        self
    }

    /// Bounds the registry's service-record store.
    pub fn registry_capacity(mut self, records: usize) -> Self {
        self.config.registry_capacity = records;
        self
    }

    /// Bounds the registry's response cache.
    pub fn cache_capacity(mut self, responses: usize) -> Self {
        self.config.cache_capacity = responses;
        self
    }

    /// Sets the cache entry TTL.
    pub fn cache_ttl(mut self, ttl: Duration) -> Self {
        self.config.cache_ttl = ttl;
        self
    }

    /// Sets the fallback TTL for adverts without their own `SDP_RES_TTL`.
    pub fn advert_ttl(mut self, ttl: Duration) -> Self {
        self.config.advert_ttl = Some(ttl);
        self
    }

    /// Sets the negative-cache ("nothing found") TTL.
    pub fn negative_ttl(mut self, ttl: Duration) -> Self {
        self.config.negative_ttl = ttl;
        self
    }

    /// Splits the registry into `shards` independently locked shards.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards.max(1);
        self
    }

    /// Sets the worker-thread count for [`crate::ThreadedGateway`]s
    /// built from this config.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Selects the transport a [`crate::NetDriver`] serves.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.config.transport = transport;
        self
    }

    /// Sets the interface the UDP transport binds.
    pub fn bind(mut self, bind: Ipv4Addr) -> Self {
        self.config.bind = bind;
        self
    }

    /// Shifts every protocol port served by the UDP transport.
    pub fn port_offset(mut self, offset: u16) -> Self {
        self.config.port_offset = offset;
        self
    }

    /// Sets the cold-path query timeout (the per-attempt deadline the
    /// retry state machine arms).
    pub fn query_timeout(mut self, timeout: Duration) -> Self {
        self.config.query_timeout = timeout;
        self
    }

    /// Sets how many times an unanswered fan-out is retried before
    /// degrading.
    pub fn query_retries(mut self, retries: u32) -> Self {
        self.config.query_retries = retries;
        self
    }

    /// Joins the federated mesh (see [`IndissConfig::with_mesh`]).
    pub fn mesh(mut self, port: u16, peers: impl Into<Vec<u16>>) -> Self {
        self.config.peer_port = Some(port);
        self.config.peers = peers.into();
        self
    }

    /// Sets the virtual time between mesh gossip rounds.
    pub fn gossip_interval(mut self, interval: Duration) -> Self {
        self.config.gossip_interval = interval;
        self
    }

    /// Bounds the per-down-peer store-and-forward custody queue.
    pub fn custody_capacity(mut self, adverts: usize) -> Self {
        self.config.custody_capacity = adverts;
        self
    }

    /// Turns on pipeline trace spans and latency histograms.
    pub fn trace(mut self, enabled: bool) -> Self {
        self.config.trace = enabled;
        self
    }

    /// Sets the per-lane span-ring capacity.
    pub fn trace_capacity(mut self, spans: usize) -> Self {
        self.config.trace_capacity = spans;
        self
    }

    /// Serves the plaintext stats endpoint on `127.0.0.1:port`
    /// (0 = ephemeral).
    pub fn stats_port(mut self, port: u16) -> Self {
        self.config.stats_port = Some(port);
        self
    }

    /// Finishes the configuration. Structural validation (at least one
    /// unit, no duplicate protocols) happens at
    /// [`crate::Indiss::deploy`], which sees every config regardless of
    /// how it was built.
    pub fn build(self) -> IndissConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_units() {
        let cfg = IndissConfig::new().with_slp().with_upnp().with_jini();
        assert_eq!(cfg.protocols(), vec![SdpProtocol::Slp, SdpProtocol::Upnp, SdpProtocol::Jini]);
    }

    #[test]
    fn paper_prototype_is_slp_upnp() {
        let cfg = IndissConfig::default();
        assert_eq!(cfg.protocols(), vec![SdpProtocol::Slp, SdpProtocol::Upnp]);
        assert!(cfg.enable_cache);
        assert!(cfg.adaptation.is_none());
    }

    #[test]
    fn trace_knobs_default_off_and_flow_through_both_builders() {
        let cfg = IndissConfig::slp_upnp();
        assert!(!cfg.trace);
        assert_eq!(cfg.trace_capacity, 4096);
        assert!(cfg.stats_port.is_none());
        let on = IndissConfig::slp_upnp().with_trace().with_trace_capacity(64).with_stats_port(0);
        assert!(on.trace);
        assert_eq!(on.trace_capacity, 64);
        assert_eq!(on.stats_port, Some(0));
        let built =
            IndissConfig::builder().slp().trace(true).trace_capacity(128).stats_port(9900).build();
        assert!(built.trace);
        assert_eq!(built.trace_capacity, 128);
        assert_eq!(built.stats_port, Some(9900));
    }

    #[test]
    fn mesh_config_is_off_until_a_peer_port_is_named() {
        assert!(IndissConfig::slp_upnp().mesh_config().is_none());
        let cfg = IndissConfig::slp_upnp().with_mesh(7100, vec![7101, 7102]);
        let mesh = cfg.mesh_config().expect("mesh on");
        assert_eq!(mesh.port, 7100);
        assert_eq!(mesh.peers, vec![7101, 7102]);
        assert_eq!(mesh.gossip_interval, MeshConfig::default().gossip_interval);
        let tuned = IndissConfig::builder()
            .slp()
            .mesh(7100, vec![7101])
            .gossip_interval(Duration::from_millis(250))
            .custody_capacity(8)
            .build()
            .mesh_config()
            .expect("mesh on");
        assert_eq!(tuned.gossip_interval, Duration::from_millis(250));
        assert_eq!(tuned.custody_capacity, 8);
    }

    #[test]
    fn toggles_work() {
        let cfg = IndissConfig::slp_upnp()
            .without_cache()
            .with_adaptation(AdaptationPolicy::default())
            .with_lazy_units();
        assert!(!cfg.enable_cache);
        assert!(cfg.adaptation.is_some());
        assert!(cfg.lazy_units);
    }
}
