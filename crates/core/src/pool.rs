//! A lane-routed worker pool for the multi-threaded runtime.
//!
//! The pool owns N OS threads, each draining its own queue. Work is
//! submitted with a *lane* — in the gateway, the registry shard a
//! request's canonical type routes to — and `lane % workers` picks the
//! thread, so all work for one shard runs on one worker in submission
//! order (per-shard FIFO), while disjoint shards proceed in parallel
//! with no shared queue to contend on. This is the "parallel
//! per-interface workers over a shared registry" shape the multi-interface
//! discovery literature scales by, mapped onto canonical-type shards.
//!
//! The pool is deliberately small and dependency-free: `std::thread` +
//! `std::sync::mpsc` channels, an *atomic* pending-job counter (the
//! per-job hot path is two uncontended atomic ops; the condvar and its
//! mutex are touched only when a [`WorkerPool::join`] is actually
//! parked), and channel closure on drop to stop the workers. No work
//! stealing — stealing would break the per-shard ordering guarantee the
//! registry's lock routing relies on for fairness, and shard hashing
//! already balances lanes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::obs::{Phase, Tracer};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pending {
    /// Submitted-but-unfinished jobs. Incremented before enqueue,
    /// decremented after the job runs; `join` parks on the condvar only
    /// while this is nonzero.
    count: AtomicU64,
    /// Mutex the condvar parks on. Held empty-handed: the counter is
    /// the state, the lock only orders "waiter checks count" against
    /// "worker notifies" so the last decrement's wakeup cannot be lost.
    gate: Mutex<()>,
    done: Condvar,
    /// Jobs that panicked (the unwind is caught so the worker — and
    /// [`WorkerPool::join`] — survive; `join` re-raises the failure).
    panicked: AtomicU64,
}

/// A fixed pool of worker threads with lane-routed FIFO queues.
///
/// `Send + Sync`: handles can be shared across threads; any thread may
/// submit. See the module docs for the routing model.
pub struct WorkerPool {
    senders: Vec<Sender<Job>>,
    pending: Arc<Pending>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (minimum 1).
    pub fn new(workers: usize) -> WorkerPool {
        WorkerPool::with_tracer(workers, Tracer::disabled())
    }

    /// Spawns `workers` threads whose job executions are recorded as
    /// `job` spans in `tracer` (worker index = span lane, so each ring
    /// keeps its single-writer discipline). A disabled tracer costs one
    /// branch per job.
    pub fn with_tracer(workers: usize, tracer: Tracer) -> WorkerPool {
        let workers = workers.max(1);
        let pending = Arc::new(Pending {
            count: AtomicU64::new(0),
            gate: Mutex::new(()),
            done: Condvar::new(),
            panicked: AtomicU64::new(0),
        });
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = mpsc::channel::<Job>();
            senders.push(tx);
            let pending = Arc::clone(&pending);
            let tracer = tracer.clone();
            let handle = std::thread::Builder::new()
                .name(format!("indiss-worker-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let span_start = tracer.stamp();
                        // Catch unwinds so one bad job can neither kill
                        // the worker (stranding its lane) nor skip the
                        // pending-counter decrement (deadlocking
                        // `join`); the failure is re-raised there.
                        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        tracer.record(i, Phase::Job, span_start);
                        if outcome.is_err() {
                            pending.panicked.fetch_add(1, Ordering::Relaxed);
                        }
                        // Last decrement wakes any parked `join`. Taking
                        // the gate (briefly, empty-handed) before the
                        // notify is what makes the wakeup race-free: a
                        // joiner holds it from its count check until it
                        // parks, so the notify cannot slip in between.
                        if pending.count.fetch_sub(1, Ordering::AcqRel) == 1 {
                            drop(pending.gate.lock().expect("pool gate poisoned"));
                            pending.done.notify_all();
                        }
                    }
                })
                .expect("spawn worker thread");
            handles.push(handle);
        }
        WorkerPool { senders, pending, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Enqueues `job` on lane `lane` (`lane % workers` picks the
    /// thread). Jobs on one lane run in submission order; jobs on lanes
    /// owned by different workers run concurrently.
    pub fn submit(&self, lane: usize, job: impl FnOnce() + Send + 'static) {
        self.pending.count.fetch_add(1, Ordering::AcqRel);
        let worker = lane % self.senders.len();
        // The receiver lives for the pool's lifetime, so the only send
        // failure is a worker that panicked; surface that loudly.
        self.senders[worker].send(Box::new(job)).expect("worker thread gone");
    }

    /// Blocks until every submitted job has finished.
    ///
    /// # Panics
    ///
    /// Panics if any job panicked since the pool was created — a
    /// caught-and-counted failure must not read as success.
    pub fn join(&self) {
        if self.pending.count.load(Ordering::Acquire) > 0 {
            let mut gate = self.pending.gate.lock().expect("pool gate poisoned");
            while self.pending.count.load(Ordering::Acquire) > 0 {
                gate = self.pending.done.wait(gate).expect("pool gate poisoned");
            }
        }
        let panicked = self.pending.panicked.load(Ordering::Relaxed);
        assert!(panicked == 0, "{panicked} worker job(s) panicked (see stderr for payloads)");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels ends each worker's recv loop; join so no
        // worker outlives the pool handle.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.senders.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_submitted_jobs_to_completion() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for lane in 0..100 {
            let counter = Arc::clone(&counter);
            pool.submit(lane, move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn one_lane_preserves_submission_order() {
        let pool = WorkerPool::new(4);
        let seen = Arc::new(Mutex::new(Vec::new()));
        for i in 0..50u32 {
            let seen = Arc::clone(&seen);
            pool.submit(7, move || seen.lock().unwrap().push(i));
        }
        pool.join();
        let seen = seen.lock().unwrap();
        assert_eq!(*seen, (0..50).collect::<Vec<_>>(), "per-lane FIFO");
    }

    #[test]
    fn join_with_no_work_returns_immediately() {
        let pool = WorkerPool::new(2);
        pool.join();
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let ran = Arc::new(AtomicU64::new(0));
        let ran2 = Arc::clone(&ran);
        pool.submit(0, move || {
            ran2.fetch_add(1, Ordering::Relaxed);
        });
        pool.join();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicking_job_neither_deadlocks_join_nor_kills_the_lane() {
        let pool = WorkerPool::new(2);
        pool.submit(0, || panic!("job blew up"));
        // The lane's worker survives and keeps draining its queue.
        let ran = Arc::new(AtomicU64::new(0));
        let ran2 = Arc::clone(&ran);
        pool.submit(0, move || {
            ran2.fetch_add(1, Ordering::Relaxed);
        });
        let joined = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.join()));
        assert!(joined.is_err(), "join re-raises the job failure");
        assert_eq!(ran.load(Ordering::Relaxed), 1, "later jobs on the lane still ran");
    }

    #[test]
    fn traced_pool_records_one_job_span_per_job() {
        let tracer = Tracer::new(64, 2, &[], Arc::new(crate::obs::WallClock::new()));
        let pool = WorkerPool::with_tracer(2, tracer.clone());
        for lane in 0..10 {
            pool.submit(lane, || {});
        }
        pool.join();
        assert_eq!(tracer.spans_recorded(), 10);
        let spans = tracer.snapshot();
        assert_eq!(spans.len(), 10);
        assert!(spans.iter().all(|s| s.phase == Phase::Job));
        assert!(spans.iter().all(|s| s.end >= s.start));
    }

    #[test]
    fn pool_handle_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WorkerPool>();
    }
}
