//! The unit coordination engine: a deterministic finite automaton over
//! events (paper §2.3).
//!
//! A SDP state machine is the 5-tuple *(Q, Σ, C, T, q0, F)*: states,
//! input events, conditions, the transition function, a start state and
//! accepting states. Transitions are declared exactly as the paper's
//! `AddTuple(CurrentState, triggers, condition-guards, NewState, actions)`
//! operator — see [`FsmBuilder::tuple`].
//!
//! The engine is generic over `S`, the unit's *state variables* ("events
//! data from previous states are recorded using state variables"), and
//! `C`, the command type produced by actions for the unit to execute
//! (dispatch, send, reconfigure, …).
//!
//! # Ownership model
//!
//! The engine sits on the per-event hot path, so it never allocates on
//! its own behalf: actions *write commands into a caller-provided scratch
//! buffer* (`&mut Vec<C>`) instead of returning a fresh `Vec` per event,
//! and [`Fsm::feed_all`] reuses one buffer across a whole stream. A unit
//! typically keeps one scratch `Vec` per session, clears it per message,
//! and drains the emitted commands after each feed — steady state is
//! zero allocations per event.

use std::collections::HashMap;
use std::rc::Rc;

use crate::event::{Event, EventKind};

/// A condition guard: a boolean expression over the incoming event and
/// the recorded state variables.
pub type Guard<S> = Rc<dyn Fn(&Event, &S) -> bool>;

/// An action: may mutate the state variables and emit commands into the
/// caller's scratch buffer.
pub type Action<S, C> = Rc<dyn Fn(&mut S, &Event, &mut Vec<C>)>;

/// What causes a transition to be considered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// A specific event kind.
    Kind(EventKind),
    /// Any event (useful for logging or catch-all recording transitions).
    Any,
}

struct Tuple<S, C> {
    from: &'static str,
    trigger: Trigger,
    guard: Option<Guard<S>>,
    to: &'static str,
    action: Option<Action<S, C>>,
}

/// Builder mirroring the paper's `Component UPnP-FSM = { AddTuple(...) }`.
pub struct FsmBuilder<S, C> {
    start: &'static str,
    accepting: Vec<&'static str>,
    tuples: Vec<Tuple<S, C>>,
}

impl<S, C> FsmBuilder<S, C> {
    /// Starts a machine at `start`.
    pub fn new(start: &'static str) -> Self {
        FsmBuilder { start, accepting: Vec::new(), tuples: Vec::new() }
    }

    /// Declares accepting (final) states — the paper's `F ⊂ Q`.
    pub fn accepting(mut self, states: &[&'static str]) -> Self {
        self.accepting.extend_from_slice(states);
        self
    }

    /// The paper's `AddTuple(CurrentState, trigger, condition-guard,
    /// NewState, action)`. Tuples are tried in declaration order; the
    /// first whose trigger and guard match wins (determinism by
    /// priority).
    pub fn tuple(
        mut self,
        from: &'static str,
        trigger: Trigger,
        guard: Option<Guard<S>>,
        to: &'static str,
        action: Option<Action<S, C>>,
    ) -> Self {
        self.tuples.push(Tuple { from, trigger, guard, to, action });
        self
    }

    /// Convenience for the common guard-less case.
    pub fn on(
        self,
        from: &'static str,
        kind: EventKind,
        to: &'static str,
        action: Action<S, C>,
    ) -> Self {
        self.tuple(from, Trigger::Kind(kind), None, to, Some(action))
    }

    /// Finalizes the machine.
    pub fn build(self) -> Fsm<S, C> {
        let mut by_state: HashMap<&'static str, Vec<usize>> = HashMap::new();
        for (i, t) in self.tuples.iter().enumerate() {
            by_state.entry(t.from).or_default().push(i);
        }
        Fsm {
            current: self.start,
            start: self.start,
            accepting: self.accepting,
            tuples: self.tuples,
            by_state,
            transitions_taken: 0,
        }
    }
}

/// A running DFA instance.
pub struct Fsm<S, C> {
    current: &'static str,
    start: &'static str,
    accepting: Vec<&'static str>,
    tuples: Vec<Tuple<S, C>>,
    by_state: HashMap<&'static str, Vec<usize>>,
    transitions_taken: usize,
}

impl<S, C> Fsm<S, C> {
    /// The current state's label.
    pub fn state(&self) -> &'static str {
        self.current
    }

    /// True when the machine is in an accepting state.
    pub fn is_accepting(&self) -> bool {
        self.accepting.contains(&self.current)
    }

    /// Number of transitions taken so far.
    pub fn transitions_taken(&self) -> usize {
        self.transitions_taken
    }

    /// Resets to the start state (used when a unit begins a new session).
    pub fn reset(&mut self) {
        self.current = self.start;
    }

    /// Feeds one event. If a transition matches (trigger + guard), the
    /// machine moves, the action appends its commands to `out`, and
    /// `true` is returned; otherwise the event is *filtered* — dropped
    /// without a state change, which is how units discard events they do
    /// not understand (§2.3). `out` is a caller-owned scratch buffer;
    /// nothing already in it is touched.
    pub fn feed(&mut self, event: &Event, vars: &mut S, out: &mut Vec<C>) -> bool {
        let Some(candidates) = self.by_state.get(self.current) else {
            return false;
        };
        for &i in candidates {
            let tuple = &self.tuples[i];
            let trigger_hit = match tuple.trigger {
                Trigger::Any => true,
                Trigger::Kind(k) => k == event.kind(),
            };
            if !trigger_hit {
                continue;
            }
            if let Some(guard) = &tuple.guard {
                if !guard(event, vars) {
                    continue;
                }
            }
            self.current = tuple.to;
            self.transitions_taken += 1;
            if let Some(action) = tuple.action.clone() {
                action(vars, event, out);
            }
            return true;
        }
        false
    }

    /// Feeds a whole event sequence, accumulating emitted commands in the
    /// single scratch buffer `out`.
    pub fn feed_all<'a, I: IntoIterator<Item = &'a Event>>(
        &mut self,
        events: I,
        vars: &mut S,
        out: &mut Vec<C>,
    ) {
        for e in events {
            self.feed(e, vars, out);
        }
    }
}

impl<S, C> std::fmt::Debug for Fsm<S, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fsm")
            .field("current", &self.current)
            .field("tuples", &self.tuples.len())
            .field("accepting", &self.accepting)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    /// State variables for the test machine: counts and a recorded type.
    #[derive(Default)]
    struct Vars {
        service_type: Option<String>,
        attrs_seen: usize,
    }

    #[derive(Debug, PartialEq)]
    enum Cmd {
        Remember(String),
        Finish(usize),
    }

    fn request_machine() -> Fsm<Vars, Cmd> {
        FsmBuilder::new("idle")
            .accepting(&["done"])
            .on("idle", EventKind::Start, "open", Rc::new(|_, _, _: &mut Vec<Cmd>| {}))
            .on(
                "open",
                EventKind::ServiceType,
                "typed",
                Rc::new(|vars: &mut Vars, e: &Event, out: &mut Vec<Cmd>| {
                    if let Event::ServiceType(t) = e {
                        vars.service_type = Some(t.as_str().to_owned());
                        out.push(Cmd::Remember(t.as_str().to_owned()));
                    }
                }),
            )
            .tuple(
                "typed",
                Trigger::Kind(EventKind::ServiceAttr),
                None,
                "typed",
                Some(Rc::new(|vars: &mut Vars, _, _| {
                    vars.attrs_seen += 1;
                })),
            )
            .on(
                "typed",
                EventKind::Stop,
                "done",
                Rc::new(|vars: &mut Vars, _, out: &mut Vec<Cmd>| {
                    out.push(Cmd::Finish(vars.attrs_seen));
                }),
            )
            .build()
    }

    #[test]
    fn transitions_follow_tuples() {
        let mut fsm = request_machine();
        let mut vars = Vars::default();
        let mut cmds = Vec::new();
        assert_eq!(fsm.state(), "idle");
        fsm.feed(&Event::Start, &mut vars, &mut cmds);
        assert_eq!(fsm.state(), "open");
        fsm.feed(&Event::ServiceType("clock".into()), &mut vars, &mut cmds);
        assert_eq!(cmds, vec![Cmd::Remember("clock".into())]);
        cmds.clear();
        fsm.feed(
            &Event::ServiceAttr { tag: "a".into(), values: Vec::new().into() },
            &mut vars,
            &mut cmds,
        );
        fsm.feed(
            &Event::ServiceAttr { tag: "b".into(), values: Vec::new().into() },
            &mut vars,
            &mut cmds,
        );
        fsm.feed(&Event::Stop, &mut vars, &mut cmds);
        assert_eq!(cmds, vec![Cmd::Finish(2)]);
        assert!(fsm.is_accepting());
        assert_eq!(fsm.transitions_taken(), 5);
    }

    #[test]
    fn unknown_events_are_filtered_without_state_change() {
        let mut fsm = request_machine();
        let mut vars = Vars::default();
        let mut cmds = Vec::new();
        fsm.feed(&Event::Start, &mut vars, &mut cmds);
        cmds.clear();
        // An SLP-specific event this machine has no tuple for: discarded.
        let moved = fsm.feed(&Event::SlpReqVersion(2), &mut vars, &mut cmds);
        assert!(!moved);
        assert!(cmds.is_empty());
        assert_eq!(fsm.state(), "open");
    }

    #[test]
    fn guards_select_among_tuples() {
        let mut fsm: Fsm<(), &'static str> = FsmBuilder::new("s")
            .tuple(
                "s",
                Trigger::Kind(EventKind::ResTtl),
                Some(Rc::new(|e: &Event, _| matches!(e, Event::ResTtl(t) if *t > 100))),
                "long",
                Some(Rc::new(|_, _, out: &mut Vec<&'static str>| out.push("long-lived"))),
            )
            .tuple(
                "s",
                Trigger::Kind(EventKind::ResTtl),
                None,
                "short",
                Some(Rc::new(|_, _, out: &mut Vec<&'static str>| out.push("short-lived"))),
            )
            .build();
        let mut unit = ();
        let mut cmds = Vec::new();
        fsm.feed(&Event::ResTtl(50), &mut unit, &mut cmds);
        assert_eq!(cmds, vec!["short-lived"]);
        fsm.reset();
        cmds.clear();
        fsm.feed(&Event::ResTtl(5000), &mut unit, &mut cmds);
        assert_eq!(cmds, vec!["long-lived"]);
    }

    #[test]
    fn any_trigger_catches_everything() {
        let mut fsm: Fsm<usize, ()> = FsmBuilder::new("s")
            .tuple(
                "s",
                Trigger::Any,
                None,
                "s",
                Some(Rc::new(|count: &mut usize, _, _| {
                    *count += 1;
                })),
            )
            .build();
        let mut n = 0;
        let mut out = Vec::new();
        fsm.feed_all([Event::Start, Event::ResOk, Event::Stop].iter(), &mut n, &mut out);
        assert_eq!(n, 3);
        assert!(out.is_empty());
    }

    #[test]
    fn scratch_buffer_is_appended_not_cleared() {
        let mut fsm = request_machine();
        let mut vars = Vars::default();
        let mut cmds = vec![Cmd::Finish(99)]; // pre-existing content
        fsm.feed(&Event::Start, &mut vars, &mut cmds);
        fsm.feed(&Event::ServiceType("clock".into()), &mut vars, &mut cmds);
        assert_eq!(cmds, vec![Cmd::Finish(99), Cmd::Remember("clock".into())]);
    }

    #[test]
    fn reset_returns_to_start() {
        let mut fsm = request_machine();
        let mut vars = Vars::default();
        let mut cmds = Vec::new();
        fsm.feed(&Event::Start, &mut vars, &mut cmds);
        assert_ne!(fsm.state(), "idle");
        fsm.reset();
        assert_eq!(fsm.state(), "idle");
    }
}
