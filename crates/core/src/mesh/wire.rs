//! The peer wire codec: compact signed frames gateways exchange.
//!
//! Five frame kinds ride the peer channel:
//!
//! * [`Frame::Digest`] — the anti-entropy opener: the sender's
//!   per-shard content-version vector (see
//!   [`crate::ServiceRegistry::shard_versions`]).
//! * [`Frame::Pull`] — the receiver's diff: which of the sender's
//!   shards it wants, because the digest showed versions newer than
//!   what it last pulled.
//! * [`Frame::Records`] — one shard's live records, with the version
//!   the snapshot was taken at.
//! * [`Frame::Ack`] — "nothing new": the digest matched what was
//!   already pulled. Ends a converged round in one frame each way.
//! * [`Frame::Relay`] — store-and-forward replay of custody records
//!   after a partition heals.
//!
//! # Layout
//!
//! Every frame is `[magic "IMSH" | version | type | sig(8, LE) | body]`.
//! The signature is a keyed FNV-1a over the type byte and body with the
//! mesh's shared secret mixed in (SplitMix64 finalizer) — an integrity
//! check that rejects stray/corrupt datagrams and frames from meshes
//! keyed differently; it is not confidentiality. All multi-byte
//! integers are little-endian; strings are length-prefixed UTF-8.
//!
//! # Robustness
//!
//! Decoding is length-checked everywhere, caps every count and string
//! length, and never panics on arbitrary input — the deterministic
//! mutation fuzzer (`fuzz_tests`) drives both [`decode_frame`] and the
//! signature-skipping [`decode_unchecked`] entry points.

use crate::event::SdpProtocol;

/// Frame magic: "INDISS mesh".
pub(crate) const MAGIC: [u8; 4] = *b"IMSH";
/// Wire version this codec speaks.
pub(crate) const WIRE_VERSION: u8 = 1;
/// Header length: magic + version + type + signature.
const HEADER_LEN: usize = 4 + 1 + 1 + 8;
/// Longest accepted string (canonical types, keys, URLs).
const MAX_STR: usize = 1024;
/// Most records accepted in one `Records`/`Relay` frame.
pub(crate) const MAX_RECORDS: usize = 512;
/// Most shards accepted in a version vector or pull list. Mesh startup
/// refuses registries sharded beyond this ([`crate::MeshNode::start`]),
/// so the encode-side clamps below can never silently drop a live
/// shard.
pub(crate) const MAX_SHARDS: usize = 256;

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes mid-field.
    Truncated,
    /// The first four bytes are not `IMSH`.
    BadMagic,
    /// A wire version this codec does not speak.
    BadVersion,
    /// An unknown frame type byte.
    BadType,
    /// The keyed signature did not verify.
    BadSig,
    /// A count exceeded its cap.
    Oversize,
    /// A string was not valid UTF-8.
    BadString,
    /// Trailing bytes after a complete body.
    TrailingBytes,
}

/// A record's origin protocol as carried on the wire. Built-in SDPs
/// travel as a tag; dynamically registered protocols travel by
/// `(name, port)` and are resolved against the receiver's protocol
/// table at apply time — the wire never registers protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireOrigin {
    /// One of the three built-in SDPs.
    Builtin(SdpProtocol),
    /// A descriptor-driven protocol, by registered name and port.
    Dynamic {
        /// The protocol's registered name.
        name: String,
        /// The protocol's registered port.
        port: u16,
    },
}

/// One service record as gossiped: the canonical identity triple plus
/// endpoint and remaining TTL. Attributes and protocol-specific advert
/// framing do not travel — peers re-derive what they need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRecord {
    /// Which protocol announced the service on its home segment.
    pub origin: WireOrigin,
    /// Canonical short type (`clock`, `printer`).
    pub canonical_type: String,
    /// The identity the record is keyed by (USN, URL or type).
    pub key: String,
    /// The service endpoint URL, when known.
    pub url: Option<String>,
    /// Remaining TTL in whole seconds (rounded up); `None` = immortal.
    pub ttl_secs: Option<u32>,
}

/// A decoded peer frame. `from` is always the sender's well-known peer
/// port — the mesh-wide peer identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Anti-entropy digest: the sender's per-shard version vector.
    Digest {
        /// Sender's peer port.
        from: u16,
        /// Sender's gossip round counter.
        round: u64,
        /// Per-shard content versions, shard 0 first.
        versions: Vec<u64>,
    },
    /// Diff reply: pull these (sender-relative) shards.
    Pull {
        /// Sender's peer port.
        from: u16,
        /// Echo of the digest's round.
        round: u64,
        /// Shard indexes to pull, in the *digest sender's* numbering.
        shards: Vec<u16>,
    },
    /// One shard's live records at the given version.
    Records {
        /// Sender's peer port.
        from: u16,
        /// Which of the sender's shards this is.
        shard: u16,
        /// The shard's content version when snapshotted.
        version: u64,
        /// The shard's live records.
        records: Vec<WireRecord>,
    },
    /// Digest acknowledged, nothing to pull.
    Ack {
        /// Sender's peer port.
        from: u16,
        /// Echo of the digest's round.
        round: u64,
    },
    /// Custody replay after a partition healed.
    Relay {
        /// Sender's peer port.
        from: u16,
        /// The records held in custody, oldest first.
        records: Vec<WireRecord>,
    },
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Digest { .. } => 1,
            Frame::Pull { .. } => 2,
            Frame::Records { .. } => 3,
            Frame::Ack { .. } => 4,
            Frame::Relay { .. } => 5,
        }
    }
}

// ---------------------------------------------------------------------
// Signing
// ---------------------------------------------------------------------

/// SplitMix64 finalizer: whitens the shared secret so related keys do
/// not produce related signatures.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Keyed FNV-1a over the frame type byte and body.
fn sign(key: u64, frame_type: u8, body: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ mix(key);
    for &b in std::iter::once(&frame_type).chain(body) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix(h)
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encodes a string, silently truncating at [`MAX_STR`] bytes (on a
/// UTF-8 boundary) so local state can never build an undecodable frame.
fn put_str(out: &mut Vec<u8>, s: &str) {
    let mut end = s.len().min(MAX_STR);
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    let bytes = &s.as_bytes()[..end];
    put_u16(out, bytes.len() as u16);
    out.extend_from_slice(bytes);
}

fn put_record(out: &mut Vec<u8>, r: &WireRecord) {
    match &r.origin {
        WireOrigin::Builtin(SdpProtocol::Slp) => out.push(0),
        WireOrigin::Builtin(SdpProtocol::Upnp) => out.push(1),
        WireOrigin::Builtin(SdpProtocol::Jini) => out.push(2),
        WireOrigin::Builtin(SdpProtocol::Dynamic(id)) => {
            out.push(3);
            put_str(out, id.name());
            put_u16(out, id.port());
        }
        WireOrigin::Dynamic { name, port } => {
            out.push(3);
            put_str(out, name);
            put_u16(out, *port);
        }
    }
    put_str(out, &r.canonical_type);
    put_str(out, &r.key);
    match &r.url {
        Some(url) => {
            out.push(1);
            put_str(out, url);
        }
        None => out.push(0),
    }
    match r.ttl_secs {
        Some(ttl) => {
            out.push(1);
            put_u32(out, ttl);
        }
        None => out.push(0),
    }
}

/// Encodes and signs a frame with the mesh's shared secret.
pub(crate) fn encode_frame(frame: &Frame, key: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    match frame {
        Frame::Digest { from, round, versions } => {
            put_u16(&mut body, *from);
            put_u64(&mut body, *round);
            put_u16(&mut body, versions.len().min(MAX_SHARDS) as u16);
            for v in versions.iter().take(MAX_SHARDS) {
                put_u64(&mut body, *v);
            }
        }
        Frame::Pull { from, round, shards } => {
            put_u16(&mut body, *from);
            put_u64(&mut body, *round);
            put_u16(&mut body, shards.len().min(MAX_SHARDS) as u16);
            for s in shards.iter().take(MAX_SHARDS) {
                put_u16(&mut body, *s);
            }
        }
        Frame::Records { from, shard, version, records } => {
            put_u16(&mut body, *from);
            put_u16(&mut body, *shard);
            put_u64(&mut body, *version);
            put_u16(&mut body, records.len().min(MAX_RECORDS) as u16);
            for r in records.iter().take(MAX_RECORDS) {
                put_record(&mut body, r);
            }
        }
        Frame::Ack { from, round } => {
            put_u16(&mut body, *from);
            put_u64(&mut body, *round);
        }
        Frame::Relay { from, records } => {
            put_u16(&mut body, *from);
            put_u16(&mut body, records.len().min(MAX_RECORDS) as u16);
            for r in records.iter().take(MAX_RECORDS) {
                put_record(&mut body, r);
            }
        }
    }
    let frame_type = frame.type_byte();
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(frame_type);
    put_u64(&mut out, sign(key, frame_type, &body));
    out.extend_from_slice(&body);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// A bounds-checked cursor over a frame body.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = usize::from(self.u16()?);
        if len > MAX_STR {
            return Err(WireError::Oversize);
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadString)
    }

    /// A count field, capped, with a floor on bytes each element must
    /// occupy so hostile counts can never pre-allocate beyond the
    /// datagram's own length.
    fn count(&mut self, cap: usize, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = usize::from(self.u16()?);
        if n > cap {
            return Err(WireError::Oversize);
        }
        if n * min_elem_bytes > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    fn record(&mut self) -> Result<WireRecord, WireError> {
        let origin = match self.u8()? {
            0 => WireOrigin::Builtin(SdpProtocol::Slp),
            1 => WireOrigin::Builtin(SdpProtocol::Upnp),
            2 => WireOrigin::Builtin(SdpProtocol::Jini),
            3 => {
                let name = self.string()?;
                let port = self.u16()?;
                WireOrigin::Dynamic { name, port }
            }
            _ => return Err(WireError::BadType),
        };
        let canonical_type = self.string()?;
        let key = self.string()?;
        let url = match self.u8()? {
            0 => None,
            1 => Some(self.string()?),
            _ => return Err(WireError::BadType),
        };
        let ttl_secs = match self.u8()? {
            0 => None,
            1 => Some(self.u32()?),
            _ => return Err(WireError::BadType),
        };
        Ok(WireRecord { origin, canonical_type, key, url, ttl_secs })
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes);
        }
        Ok(())
    }
}

fn decode_body(frame_type: u8, body: &[u8]) -> Result<Frame, WireError> {
    let mut r = Reader::new(body);
    let frame = match frame_type {
        1 => {
            let from = r.u16()?;
            let round = r.u64()?;
            let n = r.count(MAX_SHARDS, 8)?;
            let mut versions = Vec::with_capacity(n);
            for _ in 0..n {
                versions.push(r.u64()?);
            }
            Frame::Digest { from, round, versions }
        }
        2 => {
            let from = r.u16()?;
            let round = r.u64()?;
            let n = r.count(MAX_SHARDS, 2)?;
            let mut shards = Vec::with_capacity(n);
            for _ in 0..n {
                shards.push(r.u16()?);
            }
            Frame::Pull { from, round, shards }
        }
        3 => {
            let from = r.u16()?;
            let shard = r.u16()?;
            let version = r.u64()?;
            // A record is at least origin tag + 2 empty strings +
            // 2 absent options = 1 + 2 + 2 + 1 + 1 bytes.
            let n = r.count(MAX_RECORDS, 7)?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push(r.record()?);
            }
            Frame::Records { from, shard, version, records }
        }
        4 => {
            let from = r.u16()?;
            let round = r.u64()?;
            Frame::Ack { from, round }
        }
        5 => {
            let from = r.u16()?;
            let n = r.count(MAX_RECORDS, 7)?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push(r.record()?);
            }
            Frame::Relay { from, records }
        }
        _ => return Err(WireError::BadType),
    };
    r.finish()?;
    Ok(frame)
}

fn split_header(bytes: &[u8]) -> Result<(u8, u64, &[u8]), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    if bytes[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if bytes[4] != WIRE_VERSION {
        return Err(WireError::BadVersion);
    }
    let frame_type = bytes[5];
    let sig = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes"));
    Ok((frame_type, sig, &bytes[HEADER_LEN..]))
}

/// Decodes and verifies a signed peer frame.
///
/// # Errors
///
/// Any [`WireError`]: framing, cap, UTF-8 or signature failures.
pub(crate) fn decode_frame(bytes: &[u8], key: u64) -> Result<Frame, WireError> {
    let (frame_type, sig, body) = split_header(bytes)?;
    if sig != sign(key, frame_type, body) {
        return Err(WireError::BadSig);
    }
    decode_body(frame_type, body)
}

/// Decodes a frame *without* verifying its signature — the fuzzer's
/// second entry point, so mutation coverage reaches the body parsers
/// that a wrong signature would otherwise shield.
///
/// # Errors
///
/// Any [`WireError`] except [`WireError::BadSig`].
#[cfg(test)]
pub(crate) fn decode_unchecked(bytes: &[u8]) -> Result<Frame, WireError> {
    let (frame_type, _, body) = split_header(bytes)?;
    decode_body(frame_type, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: u64 = 0x1D15_5000_5EC2_E700;

    fn sample_record() -> WireRecord {
        WireRecord {
            origin: WireOrigin::Builtin(SdpProtocol::Upnp),
            canonical_type: "clock".into(),
            key: "uuid:abc::urn:clock".into(),
            url: Some("soap://10.0.0.2:4005/ctl".into()),
            ttl_secs: Some(60),
        }
    }

    #[test]
    fn all_frames_round_trip() {
        let frames = [
            Frame::Digest { from: 7100, round: 3, versions: vec![0, 4, 17] },
            Frame::Pull { from: 7101, round: 3, shards: vec![1, 2] },
            Frame::Records { from: 7100, shard: 1, version: 4, records: vec![sample_record()] },
            Frame::Ack { from: 7101, round: 3 },
            Frame::Relay {
                from: 7102,
                records: vec![
                    sample_record(),
                    WireRecord {
                        origin: WireOrigin::Dynamic { name: "dns-sd".into(), port: 5353 },
                        canonical_type: "printer".into(),
                        key: "printer".into(),
                        url: None,
                        ttl_secs: None,
                    },
                ],
            },
        ];
        for frame in frames {
            let bytes = encode_frame(&frame, KEY);
            assert_eq!(decode_frame(&bytes, KEY).expect("round trip"), frame);
            assert_eq!(decode_unchecked(&bytes).expect("unchecked"), frame);
        }
    }

    #[test]
    fn wrong_key_is_rejected() {
        let bytes = encode_frame(&Frame::Ack { from: 1, round: 9 }, KEY);
        assert_eq!(decode_frame(&bytes, KEY ^ 1), Err(WireError::BadSig));
    }

    #[test]
    fn corrupt_bytes_are_rejected_not_panicked_on() {
        let good = encode_frame(
            &Frame::Records { from: 7100, shard: 0, version: 1, records: vec![sample_record()] },
            KEY,
        );
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            // Every single-byte corruption must fail cleanly (the sig
            // catches all of them) and must never panic.
            assert!(decode_frame(&bad, KEY).is_err(), "flip at {i} accepted");
            let _ = decode_unchecked(&bad);
        }
        for len in 0..good.len() {
            assert!(decode_frame(&good[..len], KEY).is_err(), "truncation at {len} accepted");
            let _ = decode_unchecked(&good[..len]);
        }
    }

    #[test]
    fn hostile_count_cannot_overallocate() {
        // A Records frame claiming MAX_RECORDS entries but carrying no
        // bytes for them is refused by the count floor.
        let mut body = Vec::new();
        put_u16(&mut body, 7100);
        put_u16(&mut body, 0);
        put_u64(&mut body, 1);
        put_u16(&mut body, MAX_RECORDS as u16);
        assert_eq!(decode_body(3, &body), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_frame(&Frame::Ack { from: 1, round: 2 }, KEY);
        bytes.push(0);
        assert_eq!(decode_unchecked(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn oversize_strings_are_truncated_on_encode_and_capped_on_decode() {
        let long = "x".repeat(MAX_STR + 100);
        let record = WireRecord {
            origin: WireOrigin::Builtin(SdpProtocol::Slp),
            canonical_type: long.clone(),
            key: long,
            url: None,
            ttl_secs: None,
        };
        let bytes = encode_frame(&Frame::Relay { from: 1, records: vec![record] }, KEY);
        let Frame::Relay { records, .. } = decode_frame(&bytes, KEY).expect("decodes") else {
            panic!("wrong frame");
        };
        assert_eq!(records[0].canonical_type.len(), MAX_STR);
    }
}
